#!/usr/bin/env python
"""Scenario: adaptive computation offloading as the network changes.

A slow handheld crunches tasks of varying sizes while walking between a
Wi-Fi hotspot (fast, free) and GPRS-only coverage (slow, metered).  The
adaptive offloader re-assesses per task: big jobs offload when the link
is good; small jobs — and everything when connectivity is poor — run
locally.

Run: ``python examples/adaptive_offload.py``
"""

from repro import World, mutual_trust, standard_host
from repro.apps import AdaptiveOffloader
from repro.net import GPRS, LAN, Position, WIFI_ADHOC

TASKS = [
    ("mail-filter", 200_000),
    ("photo-resize", 5_000_000),
    ("route-plan", 30_000_000),
    ("spell-check", 100_000),
    ("video-index", 60_000_000),
]


def main():
    world = World(seed=51)
    handheld = standard_host(
        world, "handheld", Position(0, 0), [WIFI_ADHOC, GPRS], cpu_speed=0.1
    )
    server = standard_host(
        world,
        "server",
        Position(20, 0),
        [WIFI_ADHOC, LAN],
        fixed=True,
        cpu_speed=4.0,
    )
    mutual_trust(handheld, server)
    handheld.node.interface("gprs").attach()
    offloader = AdaptiveOffloader(handheld, "server")

    def workday():
        for round_number in range(2):
            in_hotspot = round_number == 0
            place = "hotspot" if in_hotspot else "GPRS-only coverage"
            handheld.node.move_to(
                Position(30, 0) if in_hotspot else Position(5000, 0)
            )
            print(f"\n-- {place} --")
            for name, work in TASKS:
                report = yield from offloader.run(work, input_bytes=2_000)
                print(
                    f"  {name:<12} {work/1e6:6.1f}M units -> "
                    f"{report.where:<8} ({report.elapsed_s:8.2f}s)"
                )

    process = world.env.process(workday())
    world.run(until=process)
    print(f"\ndecisions: {offloader.decisions}")
    print(f"tariff paid: {handheld.node.costs.money:.3f}")


if __name__ == "__main__":
    main()
