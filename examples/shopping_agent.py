#!/usr/bin/env python
"""Scenario: m-commerce on a metered link — agent vs interactive browsing.

A GPRS handset wants the best price on a camera across five web shops.
Interactive browsing pays the per-megabyte tariff for every catalogue
page; the shopping agent crosses the wireless link twice and does the
legwork on the fixed network.

Run: ``python examples/shopping_agent.py``
"""

from repro import World, mutual_trust, standard_host
from repro.apps import make_vendor, shop_interactively, shop_with_agent
from repro.net import GPRS, LAN, Position

VENDORS = 5


def build(seed):
    world = World(seed=seed)
    handset = standard_host(
        world, "handset", Position(0, 0), [GPRS], cpu_speed=0.2
    )
    handset.node.interface("gprs").attach()
    vendors = []
    for index in range(VENDORS):
        vendor = standard_host(
            world, f"shop{index}", Position(0, 0), [LAN], fixed=True
        )
        make_vendor(vendor, {"camera": 450.0 - 17.0 * index})
        vendors.append(vendor)
    mutual_trust(handset, *vendors)
    return world, handset, [v.id for v in vendors]


def main():
    # --- interactive browsing -------------------------------------------------
    world, handset, vendor_ids = build(seed=41)

    def browse():
        report = yield from shop_interactively(
            handset, "camera", vendor_ids, think_time_s=3.0
        )
        return report

    process = world.env.process(browse())
    report = world.run(until=process)
    browse_time = world.now
    browse_costs = handset.node.costs
    print("interactive browsing:")
    print(f"  best offer     : {report.best}")
    print(f"  session time   : {browse_time:,.1f}s")
    print(f"  wireless bytes : {browse_costs.wireless_bytes():,}")
    print(f"  tariff paid    : {browse_costs.money:.3f}")

    # --- shopping agent ----------------------------------------------------------
    world, handset, vendor_ids = build(seed=41)

    def agent_shop():
        final = yield from shop_with_agent(handset, "camera", vendor_ids)
        return final

    process = world.env.process(agent_shop())
    final = world.run(until=process)
    agent_time = world.now
    agent_costs = handset.node.costs
    print("\nshopping agent:")
    print(f"  best offer     : {final['best']}")
    print(f"  receipt        : {final['receipt']}")
    print(f"  session time   : {agent_time:,.1f}s")
    print(f"  wireless bytes : {agent_costs.wireless_bytes():,}")
    print(f"  tariff paid    : {agent_costs.money:.3f}")

    if agent_costs.money > 0:
        print(
            f"\nagent is {browse_costs.money / agent_costs.money:.1f}x cheaper "
            f"and uses {browse_costs.wireless_bytes() / max(1, agent_costs.wireless_bytes()):.1f}x "
            "fewer wireless bytes"
        )


if __name__ == "__main__":
    main()
