#!/usr/bin/env python
"""Scenario: best-effort messaging after the infrastructure is gone.

Twelve rescuers wander a 600x600 m site with Wi-Fi ad-hoc radios; no
two ends of the site are ever directly connected.  A messenger agent
store-carry-forwards an SOS from one corner to the other, while the CS
baseline keeps failing to find an end-to-end path.

Run: ``python examples/disaster_mesh.py``
"""

from repro import World
from repro.apps import DeliveryLog, send_via_agent, send_via_cs
from repro.net import Area, Position, RandomWaypoint
from repro.workloads import adhoc_fleet

SITE = Area(600.0, 600.0)
RESCUERS = 16
TTL = 1800.0


def main():
    world = World(seed=23)
    hosts = adhoc_fleet(world, RESCUERS, SITE, placement="random")
    source, destination = hosts[0], hosts[-1]
    source.node.move_to(Position(10.0, 10.0))
    destination.node.move_to(Position(550.0, 550.0))
    RandomWaypoint(
        world.env,
        [h.node for h in hosts[1:-1]],
        SITE,
        world.streams,
        speed_range=(2.0, 5.0),
        pause_range=(0.0, 5.0),
    )

    log = DeliveryLog(destination)
    print(
        "end-to-end path at t=0:",
        "yes" if world.network.connected(source.id, destination.id) else "no",
    )

    send_via_agent(source, destination.id, "SOS: send medics", ttl=TTL)

    def cs_attempt():
        report = yield from send_via_cs(
            source, destination.id, "SOS: send medics", ttl=TTL,
            retry_interval=10.0,
        )
        print(
            f"CS baseline: delivered={report.delivered} "
            f"after {report.attempts} attempts"
        )

    world.env.process(cs_attempt())
    world.run(until=TTL + 10.0)

    if log.received:
        via, payload, at = log.received[0]
        print(f"agent delivery: {payload!r} via {via} at t={at:.1f}s")
    else:
        print("agent delivery: none within TTL")
    hops = world.metrics.counter("agents.migrations").value
    print(f"agent migrations used: {hops:.0f}")


if __name__ == "__main__":
    main()
