#!/usr/bin/env python
"""Quickstart: two devices, all four mobility paradigms in one sitting.

Builds a GPRS phone and a fixed server, then exercises:

1. CS  — a plain remote call;
2. COD — downloading a codec on demand and playing locally;
3. REV — shipping a computation to the fast server;
4. MA  — sending an agent to run an errand and come home.

Run: ``python examples/quickstart.py``
"""

from repro import World, mutual_trust, standard_host
from repro.lmu import CodeRepository, code_unit
from repro.net import GPRS, LAN, Position


def build_world():
    world = World(seed=7)

    repository = CodeRepository()

    def codec_factory():
        def decode(ctx, track):
            ctx.charge(5_000)
            return f"playing {track} (ogg)"

        return decode

    repository.publish(
        code_unit("codec-ogg", "1.0.0", codec_factory, 150_000)
    )

    phone = standard_host(
        world, "phone", Position(0, 0), [GPRS], cpu_speed=0.2
    )
    server = standard_host(
        world,
        "server",
        Position(0, 0),
        [LAN],
        fixed=True,
        cpu_speed=2.0,
        repository=repository,
    )
    mutual_trust(phone, server)
    phone.node.interface("gprs").attach()

    server.register_service(
        "weather", lambda args, host: (f"sunny in {args}", 96)
    )
    return world, phone, server


def crunch_factory():
    def crunch(ctx, n):
        ctx.charge(float(n))
        return f"crunched {n} units"

    return crunch


class ErrandAgent:
    """Declared here to show how little an agent needs."""


def main():
    world, phone, server = build_world()

    from repro import Agent

    class Errand(Agent):
        # Mobility is weak: on_arrival restarts at every host, so the
        # agent tracks its progress in state.
        def on_arrival(self, context):
            if "answer" not in self.state:
                if context.host_id != "server":
                    yield from context.migrate("server")
                answer = yield from context.invoke_local("weather", "london")
                self.state["answer"] = answer
            if context.host_id != self.state["home"]:
                yield from context.migrate(str(self.state["home"]))

    def app():
        # 1. Client/Server
        weather = yield from phone.component("cs").call(
            "server", "weather", "london"
        )
        print(f"[CS ] t={world.now:7.2f}s  {weather}")

        # 2. Code On Demand
        yield from phone.component("cod").ensure(["codec-ogg"], "server")
        codec = phone.codebase.touch("codec-ogg")
        outcome = phone.run_guest(codec.instantiate(), "phone", "anthem.ogg")
        yield from phone.execute(outcome.work_used)
        print(f"[COD] t={world.now:7.2f}s  {outcome.value}")

        # 3. Remote EValuation
        phone.codebase.install(
            code_unit("crunch", "1.0.0", crunch_factory, 30_000)
        )
        result = yield from phone.component("rev").evaluate(
            "server", ["crunch"], args=(5_000_000,)
        )
        print(f"[REV] t={world.now:7.2f}s  {result}")

        # 4. Mobile Agent
        runtime = phone.component("agents")
        agent_id = runtime.launch(Errand())
        final = yield runtime.completion(agent_id)
        print(
            f"[MA ] t={world.now:7.2f}s  agent {final['outcome']}: "
            f"{final['answer']} (hops={final['hops']})"
        )

    process = world.env.process(app())
    world.run(until=process)

    costs = phone.node.costs
    print(
        f"\nphone paid {costs.money:.3f} units for "
        f"{costs.wireless_bytes():,} wireless bytes"
    )


if __name__ == "__main__":
    main()
