#!/usr/bin/env python
"""Design-time paradigm assessment for three application archetypes.

The paper closes by proposing a design methodology for choosing a
mobile-code paradigm per context.  This example runs that assessment
programmatically for three archetypal tasks and prints the decision
tables a designer would consult.

Run: ``python examples/design_assessment.py``
"""

from repro.core import CostWeights, TaskProfile, assess

ARCHETYPES = {
    "news ticker (one small lookup, repeated rarely)": TaskProfile(
        interactions=1,
        request_bytes=128,
        reply_bytes=1_024,
        code_bytes=30_000,
        result_bytes=256,
        work_units=2_000,
        expected_reuses=1,
    ),
    "photo pipeline (chatty bulk processing)": TaskProfile(
        interactions=120,
        request_bytes=512,
        reply_bytes=8_192,
        code_bytes=25_000,
        result_bytes=1_024,
        work_units=40_000,
        expected_reuses=1,
    ),
    "dictionary (capability used daily for months)": TaskProfile(
        interactions=3,
        request_bytes=64,
        reply_bytes=512,
        code_bytes=150_000,
        result_bytes=128,
        work_units=1_000,
        expected_reuses=300,
    ),
}


def main():
    for title, profile in ARCHETYPES.items():
        report = assess(profile)
        print(f"\n### {title}\n")
        print(report.render())
        unanimous = report.unanimous()
        if unanimous:
            print(f"-> {unanimous.upper()} wins in every context.")
        else:
            winners = report.winner_by_context()
            print("-> context-dependent:", ", ".join(
                f"{context}: {paradigm}" for context, paradigm in winners.items()
            ))

    print("\n### same dictionary task, but the user is broke (money-only)\n")
    cheap = assess(
        ARCHETYPES["dictionary (capability used daily for months)"],
        weights=CostWeights(time=0.0, money=1.0),
    )
    print(cheap.render())


if __name__ == "__main__":
    main()
