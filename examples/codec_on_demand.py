#!/usr/bin/env python
"""Scenario: a storage-starved PDA plays ten audio formats via COD.

The device's quota holds only a few codecs at a time; COD fetches each
codec when first needed and the LRU policy silently evicts cold ones.
Contrast: preinstalling the whole catalogue simply does not fit.

Run: ``python examples/codec_on_demand.py``
"""

from repro import World, mutual_trust, standard_host
from repro.apps import (
    CODEC_CATALOGUE,
    MediaPlayer,
    build_codec_repository,
    preinstall_all_codecs,
)
from repro.errors import QuotaExceeded
from repro.net import GPRS, LAN, Position
from repro.workloads import zipf_indices

QUOTA = 450_000  # bytes: DSP library + roughly two codecs


def main():
    world = World(seed=17)
    repository = build_codec_repository()
    pda = standard_host(
        world, "pda", Position(0, 0), [GPRS], cpu_speed=0.2, quota_bytes=QUOTA
    )
    store = standard_host(
        world, "store", Position(0, 0), [LAN], fixed=True, repository=repository
    )
    mutual_trust(pda, store)
    pda.node.interface("gprs").attach()

    print(f"catalogue: {repository.total_bytes():,}B; device quota: {QUOTA:,}B")
    # A static install has no eviction to lean on: it simply does not fit.
    eviction = pda.codebase.eviction
    pda.codebase.eviction = None
    try:
        preinstall_all_codecs(pda, repository)
    except QuotaExceeded as error:
        print(f"preinstall-everything fails: {error}\n")
    pda.codebase.eviction = eviction
    # Clean up whatever partially installed.
    for name in list(pda.codebase.inventory()):
        pda.codebase.uninstall(name)

    player = MediaPlayer(pda, "store")
    formats = sorted(CODEC_CATALOGUE)
    rng = world.streams.stream("playlist")
    playlist = [formats[i] for i in zipf_indices(rng, len(formats), 25)]

    def listen():
        for track_number, format_name in enumerate(playlist):
            record = yield from player.play(format_name, f"track-{track_number}")
            marker = "downloaded" if record.outcome == "miss" else "cached   "
            print(
                f"t={world.now:8.2f}s  {format_name:>6}  {marker}  "
                f"({record.time_to_play_s:6.2f}s to play, "
                f"storage {record.storage_used_after:,}B)"
            )

    process = world.env.process(listen())
    world.run(until=process)

    print(
        f"\nplayed {len(player.history)} tracks across "
        f"{len(set(playlist))} formats on a {QUOTA:,}B quota"
    )
    print(
        f"miss rate {player.miss_rate:.0%}, "
        f"evictions {pda.codebase.evictions}, "
        f"wireless bytes {pda.node.costs.wireless_bytes():,}, "
        f"tariff paid {pda.node.costs.money:.2f}"
    )


if __name__ == "__main__":
    main()
