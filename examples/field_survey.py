#!/usr/bin/env python
"""Scenario: a field survey with no infrastructure (the tutorial, live).

Four surveyors with PDAs collect readings across a site, share them
through transiently federated tuple spaces, queue uploads in an outbox
that flushes whenever the gate hotspot is in reach, and message each
other with store-carry-forward agents.  See docs/TUTORIAL.md for the
narrated version.

Run: ``python examples/field_survey.py``
"""

from repro import World, mutual_trust
from repro.apps import DeliveryLog, send_via_agent
from repro.core import HandoverManager, Outbox, pda_host, server_host
from repro.net import Area, Position, RandomWaypoint, WIFI_INFRA
from repro.tuplespace import ANY, LimeSpace

SITE = Area(400.0, 400.0)
SHIFT = 600.0  # seconds of survey work


def main():
    world = World(seed=61)
    surveyors = [
        pda_host(world, f"surveyor{i}", Position(20.0 + 30.0 * i, 30.0))
        for i in range(4)
    ]
    hq = server_host(world, "hq", Position(0.0, 0.0))
    gate = server_host(
        world, "gate", Position(10.0, 10.0), technologies=[WIFI_INFRA]
    )
    mutual_trust(hq, gate, *surveyors)
    for surveyor in surveyors:
        surveyor.add_component(LimeSpace())
        surveyor.add_component(Outbox(flush_interval=2.0))
        surveyor.node.interface("802.11b-infra").attach()
        HandoverManager(surveyor, "hq", interval=2.0)
    uploads = []
    hq.register_service(
        "upload", lambda args, host: (uploads.append(args) or "ack", 16)
    )

    RandomWaypoint(
        world.env,
        [s.node for s in surveyors],
        SITE,
        world.streams,
        speed_range=(0.5, 1.5),
        pause_range=(5.0, 20.0),
    )

    def work(surveyor, index):
        rng = world.streams.stream(f"survey.{surveyor.id}")
        for sample in range(6):
            yield world.env.timeout(rng.uniform(30.0, 90.0))
            reading = ("reading", surveyor.id, sample, round(rng.uniform(15, 30), 1))
            surveyor.component("lime").out(reading)
            surveyor.component("outbox").call_eventually(
                "hq", "upload", reading, ttl=SHIFT
            )

    for index, surveyor in enumerate(surveyors):
        world.env.process(work(surveyor, index))

    # Surveyor 0 tells surveyor 3 to come back via an agent.
    log = DeliveryLog(surveyors[3])
    send_via_agent(surveyors[0], "surveyor3", "return to gate", ttl=SHIFT)

    world.run(until=SHIFT)
    print("-- end of shift: everyone walks back to the gate --")
    for surveyor in surveyors:
        surveyor.node.move_to(Position(15.0, 15.0))
    world.run(until=SHIFT + 120.0)

    print(f"uploads reaching HQ : {len(uploads)} / 24 queued")
    shared = []

    def peek():
        readings = yield from surveyors[1].component("lime").federated_rd_all(
            ("reading", ANY, ANY, ANY)
        )
        shared.extend(readings)

    process = world.env.process(peek())
    world.run(until=process)
    print(f"readings visible to surveyor1 right now: {len(shared)}")
    message = [payload for _v, payload, _t in log.received]
    print(f"agent message to surveyor3: {message or 'still in transit'}")
    summary = world.summary()
    print(
        f"fleet traffic: {summary['fleet.bytes_sent']:,.0f}B sent, "
        f"money spent: {summary['fleet.money']:.3f} "
        "(all free links)"
    )
    for surveyor in surveyors:
        print(
            f"  {surveyor.id}: battery {surveyor.battery.fraction:.0%}, "
            f"outbox pending {surveyor.component('outbox').pending}"
        )


if __name__ == "__main__":
    main()
