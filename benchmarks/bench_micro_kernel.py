"""Microbenchmarks — raw throughput of the substrate layers.

Unlike E1–E10 (simulated-time experiments), these measure *wall-clock*
performance of the implementation itself: kernel event throughput,
transport message rate, CS round trips, and agent migrations per real
second.  They exist so a regression in the simulator's own speed is
caught, and to document the scale the harness supports (the laptop-
scale claim of the reproduction).
"""

from __future__ import annotations

from bisect import insort
from time import perf_counter

from repro.core import Agent, World, mutual_trust, standard_host
from repro.net import Message, Position, WIFI_ADHOC
from repro.obs import SpanTracer
from repro.sim import AllOf, AnyOf, Environment, Event
from repro.sim.metrics import Histogram

from _common import gate_against_baseline, instrument, write_report, write_report_data


def test_kernel_event_throughput(benchmark):
    """Schedule-and-run 10k timeout events."""

    def run_events():
        env = Environment()

        def ticker(env):
            for _ in range(10_000):
                yield env.timeout(1.0)

        env.process(ticker(env))
        env.run()
        return env.now

    result = benchmark(run_events)
    assert result == 10_000.0


def test_kernel_process_churn(benchmark):
    """Spawn 2k short-lived processes."""

    def run_processes():
        env = Environment()

        def worker(env, n):
            yield env.timeout(float(n % 7) + 0.1)
            return n

        for n in range(2_000):
            env.process(worker(env, n))
        env.run()
        return True

    assert benchmark(run_processes)


def _message_world():
    world = World(seed=1)
    world.transport._rng.random = lambda: 0.999
    a = standard_host(world, "a", Position(0, 0), [WIFI_ADHOC])
    b = standard_host(world, "b", Position(10, 0), [WIFI_ADHOC])
    mutual_trust(a, b)
    return world, a, b


def test_transport_message_rate(benchmark):
    """Push 500 small messages through the transport end to end."""

    def run_messages():
        world, a, b = _message_world()

        def go():
            for index in range(500):
                yield world.transport.send(
                    Message("a", "b", "tick", size_bytes=64)
                )

        process = world.env.process(go())
        world.run(until=process)
        return world.metrics.counter("net.messages_delivered").value

    delivered = benchmark(run_messages)
    assert delivered == 500


def test_cs_roundtrip_rate(benchmark):
    """200 full CS request/reply cycles through the middleware."""

    def run_calls():
        world, a, b = _message_world()
        b.register_service("echo", lambda args, host: (args, 32))

        def go():
            for index in range(200):
                yield from a.component("cs").call("b", "echo", index)

        process = world.env.process(go())
        world.run(until=process)
        return world.metrics.counter("cs.served").value

    assert benchmark(run_calls) == 200


class _PingPong(Agent):
    code_size = 2_000

    def on_arrival(self, context):
        bounces = int(self.state.get("bounces", 0))
        if bounces <= 0:
            yield from context.sleep(0)
            return
        self.state["bounces"] = bounces - 1
        target = "b" if context.host_id == "a" else "a"
        yield from context.migrate(target)


def test_agent_migration_rate(benchmark):
    """An agent bouncing 50 times between two hosts (signed transfers)."""

    def run_agent():
        world, a, b = _message_world()
        runtime = a.component("agents")
        agent_id = runtime.launch(_PingPong(), bounces=50)
        world.run(until=600.0)
        return world.metrics.counter("agents.migrations").value

    migrations = benchmark(run_agent)
    assert migrations == 50


def test_histogram_observe_scaling(benchmark):
    """Append-only observe must beat insort-per-observe at 100k.

    Guards the O(1) Histogram.observe: the old implementation kept the
    sample list sorted with ``insort`` on every observation, which is
    O(n) per sample and quadratic over a run.  The >=10x floor lives in
    ``benchmarks/baselines/micro_kernel_hist.json``.
    """
    count = 100_000
    # Deterministic pseudo-random values (Knuth multiplicative hash).
    values = [((i * 2654435761) % 1000003) / 1000.0 for i in range(count)]

    def lazy():
        histogram = Histogram("bench")
        for value in values:
            histogram.observe(value)
        return histogram.quantile(0.95)

    def insort_reference():
        ordered = []
        for value in values:
            insort(ordered, value)
        return ordered[int(0.95 * (len(ordered) - 1))]

    started = perf_counter()
    lazy()
    lazy_seconds = perf_counter() - started
    started = perf_counter()
    insort_reference()
    insort_seconds = perf_counter() - started
    speedup = insort_seconds / lazy_seconds
    print(f"\nhistogram observe: lazy {lazy_seconds:.3f}s vs "
          f"insort {insort_seconds:.3f}s ({speedup:.1f}x)")
    path = write_report_data(
        "micro_kernel_hist",
        metrics={
            "samples": float(count),
            "lazy_seconds": lazy_seconds,
            "insort_seconds": insort_seconds,
            "speedup": speedup,
        },
    )
    gate_against_baseline("micro_kernel_hist", path)
    benchmark(lazy)


def test_disabled_tracing_overhead(benchmark):
    """Disabled spans must cost <5% of kernel event processing.

    Times 100k start/finish pairs on a disabled tracer against 10k
    kernel timeout events (the event-throughput workload above, which
    runs with tracing off).  A lenient 2x margin on the 5% target keeps
    the guard flake-resistant on loaded machines; the 0.10 ceiling is
    the ``micro_kernel_tracing`` baseline document.
    """
    tracer = SpanTracer(now=lambda: 0.0, enabled=False)

    def disabled_spans():
        for _ in range(100_000):
            span = tracer.start("bench", "micro")
            tracer.finish(span)

    def kernel_events():
        env = Environment()

        def ticker(env):
            for _ in range(10_000):
                yield env.timeout(1.0)

        env.process(ticker(env))
        env.run()

    started = perf_counter()
    disabled_spans()
    span_seconds = perf_counter() - started
    started = perf_counter()
    kernel_events()
    kernel_seconds = perf_counter() - started
    # Per-operation: one disabled span pair vs one kernel event.
    per_span = span_seconds / 100_000
    per_event = kernel_seconds / 10_000
    ratio = per_span / per_event
    print(f"\ndisabled span pair {per_span * 1e9:.0f}ns vs kernel event "
          f"{per_event * 1e9:.0f}ns ({ratio * 100:.1f}%)")
    path = write_report_data(
        "micro_kernel_tracing",
        metrics={
            "span_pair_nanos": per_span * 1e9,
            "kernel_event_nanos": per_event * 1e9,
            "overhead_ratio": ratio,
        },
    )
    gate_against_baseline("micro_kernel_tracing", path)
    benchmark(disabled_spans)


def test_kernel_objects_stay_slotted(benchmark):
    """Hot kernel classes must stay ``__dict__``-free and condition
    churn cheap.

    Guards the slots micro-opt: events are the kernel's unit of
    allocation, so a subclass quietly dropping its ``__slots__``
    declaration re-grows a per-instance dict (and the allocation cost)
    without failing any functional test.  Also pins the shared
    module-level condition evaluators — one function object for all
    AnyOf/AllOf instances instead of a fresh closure each.
    """
    env = Environment()

    def nap(env):
        yield env.timeout(1.0)

    samples = [
        Event(env),
        env.timeout(0.0),
        env.process(nap(env)),
        AnyOf(env, [Event(env), Event(env)]),
        AllOf(env, [Event(env), Event(env)]),
    ]
    for instance in samples:
        assert not hasattr(instance, "__dict__"), type(instance).__name__
    assert AnyOf(env, [])._evaluate is AnyOf(env, [])._evaluate
    assert AllOf(env, [])._evaluate is AllOf(env, [])._evaluate

    def condition_churn():
        env = Environment()

        def waiter(env):
            for _ in range(2_000):
                events = (env.timeout(0.0), env.timeout(1.0))
                yield AnyOf(env, events)
                yield AllOf(env, events)

        env.process(waiter(env))
        env.run()
        return env.now

    assert benchmark(condition_churn) == 2_000.0


def test_micro_report(benchmark):
    """The CS round-trip workload, instrumented, as a run report."""

    def run_instrumented():
        world, a, b = _message_world()
        profiler = instrument(world, series_cadence=1.0)
        b.register_service("echo", lambda args, host: (args, 32))

        def go():
            for index in range(50):
                yield from a.component("cs").call("b", "echo", index)

        process = world.env.process(go())
        world.run(until=process)
        world.run(until=world.now + 60.0)
        return world, profiler

    world, profiler = benchmark.pedantic(
        run_instrumented, rounds=1, iterations=1
    )
    write_report(
        "micro_kernel", world, profiler, params={"workload": "cs-roundtrips"}
    )
    assert world.metrics.counter("cs.served").value == 50
