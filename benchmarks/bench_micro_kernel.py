"""Microbenchmarks — raw throughput of the substrate layers.

Unlike E1–E10 (simulated-time experiments), these measure *wall-clock*
performance of the implementation itself: kernel event throughput,
transport message rate, CS round trips, and agent migrations per real
second.  They exist so a regression in the simulator's own speed is
caught, and to document the scale the harness supports (the laptop-
scale claim of the reproduction).
"""

from __future__ import annotations

from repro.core import Agent, World, mutual_trust, standard_host
from repro.net import Message, Position, WIFI_ADHOC
from repro.sim import Environment


def test_kernel_event_throughput(benchmark):
    """Schedule-and-run 10k timeout events."""

    def run_events():
        env = Environment()

        def ticker(env):
            for _ in range(10_000):
                yield env.timeout(1.0)

        env.process(ticker(env))
        env.run()
        return env.now

    result = benchmark(run_events)
    assert result == 10_000.0


def test_kernel_process_churn(benchmark):
    """Spawn 2k short-lived processes."""

    def run_processes():
        env = Environment()

        def worker(env, n):
            yield env.timeout(float(n % 7) + 0.1)
            return n

        for n in range(2_000):
            env.process(worker(env, n))
        env.run()
        return True

    assert benchmark(run_processes)


def _message_world():
    world = World(seed=1)
    world.transport._rng.random = lambda: 0.999
    a = standard_host(world, "a", Position(0, 0), [WIFI_ADHOC])
    b = standard_host(world, "b", Position(10, 0), [WIFI_ADHOC])
    mutual_trust(a, b)
    return world, a, b


def test_transport_message_rate(benchmark):
    """Push 500 small messages through the transport end to end."""

    def run_messages():
        world, a, b = _message_world()

        def go():
            for index in range(500):
                yield world.transport.send(
                    Message("a", "b", "tick", size_bytes=64)
                )

        process = world.env.process(go())
        world.run(until=process)
        return world.metrics.counter("net.messages_delivered").value

    delivered = benchmark(run_messages)
    assert delivered == 500


def test_cs_roundtrip_rate(benchmark):
    """200 full CS request/reply cycles through the middleware."""

    def run_calls():
        world, a, b = _message_world()
        b.register_service("echo", lambda args, host: (args, 32))

        def go():
            for index in range(200):
                yield from a.component("cs").call("b", "echo", index)

        process = world.env.process(go())
        world.run(until=process)
        return world.metrics.counter("cs.served").value

    assert benchmark(run_calls) == 200


class _PingPong(Agent):
    code_size = 2_000

    def on_arrival(self, context):
        bounces = int(self.state.get("bounces", 0))
        if bounces <= 0:
            yield from context.sleep(0)
            return
        self.state["bounces"] = bounces - 1
        target = "b" if context.host_id == "a" else "a"
        yield from context.migrate(target)


def test_agent_migration_rate(benchmark):
    """An agent bouncing 50 times between two hosts (signed transfers)."""

    def run_agent():
        world, a, b = _message_world()
        runtime = a.component("agents")
        agent_id = runtime.launch(_PingPong(), bounces=50)
        world.run(until=600.0)
        return world.metrics.counter("agents.migrations").value

    migrations = benchmark(run_agent)
    assert migrations == 50
