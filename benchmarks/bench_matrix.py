"""Matrix benchmark — the parallel orchestrator, gated and replayed.

Runs the chaos scenario across a seed sweep on a worker pool with
strict replay armed, and enforces the run-matrix contract end to end:

* **Correctness**: every job completes and every strict in-process
  replay matches the pooled report byte for byte
  (``runner.failures == 0``, ``runner.replay_mismatches == 0`` — both
  gated by the committed baseline, not just asserted here);
* **Merge determinism**: the merged matrix report from the pooled run
  is byte-identical to a fresh serial (``workers=1``) execution of the
  same spec — worker count and completion order leave no fingerprint;
* **Recovery floors across seeds**: the cross-job aggregates must hold
  the chaos completion floor for *every* seed
  (``agg.chaos.completion_rate.min``), which is strictly stronger than
  the single-seed chaos gate;
* **Throughput (informational)**: the pooled wall time is compared to
  a measured single-job wall to report an effective speedup.  The
  figure lands in the trajectory log but is deliberately not gated —
  CI containers routinely pin to one core, where a spawn pool can't
  beat serial; the determinism and recovery gates above are the
  load-bearing ones.

``--quick`` shrinks the sweep (4 seeds on 2 workers, vs 8 on 4) and
gates against ``baselines/matrix_quick.json``.
"""

from __future__ import annotations

from time import perf_counter

from repro.runner import RunMatrix, report_bytes, run_matrix

from _common import (
    append_trajectory,
    gate_against_baseline,
    quick,
    write_report_document,
)


def _params():
    if quick():
        return dict(clients=3, servers=2, requests_per_client=4)
    return dict(clients=4, servers=2, requests_per_client=6)


def _spec() -> RunMatrix:
    seeds = tuple(range(4 if quick() else 8))
    return RunMatrix(
        name="matrix", scenarios=("chaos",), seeds=seeds, params=_params()
    )


def test_matrix_gate():
    matrix = _spec()
    workers = 2 if quick() else 4

    # Single-job wall reference, measured in-process (no pool).
    single = RunMatrix(
        name="single",
        scenarios=("chaos",),
        seeds=matrix.seeds[:1],
        params=dict(matrix.params),
    )
    started = perf_counter()
    single_result = run_matrix(single, workers=1)
    single_wall = perf_counter() - started
    assert single_result.ok

    pooled = run_matrix(matrix, workers=workers, strict=True)
    assert pooled.ok, (
        f"matrix run failed: failures={pooled.failures} "
        f"replay_mismatches={pooled.replay_mismatches}"
    )
    assert pooled.replayed == len(matrix), (
        "strict mode must replay every completed job in-process"
    )

    # The merged document is a pure function of the job reports: a
    # serial execution of the same spec must reproduce it byte for
    # byte, whatever order the pool finished jobs in.
    serial = run_matrix(matrix, workers=1)
    assert report_bytes(serial.report) == report_bytes(pooled.report), (
        "merged matrix report depends on worker count or completion order"
    )

    path = write_report_document("matrix", pooled.report)
    diff = gate_against_baseline("matrix")

    # Wall-clock figures are trajectory-only (see module docstring).
    speedup = (single_wall * len(matrix)) / max(pooled.wall_seconds, 1e-9)
    append_trajectory(
        "matrix.wall",
        {
            "matrix.jobs": float(len(matrix)),
            "matrix.workers": float(pooled.workers),
            "matrix.wall_seconds": pooled.wall_seconds,
            "matrix.single_job_seconds": single_wall,
            "matrix.effective_speedup": speedup,
        },
        params={"quick": quick()},
    )
    completion_min = pooled.report["metrics"]["agg.chaos.completion_rate.min"]
    print(
        f"\nmatrix: {len(matrix)} chaos jobs on {pooled.workers} workers "
        f"in {pooled.wall_seconds:.2f}s (single job {single_wall * 1000:.0f}ms, "
        f"effective speedup {speedup:.2f}x); worst-seed completion "
        f"{completion_min:.0%}; {pooled.replayed} strict replays, 0 "
        f"mismatches; {len(diff.deltas)} gated metrics -> {path}"
    )
