"""E9 / Figure 5 — data sharing: Lime tuple space vs shipping code (REV).

Three sensor hosts each hold ``R`` readings; a consumer in ad-hoc range
wants the per-host mean.  Two ways:

* Lime — federated ``rd_all`` copies every raw tuple to the consumer,
  which aggregates locally (the "flat tuple space" way);
* REV — ship a small aggregation unit to each sensor host; only the
  per-host summaries come back.

Expected shape: Lime's consumer bytes grow linearly in ``R``; REV's
stay flat (code out, summary back), with a crossover at small ``R``.
"""

from __future__ import annotations

from repro.analysis import crossover, render_table
from repro.core import World, mutual_trust, standard_host
from repro.lmu import code_unit
from repro.net import Position, WIFI_ADHOC
from repro.tuplespace import ANY, LimeSpace

from _common import instrument, once, run_process, write_report, write_result

READING_COUNTS = [10, 50, 200, 500]
SENSORS = 3
READING_PAYLOAD = "x" * 80  # ~100B per tuple with fields


def build(seed=909):
    world = World(seed=seed)
    world.transport._rng.random = lambda: 0.999
    consumer = standard_host(world, "consumer", Position(0, 0), [WIFI_ADHOC])
    consumer.add_component(LimeSpace(scan_interval=0.5))
    sensors = []
    for index in range(SENSORS):
        sensor = standard_host(
            world, f"sensor{index}", Position(20 + index * 10, 0), [WIFI_ADHOC]
        )
        sensor.add_component(LimeSpace(scan_interval=0.5))
        sensors.append(sensor)
    mutual_trust(consumer, *sensors)
    world.run(until=2.0)  # let engagement happen
    return world, consumer, sensors


def fill_readings(world, sensors, count):
    for sensor in sensors:
        lime = sensor.component("lime")
        rng = world.streams.stream(f"e9.{sensor.id}")
        for index in range(count):
            lime.out(
                ("reading", sensor.id, index, rng.uniform(15.0, 25.0), READING_PAYLOAD)
            )


def run_lime(count):
    world, consumer, sensors = build()
    fill_readings(world, sensors, count)
    base = consumer.node.costs.total_bytes

    def go():
        tuples = yield from consumer.component("lime").federated_rd_all(
            ("reading", ANY, ANY, ANY, ANY), timeout=30.0
        )
        by_host = {}
        for _tag, host_id, _index, value, _payload in tuples:
            by_host.setdefault(host_id, []).append(value)
        return {
            host_id: sum(values) / len(values)
            for host_id, values in by_host.items()
        }

    means = run_process(world, go())
    assert len(means) == SENSORS
    return consumer.node.costs.total_bytes - base, world.now


def aggregation_unit():
    def factory():
        def aggregate(ctx):
            # The aggregation runs against the host's lime space, which
            # the sensor hosts expose to guests as a service.
            space = ctx.service("lime_space")
            tuples = space.rd_all(("reading", ANY, ANY, ANY, ANY))
            ctx.charge(50 * max(1, len(tuples)))
            values = [value for _t, _h, _i, value, _p in tuples]
            return {
                "host": ctx.host_id,
                "count": len(values),
                "mean": sum(values) / len(values) if values else 0.0,
            }

        return aggregate

    return code_unit("aggregate", "1.0.0", factory, 8_000)


def run_rev(count, observe=False):
    world, consumer, sensors = build()
    profiler = instrument(world) if observe else None
    fill_readings(world, sensors, count)
    # Expose each sensor's lime space to REV guests.
    for sensor in sensors:
        space = sensor.component("lime").space
        original = sensor.execution_context

        def patched(principal, services=None, _space=space, _original=original):
            services = dict(services or {})
            services["lime_space"] = _space
            return _original(principal, services)

        sensor.execution_context = patched
    consumer.codebase.install(aggregation_unit())
    base = consumer.node.costs.total_bytes

    def go():
        means = {}
        for sensor in sensors:
            summary = yield from consumer.component("rev").evaluate(
                sensor.id, ["aggregate"], timeout=60.0
            )
            means[summary["host"]] = summary["mean"]
        return means

    means = run_process(world, go())
    assert len(means) == SENSORS
    if observe:
        return world, profiler
    return consumer.node.costs.total_bytes - base, world.now


def run_experiment():
    rows = []
    lime_series = []
    rev_series = []
    for count in READING_COUNTS:
        lime_bytes, lime_time = run_lime(count)
        rev_bytes, rev_time = run_rev(count)
        lime_series.append((count, lime_bytes))
        rev_series.append((count, rev_bytes))
        rows.append([count, lime_bytes, rev_bytes, lime_time, rev_time])
    return rows, lime_series, rev_series


def test_e9_lime(benchmark):
    rows, lime_series, rev_series = once(benchmark, run_experiment)
    table = render_table(
        "E9 / Figure 5 — consumer radio bytes to aggregate R readings from 3 hosts",
        ["R/host", "Lime B", "REV B", "Lime s", "REV s"],
        rows,
        note="~100B tuples; REV ships an 8kB aggregation unit per host",
    )
    write_result("e9_lime", table)
    world, profiler = run_rev(READING_COUNTS[0], observe=True)
    write_report(
        "e9_lime", world, profiler,
        params={"readings": READING_COUNTS[0], "sensors": SENSORS},
    )

    # Lime grows ~linearly with R; REV stays flat.
    assert lime_series[-1][1] > 10 * lime_series[0][1]
    assert rev_series[-1][1] < 2 * rev_series[0][1]
    # REV wins for large R, with a crossover somewhere in the sweep.
    assert rev_series[-1][1] < lime_series[-1][1]
    assert crossover(lime_series, rev_series) is not None
