"""Macrobenchmark — city-scale routing on 1k..10k-node worlds.

The scaling guard for the city-scale fabric (implicit backbone clique,
dirty-set invalidation, hierarchical cell routing — see
docs/PERFORMANCE.md, "City-scale routing").  Each sweep round replays
the traffic shape a paradigm-heavy simulation produces: a handful of
nodes move, a batch of multi-hop paths is planned between distinct
endpoints, and a sample of nodes scans its neighbourhood.

Two configurations run the same script:

* **legacy** (1k nodes): a flat ``RoutingTable(repair=False)`` —
  the pre-dirty-log behaviour, where any epoch bump discards every
  memoised tree and each re-plan pays a full-component BFS;
* **hierarchical** (1k → 10k nodes): :class:`HierarchicalRouter`
  over the dirty-cell journal.

The gated metric is ``scaling_speedup`` = legacy-1k round time /
hierarchical round time at the largest size: a floor of 1.0 means
"a 10k-node round costs no more than the old code spent on 1k nodes"
(>= 10x effective scaling).  The full size curve is written to the
report/trajectory for trend tracking but deliberately kept out of the
baseline (absolute wall-clock varies across machines; the ratio is
the invariant).
"""

from __future__ import annotations

import math
import random
from time import perf_counter

from repro.net import (
    HierarchicalRouter,
    Network,
    NetworkNode,
    Position,
    RoutingTable,
    WIFI_ADHOC,
)
from repro.sim import Environment, MetricsRegistry

from _common import gate_against_baseline, quick, write_report_data, write_result

#: Grid pitch between nodes; below WIFI range (100 m) so the world is a
#: connected mesh with ~8 radio neighbours per node.
SPACING_M = 75.0
MOVERS_PER_ROUND = 20
PATHS_PER_ROUND = 30
SCANS_PER_ROUND = 50

#: Sample cap for the benchmark's metric registry: gauges/histograms
#: decimate (deterministic ordinal-stride thinning) instead of holding
#: one float per observation across the whole sweep.
MAX_RETAINED = 64


def sizes():
    return [1000] if quick() else [1000, 2500, 5000, 10000]


def rounds_per_size():
    return 2 if quick() else 3


def _build_world(count):
    env = Environment()
    network = Network(env)
    side = int(math.ceil(math.sqrt(count)))
    for index in range(count):
        network.add_node(
            NetworkNode(
                env,
                f"n{index}",
                Position(SPACING_M * (index % side), SPACING_M * (index // side)),
                technologies=[WIFI_ADHOC],
            )
        )
    return network


def _script(count, rounds):
    """Deterministic rounds of (moves, path queries, scan targets).

    Path endpoints are drawn once per world size and repeated every
    round: paradigm traffic is request/reply between long-lived peers
    (clients keep invoking the same remote servers), so planners that
    remember answers across rounds are allowed to shine — and pay for
    a re-plan whenever a mover dirties one of their routes.  Movers
    and scan targets re-roll every round.
    """
    rng = random.Random(count)
    side = int(math.ceil(math.sqrt(count)))
    extent = SPACING_M * side
    sources = rng.sample(range(count), PATHS_PER_ROUND)
    pairs = [
        (f"n{source}", f"n{rng.randrange(count)}") for source in sources
    ]
    script = []
    for _round in range(rounds):
        moves = [
            (
                f"n{rng.randrange(count)}",
                Position(rng.uniform(0, extent), rng.uniform(0, extent)),
            )
            for _ in range(MOVERS_PER_ROUND)
        ]
        scans = [f"n{rng.randrange(count)}" for _ in range(SCANS_PER_ROUND)]
        script.append((moves, pairs, scans))
    return script


def _run_rounds(network, planner, script, warmup=1):
    """Replay the script; returns mean wall-clock seconds per timed
    round.  The first ``warmup`` rounds prime caches and are excluded
    from timing — both configurations get the identical treatment (it
    does not help the legacy table, which forgets everything on every
    epoch bump anyway)."""
    nodes = network.nodes
    started = perf_counter()
    for index, (moves, pairs, scans) in enumerate(script):
        if index == warmup:
            started = perf_counter()
        for node_id, position in moves:
            nodes[node_id].move_to(position)
        for source_id, target_id in pairs:
            planner.path(source_id, target_id)
        for node_id in scans:
            network.neighbors(nodes[node_id])
    return (perf_counter() - started) / (len(script) - warmup)


def test_city_scale_round_beats_legacy_1k(benchmark):
    """A hierarchical 10k-node round must cost <= a legacy 1k round.

    The floor lives in ``baselines/macro_net[_quick].json`` and is the
    shared report-diff gate; CI re-checks it via ``python -m repro
    compare --fail-on regress``.
    """
    rounds = rounds_per_size()
    base_size = sizes()[0]

    # Long benchmarks meter through a sample-capped registry: every
    # planner counter is per-source labeled, and unbounded histograms
    # decimate down to MAX_RETAINED samples instead of growing with the
    # sweep (both planners carry the identical metering overhead, so
    # the gated ratio is unaffected).
    registry = MetricsRegistry(max_samples=MAX_RETAINED)

    legacy_network = _build_world(base_size)
    legacy_table = RoutingTable(
        legacy_network, adhoc_only=True, repair=False, metrics=registry
    )
    legacy_round_s = _run_rounds(
        legacy_network, legacy_table, _script(base_size, rounds + 1)
    )

    curve = {}
    top_network = None
    top_planner = None
    for size in sizes():
        network = _build_world(size)
        planner = HierarchicalRouter(
            network, adhoc_only=True, metrics=registry
        )
        curve[size] = _run_rounds(network, planner, _script(size, rounds + 1))
        top_network, top_planner = network, planner

    top_size = sizes()[-1]
    scaling_speedup = legacy_round_s / curve[top_size]

    # Reachability spot-check at the final (post-mobility) topology:
    # the planner and the flat BFS must agree pair by pair.
    rng = random.Random(99)
    for _ in range(10):
        a = f"n{rng.randrange(top_size)}"
        b = f"n{rng.randrange(top_size)}"
        flat = top_network.shortest_path(a, b, adhoc_only=True)
        hier = top_planner.path(a, b)
        assert (hier is None) == (flat is None)
        if hier is not None and a != b:
            graph = top_network.adjacency(adhoc_only=True)
            for current, following in zip(hier, hier[1:]):
                assert following in graph[current]

    # Untimed replay: meter every path query of the largest world into a
    # capped histogram.  Well over MAX_RETAINED observations go in; the
    # decimated reservoir must keep the exact count/sum while retaining
    # at most the cap (plus fresh post-compaction arrivals).
    path_seconds = registry.histogram("macro.path_seconds")
    pairs = _script(top_size, 1)[0][1]
    for _replay in range(3 * MAX_RETAINED // PATHS_PER_ROUND + 1):
        for source_id, target_id in pairs:
            started = perf_counter()
            top_planner.path(source_id, target_id)
            path_seconds.observe(perf_counter() - started)
    assert path_seconds.observed > MAX_RETAINED
    assert path_seconds.count == path_seconds.observed, (
        "decimation lost the histogram's exact observation count"
    )
    assert path_seconds.retained <= MAX_RETAINED, (
        f"cap ignored: retained {path_seconds.retained} samples "
        f"(max_samples={MAX_RETAINED})"
    )

    lines = [
        f"city-scale routing ({rounds} rounds, {MOVERS_PER_ROUND} movers, "
        f"{PATHS_PER_ROUND} paths, {SCANS_PER_ROUND} scans per round)",
        f"  legacy flat table @ {base_size}: {legacy_round_s * 1000:.1f} ms/round",
    ]
    for size, seconds in curve.items():
        lines.append(
            f"  hierarchical     @ {size}: {seconds * 1000:.1f} ms/round"
        )
    lines.append(
        f"  scaling speedup (legacy {base_size} / hier {top_size}): "
        f"{scaling_speedup:.1f}x"
    )
    write_result("macro_net", "\n".join(lines))

    info = top_network.cache_info()
    metrics = {
        "rounds": float(rounds),
        "nodes_top": float(top_size),
        "legacy_round_seconds": legacy_round_s,
        "scaling_speedup": scaling_speedup,
        "topo.dirty_nodes": info["dirty_nodes"],
        "topo.moves_elided": info["moves_elided"],
        "topo.revalidations": info["revalidations"],
        "routing.hier.hits": float(top_planner.stats["hits"]),
        "routing.hier.misses": float(top_planner.stats["misses"]),
        "routing.hier.greedy": float(top_planner.stats["greedy"]),
        "routing.hier.corridor": float(top_planner.stats["corridor"]),
        "routing.hier.cell_corridor": float(top_planner.stats["cell_corridor"]),
        "routing.hier.flat_fallback": float(top_planner.stats["flat_fallback"]),
        # Decimated reservoir bookkeeping (neutral directions): exact
        # observation count vs. samples actually held under the cap.
        "macro.path_seconds.observed": float(path_seconds.observed),
        "macro.path_seconds.retained": float(path_seconds.retained),
        "obs.labels.series": registry.counter("obs.labels.series").value,
    }
    for size, seconds in curve.items():
        metrics[f"hier_round_seconds_{size}"] = seconds
    path = write_report_data(
        "macro_net", metrics=metrics, params={"quick": quick()}
    )
    gate_against_baseline("macro_net", path)
    benchmark.pedantic(
        lambda: _run_rounds(
            top_network, top_planner, _script(top_size, 1), warmup=0
        ),
        rounds=1,
        iterations=1,
    )
