"""Microbenchmark — what the shared invocation pipeline costs.

Every paradigm's client path now rides
:class:`repro.core.invocation.InvocationPipeline` (spans, uniform
metrics, retry plumbing, typed error unmarshalling).  This bench
measures that envelope's wall-clock price: the same CS request/reply
workload driven (a) through ``cs.call`` — the full pipeline — and
(b) as a hand-rolled ``host.request`` loop, the raw substrate a
pre-pipeline caller would have written.  The gated ``overhead_ratio``
(pipeline per-call time over direct per-call time) keeps the
convenience layer honest: it must stay a thin wrapper, not become the
bottleneck.

A second gate covers the pipeline's *trace analytics*: the same CS
workload run with spans on, analysed by :class:`repro.obs.TraceAnalysis`
— per-invocation queue/transit/service/retry attribution must be
bit-identical across same-seed runs, reconcile with the
``paradigm.cs.seconds`` histogram, and stay under the checked-in
``trace.*`` ceilings (sim-time values, so they are machine-independent
and gate at threshold 0).
"""

from __future__ import annotations

from time import perf_counter

from repro.core import World, mutual_trust, standard_host
from repro.net import Message, Position, WIFI_ADHOC
from repro.obs import RunReport, TraceAnalysis

from _common import (
    gate_against_baseline,
    quick,
    write_report_data,
    write_report_document,
)

CALLS = 60 if quick() else 300


def _world():
    world = World(seed=1)
    world.transport._rng.random = lambda: 0.999
    a = standard_host(world, "a", Position(0, 0), [WIFI_ADHOC])
    b = standard_host(world, "b", Position(10, 0), [WIFI_ADHOC])
    mutual_trust(a, b)
    b.register_service("echo", lambda args, host: (args, 32))
    return world, a, b


def _run_pipeline_calls():
    world, a, b = _world()

    def go():
        for index in range(CALLS):
            yield from a.component("cs").call("b", "echo", index)

    process = world.env.process(go())
    world.run(until=process)
    assert world.metrics.counter("paradigm.cs.served").value == CALLS


def _run_direct_calls():
    world, a, b = _world()

    def go():
        for index in range(CALLS):
            message = Message(
                source="a",
                destination="b",
                kind="cs.request",
                payload={"service": "echo", "args": index},
                size_bytes=64,
            )
            reply = yield from a.request(message, timeout=30.0)
            assert reply.payload == index

    process = world.env.process(go())
    world.run(until=process)


def test_invocation_pipeline_overhead(benchmark):
    """Pipeline CS calls vs the raw request/reply loop, gated."""
    # Warm once so import/alloc caches do not bill the first timing.
    _run_direct_calls()
    _run_pipeline_calls()

    started = perf_counter()
    _run_direct_calls()
    direct_seconds = perf_counter() - started
    started = perf_counter()
    _run_pipeline_calls()
    pipeline_seconds = perf_counter() - started

    direct_throughput = CALLS / direct_seconds
    pipeline_throughput = CALLS / pipeline_seconds
    overhead_ratio = pipeline_seconds / direct_seconds
    print(
        f"\ninvocation: direct {direct_throughput:.0f} calls/s vs pipeline "
        f"{pipeline_throughput:.0f} calls/s (x{overhead_ratio:.2f} wall)"
    )
    path = write_report_data(
        "micro_invocation",
        metrics={
            "calls": float(CALLS),
            "direct_throughput": direct_throughput,
            "pipeline_throughput": pipeline_throughput,
            "overhead_ratio": overhead_ratio,
        },
        params={"quick": quick()},
    )
    gate_against_baseline("micro_invocation", path)
    benchmark(_run_pipeline_calls)


def _run_traced_calls() -> RunReport:
    world, a, b = _world()
    world.tracer.enabled = True

    def go():
        for index in range(CALLS):
            yield from a.component("cs").call("b", "echo", index)

    process = world.env.process(go())
    world.run(until=process)
    return RunReport.capture(
        "micro_invocation_trace",
        world,
        params={"calls": CALLS, "quick": quick()},
        created_at=world.env.now,
    )


def test_invocation_trace_analytics_gate():
    """Same-seed trace analyses are bit-identical, reconcile, and gate."""
    first = _run_traced_calls()
    second = _run_traced_calls()
    first_trace = TraceAnalysis.from_report(first)
    second_trace = TraceAnalysis.from_report(second)
    # Message ids are process-global, so the raw span dumps differ
    # between the two runs — but every analysis metric is id-free
    # sim-time arithmetic and must match exactly.
    assert first_trace.metrics() == second_trace.metrics(), (
        "same-seed runs produced different trace analytics"
    )
    assert len(first_trace.invocations) == CALLS
    problems = first_trace.problems(first.metrics)
    assert not problems, (
        "trace attribution failed to reconcile:\n" + "\n".join(problems)
    )
    path = write_report_document("micro_invocation_trace", first.to_dict())
    diff = gate_against_baseline("micro_invocation_trace", path)
    metrics = first_trace.metrics()
    print(
        f"\ntrace: {CALLS} invocations, critical path p99 "
        f"{metrics['trace.critical_path.p99'] * 1000:.3f}ms; shares "
        f"queue {metrics['trace.queue_share']:.1%} / transit "
        f"{metrics['trace.transit_share']:.1%} / service "
        f"{metrics['trace.service_share']:.1%} "
        f"({len(diff.deltas)} gated metrics)"
    )
