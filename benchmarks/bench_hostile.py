"""Hostile-guest benchmark — containment under attack, gated.

Runs the :mod:`repro.faults.chaos` echo workload twice while the
standard hostile-guest plan (a quota-exhaustion loop, scratch-storage
bombs, and a service-flood confused deputy) attacks the servers, and
enforces four properties:

* **Containment**: every launched hostile guest is terminated by its
  strict :class:`~repro.security.QuotaGrant` with ``SandboxViolation``
  (``hostile.terminated == hostile.guests``) and nothing escapes the
  provider substrate (``hostile.escapes == 0``).
* **Service survival**: benign completion stays at or above the 95%
  floor while the attacks run — encoded with the other ceilings in
  ``benchmarks/baselines/hostile.json`` and checked by the shared
  ``gate_against_baseline`` diff (the same comparison CI re-runs as
  ``python -m repro compare --fail-on regress``).
* **Determinism**: two same-seed hostile runs produce bit-identical
  metrics and bit-identical trace analytics — a hostile guest's
  metered cost is a pure function of its grant.
* **Attribution**: the written report carries the attack cost in
  per-node labeled ``hostile.*`` / ``security.*`` families, with the
  strict provider's work clamped at exactly the grant.

``--quick`` shrinks the fleet and request count for CI smoke runs; the
floor document applies to both sizes.
"""

from __future__ import annotations

from repro.faults import HOSTILE_GRANT, run_hostile
from repro.obs import TraceAnalysis

from _common import gate_against_baseline, quick, write_report_document

SEED = 7


def _params():
    if quick():
        return dict(clients=2, servers=2, requests_per_client=4)
    return dict(clients=3, servers=2, requests_per_client=6)


def test_hostile_containment_gate():
    params = _params()
    first = run_hostile(seed=SEED, spans_enabled=True, **params)
    second = run_hostile(seed=SEED, spans_enabled=True, **params)

    # Determinism first: a nondeterministic hostile run is ungateable.
    assert first.summary == second.summary, (
        "same-seed hostile runs diverged — provider metering or the "
        "injector consumed nondeterministic state"
    )
    first_trace = TraceAnalysis.from_report(first.report)
    second_trace = TraceAnalysis.from_report(second.report)
    assert first_trace.metrics() == second_trace.metrics(), (
        "same-seed hostile runs produced different trace analytics"
    )

    # Containment invariants, before any gating.
    summary = first.summary
    guests = summary["hostile.guests"]
    assert guests >= 3.0, f"hostile plan launched only {guests:g} guests"
    assert summary["hostile.terminated"] == guests, (
        f"{summary['hostile.terminated']:g}/{guests:g} hostile guests "
        "terminated with SandboxViolation"
    )
    assert summary["hostile.escapes"] == 0.0, (
        f"{summary['hostile.escapes']:g} hostile guests escaped"
    )
    # The strict provider clamps the hungriest guest at exactly the
    # grant — overshoot here means post-hoc metering leaked in.
    assert (
        first.report["metrics"]["hostile.work_units.max"]
        == HOSTILE_GRANT.work_units
    )
    assert (
        summary["security.guest_service_calls"]
        == HOSTILE_GRANT.service_calls
    )

    path = write_report_document("hostile", first.report)
    diff = gate_against_baseline("hostile", report_path=path)
    print(
        f"\nhostile: {first.completed}/{first.requests} benign requests "
        f"completed ({first.completion_rate:.0%}) while {guests:g} hostile "
        f"guests ran; {summary['hostile.terminated']:g} terminated by "
        f"quota, {summary['hostile.escapes']:g} escapes, "
        f"{summary['security.sandbox_violations']:g} sandbox violations "
        f"({len(diff.deltas)} gated metrics)"
    )
