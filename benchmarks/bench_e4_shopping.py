"""E4 / Table 2 — shopping agent vs interactive browsing.

A handset compares prices across ``k`` web shops and buys the cheapest
offer, once by interactive CS browsing over the wireless link and once
by dispatching a shopping agent.  Both tariff models are exercised:
GPRS (per megabyte) and GSM dial-up (per minute, with the handset
attaching for the session).

Expected shape: the agent cuts wireless bytes, connection time, and
money by a factor that grows with ``k``.
"""

from __future__ import annotations

from repro.analysis import render_table
from repro.apps import make_vendor, shop_interactively, shop_with_agent
from repro.core import World, mutual_trust, standard_host
from repro.net import DIALUP, GPRS, LAN, Position

from _common import instrument, once, run_process, write_report, write_result

VENDOR_COUNTS = [2, 5, 8]


def build(tech, vendor_count, seed):
    world = World(seed=seed)
    world.transport._rng.random = lambda: 0.999
    handset = standard_host(
        world, "handset", Position(0, 0), [tech], cpu_speed=0.2
    )
    vendors = []
    for index in range(vendor_count):
        vendor = standard_host(
            world, f"shop{index}", Position(0, 0), [LAN], fixed=True
        )
        make_vendor(vendor, {"camera": 450.0 - 11.0 * index})
        vendors.append(vendor)
    mutual_trust(handset, *vendors)
    return world, handset, [vendor.id for vendor in vendors]


def run_session(tech, vendor_count, strategy, seed=404, observe=False):
    world, handset, vendor_ids = build(tech, vendor_count, seed)
    profiler = instrument(world) if observe else None

    def go():
        setup = handset.node.interface(tech.name).attach()
        yield world.env.timeout(setup)
        if strategy == "agent":
            final = yield from shop_with_agent(handset, "camera", vendor_ids)
            assert final["outcome"] == "completed"
            assert final["receipt"] is not None
        else:
            report = yield from shop_interactively(
                handset, "camera", vendor_ids, think_time_s=3.0
            )
            assert report.receipt is not None
        handset.node.interface(tech.name).detach()

    run_process(world, go())
    if observe:
        return world, profiler
    costs = handset.node.costs
    connected = sum(costs.connected_seconds.values())
    return costs.wireless_bytes(), connected, costs.money


def run_experiment():
    rows = []
    for tech in (GPRS, DIALUP):
        for vendor_count in VENDOR_COUNTS:
            browse = run_session(tech, vendor_count, "browse")
            agent = run_session(tech, vendor_count, "agent")
            saving = browse[2] / agent[2] if agent[2] > 0 else float("inf")
            rows.append(
                [
                    tech.name,
                    vendor_count,
                    browse[0],
                    agent[0],
                    browse[1],
                    agent[1],
                    browse[2],
                    agent[2],
                    saving,
                ]
            )
    return rows


def test_e4_shopping(benchmark):
    rows = once(benchmark, run_experiment)
    table = render_table(
        "E4 / Table 2 — m-commerce session cost: interactive browsing vs shopping agent",
        [
            "link",
            "shops",
            "brws B",
            "agent B",
            "brws conn s",
            "agent conn s",
            "brws $",
            "agent $",
            "saving x",
        ],
        rows,
        note="5 catalogue pages per shop browsed; agent hops ride the fixed network",
    )
    write_result("e4_shopping", table)
    world, profiler = run_session(GPRS, 2, "agent", observe=True)
    write_report(
        "e4_shopping", world, profiler,
        params={"link": "gprs", "shops": 2, "strategy": "agent"},
    )

    for row in rows:
        _link, _k, browse_bytes, agent_bytes = row[0], row[1], row[2], row[3]
        browse_conn, agent_conn, browse_money, agent_money = row[4:8]
        assert agent_bytes < browse_bytes
        assert agent_conn < browse_conn
        assert agent_money < browse_money
    # The saving factor grows with the number of shops (per tariff).
    gprs = [row for row in rows if row[0] == GPRS.name]
    dialup = [row for row in rows if row[0] == DIALUP.name]
    for series in (gprs, dialup):
        factors = [row[8] for row in series]
        assert factors[-1] > factors[0]
