"""E6 / Table 3 — decentralised vs centralised service discovery.

A client stands next to a printer-offering peer (ad-hoc range) while a
Jini-style lookup server sits on the backbone.  The lookup server's
availability is swept 0–100% (it is crashed for the complementary
fraction of query instants).  Twenty queries per cell.

Expected shape: centralised success tracks server availability
~linearly (the paper's criticism: no lookup server, no discovery);
decentralised discovery keeps succeeding because the provider itself
is in range.
"""

from __future__ import annotations

from repro.analysis import render_table
from repro.core import (
    LookupClient,
    LookupServer,
    World,
    mutual_trust,
    service,
    standard_host,
)
from repro.errors import ServiceNotFound
from repro.net import GPRS, LAN, Position, WIFI_ADHOC

from _common import instrument, once, run_process, write_report, write_result

AVAILABILITIES = [0.0, 0.25, 0.5, 0.75, 1.0]
QUERIES = 20


def build(seed):
    world = World(seed=seed)
    world.transport._rng.random = lambda: 0.999
    lus = standard_host(world, "lus", Position(0, 0), [LAN], fixed=True)
    lus.add_component(LookupServer(lease_duration=10_000.0))
    provider = standard_host(
        world, "provider", Position(10, 0), [WIFI_ADHOC, LAN], fixed=True
    )
    provider.add_component(LookupClient("lus"))
    client = standard_host(
        world, "client", Position(0, 0), [WIFI_ADHOC, GPRS]
    )
    client.add_component(LookupClient("lus"))
    client.node.interface("gprs").attach()
    mutual_trust(lus, provider, client)
    description = service("printer", "provider", "lobby")
    provider.component("discovery").advertise(description)

    def register():
        yield from provider.component("lookup-client").register(description)

    run_process(world, register())
    return world, lus, provider, client


def run_cell(availability, seed=606, observe=False):
    world, lus, provider, client = build(seed)
    profiler = instrument(world) if observe else None
    rng = world.streams.stream("e6.availability")
    outcomes = {"central_ok": 0, "decentral_ok": 0}
    latencies = {"central": [], "decentral": []}

    def go():
        for _query in range(QUERIES):
            server_up = rng.random() < availability
            if server_up and not lus.node.up:
                lus.node.restart()
            elif not server_up and lus.node.up:
                lus.node.crash()
            started = world.now
            try:
                found = yield from client.component("lookup-client").find(
                    "printer"
                )
                if found:
                    outcomes["central_ok"] += 1
                    latencies["central"].append(world.now - started)
            except ServiceNotFound:
                pass
            started = world.now
            found = yield from client.component("discovery").find(
                "printer", window=1.0, use_cache=False
            )
            if found:
                outcomes["decentral_ok"] += 1
                latencies["decentral"].append(world.now - started)
            yield world.env.timeout(5.0)

    run_process(world, go())
    if observe:
        return world, profiler
    return (
        outcomes["central_ok"] / QUERIES,
        outcomes["decentral_ok"] / QUERIES,
        _mean(latencies["central"]),
        _mean(latencies["decentral"]),
    )


def _mean(values):
    return sum(values) / len(values) if values else float("nan")


def run_experiment():
    rows = []
    for availability in AVAILABILITIES:
        central_ok, decentral_ok, central_lat, decentral_lat = run_cell(
            availability
        )
        rows.append(
            [availability, central_ok, decentral_ok, central_lat, decentral_lat]
        )
    return rows


def test_e6_discovery(benchmark):
    rows = once(benchmark, run_experiment)
    table = render_table(
        "E6 / Table 3 — discovery success vs lookup-server availability",
        [
            "server avail",
            "central ok",
            "decentral ok",
            "central lat s",
            "decentral lat s",
        ],
        rows,
        note=f"{QUERIES} queries per cell; provider always in ad-hoc range",
    )
    write_result("e6_discovery", table)
    world, profiler = run_cell(0.5, observe=True)
    write_report(
        "e6_discovery", world, profiler,
        params={"availability": 0.5, "queries": QUERIES},
    )

    for row in rows:
        availability, central_ok, decentral_ok = row[0], row[1], row[2]
        # Decentralised discovery is availability-independent.
        assert decentral_ok >= 0.95
        # Centralised success roughly tracks availability.
        assert abs(central_ok - availability) <= 0.25
    # Monotone in availability, and dead at zero.
    centrals = [row[1] for row in rows]
    assert centrals == sorted(centrals)
    assert rows[0][1] == 0.0
    assert rows[-1][1] == 1.0
