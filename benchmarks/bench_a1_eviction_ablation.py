"""A1 (ablation) — codebase eviction policy under the COD workload.

DESIGN.md's storage manager offers pluggable eviction (LRU, LFU,
largest-first).  This ablation re-runs the E2 workload (Zipf playback
stream, tight quota) under each policy.  All policies keep playback at
100% (that is E2's finding); the differentiator is how much re-fetching
each one causes: misses, wireless bytes, and mean time-to-play.
"""

from __future__ import annotations

from repro.analysis import render_table
from repro.apps import CODEC_CATALOGUE, MediaPlayer, build_codec_repository
from repro.core import World, mutual_trust, standard_host
from repro.lmu import largest_first_policy, lfu_policy, lru_policy
from repro.net import GPRS, LAN, Position
from repro.workloads import zipf_indices

from _common import instrument, once, run_process, write_report, write_result

QUOTA = 500_000
REQUESTS = 80
POLICIES = [
    ("lru", lru_policy),
    ("lfu", lfu_policy),
    ("largest-first", largest_first_policy),
]


def run_policy(name, policy, observe=False):
    world = World(seed=111)
    profiler = instrument(world) if observe else None
    world.transport._rng.random = lambda: 0.999
    pda = standard_host(
        world, "pda", Position(0, 0), [GPRS], cpu_speed=0.2, quota_bytes=QUOTA
    )
    pda.codebase.eviction = policy
    store = standard_host(
        world, "store", Position(0, 0), [LAN], fixed=True,
        repository=build_codec_repository(),
    )
    mutual_trust(pda, store)
    pda.node.interface("gprs").attach()
    player = MediaPlayer(pda, "store")
    formats = sorted(CODEC_CATALOGUE)
    rng = world.streams.stream("a1.playlist")
    playlist = [formats[i] for i in zipf_indices(rng, len(formats), REQUESTS)]

    def go():
        for format_name in playlist:
            yield from player.play(format_name)

    run_process(world, go())
    if observe:
        return world, profiler
    misses = sum(1 for record in player.history if record.outcome == "miss")
    return [
        name,
        len(player.history) / REQUESTS,
        misses,
        pda.codebase.evictions,
        pda.node.costs.wireless_bytes(),
        player.mean_time_to_play(),
        pda.node.costs.money,
    ]


def run_experiment():
    return [run_policy(name, policy) for name, policy in POLICIES]


def test_a1_eviction_ablation(benchmark):
    rows = once(benchmark, run_experiment)
    table = render_table(
        "A1 (ablation) — eviction policy on the Zipf codec workload "
        f"(quota {QUOTA // 1000}kB, {REQUESTS} plays)",
        [
            "policy",
            "played",
            "misses",
            "evictions",
            "wireless B",
            "mean play s",
            "tariff",
        ],
        rows,
        note="identical playlist and quota; only the eviction policy differs",
    )
    write_result("a1_eviction_ablation", table)
    world, profiler = run_policy("lfu", lfu_policy, observe=True)
    write_report(
        "a1_eviction_ablation", world, profiler,
        params={"quota": QUOTA, "requests": REQUESTS, "policy": "lfu"},
    )

    # Every policy sustains full playback (the COD story of E2)...
    for row in rows:
        assert row[1] == 1.0
    # ...and on a Zipf (stable hot-set) workload, *frequency*-aware
    # eviction re-fetches least: LFU keeps the hot codecs, while LRU can
    # be flushed by a cold burst.  This is the ablation's finding.
    by_name = {row[0]: row for row in rows}
    assert by_name["lfu"][2] <= by_name["lru"][2]
    assert by_name["lfu"][2] <= by_name["largest-first"][2]
    assert by_name["lfu"][4] <= by_name["lru"][4]
