"""A2 (ablation) — message copies in disaster messaging.

The E3 messenger carries a single custody copy.  Spray-and-wait
replicates the message into L copies that spread through the fleet.
This ablation sweeps L on the E3 scenario and reports the delivery /
latency / radio-traffic trade-off.

Expected: delivery ratio and latency improve with L; radio bytes grow
with L — the classic single-copy vs epidemic spectrum.
"""

from __future__ import annotations

from repro.analysis import render_table
from repro.apps import DeliveryLog, send_via_agent, send_via_spray
from repro.core import World
from repro.net import Area, Position, RandomWaypoint
from repro.workloads import adhoc_fleet

from _common import instrument, once, write_report, write_result

SITE = Area(500.0, 500.0)
NODES = 12
TRIALS = 6
TTL = 900.0
COPY_COUNTS = [1, 2, 4, 8]


def run_trial(copies, seed, observe=False):
    world = World(seed=seed)
    profiler = instrument(world) if observe else None
    hosts = adhoc_fleet(world, NODES, SITE, placement="random")
    source, destination = hosts[0], hosts[-1]
    source.node.move_to(Position(10.0, 10.0))
    destination.node.move_to(Position(470.0, 470.0))
    RandomWaypoint(
        world.env,
        [host.node for host in hosts[1:-1]],
        SITE,
        world.streams,
        speed_range=(2.0, 5.0),
        pause_range=(0.0, 5.0),
    )
    log = DeliveryLog(destination)
    if copies == 1:
        # The E3 custody messenger is the single-copy baseline.
        send_via_agent(source, destination.id, "sos", ttl=TTL)
    else:
        send_via_spray(source, destination.id, "sos", copies=copies, ttl=TTL)
    world.run(until=TTL + 5.0)
    if observe:
        return world, profiler
    delivered = bool(log.received)
    latency = log.received[0][2] if delivered else TTL
    radio_bytes = sum(host.node.costs.total_bytes_sent for host in hosts)
    return delivered, latency, radio_bytes


def run_experiment():
    rows = []
    for copies in COPY_COUNTS:
        delivered_count = 0
        latencies = []
        bytes_total = 0
        for trial in range(TRIALS):
            delivered, latency, radio_bytes = run_trial(
                copies, seed=1200 + copies * 31 + trial
            )
            if delivered:
                delivered_count += 1
                latencies.append(latency)
            bytes_total += radio_bytes
        latencies.sort()
        rows.append(
            [
                copies,
                delivered_count / TRIALS,
                latencies[len(latencies) // 2] if latencies else float("nan"),
                bytes_total / TRIALS,
            ]
        )
    return rows


def test_a2_spray_ablation(benchmark):
    rows = once(benchmark, run_experiment)
    table = render_table(
        "A2 (ablation) — spray copies L vs delivery, latency, radio traffic "
        f"({NODES} nodes, {TRIALS} trials)",
        ["copies L", "delivery", "med latency s", "fleet radio B"],
        rows,
        note="L=1 is the E3 custody messenger; L>1 is binary spray-and-wait",
    )
    write_result("a2_spray_ablation", table)
    world, profiler = run_trial(4, seed=1200, observe=True)
    write_report(
        "a2_spray_ablation", world, profiler,
        params={"nodes": NODES, "copies": 4, "ttl": TTL},
    )

    by_copies = {row[0]: row for row in rows}
    # More copies never hurt delivery, and the top setting beats single-copy.
    assert by_copies[8][1] >= by_copies[1][1]
    assert by_copies[8][1] >= 0.5
    # Among spray settings, traffic grows with the copy budget.
    assert by_copies[2][3] < by_copies[4][3] < by_copies[8][3]
    # Finding: the restless custody messenger (L=1 hops continuously)
    # spends more radio than spray-and-wait, whose copies mostly sit
    # still — replication is cheaper than wandering.
    assert by_copies[1][3] > by_copies[8][3]
