"""E1 / Table 1 — Paradigm traffic model.

A GPRS device runs a task of ``n`` request/reply interactions against a
fixed server under each paradigm, end to end through the middleware:

* CS  — ``n`` remote calls;
* REV — ship the task's code once, run all ``n`` rounds remotely;
* COD — download the code once, run all ``n`` rounds locally;
* MA  — an agent carries the task to the server and back.

Reported: the device's wireless bytes and the task completion time.
Expected shape: CS cheapest for small ``n``; REV/COD flat in ``n`` with
a crossover; MA pays state carriage both ways.
"""

from __future__ import annotations

from repro.analysis import crossover, render_table
from repro.core import Agent, World, mutual_trust, standard_host
from repro.lmu import CodeRepository, code_unit
from repro.net import GPRS, LAN, Position

from _common import (
    instrument,
    once,
    quick,
    run_process,
    write_report,
    write_result,
)

INTERACTIONS = [1, 2, 5, 10, 20, 50]
REQUEST_BYTES = 200
REPLY_BYTES = 2_000
CODE_BYTES = 40_000
WORK_PER_ROUND = 20_000


def build_world(seed=101):
    world = World(seed=seed)
    world.transport._rng.random = lambda: 0.999  # deterministic traffic
    device = standard_host(
        world, "device", Position(0, 0), [GPRS], cpu_speed=0.2
    )
    server = standard_host(
        world, "server", Position(0, 0), [LAN], fixed=True, cpu_speed=2.0
    )
    mutual_trust(device, server)
    device.node.interface("gprs").attach()
    server.register_service(
        "step",
        lambda args, host: ({"round": args}, REPLY_BYTES),
        work_units=WORK_PER_ROUND,
    )
    return world, device, server


def task_unit(rounds):
    """The task as a transferable unit: runs ``rounds`` interactions
    against whatever 'step' implementation is local."""

    def factory():
        def body(ctx, *args):
            for _ in range(rounds):
                ctx.charge(WORK_PER_ROUND)
            return {"rounds": rounds, "summary": "x" * 64}

        return body

    return code_unit("task", "1.0.0", factory, CODE_BYTES)


def run_cs(rounds):
    world, device, server = build_world()

    def go():
        for round_number in range(rounds):
            yield from device.component("cs").call(
                "server", "step", round_number, request_size=REQUEST_BYTES
            )

    run_process(world, go())
    return device.node.costs.wireless_bytes(), world.now


def run_rev(rounds):
    world, device, server = build_world()
    device.codebase.install(task_unit(rounds))

    def go():
        yield from device.component("rev").evaluate("server", ["task"])

    run_process(world, go())
    return device.node.costs.wireless_bytes(), world.now


def run_cod(rounds):
    world, device, server = build_world()
    server.repository = CodeRepository()
    server.repository.publish(task_unit(rounds))

    def go():
        yield from device.component("cod").fetch("server", ["task"])
        unit = device.codebase.touch("task")
        outcome = device.run_guest(unit.instantiate(), device.id)
        yield from device.execute(outcome.work_used)

    run_process(world, go())
    return device.node.costs.wireless_bytes(), world.now


class TaskAgent(Agent):
    code_size = CODE_BYTES

    def on_arrival(self, context):
        if "done" not in self.state:
            if context.host_id != "server":
                yield from context.migrate("server")
            for round_number in range(int(self.state["rounds"])):
                yield from context.invoke_local("step", round_number)
            self.state["done"] = True
            self.state["summary"] = "x" * 64
        if context.host_id != self.state["home"]:
            yield from context.migrate(str(self.state["home"]))


def run_ma(rounds):
    world, device, server = build_world()
    runtime = device.component("agents")
    agent_id = runtime.launch(TaskAgent(), rounds=rounds)

    def go():
        final = yield runtime.completion(agent_id)
        return final

    final = run_process(world, go())
    assert final["outcome"] == "completed"
    return device.node.costs.wireless_bytes(), world.now


def run_instrumented(rounds=5):
    """One REV run with full observability on, for the run report."""
    world, device, server = build_world()
    profiler = instrument(world)
    device.codebase.install(task_unit(rounds))

    def go():
        yield from device.component("rev").evaluate("server", ["task"])

    run_process(world, go())
    world.run(until=world.now + 60.0)  # drain server-side handler spans
    return world, profiler


def run_experiment(interactions=INTERACTIONS):
    rows = []
    series = {"cs": [], "rev": [], "cod": [], "ma": []}
    for rounds in interactions:
        cs_bytes, cs_time = run_cs(rounds)
        rev_bytes, rev_time = run_rev(rounds)
        cod_bytes, cod_time = run_cod(rounds)
        ma_bytes, ma_time = run_ma(rounds)
        series["cs"].append((rounds, cs_bytes))
        series["rev"].append((rounds, rev_bytes))
        series["cod"].append((rounds, cod_bytes))
        series["ma"].append((rounds, ma_bytes))
        rows.append(
            [
                rounds,
                cs_bytes,
                rev_bytes,
                cod_bytes,
                ma_bytes,
                cs_time,
                rev_time,
                cod_time,
                ma_time,
            ]
        )
    return rows, series


def test_e1_paradigm_traffic(benchmark):
    interactions = [1, 5] if quick() else INTERACTIONS
    rows, series = once(benchmark, lambda: run_experiment(interactions))
    table = render_table(
        "E1 / Table 1 — device wireless bytes and completion time vs interactions n",
        [
            "n",
            "CS B",
            "REV B",
            "COD B",
            "MA B",
            "CS s",
            "REV s",
            "COD s",
            "MA s",
        ],
        rows,
        note="GPRS device <-> LAN server; request 200B, reply 2000B, code 40kB",
    )
    write_result("e1_paradigm_traffic", table)

    world, profiler = run_instrumented()
    write_report(
        "e1_paradigm_traffic",
        world,
        profiler,
        params={
            "interactions": interactions,
            "request_bytes": REQUEST_BYTES,
            "reply_bytes": REPLY_BYTES,
            "code_bytes": CODE_BYTES,
        },
    )

    # Shape: CS wins on bytes at n=1 ...
    first = rows[0]
    assert first[1] == min(first[1:5]), "CS should be cheapest at n=1"
    if quick():
        return  # smoke mode: shrunk sweep has no crossover to assert on
    # ... but loses to both REV and COD by n=50.
    last = rows[-1]
    assert last[2] < last[1] and last[3] < last[1]
    # REV/COD traffic is ~flat in n; CS grows linearly.
    assert series["cs"][-1][1] > 10 * series["cs"][0][1]
    assert series["rev"][-1][1] < 2 * series["rev"][0][1]
    # Crossovers exist.
    assert crossover(series["cs"], series["rev"]) is not None
    assert crossover(series["cs"], series["cod"]) is not None
    # MA pays the code+state both ways: more bytes than REV at any n.
    for (n, ma_b), (_n, rev_b) in zip(series["ma"], series["rev"]):
        assert ma_b >= rev_b
