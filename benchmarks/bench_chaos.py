"""Chaos benchmark — recovery under the standard fault plan, gated.

Runs the :mod:`repro.faults.chaos` echo workload twice under the
standard fault schedule (link flap, crash/restart, partition/heal,
drop/duplicate/delay/corrupt windows) and enforces three properties:

* **Recovery**: the completion rate stays at or above the 95% floor,
  and the retry/stale-reply tallies stay under their ceilings — all
  encoded in ``benchmarks/baselines/chaos.json`` and checked by the
  shared ``gate_against_baseline`` diff (the same comparison CI
  re-runs as ``python -m repro compare --fail-on regress``).
* **Determinism**: the two same-seed runs must produce bit-identical
  *reports* — spans, message ids, metrics, trace analyses, all of it —
  because chaos results are only diffable when the whole faulted
  trajectory is a pure function of the seed (the invariant
  ``python -m repro matrix --strict`` replays across processes).
* **Trace health**: the runs capture causal spans, so the written
  report is a full document ``python -m repro trace`` can analyse; the
  per-invocation latency attribution must reconcile with the
  ``paradigm.<kind>.seconds`` histograms even under injected faults.
* **Fleet health**: both runs are armed with the four standard
  per-node SLO monitors (completion, stale replies, retry burn,
  reachability).  The fault windows *must* trip degraded verdicts —
  an SLO set that never fires under injected faults is miswired — but
  nothing may go critical: the written report has to survive
  ``python -m repro health chaos --strict``, the same gate CI runs.

``--quick`` shrinks the fleet and request count for CI smoke runs; the
floor document applies to both sizes (its ceilings are sized for the
full run, which the quick run sits comfortably under).
"""

from __future__ import annotations

import json

from repro.__main__ import main as repro_main
from repro.faults import run_chaos, standard_slos
from repro.obs import TraceAnalysis

from _common import gate_against_baseline, quick, write_report_document

SEED = 7


def _params():
    if quick():
        return dict(clients=3, servers=2, requests_per_client=4)
    return dict(clients=4, servers=2, requests_per_client=6)


def test_chaos_recovery_gate():
    params = _params()
    first = run_chaos(
        seed=SEED, spans_enabled=True, slos=standard_slos(), **params
    )
    second = run_chaos(
        seed=SEED, spans_enabled=True, slos=standard_slos(), **params
    )

    # Determinism first: a nondeterministic chaos run is ungateable.
    # The whole report — span attributes and message ids included,
    # since run_chaos scopes the id counter per run — must be byte
    # identical, the same invariant `repro matrix --strict` replays
    # across process boundaries.
    assert json.dumps(first.report, sort_keys=True) == json.dumps(
        second.report, sort_keys=True
    ), (
        "same-seed chaos runs diverged — fault injection or workload "
        "consumed nondeterministic process state"
    )
    first_trace = TraceAnalysis.from_report(first.report)
    second_trace = TraceAnalysis.from_report(second.report)
    assert first_trace.metrics() == second_trace.metrics(), (
        "same-seed chaos runs produced different trace analytics"
    )
    problems = first_trace.problems(first.report["metrics"])
    assert not problems, (
        "trace attribution failed to reconcile:\n" + "\n".join(problems)
    )

    # The fault windows must register on the per-node monitors: degraded
    # transitions prove the SLOs watch the right families, while the
    # strict gate below proves nothing crossed a critical threshold.
    health = first.report["health"]
    assert health, (
        "armed chaos run produced no health section — the standard SLOs "
        "never left 'ok' under injected faults"
    )
    assert health["events"], "health section present but no transitions"
    assert health["verdicts"], "health section present but no verdicts"
    assert all(
        level in ("ok", "degraded")
        for nodes in health["verdicts"].values()
        for level in nodes.values()
    ), f"critical SLO verdict under the standard plan: {health['verdicts']}"
    assert first.report["flight"], (
        "breaches occurred but no flight-recorder dump was captured"
    )

    # Full document (spans included), so `python -m repro trace chaos`
    # works on the written result.
    path = write_report_document("chaos", first.report)
    assert repro_main(["health", path, "--strict"]) == 0, (
        "python -m repro health --strict flagged a critical breach"
    )
    diff = gate_against_baseline("chaos")
    print(
        f"\nchaos: {first.completed}/{first.requests} requests completed "
        f"({first.completion_rate:.0%}) through {first.report['params']['faults']} "
        f"faults; {first.app_retries} app retries, "
        f"{int(first.summary.get('paradigm.cs.retries', 0))} pipeline retries, "
        f"{int(first.summary.get('host.stale_replies', 0))} stale replies "
        f"discarded ({len(diff.deltas)} gated metrics); critical path p99 "
        f"{first_trace.metrics()['trace.critical_path.p99'] * 1000:.1f}ms"
    )
