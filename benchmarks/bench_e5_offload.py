"""E5 / Figure 3 — REV computation offloading.

A slow handheld (0.1x reference CPU) either grinds a task locally or
REV-ships it to a 4x server, over a fast free link (Wi-Fi) and a slow
metered one (GPRS).  Task size is swept; the crossover work size —
beyond which offloading wins — is located for each link.

Expected shape: local wins for tiny tasks; REV wins beyond a crossover;
the crossover sits at much smaller tasks on the faster link.
"""

from __future__ import annotations

from repro.analysis import crossover, render_table
from repro.apps import run_local, run_offloaded
from repro.core import World, mutual_trust, standard_host
from repro.net import GPRS, LAN, Position, WIFI_ADHOC

from _common import instrument, once, run_process, write_report, write_result

WORK_SIZES = [5_000, 50_000, 200_000, 1_000_000, 5_000_000, 20_000_000, 80_000_000]
DEVICE_SPEED = 0.1
SERVER_SPEED = 4.0


def build(link_name):
    world = World(seed=505)
    world.transport._rng.random = lambda: 0.999
    if link_name == "wifi":
        device = standard_host(
            world, "device", Position(0, 0), [WIFI_ADHOC], cpu_speed=DEVICE_SPEED
        )
        server = standard_host(
            world, "server", Position(20, 0), [WIFI_ADHOC], fixed=True,
            cpu_speed=SERVER_SPEED,
        )
    else:
        device = standard_host(
            world, "device", Position(0, 0), [GPRS], cpu_speed=DEVICE_SPEED
        )
        server = standard_host(
            world, "server", Position(0, 0), [LAN], fixed=True,
            cpu_speed=SERVER_SPEED,
        )
        device.node.interface("gprs").attach()
    mutual_trust(device, server)
    return world, device, server


def measure(link_name, work, where, observe=False):
    world, device, server = build(link_name)
    profiler = instrument(world) if observe else None

    def go():
        if where == "local":
            report = yield from run_local(device, work)
        else:
            report = yield from run_offloaded(device, "server", work)
        return report

    report = run_process(world, go())
    if observe:
        return world, profiler
    return report.elapsed_s


def run_experiment():
    rows = []
    curves = {}
    for link_name in ("wifi", "gprs"):
        local_points = []
        remote_points = []
        for work in WORK_SIZES:
            local_s = measure(link_name, work, "local")
            remote_s = measure(link_name, work, "offload")
            local_points.append((work, local_s))
            remote_points.append((work, remote_s))
            rows.append([link_name, work / 1e6, local_s, remote_s])
        curves[link_name] = (local_points, remote_points)
    return rows, curves


def test_e5_offload(benchmark):
    rows, curves = once(benchmark, run_experiment)
    table = render_table(
        "E5 / Figure 3 — task completion time: local vs REV-offloaded",
        ["link", "work Mu", "local s", "REV s"],
        rows,
        note=f"device {DEVICE_SPEED}x, server {SERVER_SPEED}x reference CPU; code 30kB",
    )
    crossovers = {}
    for link_name, (local_points, remote_points) in curves.items():
        crossovers[link_name] = crossover(local_points, remote_points)
    summary = "crossover work: " + ", ".join(
        f"{name}={value/1e6 if value else float('nan'):.2f}M units"
        for name, value in crossovers.items()
    )
    write_result("e5_offload", table + "\n" + summary)
    world, profiler = measure("wifi", WORK_SIZES[3], "offload", observe=True)
    write_report(
        "e5_offload", world, profiler,
        params={"link": "wifi", "work": WORK_SIZES[3], "where": "offload"},
    )

    for link_name, (local_points, remote_points) in curves.items():
        # Local wins the smallest task; REV wins the biggest.
        assert local_points[0][1] < remote_points[0][1]
        assert remote_points[-1][1] < local_points[-1][1]
        assert crossovers[link_name] is not None
    # Faster link -> earlier crossover.
    assert crossovers["wifi"] < crossovers["gprs"]
