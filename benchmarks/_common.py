"""Shared plumbing for the experiment benchmarks.

Each ``bench_eN_*.py`` regenerates one table/figure of the evaluation
defined in DESIGN.md §3: it runs the sweep once (wrapped in
``benchmark.pedantic`` for a wall-clock row), prints the rendered
table, writes it to ``benchmarks/results/``, and asserts the expected
qualitative shape.

Two longitudinal mechanisms live here (see docs/OBSERVABILITY.md,
"Comparing runs"):

* **Trajectory store** — every report write also appends one JSONL
  entry (git SHA, timestamp, numeric metrics) to
  ``benchmarks/results/trajectory.jsonl``, so the perf history of the
  repository is a greppable, diffable log.  Appends are single locked
  ``O_APPEND`` writes and report files land atomically (temp +
  rename), so concurrent benches can't tear lines or truncate
  reports — see :mod:`repro.obs.fileio`;
* **Baseline gate** — ``gate_against_baseline`` compares a fresh
  report against the checked-in floor document under
  ``benchmarks/baselines/`` with ``repro.obs.diff`` (direction-aware,
  relative thresholds), replacing per-script hand-rolled floor
  asserts.  CI runs the same comparison via ``python -m repro
  compare --fail-on regress``.
"""

from __future__ import annotations

import json
import os
import subprocess
from typing import Generator, List, Optional, Tuple

from repro.core import World
from repro.obs import (
    RunReport,
    SimProfiler,
    append_jsonl,
    atomic_write_text,
    read_jsonl_if_exists,
    wall_time,
)

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
BASELINES_DIR = os.path.join(os.path.dirname(__file__), "baselines")
TRAJECTORY_PATH = os.path.join(RESULTS_DIR, "trajectory.jsonl")

_git_sha_cache: Optional[str] = None


def quick() -> bool:
    """True when the run should shrink sweeps (CI smoke mode).

    Set by ``pytest benchmarks --quick`` (see conftest.py) or the
    ``REPRO_QUICK`` environment variable.
    """
    return bool(os.environ.get("REPRO_QUICK"))


def run_process(world: World, generator: Generator):
    """Run a generator as a kernel process to completion."""
    process = world.env.process(generator)
    return world.run(until=process)


def instrument(
    world: World,
    series_cadence: Optional[float] = None,
    series_capacity: int = 256,
) -> SimProfiler:
    """Switch on full observability for ``world``; returns the profiler.

    Enables the trace log and span tracer (normally off in benchmark
    worlds) and attaches a :class:`SimProfiler` to the kernel so the
    run report carries a profile section.  With ``series_cadence`` set,
    additionally attaches a :class:`~repro.obs.TimeSeriesRecorder` at
    that sim-time cadence (ring-capped at ``series_capacity`` points
    per series), so the report carries per-epoch ``series`` too.
    """
    world.trace.enabled = True
    world.tracer.enabled = True
    if series_cadence is not None:
        world.sample_series(cadence=series_cadence, capacity=series_capacity)
    return world.profile()


def git_sha() -> str:
    """The current commit's short SHA ("unknown" outside a checkout)."""
    global _git_sha_cache
    if _git_sha_cache is None:
        try:
            _git_sha_cache = subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                cwd=os.path.dirname(os.path.abspath(__file__)),
                capture_output=True,
                text=True,
                timeout=10,
                check=True,
            ).stdout.strip() or "unknown"
        except Exception:
            _git_sha_cache = "unknown"
    return _git_sha_cache


def append_trajectory(
    name: str,
    metrics: dict,
    params: Optional[dict] = None,
) -> str:
    """Append one run's key figures to the benchmark trajectory log.

    The log is append-only JSONL — one self-contained entry per run
    (benchmark name, git SHA, wall-clock timestamp, quick flag, every
    numeric metric) — and is committed, so successive PRs accumulate a
    machine-readable perf history that ``repro compare`` can diff.
    """
    entry = {
        "name": name,
        "sha": git_sha(),
        "timestamp": wall_time(),
        "quick": quick(),
        "params": params or {},
        "metrics": {
            key: float(value)
            for key, value in sorted(metrics.items())
            if isinstance(value, (int, float)) and not isinstance(value, bool)
        },
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    # One locked O_APPEND write per entry: concurrent appenders (e.g.
    # xdist workers, a matrix bench and a chaos bench racing) can never
    # interleave partial lines.  Plain ``open(path, "a")`` could.
    append_jsonl(TRAJECTORY_PATH, entry)
    return TRAJECTORY_PATH


def read_trajectory(
    path: Optional[str] = None, strict: bool = False
) -> Tuple[List[dict], int]:
    """Load trajectory entries, tolerating torn or corrupt lines.

    Returns ``(entries, skipped)``; a missing log is just ``([], 0)``.
    With ``strict=True`` a malformed line raises instead — the posture
    for tests that assert the log is pristine.
    """
    return read_jsonl_if_exists(path or TRAJECTORY_PATH, strict=strict)


def baseline_path(name: str) -> str:
    """The checked-in baseline for ``name`` (quick variant preferred
    in quick mode when one exists)."""
    if quick():
        candidate = os.path.join(BASELINES_DIR, f"{name}_quick.json")
        if os.path.isfile(candidate):
            return candidate
    return os.path.join(BASELINES_DIR, f"{name}.json")


def gate_against_baseline(
    name: str,
    report_path: Optional[str] = None,
    threshold: float = 0.0,
    overrides: Optional[dict] = None,
):
    """The shared benchmark regression gate.

    Diffs the freshly written report against the committed floor
    baseline (``benchmarks/baselines/<name>[_quick].json``) with the
    direction registry, and fails the test on any regression past
    ``threshold``.  Returns the :class:`~repro.obs.diff.ReportDiff` so
    callers can print or inspect it.  The baselines hold *floor*
    values (e.g. ``speedup: 5.0``), so with the default threshold 0.0
    this is exactly "never worse than the floor" — one mechanism for
    every bench, and the same one CI drives via ``python -m repro
    compare --fail-on regress``.
    """
    from repro.obs.diff import diff_report_files

    base = baseline_path(name)
    if not os.path.isfile(base):
        raise FileNotFoundError(
            f"no baseline for {name!r} under benchmarks/baselines/ — "
            "commit one before gating on it"
        )
    if report_path is None:
        report_path = os.path.join(RESULTS_DIR, f"{name}.json")
    diff = diff_report_files(
        base, report_path, threshold=threshold, overrides=overrides
    )
    if diff.regressions:
        raise AssertionError(
            f"regression against baseline {os.path.basename(base)}:\n\n"
            + diff.render()
        )
    return diff


def write_report(
    name: str,
    world: World,
    profiler: Optional[SimProfiler] = None,
    params: Optional[dict] = None,
) -> str:
    """Capture a RunReport for ``world`` and write it as JSON.

    The file lands at ``benchmarks/results/<name>.json`` — the
    machine-readable sibling of the rendered ``.txt`` table — and the
    run is appended to the trajectory log.  Render it later with
    ``python -m repro report <name>``, or diff two runs with
    ``python -m repro compare``.
    """
    if profiler is not None and profiler.attached:
        profiler.detach()
    report = RunReport.capture(name, world, profiler=profiler, params=params)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.json")
    report.write(path)
    append_trajectory(name, report.metrics, params=params)
    return path


def write_report_data(
    name: str,
    metrics: Optional[dict] = None,
    params: Optional[dict] = None,
) -> str:
    """Write a bare RunReport (for analytical benches with no World)."""
    report = RunReport(name=name, metrics=metrics, params=params)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.json")
    report.write(path)
    append_trajectory(name, report.metrics, params=params)
    return path


def write_report_document(name: str, document: dict) -> str:
    """Write an already-captured RunReport dict verbatim.

    For benches whose harness captures the report itself (e.g.
    ``run_chaos``): the full document — spans included, so ``python -m
    repro trace`` works on the result — lands at
    ``benchmarks/results/<name>.json`` and its metrics are appended to
    the trajectory log, exactly like :func:`write_report`.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.json")
    # Atomic (temp + rename): a crash mid-write leaves the previous
    # report intact instead of a truncated JSON file that poisons
    # every later ``repro compare`` against it.
    atomic_write_text(path, json.dumps(document, indent=2, sort_keys=True) + "\n")
    metrics = document.get("metrics") or {}
    append_trajectory(name, metrics, params=document.get("params"))
    return path


def write_result(name: str, text: str) -> str:
    """Persist a rendered table under benchmarks/results/ and echo it."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    atomic_write_text(path, text + "\n")
    print()
    print(text)
    return path


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
