"""Shared plumbing for the experiment benchmarks.

Each ``bench_eN_*.py`` regenerates one table/figure of the evaluation
defined in DESIGN.md §3: it runs the sweep once (wrapped in
``benchmark.pedantic`` for a wall-clock row), prints the rendered
table, writes it to ``benchmarks/results/``, and asserts the expected
qualitative shape.
"""

from __future__ import annotations

import os
from typing import Generator

from repro.core import World

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def run_process(world: World, generator: Generator):
    """Run a generator as a kernel process to completion."""
    process = world.env.process(generator)
    return world.run(until=process)


def write_result(name: str, text: str) -> str:
    """Persist a rendered table under benchmarks/results/ and echo it."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as handle:
        handle.write(text + "\n")
    print()
    print(text)
    return path


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
