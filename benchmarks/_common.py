"""Shared plumbing for the experiment benchmarks.

Each ``bench_eN_*.py`` regenerates one table/figure of the evaluation
defined in DESIGN.md §3: it runs the sweep once (wrapped in
``benchmark.pedantic`` for a wall-clock row), prints the rendered
table, writes it to ``benchmarks/results/``, and asserts the expected
qualitative shape.
"""

from __future__ import annotations

import os
from typing import Generator, Optional

from repro.core import World
from repro.obs import RunReport, SimProfiler

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def quick() -> bool:
    """True when the run should shrink sweeps (CI smoke mode).

    Set by ``pytest benchmarks --quick`` (see conftest.py) or the
    ``REPRO_QUICK`` environment variable.
    """
    return bool(os.environ.get("REPRO_QUICK"))


def run_process(world: World, generator: Generator):
    """Run a generator as a kernel process to completion."""
    process = world.env.process(generator)
    return world.run(until=process)


def instrument(world: World) -> SimProfiler:
    """Switch on full observability for ``world``; returns the profiler.

    Enables the trace log and span tracer (normally off in benchmark
    worlds) and attaches a :class:`SimProfiler` to the kernel so the
    run report carries a profile section.
    """
    world.trace.enabled = True
    world.tracer.enabled = True
    return world.profile()


def write_report(
    name: str,
    world: World,
    profiler: Optional[SimProfiler] = None,
    params: Optional[dict] = None,
) -> str:
    """Capture a RunReport for ``world`` and write it as JSON.

    The file lands at ``benchmarks/results/<name>.json`` — the
    machine-readable sibling of the rendered ``.txt`` table.  Render
    it later with ``python -m repro report <name>``.
    """
    if profiler is not None and profiler.attached:
        profiler.detach()
    report = RunReport.capture(name, world, profiler=profiler, params=params)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.json")
    report.write(path)
    return path


def write_report_data(
    name: str,
    metrics: Optional[dict] = None,
    params: Optional[dict] = None,
) -> str:
    """Write a bare RunReport (for analytical benches with no World)."""
    report = RunReport(name=name, metrics=metrics, params=params)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.json")
    report.write(path)
    return path


def write_result(name: str, text: str) -> str:
    """Persist a rendered table under benchmarks/results/ and echo it."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as handle:
        handle.write(text + "\n")
    print()
    print(text)
    return path


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
