"""E3 / Figure 2 — disaster messaging: agents vs end-to-end CS.

An infrastructure-less site with random-waypoint rescuers.  A message
must cross the site.  The MA strategy store-carry-forwards; the CS
baseline retries direct sends.  Node density is swept; each cell
averages several seeded trials.

Expected shape: CS collapses below the connectivity percolation
threshold (it needs an instantaneous end-to-end path, which at these
densities effectively never exists edge-to-edge); MA keeps delivering
by exploiting mobility, at a latency cost.
"""

from __future__ import annotations

from repro.analysis import proportion_ci95, render_table
from repro.apps import DeliveryLog, send_via_agent, send_via_cs
from repro.core import World
from repro.net import Area, Position, RandomWaypoint
from repro.workloads import adhoc_fleet

from _common import instrument, once, run_process, write_report, write_result

SITE = Area(500.0, 500.0)
DENSITIES = [6, 10, 16, 24]
TRIALS = 8
TTL = 900.0


def build_trial(count, seed):
    world = World(seed=seed)
    hosts = adhoc_fleet(world, count, SITE, placement="random")
    source, destination = hosts[0], hosts[-1]
    source.node.move_to(Position(10.0, 10.0))
    destination.node.move_to(Position(470.0, 470.0))
    RandomWaypoint(
        world.env,
        [host.node for host in hosts[1:-1]],
        SITE,
        world.streams,
        speed_range=(2.0, 5.0),
        pause_range=(0.0, 5.0),
    )
    return world, source, destination


def run_ma_trial(count, seed, observe=False):
    world, source, destination = build_trial(count, seed)
    profiler = instrument(world) if observe else None
    log = DeliveryLog(destination)
    send_via_agent(source, destination.id, "sos", ttl=TTL)
    world.run(until=TTL + 5.0)
    if observe:
        return world, profiler
    if log.received:
        return True, log.received[0][2]
    return False, TTL


def run_cs_trial(count, seed):
    world, source, destination = build_trial(count, seed)

    def go():
        report = yield from send_via_cs(
            source, destination.id, "sos", ttl=TTL, retry_interval=10.0
        )
        return report

    report = run_process(world, go())
    return report.delivered, report.latency_s if report.delivered else TTL


def run_experiment():
    rows = []
    for count in DENSITIES:
        ma_delivered, ma_latencies = 0, []
        cs_delivered, cs_latencies = 0, []
        for trial in range(TRIALS):
            seed = 300 + count * 10 + trial
            delivered, latency = run_ma_trial(count, seed)
            if delivered:
                ma_delivered += 1
                ma_latencies.append(latency)
            delivered, latency = run_cs_trial(count, seed)
            if delivered:
                cs_delivered += 1
                cs_latencies.append(latency)
        rows.append(
            [
                count,
                cs_delivered / TRIALS,
                ma_delivered / TRIALS,
                proportion_ci95(ma_delivered, TRIALS),
                _median(cs_latencies),
                _median(ma_latencies),
            ]
        )
    return rows


def _median(values):
    if not values:
        return float("nan")
    ordered = sorted(values)
    return ordered[len(ordered) // 2]


def test_e3_disaster(benchmark):
    rows = once(benchmark, run_experiment)
    table = render_table(
        "E3 / Figure 2 — delivery ratio vs node density (500x500m, TTL 900s)",
        [
            "nodes",
            "CS ratio",
            "MA ratio",
            "MA ±95%",
            "CS med lat s",
            "MA med lat s",
        ],
        rows,
        note=f"{TRIALS} trials per cell; corner-to-corner SOS; 100m radios",
    )
    write_result("e3_disaster", table)
    world, profiler = run_ma_trial(DENSITIES[0], seed=300, observe=True)
    write_report(
        "e3_disaster", world, profiler,
        params={"nodes": DENSITIES[0], "ttl": TTL, "paradigm": "ma"},
    )

    total_ma = sum(row[2] for row in rows)
    total_cs = sum(row[1] for row in rows)
    # Agents always dominate the CS baseline at these densities.
    assert total_ma > total_cs
    for row in rows:
        assert row[2] >= row[1]
    # MA delivery improves (weakly) with density and reaches a solid
    # majority of trials at the top density.
    ma_ratios = [row[2] for row in rows]
    assert ma_ratios == sorted(ma_ratios)
    assert rows[-1][2] >= 0.6
    # The CS baseline essentially never gets an end-to-end corner path.
    assert rows[0][1] <= 0.25
