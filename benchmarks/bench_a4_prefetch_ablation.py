"""A4 (ablation) — prefetch on free links vs pure fetch-on-demand.

The commuter pattern: the device starts at home on hotspot Wi-Fi
(free), then spends the day on GPRS (metered), playing media.  Pure
COD fetches every codec when first needed — often over GPRS.  The
prefetcher uses the free morning window to pull the popular codecs
ahead of need.

Expected: prefetching shifts bytes from the metered to the free link,
cutting tariff spend and on-the-road time-to-play; totals of bytes
moved are similar (the code has to move either way).
"""

from __future__ import annotations

from repro.analysis import render_table
from repro.apps import CODEC_CATALOGUE, MediaPlayer, build_codec_repository
from repro.core import (
    PrefetchItem,
    Prefetcher,
    World,
    mutual_trust,
    standard_host,
)
from repro.net import GPRS, LAN, Position, WIFI_INFRA
from repro.workloads import zipf_indices

from _common import instrument, once, run_process, write_report, write_result

HOME_WINDOW = 120.0  # seconds on the free hotspot before leaving
PLAYS = 30


def build():
    world = World(seed=151)
    world.transport._rng.random = lambda: 0.999
    device = standard_host(
        world, "device", Position(0, 0), [WIFI_INFRA, GPRS], cpu_speed=0.2
    )
    store = standard_host(
        world,
        "store",
        Position(10, 0),
        [WIFI_INFRA, LAN],
        fixed=True,
        repository=build_codec_repository(),
    )
    mutual_trust(device, store)
    device.node.interface("802.11b-infra").attach()
    return world, device, store


def commute_playlist(world):
    formats = sorted(CODEC_CATALOGUE)
    rng = world.streams.stream("a4.playlist")
    return [formats[i] for i in zipf_indices(rng, len(formats), PLAYS)]


def run_strategy(prefetch, observe=False):
    world, device, store = build()
    profiler = instrument(world) if observe else None
    player = MediaPlayer(device, "store")
    playlist = commute_playlist(world)
    if prefetch:
        # Wishlist: popularity order mirrors the Zipf ranks.
        formats = sorted(CODEC_CATALOGUE)
        wishlist = [
            PrefetchItem(f"codec-{name}", 1.0 / (rank + 1))
            for rank, name in enumerate(formats)
        ]
        Prefetcher(device, "store", wishlist, check_interval=2.0)

    road_latency = []

    def go():
        # At home: idle (prefetcher may work in the background).
        yield world.env.timeout(HOME_WINDOW)
        # Leave the hotspot; GPRS from here on.
        device.node.move_to(Position(50_000, 0))
        device.node.interface("802.11b-infra").detach()
        device.node.interface("gprs").attach()
        for index, format_name in enumerate(playlist):
            record = yield from player.play(format_name, f"t{index}")
            road_latency.append(record.time_to_play_s)
            yield world.env.timeout(10.0)

    run_process(world, go())
    if observe:
        return world, profiler
    costs = device.node.costs
    gprs_bytes = costs.bytes_sent.get("gprs", 0) + costs.bytes_received.get(
        "gprs", 0
    )
    wifi_bytes = costs.bytes_sent.get("802.11b-infra", 0) + costs.bytes_received.get(
        "802.11b-infra", 0
    )
    return [
        "prefetch" if prefetch else "on-demand",
        wifi_bytes,
        gprs_bytes,
        costs.money,
        sum(road_latency) / len(road_latency),
        max(road_latency),
    ]


def run_experiment():
    return [run_strategy(prefetch=False), run_strategy(prefetch=True)]


def test_a4_prefetch_ablation(benchmark):
    rows = once(benchmark, run_experiment)
    table = render_table(
        "A4 (ablation) — prefetch over free Wi-Fi vs fetch-on-demand over GPRS "
        f"({PLAYS} plays on the road)",
        [
            "strategy",
            "wifi B",
            "gprs B",
            "tariff",
            "mean play s",
            "worst play s",
        ],
        rows,
        note=f"{HOME_WINDOW:.0f}s free-link window before leaving home",
    )
    write_result("a4_prefetch_ablation", table)
    world, profiler = run_strategy(prefetch=True, observe=True)
    write_report(
        "a4_prefetch_ablation", world, profiler,
        params={"strategy": "prefetch", "plays": PLAYS},
    )

    on_demand, prefetch = rows[0], rows[1]
    # Prefetching moves bytes onto the free link...
    assert prefetch[1] > on_demand[1]
    assert prefetch[2] < on_demand[2]
    # ...saving real money...
    assert prefetch[3] < on_demand[3] * 0.7
    # ...and making playback on the road snappier.
    assert prefetch[4] < on_demand[4]
