"""E8 / Table 4 — overhead of signed code capsules.

Capsules from 1 kB to 1 MB are signed and verified; the table reports
the modelled CPU cost against the wireless transfer time, plus the
end-to-end COD latency with security on vs off.  The functional half of
the experiment re-checks that tampered and untrusted capsules are
rejected on the wire.

Expected shape: signature overhead is a small, shrinking fraction of
transfer time as capsules grow (hashing is ~100ns/B, GPRS is 200µs/B).
"""

from __future__ import annotations

import pytest

from repro.analysis import render_table
from repro.core import World, mutual_trust, standard_host
from repro.lmu import CodeRepository, build_capsule, code_unit
from repro.net import GPRS, LAN, Position
from repro.security import (
    KeyPair,
    OPEN_POLICY,
    SIGNATURE_BYTES,
    signing_delay,
    verification_delay,
    sign_capsule,
)

from _common import (
    gate_against_baseline,
    instrument,
    once,
    quick,
    run_process,
    write_report,
    write_result,
)

# Quick mode drops the 1 MB capsule (a ~200 s simulated GPRS transfer
# per signed/open pair); the reported run stays SIZES[1] = 10 kB in
# both modes so the gated report is shape-identical.
SIZES = (
    [1_000, 10_000, 100_000]
    if quick()
    else [1_000, 10_000, 100_000, 1_000_000]
)


def make_capsule(size):
    repository = CodeRepository()
    repository.publish(
        code_unit("blob", "1.0.0", lambda: (lambda ctx: None), size)
    )
    return build_capsule("bench", "cod-reply", ["blob"], repository.resolve)


def cod_latency(size, signed, observe=False):
    world = World(seed=808)
    profiler = instrument(world) if observe else None
    world.transport._rng.random = lambda: 0.999
    policy_kwargs = {} if signed else {"policy": OPEN_POLICY}
    phone = standard_host(
        world, "phone", Position(0, 0), [GPRS], cpu_speed=0.2, **policy_kwargs
    )
    repository = CodeRepository()
    repository.publish(
        code_unit("blob", "1.0.0", lambda: (lambda ctx: None), size)
    )
    server = standard_host(
        world, "server", Position(0, 0), [LAN], fixed=True,
        repository=repository,
    )
    mutual_trust(phone, server)
    phone.node.interface("gprs").attach()

    def go():
        yield from phone.component("cod").fetch(
            "server", ["blob"], timeout=3600.0
        )

    run_process(world, go())
    if observe:
        return world, profiler
    return world.now


def run_experiment():
    rows = []
    for size in SIZES:
        capsule = make_capsule(size)
        sign_s = signing_delay(capsule.size_bytes)
        verify_s = verification_delay(capsule.size_bytes)
        transfer_s = GPRS.transfer_time(capsule.size_bytes + SIGNATURE_BYTES)
        secure_latency = cod_latency(size, signed=True)
        open_latency = cod_latency(size, signed=False)
        overhead_pct = (secure_latency - open_latency) / open_latency * 100.0
        rows.append(
            [
                size,
                sign_s * 1000,
                verify_s * 1000,
                transfer_s,
                secure_latency,
                open_latency,
                overhead_pct,
            ]
        )
    return rows


def run_functional_checks():
    """Tampered and untrusted capsules must die at the receiving host."""
    world = World(seed=809)
    world.transport._rng.random = lambda: 0.999
    phone = standard_host(world, "phone", Position(0, 0), [GPRS])
    repository = CodeRepository()
    repository.publish(
        code_unit("blob", "1.0.0", lambda: (lambda ctx: None), 10_000)
    )
    server = standard_host(
        world, "server", Position(0, 0), [LAN], fixed=True,
        repository=repository,
    )
    mutual_trust(phone, server)
    phone.node.interface("gprs").attach()

    # A capsule signed by the server, then corrupted in flight.
    capsule = make_capsule(10_000)
    sign_capsule(server.keypair, capsule)
    capsule.tamper()
    rejected = {"tampered": False, "untrusted": False}

    def go():
        from repro.errors import SignatureInvalid, UntrustedPrincipal

        try:
            yield from phone.admit_capsule(capsule, "install-code")
        except SignatureInvalid:
            rejected["tampered"] = True
        stranger = KeyPair.generate(
            "stranger", world.streams.stream("keys.stranger")
        )
        fresh = make_capsule(10_000)
        sign_capsule(stranger, fresh)
        try:
            yield from phone.admit_capsule(fresh, "install-code")
        except UntrustedPrincipal:
            rejected["untrusted"] = True

    run_process(world, go())
    return rejected


def test_e8_security(benchmark):
    rows = once(benchmark, run_experiment)
    table = render_table(
        "E8 / Table 4 — signing/verification cost vs transfer time (GPRS)",
        [
            "capsule B",
            "sign ms",
            "verify ms",
            "transfer s",
            "COD signed s",
            "COD open s",
            "overhead %",
        ],
        rows,
        note="reference-speed signer; 0.2x-speed verifier inflates measured overhead",
    )
    write_result("e8_security", table)
    world, profiler = cod_latency(SIZES[1], signed=True, observe=True)
    write_report(
        "e8_security", world, profiler,
        params={"capsule_bytes": SIZES[1], "signed": True},
    )
    gate_against_baseline("e8_security")

    rejected = run_functional_checks()
    assert rejected["tampered"], "tampered capsule must be rejected"
    assert rejected["untrusted"], "untrusted signer must be rejected"

    overheads = [row[6] for row in rows]
    # Security never costs more than a few percent of a GPRS fetch.
    assert max(overheads) < 5.0
    # And the fraction shrinks as capsules grow.
    assert overheads[-1] < overheads[0]
    # Beyond the fixed-cost regime, CPU stays under 5% of transfer time.
    for row in rows:
        if row[0] >= 10_000:
            assert (row[1] + row[2]) / 1000.0 < row[3] * 0.05
