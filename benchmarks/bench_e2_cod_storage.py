"""E2 / Figure 1 — COD vs preinstallation under limited storage.

A PDA faces a Zipf stream of playback requests over a 10-codec
catalogue (~1.5 MB with the shared DSP library) while its storage quota
is swept.  Strategies:

* preinstall — ship the hottest codecs that fit; no connectivity later;
* cod-noevict — fetch on demand, never delete; fails when full;
* cod-lru — fetch on demand with LRU eviction (the paper's "delete it,
  conserving resources").

Expected shape: COD+LRU sustains ~100% playback success at every
quota; the static strategies degrade as the quota shrinks.
"""

from __future__ import annotations

from repro.analysis import render_table
from repro.apps import CODEC_CATALOGUE, MediaPlayer, build_codec_repository
from repro.core import World, mutual_trust, standard_host
from repro.errors import QuotaExceeded, UnitNotFound
from repro.lmu import lru_policy
from repro.net import GPRS, LAN, Position
from repro.workloads import zipf_indices

from _common import instrument, once, run_process, write_report, write_result

QUOTAS = [300_000, 500_000, 800_000, 1_200_000, 2_000_000]
REQUESTS = 60


def build(quota, eviction):
    world = World(seed=202)
    world.transport._rng.random = lambda: 0.999
    pda = standard_host(
        world, "pda", Position(0, 0), [GPRS], cpu_speed=0.2, quota_bytes=quota
    )
    pda.codebase.eviction = eviction
    store = standard_host(
        world,
        "store",
        Position(0, 0),
        [LAN],
        fixed=True,
        repository=build_codec_repository(),
    )
    mutual_trust(pda, store)
    pda.node.interface("gprs").attach()
    return world, pda, store


def playlist(world):
    formats = sorted(CODEC_CATALOGUE)
    rng = world.streams.stream("e2.playlist")
    # Zipf over popularity: rank formats by catalogue order.
    return [formats[i] for i in zipf_indices(rng, len(formats), REQUESTS)]


def run_preinstall(quota):
    """Install hottest-first until the quota refuses; then play offline."""
    world, pda, store = build(quota, eviction=None)
    formats = sorted(CODEC_CATALOGUE)
    # dsp-lib first: every codec needs it.
    try:
        pda.codebase.install(store.repository.latest("dsp-lib"))
    except QuotaExceeded:
        pass
    for format_name in formats:
        unit = store.repository.latest(f"codec-{format_name}")
        try:
            pda.codebase.install(unit)
        except QuotaExceeded:
            continue
    successes = 0
    stream = playlist(world)

    def go():
        nonlocal successes
        for format_name in stream:
            name = f"codec-{format_name}"
            if name in pda.codebase and "dsp-lib" in pda.codebase:
                unit = pda.codebase.touch(name)
                outcome = pda.run_guest(unit.instantiate(), pda.id, "t")
                yield from pda.execute(outcome.work_used)
                successes += 1

    run_process(world, go())
    return successes / REQUESTS, 0.02, pda.codebase.used_bytes


def run_cod(quota, eviction, observe=False):
    world, pda, store = build(quota, eviction=eviction)
    profiler = instrument(world) if observe else None
    player = MediaPlayer(pda, "store")
    stream = playlist(world)
    successes = 0

    def go():
        nonlocal successes
        for format_name in stream:
            try:
                yield from player.play(format_name)
                successes += 1
            except (UnitNotFound, QuotaExceeded):
                continue

    run_process(world, go())
    if observe:
        return world, profiler
    return (
        successes / REQUESTS,
        player.mean_time_to_play(),
        pda.codebase.used_bytes,
    )


def run_experiment():
    rows = []
    for quota in QUOTAS:
        pre_ok, pre_time, pre_storage = run_preinstall(quota)
        ne_ok, ne_time, ne_storage = run_cod(quota, eviction=None)
        lru_ok, lru_time, lru_storage = run_cod(quota, eviction=lru_policy)
        rows.append(
            [
                quota // 1000,
                pre_ok,
                ne_ok,
                lru_ok,
                pre_time,
                ne_time,
                lru_time,
                lru_storage // 1000,
            ]
        )
    return rows


def test_e2_cod_storage(benchmark):
    rows = once(benchmark, run_experiment)
    table = render_table(
        "E2 / Figure 1 — playback success vs storage quota (Zipf playlist, 60 requests)",
        [
            "quota kB",
            "pre ok",
            "noevict ok",
            "lru ok",
            "pre s",
            "noevict s",
            "lru s",
            "lru kB used",
        ],
        rows,
        note="catalogue 1.5MB across 10 codecs + shared DSP library",
    )
    write_result("e2_cod_storage", table)
    world, profiler = run_cod(QUOTAS[0], eviction=lru_policy, observe=True)
    write_report(
        "e2_cod_storage", world, profiler,
        params={"quota": QUOTAS[0], "eviction": "lru", "requests": REQUESTS},
    )

    for row in rows:
        quota_kb, pre_ok, ne_ok, lru_ok = row[0], row[1], row[2], row[3]
        # COD+LRU always plays everything.
        assert lru_ok == 1.0, f"LRU should sustain full coverage at {quota_kb}kB"
        # And never worse than the static strategies.
        assert lru_ok >= pre_ok and lru_ok >= ne_ok
        # Storage stays within quota.
        assert row[7] * 1000 <= quota_kb * 1000
    # The static strategies genuinely degrade at the smallest quota.
    assert rows[0][1] < 0.9
    # And recover as storage grows.
    assert rows[-1][1] >= rows[0][1]
