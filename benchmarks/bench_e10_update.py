"""E10 / Table 5 — dynamic middleware self-update via COD.

A phone's discovery component is upgraded while a peer keeps probing it
with discovery queries.  Hot swap (fetch new component via COD, swap in
place) is compared with the traditional full reinstall (stop the whole
stack, fetch every component, restart).

Expected shape: the hot swap moves only the changed component's bytes,
its service gap is the swap window only, and (near-)zero probes are
lost; the reinstall moves the whole stack and drops probes for the
entire fetch.
"""

from __future__ import annotations

from repro.analysis import render_table
from repro.core import (
    ClientServer,
    CodeOnDemand,
    Discovery,
    RemoteEvaluation,
    World,
    component_unit,
    mutual_trust,
    standard_host,
)
from repro.lmu import CodeRepository, Version
from repro.net import GPRS, LAN, Message, Position

from _common import instrument, once, run_process, write_report, write_result

PROBE_INTERVAL = 0.5
PROBES = 60


class DiscoveryV2(Discovery):
    """The shipped upgrade."""

    version = Version(1, 1, 0)
    code_size = 5_000


class ClientServerV2(ClientServer):
    version = Version(1, 1, 0)


class RemoteEvaluationV2(RemoteEvaluation):
    version = Version(1, 1, 0)


def build(seed):
    world = World(seed=seed)
    world.transport._rng.random = lambda: 0.999
    repository = CodeRepository()
    repository.publish(component_unit(DiscoveryV2, version="1.1.0"))
    repository.publish(component_unit(ClientServerV2, version="1.1.0"))
    repository.publish(component_unit(RemoteEvaluationV2, version="1.1.0"))
    phone = standard_host(world, "phone", Position(0, 0), [GPRS])
    server = standard_host(
        world, "server", Position(0, 0), [LAN], fixed=True,
        repository=repository,
    )
    mutual_trust(phone, server)
    phone.node.interface("gprs").attach()
    return world, phone, server


def run_strategy(strategy, seed=1010, observe=False):
    world, phone, server = build(seed)
    profiler = instrument(world) if observe else None

    def prober():
        for _ in range(PROBES):
            yield server.send(
                Message("server", "phone", "disc.request", payload={
                    "query_id": 0,
                    "service_type": "probe",
                    "requester": "server",
                }),
                reliable=False,
            )
            yield world.env.timeout(PROBE_INTERVAL)

    def updater():
        yield world.env.timeout(2.0)
        update = phone.component("update")
        if strategy == "hot-swap":
            report = yield from update.hot_swap(
                "discovery", "server", "component:discovery"
            )
        else:
            report = yield from update.full_reinstall(
                "server",
                {
                    "discovery": "component:discovery",
                    "cs": "component:cs",
                    "rev": "component:rev",
                },
            )
        return report

    world.env.process(prober())
    update_process = world.env.process(updater())
    report = world.run(until=update_process)
    world.run(until=PROBES * PROBE_INTERVAL + 5.0)
    if observe:
        return world, profiler
    return report


def run_experiment():
    hot = run_strategy("hot-swap")
    reinstall = run_strategy("reinstall")
    rows = [
        [
            report.strategy,
            report.bytes_transferred,
            report.downtime_s,
            report.requests_lost,
            report.new_version,
        ]
        for report in (hot, reinstall)
    ]
    return rows, hot, reinstall


def test_e10_update(benchmark):
    rows, hot, reinstall = once(benchmark, run_experiment)
    table = render_table(
        "E10 / Table 5 — middleware update: hot swap vs full reinstall",
        ["strategy", "bytes", "downtime s", "probes lost", "installed"],
        rows,
        note=f"discovery probes every {PROBE_INTERVAL}s during the update",
    )
    write_result("e10_update", table)
    world, profiler = run_strategy("hot-swap", observe=True)
    write_report(
        "e10_update", world, profiler, params={"strategy": "hot-swap"}
    )

    # Hot swap ships one component; reinstall ships the stack.
    assert hot.bytes_transferred < reinstall.bytes_transferred
    # Service interruption: hot swap's window is tiny.
    assert hot.downtime_s < reinstall.downtime_s / 2
    assert hot.requests_lost <= 1
    assert reinstall.requests_lost > hot.requests_lost
    # Both end on the new version.
    assert "1.1.0" in hot.new_version
    assert "discovery@1.1.0" in reinstall.new_version
