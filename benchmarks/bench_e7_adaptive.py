"""E7 / Figure 4 — adaptive paradigm selection vs any fixed paradigm.

A mixed stream of tasks (quick lookups, chatty bulk processing,
reusable capabilities, multi-host errands) is costed under each fixed
paradigm and under the adaptation engine, across two contexts: a free
Wi-Fi hotspot and metered GPRS coverage.  Costing uses the same
estimators the selector itself runs (E1 validates those estimators
against the simulated middleware end to end).

Expected shape: the adaptive strategy matches the per-task best choice
and therefore beats every fixed paradigm on the total composite cost.
"""

from __future__ import annotations

from repro.analysis import render_table
from repro.core import CostWeights, PARADIGMS, ParadigmSelector
from repro.net import GPRS, LAN, WIFI_ADHOC
from repro.net.network import _backbone_link, _direct_link
from repro.sim import RandomStreams
from repro.workloads import mixed_tasks

from _common import once, write_report_data, write_result

TASKS = 60
CONTEXTS = [
    ("wifi-hotspot", _direct_link(WIFI_ADHOC)),
    ("gprs-coverage", _backbone_link(GPRS, LAN)),
]
WEIGHTS = CostWeights(time=1.0, money=1.0)


def run_experiment():
    rng = RandomStreams(707).stream("e7.tasks")
    tasks = mixed_tasks(rng, TASKS)
    selector = ParadigmSelector()
    rows = []
    for context_name, link in CONTEXTS:
        totals = {paradigm: 0.0 for paradigm in PARADIGMS}
        adaptive_total = 0.0
        choices = {paradigm: 0 for paradigm in PARADIGMS}
        for _class_name, profile in tasks:
            estimates = {
                estimate.paradigm: estimate.composite(WEIGHTS)
                for estimate in selector.estimates(profile, link)
            }
            for paradigm, cost in estimates.items():
                totals[paradigm] += cost
            winner = selector.choose(profile, link, WEIGHTS)
            adaptive_total += estimates[winner.paradigm]
            choices[winner.paradigm] += 1
        rows.append(
            [
                context_name,
                totals["cs"],
                totals["rev"],
                totals["cod"],
                totals["ma"],
                adaptive_total,
                " ".join(
                    f"{paradigm}:{count}"
                    for paradigm, count in sorted(choices.items())
                    if count
                ),
            ]
        )
    return rows


def test_e7_adaptive(benchmark):
    rows = once(benchmark, run_experiment)
    table = render_table(
        "E7 / Figure 4 — total composite cost of 60 mixed tasks per strategy",
        [
            "context",
            "fixed CS",
            "fixed REV",
            "fixed COD",
            "fixed MA",
            "adaptive",
            "adaptive picks",
        ],
        rows,
        note="composite = time + money (equal weights); estimators validated by E1",
    )
    write_result("e7_adaptive", table)
    metrics = {}
    for row in rows:
        context = str(row[0]).replace("-", "_")
        for column, paradigm in enumerate(("cs", "rev", "cod", "ma"), 1):
            metrics[f"e7.{context}.fixed_{paradigm}"] = row[column]
        metrics[f"e7.{context}.adaptive"] = row[5]
    write_report_data(
        "e7_adaptive", metrics=metrics, params={"tasks": TASKS}
    )

    for row in rows:
        fixed = row[1:5]
        adaptive = row[5]
        # Adaptive never loses to the best fixed strategy...
        assert adaptive <= min(fixed) * 1.0001
        # ...and strictly beats every fixed one (the mix is genuinely mixed).
        for fixed_total in fixed:
            assert adaptive < fixed_total
        # More than one paradigm actually got picked.
        assert " " in row[6]
