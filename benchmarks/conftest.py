"""Benchmark-suite options.

``--quick`` shrinks every sweep to a smoke-test size (CI uses this to
verify the benches still run and emit parseable JSON reports without
paying for the full parameter grids).  It works by setting the
``REPRO_QUICK`` environment variable, which ``_common.quick()`` reads,
so plain ``REPRO_QUICK=1 pytest benchmarks`` behaves identically.
"""

from __future__ import annotations

import os


def pytest_addoption(parser):
    parser.addoption(
        "--quick",
        action="store_true",
        default=False,
        help="shrink benchmark sweeps to smoke-test size",
    )


def pytest_configure(config):
    if config.getoption("--quick", default=False):
        os.environ["REPRO_QUICK"] = "1"
