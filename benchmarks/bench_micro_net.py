"""Microbenchmarks — topology queries on the network fabric.

Wall-clock guard for the topology-epoch caches and the spatial index
(see docs/PERFORMANCE.md): a 200-node ad-hoc deployment under mobility
runs the query pattern a live simulation produces — every node scans
its neighbourhood each beacon, routing snapshots adjacency and plans
paths, and only a fraction of the fleet moves between bursts.  The same
movement/query script is replayed against the naive O(N²) reference
sweeps (``repro.net.reference``) and against the cached fast paths.

The speedup floor (5x full, 3x quick) lives in
``benchmarks/baselines/micro_net[_quick].json`` and is enforced by the
shared ``gate_against_baseline`` mechanism (``repro.obs.diff``) — the
same comparison CI re-runs as ``python -m repro compare --fail-on
regress``.
"""

from __future__ import annotations

import random
from time import perf_counter

from repro.net import (
    Area,
    Network,
    NetworkNode,
    Position,
    RoutingTable,
    WIFI_ADHOC,
    grid_positions,
)
from repro.net import reference as ref
from repro.sim import Environment

from _common import gate_against_baseline, quick, write_report_data

NODES = 200
AREA = Area(1500.0, 1500.0)
MOVERS_PER_ROUND = 20
PATHS_PER_SWEEP = 20


def _build_network() -> Network:
    env = Environment()
    network = Network(env)
    for index, position in enumerate(grid_positions(NODES, AREA, margin=50.0)):
        network.add_node(
            NetworkNode(
                env, f"n{index}", position, technologies=[WIFI_ADHOC]
            )
        )
    return network


def _movement_script(rounds: int):
    """Deterministic per-round moves: (node id, new position)."""
    rng = random.Random(42)
    script = []
    for _round in range(rounds):
        moves = []
        for _mover in range(MOVERS_PER_ROUND):
            node_id = f"n{rng.randrange(NODES)}"
            moves.append(
                (node_id, Position(rng.uniform(0, 1500), rng.uniform(0, 1500)))
            )
        script.append(moves)
    return script


def _path_pairs():
    rng = random.Random(7)
    return [
        (f"n{rng.randrange(NODES)}", f"n{rng.randrange(NODES)}")
        for _ in range(PATHS_PER_SWEEP)
    ]


def _run_naive(script, pairs, sweeps: int) -> float:
    network = _build_network()
    nodes = list(network.nodes.values())
    started = perf_counter()
    for moves in script:
        for node_id, position in moves:
            network.nodes[node_id].move_to(position)
        for _sweep in range(sweeps):
            ref.naive_adjacency(network, adhoc_only=True)
            for node in nodes:
                ref.naive_neighbors(network, node)
            for source_id, target_id in pairs:
                ref.naive_shortest_path(
                    network, source_id, target_id, adhoc_only=True
                )
    return perf_counter() - started


def _run_cached(script, pairs, sweeps: int):
    network = _build_network()
    nodes = list(network.nodes.values())
    started = perf_counter()
    for moves in script:
        for node_id, position in moves:
            network.nodes[node_id].move_to(position)
        for _sweep in range(sweeps):
            network.adjacency(adhoc_only=True)
            for node in nodes:
                network.neighbors(node)
            for source_id, target_id in pairs:
                network.shortest_path(source_id, target_id, adhoc_only=True)
    return perf_counter() - started, network


def test_topology_query_speedup(benchmark):
    """Cached adjacency+neighbors+paths must beat the naive sweep.

    The floor (5x full, 3x in --quick runs where shorter scripts mean
    more timing noise) is the checked-in baseline document; the gate is
    the shared report diff, not a hand-rolled assert.
    """
    rounds = 2 if quick() else 3
    sweeps = 2 if quick() else 3
    script = _movement_script(rounds)
    pairs = _path_pairs()

    naive_seconds = _run_naive(script, pairs, sweeps)
    cached_seconds, network = _run_cached(script, pairs, sweeps)

    # Spot-check coherence right where the speed is measured: the cached
    # answers at the final topology must equal a fresh naive recompute.
    sample = list(network.nodes.values())[:10]
    for node in sample:
        assert [n.id for n in network.neighbors(node)] == [
            n.id for n in ref.naive_neighbors(network, node)
        ]
    got = network.adjacency(adhoc_only=True)
    expected = ref.naive_adjacency(network, adhoc_only=True)
    assert {k: set(v) for k, v in got.items()} == expected

    speedup = naive_seconds / cached_seconds
    print(
        f"\ntopology queries ({NODES} nodes, {rounds} rounds x {sweeps} "
        f"sweeps): naive {naive_seconds:.3f}s vs cached "
        f"{cached_seconds:.3f}s ({speedup:.1f}x)"
    )
    info = network.cache_info()
    path = write_report_data(
        "micro_net",
        metrics={
            "nodes": float(NODES),
            "rounds": float(rounds),
            "sweeps_per_round": float(sweeps),
            "naive_seconds": naive_seconds,
            "cached_seconds": cached_seconds,
            "speedup": speedup,
            "topo.epoch": info["epoch"],
            "topo.hits": info["hits"],
            "topo.misses": info["misses"],
            "topo.invalidations": info["invalidations"],
            "topo.grid_cell_m": info["grid_cell_m"],
        },
        params={"quick": quick()},
    )
    gate_against_baseline("micro_net", path)
    benchmark(lambda: _run_cached(script, pairs, sweeps))


def test_routing_table_skips_bfs(benchmark):
    """Repeated sends between fixed endpoints reuse the memoised tree."""
    network = _build_network()
    table = RoutingTable(network, adhoc_only=True)
    pairs = _path_pairs()
    repeats = 20 if quick() else 50

    def route_repeatedly():
        total_hops = 0
        for _repeat in range(repeats):
            for source_id, target_id in pairs:
                path = table.path(source_id, target_id)
                if path is not None:
                    total_hops += len(path) - 1
        return total_hops

    route_repeatedly()  # warm the trees once
    assert table.stats["misses"] <= len({s for s, _ in pairs})
    hits_before = table.stats["hits"]
    benchmark(route_repeatedly)
    assert table.stats["hits"] > hits_before
    # Stable topology: every re-plan after warmup is a tree hit.
    for source_id, target_id in pairs:
        assert table.path(source_id, target_id) == ref.naive_shortest_path(
            network, source_id, target_id, adhoc_only=True
        )
