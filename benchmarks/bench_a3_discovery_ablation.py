"""A3 (ablation) — discovery: gratuitous beaconing vs on-demand queries.

The decentralised discovery component supports both proactive beacons
(providers periodically broadcast their adverts; clients answer lookups
from cache) and reactive queries (clients broadcast on demand).  This
ablation sweeps the client's lookup rate and reports radio traffic and
lookup latency for three configurations: query-only, beacon-1s, and
beacon-10s.

Expected: beaconing buys near-zero lookup latency at a fixed traffic
floor; query-only pays per lookup — so reactive wins at low lookup
rates and proactive at high ones.
"""

from __future__ import annotations

from repro.analysis import render_table
from repro.core import World, mutual_trust, service, standard_host
from repro.net import Position, WIFI_ADHOC

from _common import instrument, once, run_process, write_report, write_result

DURATION = 300.0
LOOKUP_COUNTS = [3, 30, 150]
CONFIGURATIONS = [
    ("query-only", None),
    ("beacon-10s", 10.0),
    ("beacon-1s", 1.0),
]


def run_cell(lookups, beacon_interval, observe=False):
    world = World(seed=131)
    profiler = instrument(world) if observe else None
    world.transport._rng.random = lambda: 0.999
    client = standard_host(world, "client", Position(0, 0), [WIFI_ADHOC])
    provider = standard_host(
        world,
        "provider",
        Position(20, 0),
        [WIFI_ADHOC],
        beacon_interval=beacon_interval,
    )
    mutual_trust(client, provider)
    provider.component("discovery").advertise(
        service("printer", "provider", "lobby")
    )
    interval = DURATION / lookups
    latencies = []

    def go():
        for _lookup in range(lookups):
            started = world.now
            found = yield from client.component("discovery").find(
                "printer", window=1.0
            )
            assert found
            latencies.append(world.now - started)
            yield world.env.timeout(interval)

    run_process(world, go())
    if observe:
        return world, profiler
    total_bytes = (
        client.node.costs.total_bytes_sent
        + provider.node.costs.total_bytes_sent
    )
    return total_bytes, sum(latencies) / len(latencies)


def run_experiment():
    rows = []
    for lookups in LOOKUP_COUNTS:
        row = [lookups]
        for _name, beacon_interval in CONFIGURATIONS:
            total_bytes, mean_latency = run_cell(lookups, beacon_interval)
            row.extend([total_bytes, mean_latency])
        rows.append(row)
    return rows


def test_a3_discovery_ablation(benchmark):
    rows = once(benchmark, run_experiment)
    headers = ["lookups/5min"]
    for name, _interval in CONFIGURATIONS:
        headers.extend([f"{name} B", f"{name} lat s"])
    table = render_table(
        "A3 (ablation) — proactive beaconing vs reactive queries "
        f"(over {DURATION:.0f}s)",
        headers,
        rows,
        note="one provider in range; cache answers lookups between beacons",
    )
    write_result("a3_discovery_ablation", table)
    world, profiler = run_cell(3, beacon_interval=None, observe=True)
    write_report(
        "a3_discovery_ablation", world, profiler,
        params={"lookups": 3, "beacon_interval": None},
    )

    by_lookups = {row[0]: row for row in rows}
    # Beaconing keeps lookup latency near zero (cache hits)...
    for row in rows:
        beacon_1s_latency = row[6]
        query_latency = row[2]
        assert beacon_1s_latency < query_latency
    # ...but costs a traffic floor: at the LOWEST lookup rate,
    # query-only is cheapest; at the HIGHEST, fast beaconing no longer
    # dominates the budget the way it does at idle.
    low = by_lookups[LOOKUP_COUNTS[0]]
    assert low[1] < low[5]  # query-only bytes < beacon-1s bytes at idle
    high = by_lookups[LOOKUP_COUNTS[-1]]
    ratio_low = low[5] / low[1]
    ratio_high = high[5] / high[1]
    assert ratio_high < ratio_low  # beaconing amortises as lookups grow
