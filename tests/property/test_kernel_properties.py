"""Property-based tests for the kernel, metrics, geometry, and tuple space."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.net import Area, CostMeter, GPRS, Position, WIFI_ADHOC
from repro.sim import Environment, Store
from repro.sim.metrics import Histogram, TimeSeries
from repro.tuplespace import ANY, Template, TupleSpace


class TestStoreProperties:
    @given(st.lists(st.integers(), max_size=30))
    def test_fifo_order_preserved(self, items):
        env = Environment()
        store = Store(env)
        received = []

        def producer(env):
            for item in items:
                yield store.put(item)

        def consumer(env):
            for _ in items:
                value = yield store.get()
                received.append(value)

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert received == items

    @given(
        st.lists(st.integers(), min_size=1, max_size=20),
        st.integers(min_value=1, max_value=5),
    )
    def test_bounded_store_never_overfills(self, items, capacity):
        env = Environment()
        store = Store(env, capacity=capacity)
        high_water = [0]

        def producer(env):
            for item in items:
                yield store.put(item)
                high_water[0] = max(high_water[0], len(store))

        def consumer(env):
            for _ in items:
                yield env.timeout(1.0)
                yield store.get()

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert high_water[0] <= capacity


class TestHistogramProperties:
    @given(st.lists(st.floats(-1e9, 1e9), min_size=1, max_size=100))
    def test_quantiles_bounded_and_monotone(self, samples):
        histogram = Histogram("h")
        for sample in samples:
            histogram.observe(sample)
        quantiles = [histogram.quantile(q / 10) for q in range(11)]
        assert quantiles[0] == min(samples)
        assert quantiles[-1] == max(samples)
        assert quantiles == sorted(quantiles)

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=100))
    def test_mean_between_min_and_max(self, samples):
        histogram = Histogram("h")
        for sample in samples:
            histogram.observe(sample)
        assert histogram.min - 1e-6 <= histogram.mean <= histogram.max + 1e-6


class TestTimeSeriesProperties:
    @given(
        st.lists(
            st.tuples(st.floats(0, 1e6), st.floats(-1e6, 1e6)),
            min_size=2,
            max_size=50,
        )
    )
    def test_time_average_bounded_by_extremes(self, points):
        ordered = sorted(points, key=lambda pair: pair[0])
        # Deduplicate times to keep the series strictly sensible.
        seen = set()
        unique = []
        for time, value in ordered:
            if time not in seen:
                seen.add(time)
                unique.append((time, value))
        if len(unique) < 2:
            return
        series = TimeSeries("s")
        for time, value in unique:
            series.record(time, value)
        values = [value for _, value in unique]
        # Step interpolation: the last value never contributes.
        assert min(values) - 1e-6 <= series.time_average() <= max(values) + 1e-6


class TestGeometryProperties:
    positions = st.builds(
        Position, st.floats(-1e4, 1e4), st.floats(-1e4, 1e4)
    )

    @given(positions, positions)
    def test_distance_symmetric_nonnegative(self, a, b):
        assert a.distance_to(b) == b.distance_to(a) >= 0

    @given(positions, positions, positions)
    def test_triangle_inequality(self, a, b, c):
        assert a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-6

    @given(positions, positions, st.floats(0.001, 1e5))
    def test_towards_never_overshoots(self, a, b, step):
        moved = a.towards(b, step)
        assert moved.distance_to(b) <= a.distance_to(b) + 1e-6

    @given(positions, st.floats(1, 1e3), st.floats(1, 1e3))
    def test_clamp_stays_inside(self, position, width, height):
        area = Area(width, height)
        assert area.contains(area.clamp(position))


class TestCostMeterProperties:
    @given(
        st.lists(
            st.tuples(st.booleans(), st.integers(0, 10_000_000)), max_size=30
        )
    )
    def test_money_monotone_and_bytes_conserved(self, transfers):
        meter = CostMeter()
        last_money = 0.0
        sent = received = 0
        for outbound, size in transfers:
            meter.account_transfer(GPRS, size, sent=outbound)
            assert meter.money >= last_money
            last_money = meter.money
            if outbound:
                sent += size
            else:
                received += size
        assert meter.total_bytes_sent == sent
        assert meter.total_bytes_received == received

    @given(st.integers(0, 10_000_000), st.integers(0, 10_000_000))
    def test_merge_adds_exactly(self, a_bytes, b_bytes):
        a = CostMeter()
        b = CostMeter()
        a.account_transfer(GPRS, a_bytes, sent=True)
        b.account_transfer(GPRS, b_bytes, sent=True)
        expected = a.money + b.money
        a.merge(b)
        assert a.total_bytes_sent == a_bytes + b_bytes
        assert a.money == pytest.approx(expected)

    def test_free_technology_costs_nothing_ever(self):
        meter = CostMeter()
        meter.account_transfer(WIFI_ADHOC, 10**9, sent=True)
        assert meter.money == 0.0


tuple_values = st.one_of(
    st.integers(-100, 100), st.text(max_size=6), st.booleans()
)
tuples_ = st.lists(tuple_values, min_size=1, max_size=4).map(tuple)


class TestTupleSpaceProperties:
    @given(st.lists(tuples_, max_size=30))
    def test_out_then_in_all_conserves_content(self, items):
        env = Environment()
        space = TupleSpace(env)
        for item in items:
            space.out(item)
        assert len(space) == len(items)
        drained = []
        for arity in range(1, 5):
            drained.extend(space.in_all(tuple([ANY] * arity)))
        assert sorted(map(repr, drained)) == sorted(map(repr, items))
        assert len(space) == 0

    @given(tuples_)
    def test_exact_template_matches_itself(self, item):
        assert Template(*item).matches(item)

    @given(tuples_)
    def test_wildcard_template_matches_same_arity_only(self, item):
        assert Template(*([ANY] * len(item))).matches(item)
        assert not Template(*([ANY] * (len(item) + 1))).matches(item)

    @given(st.lists(tuples_, max_size=20), tuples_)
    def test_rdp_consistent_with_rd_all(self, items, probe):
        env = Environment()
        space = TupleSpace(env)
        for item in items:
            space.out(item)
        template = tuple([ANY] * len(probe))
        first = space.rdp(template)
        everything = space.rd_all(template)
        if everything:
            assert first == everything[0]
        else:
            assert first is None
