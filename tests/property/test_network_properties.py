"""Property-based tests for network connectivity and transport invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.net import (
    BLUETOOTH,
    GPRS,
    LAN,
    Message,
    Network,
    NetworkNode,
    Position,
    Transport,
    WIFI_ADHOC,
)
from repro.sim import Environment, RandomStreams

TECH_SETS = [
    [WIFI_ADHOC],
    [BLUETOOTH],
    [WIFI_ADHOC, BLUETOOTH],
    [GPRS],
    [WIFI_ADHOC, GPRS],
]

node_specs = st.lists(
    st.tuples(
        st.floats(0, 500),  # x
        st.floats(0, 500),  # y
        st.sampled_from(range(len(TECH_SETS))),
        st.booleans(),  # attached (for infra interfaces)
    ),
    min_size=2,
    max_size=8,
)


def build_network(specs):
    env = Environment()
    network = Network(env)
    for index, (x, y, tech_index, attach) in enumerate(specs):
        node = NetworkNode(
            env,
            f"n{index}",
            Position(x, y),
            technologies=TECH_SETS[tech_index],
        )
        network.add_node(node)
        if attach:
            for interface in node.interfaces.values():
                if interface.technology.infrastructure:
                    interface.attach()
    return env, network


class TestConnectivityProperties:
    @given(node_specs)
    @settings(max_examples=60)
    def test_links_symmetric(self, specs):
        env, network = build_network(specs)
        ids = list(network.nodes)
        for i, a_id in enumerate(ids):
            for b_id in ids[i + 1 :]:
                a, b = network.node(a_id), network.node(b_id)
                forward = {link.name for link in network.links_between(a, b)}
                backward = {link.name.replace(a_id, "").replace(b_id, "") for link in network.links_between(b, a)}
                # Same number of links each way; ad-hoc names match exactly.
                assert len(network.links_between(a, b)) == len(
                    network.links_between(b, a)
                )
                adhoc_forward = {
                    link.name
                    for link in network.links_between(a, b)
                    if not link.via_backbone
                }
                adhoc_backward = {
                    link.name
                    for link in network.links_between(b, a)
                    if not link.via_backbone
                }
                assert adhoc_forward == adhoc_backward

    @given(node_specs)
    @settings(max_examples=60)
    def test_connected_is_symmetric(self, specs):
        env, network = build_network(specs)
        ids = list(network.nodes)
        for i, a_id in enumerate(ids):
            for b_id in ids[i + 1 :]:
                assert network.connected(a_id, b_id) == network.connected(
                    b_id, a_id
                )

    @given(node_specs)
    @settings(max_examples=40)
    def test_reachable_sets_partition_adhoc_graph(self, specs):
        env, network = build_network(specs)
        ids = list(network.nodes)
        components = {}
        for node_id in ids:
            components[node_id] = frozenset(
                network.reachable_set(node_id, adhoc_only=True)
            )
        # Membership is an equivalence: same component <=> same set.
        for a_id in ids:
            for b_id in ids:
                if b_id in components[a_id]:
                    assert components[a_id] == components[b_id]

    @given(node_specs)
    @settings(max_examples=40)
    def test_shortest_path_endpoints_and_adjacency(self, specs):
        env, network = build_network(specs)
        graph = network.adjacency()
        ids = list(network.nodes)
        for a_id in ids:
            for b_id in ids:
                if a_id == b_id:
                    continue
                path = network.shortest_path(a_id, b_id)
                if path is None:
                    continue
                assert path[0] == a_id and path[-1] == b_id
                for current, following in zip(path, path[1:]):
                    assert following in graph[current]


class TestTransportProperties:
    @given(
        st.integers(min_value=0, max_value=100_000),
        st.floats(min_value=5, max_value=95),
    )
    @settings(max_examples=30, deadline=None)
    def test_bytes_conserved_on_delivery(self, size, distance):
        env = Environment()
        network = Network(env)
        streams = RandomStreams(0)
        transport = Transport(env, network, streams)
        transport._rng.random = lambda: 0.999  # no loss
        a = network.add_node(
            NetworkNode(env, "a", Position(0, 0), technologies=[WIFI_ADHOC])
        )
        b = network.add_node(
            NetworkNode(
                env, "b", Position(distance, 0), technologies=[WIFI_ADHOC]
            )
        )
        message = Message("a", "b", "data", size_bytes=size)

        def go():
            delivered = yield transport.send(message)
            return delivered

        process = env.process(go())
        assert env.run(until=process) is True
        # Sender and receiver book identical wire bytes.
        assert a.costs.total_bytes_sent == b.costs.total_bytes_received
        assert a.costs.total_bytes_sent == message.wire_size
        # Simulated clock advanced by at least the transmission time.
        assert env.now >= WIFI_ADHOC.transfer_time(message.wire_size)

    @given(st.integers(min_value=1, max_value=4))
    @settings(max_examples=20, deadline=None)
    def test_reliable_attempts_bounded(self, max_attempts):
        env = Environment()
        network = Network(env)
        transport = Transport(env, network, RandomStreams(0))
        transport._rng.random = lambda: 0.0  # always lose
        network.add_node(
            NetworkNode(env, "a", Position(0, 0), technologies=[WIFI_ADHOC])
        )
        network.add_node(
            NetworkNode(env, "b", Position(10, 0), technologies=[WIFI_ADHOC])
        )
        from repro.errors import TransportTimeout

        def go():
            yield transport.send_reliable(
                Message("a", "b", "x", size_bytes=10),
                max_attempts=max_attempts,
            )

        env.process(go())
        with pytest.raises(TransportTimeout):
            env.run()
        sent = transport.metrics.counter("net.retransmissions").value
        assert sent == max_attempts - 1
