"""Property-based round trips for the Prometheus exposition format."""

from hypothesis import given, strategies as st

from repro.obs import (
    metrics_to_prometheus,
    parse_prometheus,
    samples_to_exposition,
)
from repro.sim import MetricsRegistry

metric_names = st.from_regex(r"[a-zA-Z_:][a-zA-Z0-9_:]{0,15}", fullmatch=True)
label_names = st.from_regex(r"[a-zA-Z_][a-zA-Z0-9_]{0,15}", fullmatch=True)
label_values = st.text(min_size=0, max_size=20)
finite_floats = st.floats(allow_nan=False, allow_infinity=False)

sample_keys = st.tuples(
    metric_names,
    st.lists(
        st.tuples(label_names, label_values),
        max_size=3,
        unique_by=lambda pair: pair[0],
    ).map(lambda pairs: tuple(sorted(pairs))),
)

samples_strategy = st.dictionaries(
    sample_keys, finite_floats, max_size=10
)


class TestExpositionRoundTrip:
    @given(samples_strategy)
    def test_exposition_parse_exposition_fixpoint(self, samples):
        text = samples_to_exposition(samples)
        parsed = parse_prometheus(text)
        assert parsed == samples
        # One more lap: the rendered form is already canonical.
        assert samples_to_exposition(parsed) == text

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["node-a", "node-b", 'we"ird\\n']),
                st.integers(min_value=1, max_value=50),
            ),
            max_size=6,
        )
    )
    def test_registry_export_parses_back(self, increments):
        registry = MetricsRegistry()
        totals = {}
        for node, amount in increments:
            registry.counter(
                "net.bytes", labels={"node": node}
            ).increment(amount)
            totals[node] = totals.get(node, 0) + amount
        text = metrics_to_prometheus(registry)
        samples = parse_prometheus(text)
        for node, total in totals.items():
            key = ("repro_net_bytes", (("node", node),))
            assert samples[key] == float(total)
        if totals:
            flat = samples[("repro_net_bytes", ())]
            assert flat == float(sum(totals.values()))
        # The parsed samples render to a parse-stable exposition.
        assert parse_prometheus(samples_to_exposition(samples)) == samples
