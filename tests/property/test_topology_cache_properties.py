"""Cache-coherence property tests for the epoch-cached network fabric.

The cached fast paths (spatial grid + topology-epoch caches) must be
*bit-identical* to the naive O(N²) sweeps kept in
:mod:`repro.net.reference`, no matter how mobility, churn, and
interface toggles interleave with queries.  Queries run between
mutations so the caches are populated, invalidated, and repopulated —
the exact pattern a live simulation produces.
"""

from hypothesis import given, settings, strategies as st

from repro.net import (
    BLUETOOTH,
    GPRS,
    Network,
    NetworkNode,
    Position,
    RoutingTable,
    WIFI_ADHOC,
    WIFI_INFRA,
)
from repro.net import reference as ref
from repro.sim import Environment

TECH_SETS = [
    [WIFI_ADHOC],
    [BLUETOOTH],
    [WIFI_ADHOC, BLUETOOTH],
    [GPRS],
    [WIFI_ADHOC, GPRS],
    [WIFI_INFRA],
    [WIFI_ADHOC, WIFI_INFRA],
]

coordinate = st.floats(0, 400)

#: (x, y, tech-set index, fixed, attach-infra)
node_spec = st.tuples(
    coordinate,
    coordinate,
    st.integers(0, len(TECH_SETS) - 1),
    st.booleans(),
    st.booleans(),
)

operation = st.one_of(
    st.tuples(st.just("move"), st.integers(0, 9), coordinate, coordinate),
    st.tuples(st.just("crash"), st.integers(0, 9)),
    st.tuples(st.just("restart"), st.integers(0, 9)),
    st.tuples(st.just("toggle"), st.integers(0, 9), st.integers(0, 3)),
    st.tuples(st.just("attach"), st.integers(0, 9), st.integers(0, 3)),
    st.tuples(st.just("detach"), st.integers(0, 9), st.integers(0, 3)),
    st.tuples(st.just("add"), node_spec),
)

programs = st.tuples(
    st.lists(node_spec, min_size=2, max_size=4),
    st.lists(operation, min_size=1, max_size=8),
)


def _make_node(env, network, index, spec):
    x, y, tech_index, fixed, attach = spec
    node = NetworkNode(
        env,
        f"n{index}",
        Position(x, y),
        technologies=TECH_SETS[tech_index],
        fixed=fixed,
    )
    network.add_node(node)
    if attach:
        for interface in node.interfaces.values():
            if interface.technology.infrastructure:
                interface.attach()
    return node


def _apply(env, network, nodes, op):
    kind = op[0]
    if kind == "add":
        nodes.append(_make_node(env, network, len(nodes), op[1]))
        return
    node = nodes[op[1] % len(nodes)]
    if kind == "move":
        node.move_to(Position(op[2], op[3]))
    elif kind == "crash":
        node.crash()
    elif kind == "restart":
        node.restart()
    else:
        interfaces = list(node.interfaces.values())
        interface = interfaces[op[2] % len(interfaces)]
        if kind == "toggle":
            if interface.enabled:
                interface.disable()
            else:
                interface.enable()
        elif kind == "attach" and interface.technology.infrastructure:
            if interface.enabled:
                interface.attach()
        elif kind == "detach":
            interface.detach()


def _check_live_queries(network, nodes):
    """The cheap per-step checks: adjacency and every neighbour list.

    Each cached query runs twice, so both the miss path (fresh build)
    and the hit path (epoch-validated reuse) are compared.
    """
    for adhoc_only in (True, False):
        expected = ref.naive_adjacency(network, adhoc_only=adhoc_only)
        for _attempt in range(2):
            got = network.adjacency(adhoc_only=adhoc_only)
            assert {k: set(v) for k, v in got.items()} == expected
    for node in nodes:
        expected_ids = [
            other.id for other in ref.naive_neighbors(network, node)
        ]
        for _attempt in range(2):
            assert [
                other.id for other in network.neighbors(node)
            ] == expected_ids


def _check_full(network, nodes):
    """The expensive end-of-program checks: every pairwise query."""
    table = RoutingTable(network, adhoc_only=True)
    for a in nodes:
        for b in nodes:
            if a.id == b.id:
                continue
            assert list(network.links_between(a, b)) == ref.naive_links_between(
                network, a, b
            )
            for adhoc_only in (True, False):
                expected_path = ref.naive_shortest_path(
                    network, a.id, b.id, adhoc_only=adhoc_only
                )
                assert (
                    network.shortest_path(a.id, b.id, adhoc_only=adhoc_only)
                    == expected_path
                )
                # Second call serves from the path cache.
                assert (
                    network.shortest_path(a.id, b.id, adhoc_only=adhoc_only)
                    == expected_path
                )
            # The routing table's tree-derived paths match the naive BFS
            # bit for bit (same sorted tie-breaking).
            assert table.path(a.id, b.id) == ref.naive_shortest_path(
                network, a.id, b.id, adhoc_only=True
            )
    for node in nodes:
        for adhoc_only in (True, False):
            expected = ref.naive_reachable_set(
                network, node.id, adhoc_only=adhoc_only
            )
            assert network.reachable_set(node.id, adhoc_only=adhoc_only) == expected


class TestTopologyCacheCoherence:
    @given(programs)
    @settings(max_examples=500, deadline=None)
    def test_cached_queries_match_naive_after_interleavings(self, program):
        specs, operations = program
        env = Environment()
        network = Network(env)
        nodes = [
            _make_node(env, network, index, spec)
            for index, spec in enumerate(specs)
        ]
        # Populate the caches before the first mutation.
        _check_live_queries(network, nodes)
        for op in operations:
            _apply(env, network, nodes, op)
            _check_live_queries(network, nodes)
        _check_full(network, nodes)

    @given(st.lists(node_spec, min_size=2, max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_epoch_stability_means_identical_answers(self, specs):
        env = Environment()
        network = Network(env)
        nodes = [
            _make_node(env, network, index, spec)
            for index, spec in enumerate(specs)
        ]
        epoch = network.topology_epoch
        first = {node.id: network.neighbors(node) for node in nodes}
        graph = network.adjacency()
        # No mutations: the epoch must not move, and repeated queries
        # must return the very same cached objects.
        assert network.topology_epoch == epoch
        for node in nodes:
            assert network.neighbors(node) is first[node.id]
        assert network.adjacency() is graph

    @given(st.lists(node_spec, min_size=2, max_size=5), operation)
    @settings(max_examples=120, deadline=None)
    def test_any_single_mutation_invalidates_stale_answers(self, specs, op):
        env = Environment()
        network = Network(env)
        nodes = [
            _make_node(env, network, index, spec)
            for index, spec in enumerate(specs)
        ]
        _check_live_queries(network, nodes)
        _apply(env, network, nodes, op)
        _check_live_queries(network, nodes)
