"""Property-based tests for capsule assembly and signing round trips."""

import random
import string

from hypothesis import given, settings, strategies as st

from repro.lmu import DataUnit, assemble_capsule, code_unit, estimate_size
from repro.security import KeyPair, TrustStore, sign_capsule, verify_capsule

state_values = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(-(2**31), 2**31),
        st.text(max_size=20),
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=6), children, max_size=4),
    ),
    max_leaves=12,
)

agent_states = st.dictionaries(
    st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=10),
    state_values,
    max_size=6,
)

unit_names = st.text(
    alphabet=string.ascii_lowercase + "-", min_size=1, max_size=12
)


def make_unit(name, size):
    return code_unit(name, "1.0.0", lambda: (lambda ctx: None), size)


class TestCapsuleRoundTrip:
    @given(agent_states, st.integers(100, 100_000))
    @settings(max_examples=60)
    def test_state_payload_survives_assembly(self, state, code_size):
        capsule = assemble_capsule(
            sender="host",
            purpose="agent",
            code_units=[make_unit("agent-code", code_size)],
            data_units=[DataUnit("agent-state", state, estimate_size(state))],
        )
        assert capsule.data_unit("agent-state").payload == state
        assert capsule.size_bytes >= code_size

    @given(
        st.lists(
            st.tuples(unit_names, st.integers(1, 10_000)),
            min_size=1,
            max_size=6,
            unique_by=lambda pair: pair[0],
        )
    )
    @settings(max_examples=60)
    def test_capsule_size_sums_units(self, specs):
        units = [make_unit(name, size) for name, size in specs]
        capsule = assemble_capsule("host", "test", units)
        assert capsule.size_bytes >= sum(size for _name, size in specs)
        for name, _size in specs:
            assert capsule.code_unit(name).name == name


class TestSigningRoundTrip:
    @given(agent_states, st.integers(1, 2**31))
    @settings(max_examples=40)
    def test_sign_verify_accepts_genuine(self, state, seed):
        keys = KeyPair.generate("signer", random.Random(seed))
        capsule = assemble_capsule(
            sender="signer",
            purpose="agent",
            code_units=[make_unit("u", 100)],
            data_units=[DataUnit("s", state, estimate_size(state))],
        )
        sign_capsule(keys, capsule)
        store = TrustStore()
        store.trust(keys.public_key)
        assert verify_capsule(store, capsule) == "signer"

    @given(st.integers(1, 2**31))
    @settings(max_examples=40)
    def test_tampering_always_detected(self, seed):
        import pytest

        from repro.errors import SignatureInvalid

        keys = KeyPair.generate("signer", random.Random(seed))
        capsule = assemble_capsule(
            "signer", "test", [make_unit("u", 100)]
        )
        sign_capsule(keys, capsule)
        capsule.tamper()
        store = TrustStore()
        store.trust(keys.public_key)
        with pytest.raises(SignatureInvalid):
            verify_capsule(store, capsule)
