"""Property-based tests for the sandbox-provider substrate.

Three invariants the tentpole depends on:

* **Deterministic metering** — replaying the same guest behaviour
  through a fresh session yields a bit-identical per-run
  :class:`~repro.security.Metrics` record, for both provider flavors.
* **No escape** — no exception class a guest raises (``BaseException``
  subclasses included) ever escapes ``SandboxProvider.execute``.
* **Running storage total** — the incremental byte total the budget
  check reads equals the O(n) recomputation over the live entries
  after any store/discard sequence.
"""

from hypothesis import given, strategies as st

from repro.errors import SandboxViolation
from repro.security import (
    ExecutionContext,
    InProcessProvider,
    QuotaGrant,
    StrictProvider,
)

PROVIDERS = st.sampled_from([InProcessProvider, StrictProvider])

# Charge sequences stay positive; zero-unit charges are legal.
CHARGES = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    max_size=20,
)


def _metered_replay(provider_cls, charges, budget):
    provider = provider_cls("node")
    session = provider.open_session("guest", QuotaGrant(work_units=budget))

    def body(ctx):
        for amount in charges:
            ctx.charge(amount)
        return "done"

    result = provider.execute(session, body)
    totals = provider.close_session(session)
    return result, totals


class TestDeterministicMetering:
    @given(PROVIDERS, CHARGES, st.floats(min_value=1.0, max_value=1e7))
    def test_same_guest_same_metrics(self, provider_cls, charges, budget):
        first_result, first_totals = _metered_replay(
            provider_cls, charges, budget
        )
        second_result, second_totals = _metered_replay(
            provider_cls, charges, budget
        )
        assert first_result.ok == second_result.ok
        assert first_result.metrics == second_result.metrics
        assert first_totals == second_totals

    @given(CHARGES, st.floats(min_value=1.0, max_value=1e7))
    def test_strict_never_exceeds_quota(self, charges, budget):
        _, totals = _metered_replay(StrictProvider, charges, budget)
        assert totals.work_units <= budget

    @given(CHARGES)
    def test_flavors_agree_when_within_budget(self, charges):
        # With an un-trippable budget the two flavors are
        # indistinguishable: same success, same metered figures.
        budget = 1e12
        lenient, lenient_totals = _metered_replay(
            InProcessProvider, charges, budget
        )
        strict, strict_totals = _metered_replay(
            StrictProvider, charges, budget
        )
        assert lenient.ok and strict.ok
        assert lenient.metrics == strict.metrics
        assert lenient_totals == strict_totals


class TestNoEscape:
    @given(
        PROVIDERS,
        st.sampled_from(
            [
                ValueError,
                KeyError,
                RuntimeError,
                ZeroDivisionError,
                RecursionError,
                MemoryError,
                SystemExit,
                KeyboardInterrupt,
                GeneratorExit,
                StopIteration,
                SandboxViolation,
            ]
        ),
        st.text(max_size=20),
    )
    def test_any_raise_is_contained(self, provider_cls, exc_class, message):
        provider = provider_cls("node")
        session = provider.open_session("guest", QuotaGrant())

        def bomb(ctx):
            raise exc_class(message)

        result = provider.execute(session, bomb)
        assert not result.ok
        assert result.error_type is not None

    @given(PROVIDERS)
    def test_fresh_exception_class_is_contained(self, provider_cls):
        provider = provider_cls("node")
        session = provider.open_session("guest", QuotaGrant())

        class Bespoke(BaseException):
            pass

        result = provider.execute(session, lambda ctx: _raise(Bespoke))
        assert not result.ok
        assert "Bespoke" in (result.error_type or "")


def _raise(exc_class):
    raise exc_class("hostile")


# Storage op sequences: (True, key, size) stores, (False, key, 0) discards.
_KEYS = st.sampled_from(["a", "b", "c", "d", "e"])
STORAGE_OPS = st.lists(
    st.one_of(
        st.tuples(st.just(True), _KEYS, st.integers(0, 2000)),
        st.tuples(st.just(False), _KEYS, st.just(0)),
    ),
    max_size=40,
)


class TestStorageRunningTotal:
    @given(STORAGE_OPS)
    def test_running_total_matches_recomputation(self, ops):
        context = ExecutionContext(
            "host", "guest", storage_budget_bytes=5_000
        )
        for is_store, key, size in ops:
            if is_store:
                try:
                    context.store(key, "x" * size)
                except SandboxViolation:
                    pass  # rejected stores must not perturb the total
            else:
                context.discard(key)
            assert (
                context.storage_bytes_used
                == context.storage_bytes_recomputed()
            )

    @given(STORAGE_OPS)
    def test_peak_is_monotone_high_water(self, ops):
        context = ExecutionContext(
            "host", "guest", storage_budget_bytes=5_000
        )
        peak = 0
        for is_store, key, size in ops:
            if is_store:
                try:
                    context.store(key, "x" * size)
                except SandboxViolation:
                    pass
            else:
                context.discard(key)
            peak = max(peak, context.storage_bytes_used)
            assert context.peak_storage_bytes == peak
