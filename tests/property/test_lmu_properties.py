"""Property-based tests (hypothesis) for the LMU layer invariants."""

import string

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import QuotaExceeded
from repro.lmu import (
    Codebase,
    Requirement,
    Version,
    code_unit,
    dependency_closure,
    estimate_size,
    largest_first_policy,
    lfu_policy,
    lru_policy,
)

versions = st.builds(
    Version,
    major=st.integers(0, 20),
    minor=st.integers(0, 20),
    patch=st.integers(0, 20),
)

unit_names = st.text(
    alphabet=string.ascii_lowercase + string.digits + "-",
    min_size=1,
    max_size=12,
).filter(lambda name: not name.startswith("-"))


def make_unit(name, version=Version(1, 0, 0), size=100):
    return code_unit(
        name, str(version), lambda: (lambda ctx: None), size
    )


class TestVersionProperties:
    @given(versions)
    def test_parse_roundtrip(self, version):
        assert Version.parse(str(version)) == version

    @given(versions, versions)
    def test_ordering_total_and_antisymmetric(self, a, b):
        assert (a < b) + (a == b) + (a > b) == 1

    @given(versions)
    def test_self_compatibility(self, version):
        assert version.compatible_with(version)

    @given(versions, versions)
    def test_compatibility_requires_same_major_and_not_older(self, a, b):
        if a.compatible_with(b):
            assert a.major == b.major
            assert a >= b

    @given(versions, versions, versions)
    def test_compatibility_transitive_along_order(self, a, b, c):
        # if a satisfies b's floor and b satisfies c's floor -> a satisfies c.
        if a.compatible_with(b) and b.compatible_with(c):
            assert a.compatible_with(c)


class TestRequirementProperties:
    @given(unit_names, versions)
    def test_parse_roundtrip(self, name, version):
        requirement = Requirement(name, version)
        assert Requirement.parse(str(requirement)) == requirement

    @given(unit_names, versions, versions)
    def test_satisfaction_consistent_with_compatibility(
        self, name, floor, actual
    ):
        requirement = Requirement(name, floor)
        unit = make_unit(name, actual)
        expected = requirement.any_version or actual.compatible_with(floor)
        assert requirement.satisfied_by(unit) == expected


class TestCodebaseQuotaInvariant:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from("abcdefgh"),
                st.integers(min_value=1, max_value=400),
            ),
            max_size=30,
        ),
        st.sampled_from([lru_policy, lfu_policy, largest_first_policy]),
    )
    @settings(max_examples=60)
    def test_used_bytes_never_exceed_quota(self, installs, policy):
        quota = 1000
        codebase = Codebase(quota_bytes=quota, eviction=policy)
        for name, size in installs:
            try:
                codebase.install(make_unit(name, size=size))
            except QuotaExceeded:
                pass
            except Exception:
                # Version conflicts etc. must not corrupt accounting.
                pass
            assert codebase.used_bytes <= quota

    @given(
        st.lists(
            st.tuples(
                st.sampled_from("abcdefgh"),
                st.integers(min_value=1, max_value=400),
            ),
            max_size=30,
        )
    )
    @settings(max_examples=60)
    def test_used_bytes_equals_sum_of_installed(self, installs):
        codebase = Codebase(quota_bytes=1500, eviction=lru_policy)
        for name, size in installs:
            try:
                codebase.install(make_unit(name, size=size))
            except QuotaExceeded:
                pass
        assert codebase.used_bytes == sum(
            unit.size_bytes for unit in codebase.installed()
        )


class TestDependencyClosureProperties:
    @st.composite
    def acyclic_graphs(draw):
        """Random DAG: each unit may depend only on lower-numbered units."""
        count = draw(st.integers(min_value=1, max_value=10))
        edges = {}
        for index in range(count):
            if index == 0:
                edges[index] = []
            else:
                edges[index] = draw(
                    st.lists(
                        st.integers(0, index - 1), unique=True, max_size=3
                    )
                )
        return edges

    @given(acyclic_graphs())
    @settings(max_examples=60)
    def test_closure_is_dependency_ordered_and_complete(self, edges):
        units = {
            f"u{index}": code_unit(
                f"u{index}",
                "1.0.0",
                lambda: (lambda ctx: None),
                10,
                requires=[f"u{dep}" for dep in deps],
            )
            for index, deps in edges.items()
        }

        def resolve(requirement):
            return units[requirement.name]

        roots = [f"u{len(edges) - 1}"]
        closure = dependency_closure(roots, resolve)
        names = [unit.name for unit in closure]
        # No duplicates.
        assert len(names) == len(set(names))
        # Every dependency of an included unit is included, earlier.
        positions = {name: index for index, name in enumerate(names)}
        for unit in closure:
            for requirement in unit.requires:
                assert requirement.name in positions
                assert positions[requirement.name] < positions[unit.name]


json_like = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(-(2**31), 2**31),
        st.floats(allow_nan=False, allow_infinity=False),
        st.text(max_size=30),
        st.binary(max_size=30),
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(st.text(max_size=8), children, max_size=5),
    ),
    max_leaves=20,
)


class TestSerializerProperties:
    @given(json_like)
    def test_size_is_positive_and_deterministic(self, value):
        size = estimate_size(value)
        assert size > 0
        assert estimate_size(value) == size

    @given(st.lists(json_like, max_size=5))
    def test_container_size_at_least_max_element(self, items):
        container_size = estimate_size(items)
        for item in items:
            # Envelope overheads differ, but content cannot shrink.
            assert container_size >= estimate_size(item) - 16

    @given(st.text(max_size=200))
    def test_string_size_monotone_in_length(self, text):
        assert estimate_size(text + "a") > estimate_size(text)
