"""Property tests for the city-scale routing fabric.

Three invariants, each asserted over hundreds of generated topologies
and mutation interleavings (the strategies mirror
test_topology_cache_properties so the same world shapes are covered):

(a) a *long-lived* :class:`RoutingTable` — whose trees survive epoch
    bumps via dirty-set repair — answers bit-identically to a fresh
    flat BFS over the naive reference adjacency, after every mutation;
(b) :class:`HierarchicalRouter` reachability equals the naive
    reference reachability (positives are real, validated paths;
    negatives only come from the exact coarse-cell certificate or the
    flat fallback), again across mutations with its path cache live;
(c) every hierarchical path respects the documented stretch bound
    ``hops ≤ stretch × flat_hops + 2``.
"""

from hypothesis import given, settings, strategies as st

from repro.net import (
    BLUETOOTH,
    GPRS,
    HierarchicalRouter,
    Network,
    NetworkNode,
    Position,
    RoutingTable,
    WIFI_ADHOC,
    WIFI_INFRA,
)
from repro.net import reference as ref
from repro.sim import Environment

TECH_SETS = [
    [WIFI_ADHOC],
    [BLUETOOTH],
    [WIFI_ADHOC, BLUETOOTH],
    [GPRS],
    [WIFI_ADHOC, GPRS],
    [WIFI_INFRA],
    [WIFI_ADHOC, WIFI_INFRA],
]

coordinate = st.floats(0, 400)

#: (x, y, tech-set index, fixed, attach-infra)
node_spec = st.tuples(
    coordinate,
    coordinate,
    st.integers(0, len(TECH_SETS) - 1),
    st.booleans(),
    st.booleans(),
)

operation = st.one_of(
    st.tuples(st.just("move"), st.integers(0, 9), coordinate, coordinate),
    st.tuples(st.just("crash"), st.integers(0, 9)),
    st.tuples(st.just("restart"), st.integers(0, 9)),
    st.tuples(st.just("toggle"), st.integers(0, 9), st.integers(0, 3)),
    st.tuples(st.just("add"), node_spec),
)

programs = st.tuples(
    st.lists(node_spec, min_size=2, max_size=5),
    st.lists(operation, min_size=1, max_size=6),
)


def _make_node(env, network, index, spec):
    x, y, tech_index, fixed, attach = spec
    node = NetworkNode(
        env,
        f"n{index}",
        Position(x, y),
        technologies=TECH_SETS[tech_index],
        fixed=fixed,
    )
    network.add_node(node)
    if attach:
        for interface in node.interfaces.values():
            if interface.technology.infrastructure:
                interface.attach()
    return node


def _build(specs):
    env = Environment()
    network = Network(env)
    nodes = [
        _make_node(env, network, index, spec)
        for index, spec in enumerate(specs)
    ]
    return env, network, nodes


def _apply(env, network, nodes, op):
    kind = op[0]
    if kind == "add":
        nodes.append(_make_node(env, network, len(nodes), op[1]))
        return
    node = nodes[op[1] % len(nodes)]
    if kind == "move":
        node.move_to(Position(op[2], op[3]))
    elif kind == "crash":
        node.crash()
    elif kind == "restart":
        node.restart()
    elif kind == "toggle":
        interfaces = list(node.interfaces.values())
        interface = interfaces[op[2] % len(interfaces)]
        if interface.enabled:
            interface.disable()
        else:
            interface.enable()


class TestRoutingTableRepairBitIdentity:
    @given(programs)
    @settings(max_examples=200, deadline=None)
    def test_repaired_trees_match_fresh_flat_bfs(self, program):
        """(a): the long-lived table equals the naive reference always."""
        specs, operations = program
        env, network, nodes = _build(specs)
        table = RoutingTable(network, adhoc_only=True)
        backbone_table = RoutingTable(network, adhoc_only=False)

        def check():
            for a in nodes:
                for b in nodes:
                    assert table.path(a.id, b.id) == ref.naive_shortest_path(
                        network, a.id, b.id, adhoc_only=True
                    )
                    assert backbone_table.path(
                        a.id, b.id
                    ) == ref.naive_shortest_path(
                        network, a.id, b.id, adhoc_only=False
                    )

        check()  # populate the trees, then mutate under them
        for op in operations:
            _apply(env, network, nodes, op)
            check()


class TestHierarchicalRouterProperties:
    @given(programs)
    @settings(max_examples=200, deadline=None)
    def test_reachability_matches_reference(self, program):
        """(b): hier finds a valid path exactly when the reference does."""
        specs, operations = program
        env, network, nodes = _build(specs)
        router = HierarchicalRouter(network, flat_threshold=0)

        def check():
            graph = ref.naive_adjacency(network, adhoc_only=True)
            for a in nodes:
                for b in nodes:
                    path = router.path(a.id, b.id)
                    reachable = (
                        ref.naive_shortest_path(
                            network, a.id, b.id, adhoc_only=True
                        )
                        is not None
                    )
                    assert (path is not None) == reachable
                    if path is not None and a.id != b.id:
                        # The path is real: endpoints right, every hop
                        # a live edge, no repeated nodes.
                        assert path[0] == a.id and path[-1] == b.id
                        assert len(set(path)) == len(path)
                        for current, following in zip(path, path[1:]):
                            assert following in graph[current]

        check()  # populate the path cache, then mutate under it
        for op in operations:
            _apply(env, network, nodes, op)
            check()

    @given(st.lists(node_spec, min_size=2, max_size=8))
    @settings(max_examples=150, deadline=None)
    def test_stretch_bound_holds(self, specs):
        """(c): hier paths are at most stretch x flat + 2 hops long."""
        env, network, nodes = _build(specs)
        router = HierarchicalRouter(network, flat_threshold=0)
        stretch = router.stretch
        for a in nodes:
            for b in nodes:
                flat = ref.naive_shortest_path(
                    network, a.id, b.id, adhoc_only=True
                )
                hier = router.path(a.id, b.id)
                if flat is None:
                    assert hier is None
                    continue
                assert hier is not None
                assert len(hier) - 1 <= stretch * (len(flat) - 1) + 2
