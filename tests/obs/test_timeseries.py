"""TimeSeriesRecorder: cadence sampling, windows, rings, edge cases."""

import tracemalloc
from time import perf_counter

import pytest

from repro.core import World, mutual_trust, standard_host
from repro.net import Position, WIFI_ADHOC
from repro.obs import RunReport, TimeSeriesRecorder
from repro.sim import Environment, MetricsRegistry


def ticking_env(registry, ticks=10, spacing=1.0, work=None):
    """An environment whose process ticks ``ticks`` times, calling
    ``work(i)`` before each tick to touch the registry."""
    env = Environment()

    def ticker(env):
        for index in range(ticks):
            if work is not None:
                work(index)
            yield env.timeout(spacing)

    env.process(ticker(env))
    return env


class TestSampling:
    def test_counters_and_gauges_sampled_per_cadence(self):
        registry = MetricsRegistry()
        env = ticking_env(
            registry,
            ticks=10,
            spacing=1.0,
            work=lambda i: (
                registry.counter("work.done").increment(),
                registry.gauge("queue.depth").set(float(i)),
            ),
        )
        recorder = TimeSeriesRecorder(registry, cadence=2.0).attach(env)
        env.run()
        counter_points = recorder.points("work.done")
        assert counter_points, "no samples recorded"
        times = [time for time, _ in counter_points]
        assert times == sorted(times)
        # Cadence 2 over 10 ticks of 1s: one sample per even boundary.
        assert [time % 2.0 for time in times] == [0.0] * len(times)
        # Counter values are cumulative and non-decreasing.
        values = [value for _, value in counter_points]
        assert values == sorted(values)
        assert recorder.points("queue.depth")

    def test_windowed_histogram_quantiles(self):
        registry = MetricsRegistry()

        def work(i):
            # Tick i contributes samples centred on 10*i, so each
            # window's median identifies its tick.
            for offset in (-1.0, 0.0, 1.0):
                registry.histogram("lat").observe(10.0 * i + offset)

        env = ticking_env(registry, ticks=4, spacing=1.0, work=work)
        recorder = TimeSeriesRecorder(registry, cadence=1.0).attach(env)
        env.run()
        p50 = recorder.window_quantiles("lat", "p50")
        assert [value for _, value in p50] == [0.0, 10.0, 20.0, 30.0]
        counts = recorder.points("lat.count")
        # The process-exit event at t=4 sweeps an empty window: count 0,
        # and no quantile point (only 4 p50 entries above).
        assert [value for _, value in counts] == [3.0, 3.0, 3.0, 3.0, 0.0]

    def test_window_consumes_each_sample_once(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat")
        recorder = TimeSeriesRecorder(registry, cadence=1.0)
        histogram.observe(1.0)
        histogram.observe(2.0)
        recorder.sample(0.0)
        # Quantile query in between sorts the internal copy; the
        # insertion-order buffer must be unaffected.
        assert histogram.p99 == pytest.approx(1.99)
        histogram.observe(0.5)
        recorder.sample(1.0)
        counts = [value for _, value in recorder.points("lat.count")]
        assert counts == [2.0, 1.0]
        assert [value for _, value in recorder.window_quantiles("lat", "p50")] \
            == [1.5, 0.5]

    def test_ring_buffer_caps_points(self):
        registry = MetricsRegistry()
        registry.counter("c").increment()
        recorder = TimeSeriesRecorder(registry, cadence=1.0, capacity=4)
        for tick in range(10):
            recorder.sample(float(tick))
        points = recorder.points("c")
        assert len(points) == 4
        assert [time for time, _ in points] == [6.0, 7.0, 8.0, 9.0]

    def test_names_filter_restricts_series(self):
        registry = MetricsRegistry()
        registry.counter("keep").increment()
        registry.counter("drop").increment()
        recorder = TimeSeriesRecorder(registry, cadence=1.0, names=["keep"])
        recorder.sample(0.0)
        assert recorder.series_names() == ["keep"]

    def test_long_gap_yields_one_sample_not_backfill(self):
        registry = MetricsRegistry()
        registry.counter("c").increment()
        env = Environment()

        def sleeper(env):
            yield env.timeout(100.0)

        env.process(sleeper(env))
        recorder = TimeSeriesRecorder(registry, cadence=1.0).attach(env)
        env.run()
        # Two events total (t=0 schedule, t=100 wake): one sample each,
        # not 100 backfilled boundary points.
        assert len(recorder.points("c")) == 2


class TestEdgeCases:
    def test_zero_samples_without_events(self):
        registry = MetricsRegistry()
        registry.counter("c").increment()
        env = Environment()
        recorder = TimeSeriesRecorder(registry, cadence=1.0).attach(env)
        env.run()  # empty schedule: no steps, no samples
        assert recorder.samples_taken == 0
        assert recorder.series_names() == []
        assert recorder.as_dict()["series"] == {}

    def test_single_sample_single_event(self):
        registry = MetricsRegistry()
        registry.counter("c").increment()
        env = Environment()
        env.timeout(0.0)  # Timeout self-schedules its event
        recorder = TimeSeriesRecorder(registry, cadence=5.0).attach(env)
        env.run()
        assert recorder.samples_taken == 1
        assert recorder.points("c") == [(0.0, 1.0)]

    def test_cadence_longer_than_run(self):
        registry = MetricsRegistry()
        env = ticking_env(
            registry,
            ticks=3,
            spacing=1.0,
            work=lambda i: registry.counter("c").increment(),
        )
        recorder = TimeSeriesRecorder(registry, cadence=1000.0).attach(env)
        env.run()
        # Only the initial boundary (t=0) fires inside the run.
        assert recorder.samples_taken == 1
        assert recorder.points("c")[0][0] == 0.0

    def test_empty_histogram_window_records_no_quantiles(self):
        registry = MetricsRegistry()
        registry.histogram("lat")  # exists but never observed
        recorder = TimeSeriesRecorder(registry, cadence=1.0)
        recorder.sample(0.0)
        assert recorder.points("lat.count") == [(0.0, 0.0)]
        assert recorder.window_quantiles("lat", "p50") == []

    def test_constructor_validation(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            TimeSeriesRecorder(registry, cadence=0.0)
        with pytest.raises(ValueError):
            TimeSeriesRecorder(registry, capacity=0)
        with pytest.raises(ValueError):
            TimeSeriesRecorder(registry, histogram_stats=("median",))
        with pytest.raises(ValueError):
            TimeSeriesRecorder(registry, histogram_stats=("p101",))

    def test_one_recorder_per_environment(self):
        registry = MetricsRegistry()
        env = Environment()
        first = TimeSeriesRecorder(registry).attach(env)
        with pytest.raises(RuntimeError):
            TimeSeriesRecorder(registry).attach(env)
        first.detach()
        TimeSeriesRecorder(registry).attach(env)  # slot freed

    def test_detach_stops_sampling_keeps_points(self):
        registry = MetricsRegistry()
        registry.counter("c").increment()
        recorder = TimeSeriesRecorder(registry, cadence=1.0)
        env = Environment()
        recorder.attach(env)
        recorder.sample(0.0)
        recorder.detach()
        assert env._sampler is None
        assert not recorder.attached
        assert recorder.points("c") == [(0.0, 1.0)]


class TestDisabledCost:
    def test_disabled_on_step_is_allocation_free(self):
        registry = MetricsRegistry()
        registry.counter("c").increment()
        recorder = TimeSeriesRecorder(registry, enabled=False)
        recorder.on_step(0.0)  # warm any lazy attribute access
        tracemalloc.start()
        for step in range(10_000):
            recorder.on_step(float(step))
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert recorder.samples_taken == 0
        # The loop itself allocates nothing beyond the float steps the
        # test creates; allow a tiny slack for interpreter internals.
        assert peak < 4096, f"disabled on_step allocated {peak} bytes"

    def test_between_boundaries_is_allocation_free(self):
        registry = MetricsRegistry()
        registry.counter("c").increment()
        recorder = TimeSeriesRecorder(registry, cadence=1e9)
        recorder.sample(0.0)  # consume the initial boundary
        tracemalloc.start()
        for step in range(10_000):
            recorder.on_step(1.0)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert recorder.samples_taken == 1
        assert peak < 4096, f"idle on_step allocated {peak} bytes"

    def test_disabled_recorder_cost_vs_kernel_events(self):
        """A disabled recorder's hook must be well under kernel event
        cost — the analogue of the disabled-tracing <10% guard."""
        registry = MetricsRegistry()
        recorder = TimeSeriesRecorder(registry, enabled=False)

        started = perf_counter()
        for step in range(100_000):
            recorder.on_step(0.0)
        hook_seconds = perf_counter() - started

        def kernel_events():
            env = Environment()

            def ticker(env):
                for _ in range(10_000):
                    yield env.timeout(1.0)

            env.process(ticker(env))
            env.run()

        started = perf_counter()
        kernel_events()
        kernel_seconds = perf_counter() - started
        per_hook = hook_seconds / 100_000
        per_event = kernel_seconds / 10_000
        assert per_hook < per_event * 0.10, (
            f"disabled on_step costs {per_hook / per_event * 100:.1f}% "
            "of a kernel event"
        )


class TestWorldIntegration:
    def small_world(self, cadence):
        world = World(seed=3, trace_enabled=True)
        world.transport._rng.random = lambda: 0.999
        recorder = world.sample_series(cadence=cadence)
        a = standard_host(world, "a", Position(0, 0), [WIFI_ADHOC])
        b = standard_host(world, "b", Position(20, 0), [WIFI_ADHOC])
        mutual_trust(a, b)
        b.register_service("echo", lambda args, host: (args, 16))

        def go():
            for index in range(3):
                yield from a.component("cs").call("b", "echo", index)

        process = world.env.process(go())
        world.run(until=process)
        return world, recorder

    def test_world_run_emits_series(self):
        world, recorder = self.small_world(cadence=0.005)
        assert recorder.samples_taken > 1
        calls = recorder.points("cs.calls")
        assert calls[-1][1] == 3.0
        assert "host.request_rtt.p50" in recorder.series_names()

    def test_world_series_include_topology_counters(self):
        # net.topo.* live in network.cache_info(), not the registry;
        # the World wires them in via the recorder's extra probe.
        world, recorder = self.small_world(cadence=0.005)
        names = recorder.series_names()
        assert "net.topo.epoch" in names
        assert "net.topo.hits" in names

    def test_capture_takes_terminal_sample_and_embeds_series(self):
        world, recorder = self.small_world(cadence=1000.0)
        report = RunReport.capture("t", world)
        # Terminal sweep: last point stamped at end-of-run time.
        assert recorder.points("cs.calls")[-1] == (world.now, 3.0)
        assert report.series["cadence"] == 1000.0
        assert report.series["series"]["cs.calls"]["values"][-1] == 3.0
        restored = RunReport.from_json(report.to_json())
        assert restored.series == report.series

    def test_report_without_recorder_has_no_series(self):
        world = World(seed=1)
        report = RunReport.capture("t", world)
        assert report.series is None
        assert RunReport.from_json(report.to_json()).series is None
