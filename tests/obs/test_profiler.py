"""Unit tests for the simulation profiler."""

import pytest

from repro.obs import SimProfiler
from repro.sim import Environment


def run_workload(env):
    def worker(env):
        for _ in range(10):
            yield env.timeout(1.0)

    env.process(worker(env), name="dispatch:host-a")
    env.process(worker(env), name="beacon#7")
    env.run()


class TestSimProfiler:
    def test_attribution_by_label(self):
        env = Environment()
        profiler = SimProfiler().attach(env)
        run_workload(env)
        labels = {row["label"] for row in profiler.by_label()}
        # Process names collapse at separators: dispatch:host-a -> dispatch.
        assert "dispatch" in labels
        assert "beacon" in labels
        assert profiler.events_processed > 0
        assert profiler.wall_seconds > 0.0

    def test_hottest_events(self):
        env = Environment()
        profiler = SimProfiler().attach(env)
        run_workload(env)
        hottest = profiler.hottest_events(top=3)
        assert hottest
        assert len(hottest) <= 3
        kinds = [row["kind"] for row in hottest]
        assert "Timeout" in kinds

    def test_as_dict_shape(self):
        env = Environment()
        profiler = SimProfiler().attach(env)
        run_workload(env)
        data = profiler.as_dict()
        assert set(data) == {
            "wall_seconds",
            "events_processed",
            "by_label",
            "hottest_events",
        }
        for row in data["by_label"]:
            assert set(row) == {"label", "count", "seconds"}

    def test_detach_stops_recording(self):
        env = Environment()
        profiler = SimProfiler().attach(env)
        assert profiler.attached
        profiler.detach()
        assert not profiler.attached
        run_workload(env)
        assert profiler.events_processed == 0

    def test_double_attach_rejected(self):
        env = Environment()
        SimProfiler().attach(env)
        with pytest.raises(RuntimeError):
            SimProfiler().attach(env)

    def test_unprofiled_environment_runs_clean(self):
        env = Environment()
        run_workload(env)
        assert env.now == 10.0

    def test_render_is_text(self):
        env = Environment()
        profiler = SimProfiler().attach(env)
        run_workload(env)
        text = profiler.render()
        assert "dispatch" in text
