"""Report diffing: directions, thresholds, verdicts, CLI gate."""

import json
import os

import pytest

from repro.__main__ import main
from repro.obs import ReportSchemaError
from repro.obs.diff import (
    MetricDelta,
    diff_report_files,
    diff_reports,
    direction_of,
)

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")
BASE = os.path.join(FIXTURES, "run_base.json")
REGRESSED = os.path.join(FIXTURES, "run_regressed.json")


class TestDirectionRegistry:
    def test_lower_better_patterns(self):
        for name in (
            "net.delivery_latency.p99",
            "cs.call_seconds.mean",
            "fleet.bytes_sent",
            "net.messages_lost",
            "agents.migration_failures",
            "security.rejections",
            "fleet.money",
            "overhead_ratio",
        ):
            assert direction_of(name) == "lower", name

    def test_higher_better_patterns(self):
        for name in (
            "speedup",
            "topo.hits",
            "cs.served",
            "net.messages_delivered",
            "net.broadcast_reach.mean",
        ):
            assert direction_of(name) == "higher", name

    def test_neutral_patterns(self):
        for name in (
            "world.now",
            "world.nodes",
            "net.delivery_latency.count",
            "topo.epoch",
            "topo.invalidations",
            "some.unknown.metric",
        ):
            assert direction_of(name) is None, name

    def test_count_carveout_beats_parent_direction(self):
        # A latency histogram's sample count is volume, not latency.
        assert direction_of("net.delivery_latency.count") is None
        assert direction_of("net.delivery_latency.p50") == "lower"

    def test_overrides_beat_patterns(self):
        assert direction_of("speedup", {"speedup": "lower"}) == "lower"
        assert direction_of("speedup", {"speedup": None}) is None


class TestMetricDelta:
    def test_regressed_lower_better(self):
        delta = MetricDelta("lat.p99", 2.0, 3.0, "lower", threshold=0.05)
        assert delta.verdict == "regressed"
        assert delta.relative == pytest.approx(0.5)

    def test_improved_higher_better(self):
        delta = MetricDelta("speedup", 10.0, 11.0, "higher", threshold=0.05)
        assert delta.verdict == "improved"

    def test_within_threshold_is_unchanged(self):
        delta = MetricDelta("lat.p99", 100.0, 104.9, "lower", threshold=0.05)
        assert delta.verdict == "unchanged"

    def test_neutral_direction_never_regresses(self):
        delta = MetricDelta("nodes", 10.0, 1000.0, None, threshold=0.05)
        assert delta.verdict == "changed"

    def test_from_zero_base(self):
        delta = MetricDelta("errors", 0.0, 3.0, "lower", threshold=0.05)
        assert delta.verdict == "regressed"
        assert delta.to_dict()["relative"] is None  # inf is not JSON

    def test_zero_to_zero_unchanged(self):
        delta = MetricDelta("errors", 0.0, 0.0, "lower", threshold=0.05)
        assert delta.verdict == "unchanged"


class TestDiffReports:
    def load(self, path):
        with open(path) as handle:
            return json.load(handle)

    def test_fixture_verdicts(self):
        diff = diff_reports(self.load(BASE), self.load(REGRESSED))
        by_name = {delta.name: delta.verdict for delta in diff.deltas}
        assert by_name == {
            "cs.served": "regressed",            # higher-better, -10%
            "fleet.bytes_sent": "regressed",     # lower-better, +20%
            "net.delivery_latency.p99": "regressed",  # lower-better, +50%
            "net.messages_lost": "unchanged",
            "speedup": "improved",               # higher-better, +10%
            "world.nodes": "changed",            # neutral
        }
        assert diff.verdict == "regression"
        assert diff.added == {"new.metric": 1.0}
        assert diff.removed == {}

    def test_threshold_widens_unchanged_band(self):
        diff = diff_reports(
            self.load(BASE), self.load(REGRESSED), threshold=0.60
        )
        assert diff.verdict == "ok"
        assert not diff.regressions

    def test_overrides_flip_a_gate(self):
        diff = diff_reports(
            self.load(BASE),
            self.load(REGRESSED),
            overrides={
                "cs.served": None,
                "fleet.bytes_sent": None,
                "net.delivery_latency.p99": "higher",
            },
        )
        assert diff.verdict == "ok"

    def test_bare_metric_mappings_diff_too(self):
        # Trajectory entries / hand-written baselines: just {name: value}.
        diff = diff_reports({"speedup": 5.0}, {"speedup": 300.0})
        assert diff.verdict == "ok"
        assert diff.improvements[0].name == "speedup"
        regressed = diff_reports({"speedup": 5.0}, {"speedup": 2.0})
        assert regressed.verdict == "regression"

    def test_deterministic_output(self):
        first = diff_reports(self.load(BASE), self.load(REGRESSED))
        second = diff_reports(self.load(BASE), self.load(REGRESSED))
        assert first.to_json() == second.to_json()
        assert first.render() == second.render()

    def test_params_mismatch_noted(self):
        diff = diff_reports(
            {"metrics": {"a": 1.0}, "params": {"quick": True}},
            {"metrics": {"a": 1.0}, "params": {"quick": False}},
        )
        assert any("params differ" in note for note in diff.notes)

    def test_to_dict_is_json_clean(self):
        diff = diff_reports(
            {"metrics": {"errors": 0.0}}, {"metrics": {"errors": 2.0}}
        )
        text = diff.to_json()
        assert "Infinity" not in text
        assert json.loads(text)["verdict"] == "regression"


class TestDiffFiles:
    def test_diff_report_files(self):
        diff = diff_report_files(BASE, REGRESSED)
        assert diff.base_name == "fixture_base"
        assert diff.new_name == "fixture_regressed"
        assert diff.verdict == "regression"

    def test_unreadable_file_raises_schema_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ReportSchemaError):
            diff_report_files(BASE, str(bad))

    def test_future_schema_raises(self, tmp_path):
        future = tmp_path / "future.json"
        future.write_text(json.dumps({"schema": 99, "metrics": {}}))
        with pytest.raises(ReportSchemaError, match="newer"):
            diff_report_files(BASE, str(future))


class TestCompareCli:
    def test_exit_one_on_regression_with_fail_on(self, capsys):
        assert main(["compare", BASE, REGRESSED, "--fail-on", "regress"]) == 1
        out = capsys.readouterr().out
        assert "net.delivery_latency.p99" in out
        assert "REGRESSION" in out

    def test_exit_zero_without_fail_on(self):
        assert main(["compare", BASE, REGRESSED]) == 0

    def test_exit_zero_on_identical_reports(self, capsys):
        assert main(["compare", BASE, BASE, "--fail-on", "regress"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_json_output_is_machine_readable(self, capsys):
        assert main(["compare", BASE, REGRESSED, "--json"]) == 0
        verdict = json.loads(capsys.readouterr().out)
        assert verdict["verdict"] == "regression"
        assert "net.delivery_latency.p99" in verdict["regressed"]

    def test_out_writes_verdict_file(self, tmp_path):
        out_path = tmp_path / "verdict.json"
        main(["compare", BASE, REGRESSED, "--out", str(out_path)])
        verdict = json.loads(out_path.read_text())
        assert verdict["base"] == "fixture_base"
        assert verdict["verdict"] == "regression"

    def test_direction_override_flag(self):
        code = main(
            [
                "compare", BASE, REGRESSED, "--fail-on", "regress",
                "--threshold", "0.15",
                "--direction", "net.delivery_latency.p99=neutral",
                "--direction", "fleet.bytes_sent=neutral",
            ]
        )
        assert code == 0

    def test_bad_direction_spec_is_usage_error(self, capsys):
        code = main(["compare", BASE, REGRESSED, "--direction", "x=upward"])
        assert code == 2
        assert "direction" in capsys.readouterr().err

    def test_missing_report_exits_one(self, capsys):
        assert main(["compare", BASE, "definitely-not-a-report"]) == 1
        assert "no report named" in capsys.readouterr().err

    def test_corrupt_report_exits_one(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["compare", BASE, str(bad)]) == 1
        assert "not valid JSON" in capsys.readouterr().err
