"""Static guard: wall-clock reads happen only in ``repro.obs.wallclock``.

Walks the AST of every module under ``src/repro`` and fails on any
``time.time`` attribute access or ``from time import time`` outside
the allowlisted shim.  The point is determinism: a bare ``time.time()``
in library code stamps kernel artifacts with host wall time, which is
exactly how ``RunReport.created_at`` broke same-seed bit-identity
(reports are supposed to be pure functions of seed + scenario + plan).
Simulation code reads :func:`repro.core.world.World.env`'s clock;
anything that genuinely needs the host clock goes through
:func:`repro.obs.wallclock.wall_time` so the exception stays auditable.

``time.perf_counter`` / ``time.monotonic`` stay legal everywhere: they
measure *durations* for benchmarks and never leak into report
documents.
"""

import ast
from pathlib import Path

_SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

#: The one module allowed to touch the host wall clock.
ALLOWED = {_SRC / "obs" / "wallclock.py"}


def _offenders(tree: ast.AST):
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Attribute)
            and node.attr == "time"
            and isinstance(node.value, ast.Name)
            and node.value.id == "time"
        ):
            yield node.lineno, "time.time"
        if isinstance(node, ast.ImportFrom) and node.module == "time":
            for alias in node.names:
                if alias.name == "time":
                    yield node.lineno, "from time import time"


def test_allowlisted_shim_exists():
    for path in ALLOWED:
        assert path.is_file(), path


def test_no_bare_wall_clock_reads_in_library_code():
    offenders = []
    for path in sorted(_SRC.rglob("*.py")):
        if path in ALLOWED:
            continue
        tree = ast.parse(path.read_text(), filename=str(path))
        for lineno, what in _offenders(tree):
            offenders.append(
                f"{path.relative_to(_SRC)}:{lineno} ({what})"
            )
    assert not offenders, (
        "bare wall-clock read(s) in src/repro — route them through "
        f"repro.obs.wallclock.wall_time: {offenders}"
    )


def test_shim_is_the_only_wall_time_definition():
    # The shim itself must actually read the wall clock (otherwise the
    # guard would pass trivially with a broken shim).
    shim = next(iter(ALLOWED))
    tree = ast.parse(shim.read_text(), filename=str(shim))
    assert list(_offenders(tree)), "wallclock shim no longer calls time.time"
