"""Fleet health: SLO specs, the engine, the flight recorder, and the
armed-but-quiet bit-identity contract."""

import tracemalloc

import pytest

from repro.faults import run_chaos, standard_slos
from repro.obs import FlightRecorder, HealthEngine, SloSpec, worst_level
from repro.sim import MetricsRegistry, TraceLog


class TestSloSpec:
    def test_levels_above(self):
        slo = SloSpec(name="s", numerator="n", degraded=2.0, critical=5.0)
        assert slo.level(2.0) == "ok"  # strict: on-threshold stays ok
        assert slo.level(2.1) == "degraded"
        assert slo.level(5.0) == "degraded"
        assert slo.level(5.1) == "critical"

    def test_levels_below(self):
        slo = SloSpec(
            name="s",
            numerator="n",
            comparison="below",
            degraded=0.95,
            critical=0.5,
        )
        assert slo.level(0.95) == "ok"
        assert slo.level(0.9) == "degraded"
        assert slo.level(0.4) == "critical"

    def test_no_critical_threshold(self):
        slo = SloSpec(name="s", numerator="n", degraded=0.0)
        assert slo.level(1e9) == "degraded"

    def test_validation(self):
        with pytest.raises(ValueError):
            SloSpec(name="s", numerator="n", comparison="sideways")
        with pytest.raises(ValueError):
            SloSpec(name="s", numerator="n", window_s=0.0)
        with pytest.raises(ValueError):
            SloSpec(name="s", numerator="n", degraded=2.0, critical=1.0)
        with pytest.raises(ValueError):
            SloSpec(
                name="s",
                numerator="n",
                comparison="below",
                degraded=1.0,
                critical=2.0,
            )

    def test_as_dict_round_trips(self):
        slo = SloSpec(name="s", numerator="n", denominator="d", window_s=30.0)
        assert SloSpec(**slo.as_dict()) == slo

    def test_worst_level(self):
        assert worst_level([]) == "ok"
        assert worst_level(["ok", "degraded"]) == "degraded"
        assert worst_level(["critical", "ok"]) == "critical"


class TestFlightRecorder:
    def test_ring_keeps_last_n_per_source(self):
        flight = FlightRecorder(capacity=3)
        for index in range(10):
            flight.record(float(index), "a", "k", {"i": index})
        snapshot = flight.snapshot("a")
        assert [event["fields"]["i"] for event in snapshot] == [7, 8, 9]

    def test_sources_are_independent_and_bounded(self):
        flight = FlightRecorder(capacity=2, max_sources=2)
        flight.record(0.0, "a", "k", {})
        flight.record(0.0, "b", "k", {})
        flight.record(0.0, "c", "k", {})  # over max_sources: dropped
        assert flight.sources() == ["a", "b"]
        assert flight.dropped_sources == 1
        assert flight.snapshot("c") == []

    def test_snapshot_coerces_non_json_fields(self):
        flight = FlightRecorder()
        flight.record(1.0, "a", "k", {"obj": object(), "ok": True})
        (event,) = flight.snapshot("a")
        assert isinstance(event["fields"]["obj"], str)
        assert event["fields"]["ok"] is True

    def test_validation(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)
        with pytest.raises(ValueError):
            FlightRecorder(max_sources=0)

    def test_trace_log_feeds_flight_even_when_disabled(self):
        log = TraceLog(enabled=False, count_when_disabled=False)
        flight = FlightRecorder(capacity=4)
        log.flight = flight
        log.emit(1.0, "node-1", "net.send", bytes=64)
        assert len(log) == 0  # the log itself stayed off
        (event,) = flight.snapshot("node-1")
        assert event["kind"] == "net.send"
        assert event["fields"] == {"bytes": 64}

    def test_disabled_emit_without_flight_allocates_nothing(self):
        log = TraceLog(enabled=False, count_when_disabled=False)
        for _ in range(100):  # warm: bytecode caches, etc.
            log.emit(0.0, "a", "k", x=1)
        tracemalloc.start()
        for _ in range(10_000):
            log.emit(0.0, "a", "k", x=1)
        _current, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        # Only the transient **fields dict per call — nothing retained,
        # so the high-water mark stays at a single call frame's worth.
        assert peak < 4096


def _engine(slos, **kwargs):
    registry = MetricsRegistry()
    return registry, HealthEngine(registry, slos, **kwargs)


class TestHealthEngine:
    def test_duplicate_slo_names_rejected(self):
        registry = MetricsRegistry()
        specs = [
            SloSpec(name="s", numerator="a"),
            SloSpec(name="s", numerator="b"),
        ]
        with pytest.raises(ValueError):
            HealthEngine(registry, specs)

    def test_transition_and_recovery_events(self):
        registry, engine = _engine(
            [SloSpec(name="errors", numerator="errs", degraded=0.0)]
        )
        errs = registry.counter("errs", labels={"node": "a"})
        engine.evaluate(0.0)
        assert engine.events == []
        errs.increment()
        engine.evaluate(5.0)
        errs.increment()  # still degraded: no new event
        engine.evaluate(10.0)
        assert [(e["from"], e["to"]) for e in engine.events] == [
            ("ok", "degraded")
        ]
        assert engine.node_states() == {"a": "degraded"}
        assert (
            registry.counter(
                "health.breaches", labels={"node": "a"}
            ).value
            == 1
        )

    def test_windowed_slo_recovers_when_burst_ages_out(self):
        registry, engine = _engine(
            [
                SloSpec(
                    name="burst",
                    numerator="errs",
                    window_s=10.0,
                    degraded=0.0,
                )
            ]
        )
        errs = registry.counter("errs", labels={"node": "a"})
        errs.increment(3)
        engine.evaluate(5.0)
        assert engine.node_states() == {"a": "degraded"}
        # No new errors: the burst leaves the trailing window.
        engine.evaluate(20.0)
        assert engine.node_states() == {"a": "ok"}
        assert [(e["from"], e["to"]) for e in engine.events] == [
            ("ok", "degraded"),
            ("degraded", "ok"),
        ]
        # Recovery is recorded but never instrumented.
        assert (
            registry.counter(
                "health.breaches", labels={"node": "a"}
            ).value
            == 1
        )

    def test_ratio_waits_for_min_denominator(self):
        registry, engine = _engine(
            [
                SloSpec(
                    name="rate",
                    numerator="errs",
                    denominator="calls",
                    degraded=0.1,
                    min_denominator=3.0,
                )
            ]
        )
        registry.counter("errs", labels={"node": "a"}).increment()
        registry.counter("calls", labels={"node": "a"}).increment()
        engine.evaluate(1.0)
        assert engine.node_states() == {}  # one-sample noise suppressed
        registry.counter("calls", labels={"node": "a"}).increment(3)
        engine.evaluate(2.0)
        assert engine.node_states() == {"a": "degraded"}

    def test_critical_breach_instruments_and_dumps_flight(self):
        flight = FlightRecorder()
        flight.record(1.0, "a", "net.send", {"bytes": 9})
        registry = MetricsRegistry()
        engine = HealthEngine(
            registry,
            [
                SloSpec(
                    name="errors",
                    numerator="errs",
                    degraded=0.0,
                    critical=2.0,
                )
            ],
            flight=flight,
        )
        registry.counter("errs", labels={"node": "a"}).increment(5)
        engine.evaluate(3.0)
        assert engine.node_states() == {"a": "critical"}
        assert (
            registry.counter(
                "health.critical_breaches", labels={"node": "a"}
            ).value
            == 1
        )
        dump = engine.flight_dumps["a"]
        assert dump["slo"] == "errors"
        assert dump["level"] == "critical"
        assert dump["events"][0]["kind"] == "net.send"

    def test_flight_dump_once_per_node(self):
        flight = FlightRecorder()
        registry = MetricsRegistry()
        engine = HealthEngine(
            registry,
            [
                SloSpec(name="e1", numerator="errs", degraded=0.0),
                SloSpec(name="e2", numerator="errs", degraded=10.0),
            ],
            flight=flight,
        )
        registry.counter("errs", labels={"node": "a"}).increment(20)
        engine.evaluate(1.0)
        assert engine.flight_dumps["a"]["slo"] == "e1"
        assert len(engine.flight_dumps) == 1

    def test_event_cap(self):
        registry = MetricsRegistry()
        engine = HealthEngine(
            registry,
            [SloSpec(name="e", numerator="errs", degraded=0.0)],
            max_events=1,
        )
        errs_a = registry.counter("errs", labels={"node": "a"})
        errs_b = registry.counter("errs", labels={"node": "b"})
        errs_a.increment()
        errs_b.increment()
        engine.evaluate(1.0)
        assert len(engine.events) == 1
        assert engine.dropped_events == 1

    def test_evaluation_creates_no_metrics(self):
        registry, engine = _engine(
            [SloSpec(name="quiet", numerator="never.bumped", degraded=1e9)]
        )
        before = dict(registry.snapshot())
        engine.evaluate(1.0)
        engine.evaluate(2.0)
        assert dict(registry.snapshot()) == before
        assert not engine.breached

    def test_verdicts_and_as_dict(self):
        registry, engine = _engine(
            [SloSpec(name="e", numerator="errs", degraded=0.0)]
        )
        registry.counter("errs", labels={"node": "a"}).increment()
        engine.evaluate(1.0)
        data = engine.as_dict()
        assert data["verdicts"] == {"e": {"a": "degraded"}}
        assert data["states"] == {"a": "degraded"}
        assert data["evaluations"] == 1
        assert data["slos"][0]["name"] == "e"


class TestArmedRunBitIdentity:
    PARAMS = dict(clients=2, servers=1, requests_per_client=2)

    def test_quiet_slos_leave_run_bit_identical(self):
        quiet = [
            SloSpec(name="quiet", numerator="chaos.failed", degraded=1e9)
        ]
        plain = run_chaos(seed=3, sample_cadence=5.0, **self.PARAMS)
        armed = run_chaos(
            seed=3, sample_cadence=5.0, slos=quiet, **self.PARAMS
        )
        assert plain.summary == armed.summary
        assert plain.report == armed.report
        assert armed.report["health"] is None  # nothing ever breached

    def test_breaching_slos_change_only_health_families(self):
        plain = run_chaos(seed=3, sample_cadence=5.0, **self.PARAMS)
        armed = run_chaos(
            seed=3,
            sample_cadence=5.0,
            slos=standard_slos(),
            **self.PARAMS,
        )
        for key, value in plain.summary.items():
            if key.startswith("obs.labels"):
                continue  # breach counters register extra labeled series
            assert armed.summary[key] == value, key
        extra = set(armed.summary) - set(plain.summary)
        assert all(
            key.startswith(("health.", "obs.labels")) for key in extra
        ), extra
