"""RunReport: schema stability, round trips, and capture."""

import json

from repro.core import World, mutual_trust, standard_host
from repro.net import Position, WIFI_ADHOC
from repro.obs import SCHEMA_KEYS, SCHEMA_VERSION, RunReport, SimProfiler


def small_run():
    world = World(seed=3, trace_enabled=True)
    world.transport._rng.random = lambda: 0.999
    profiler = world.profile()
    a = standard_host(world, "a", Position(0, 0), [WIFI_ADHOC])
    b = standard_host(world, "b", Position(20, 0), [WIFI_ADHOC])
    mutual_trust(a, b)
    b.register_service("echo", lambda args, host: (args, 16))

    def go():
        for index in range(3):
            yield from a.component("cs").call("b", "echo", index)

    process = world.env.process(go())
    world.run(until=process)
    world.run(until=world.now + 30.0)
    profiler.detach()
    return world, profiler


class TestSchema:
    def test_schema_keys_are_stable(self):
        # The documented contract for external report consumers: these
        # exact top-level keys, nothing dropped or renamed.
        assert SCHEMA_KEYS == (
            "schema",
            "name",
            "created_at",
            "env",
            "params",
            "metrics",
            "kind_counts",
            "profile",
            "spans",
            "series",
            "nodes",
            "health",
            "flight",
        )

    def test_report_dict_matches_schema(self):
        world, profiler = small_run()
        report = RunReport.capture("t", world, profiler=profiler)
        data = report.to_dict()
        assert tuple(sorted(data)) == tuple(sorted(SCHEMA_KEYS))
        assert data["schema"] == SCHEMA_VERSION

    def test_json_is_parseable_and_sorted(self):
        report = RunReport("t", metrics={"b": 2.0, "a": 1.0})
        data = json.loads(report.to_json())
        assert list(data) == sorted(SCHEMA_KEYS)


class TestCapture:
    def test_capture_snapshots_world(self):
        world, profiler = small_run()
        report = RunReport.capture(
            "cs-demo", world, profiler=profiler, params={"calls": 3}
        )
        assert report.env["seed"] == 3
        assert report.env["nodes"] == 2
        assert report.env["sim_time"] == world.now
        assert report.params == {"calls": 3}
        assert report.metrics["cs.calls"] == 3
        assert report.kind_counts  # trace was enabled
        assert report.profile["events_processed"] > 0
        assert report.spans

    def test_span_trees_from_report(self):
        world, profiler = small_run()
        report = RunReport.capture("t", world, profiler=profiler)
        trees = report.complete_trees()
        assert len(trees) == 3  # one per CS call
        assert all(tree.span.name == "cs.call" for tree in trees)


class TestRoundTrip:
    def test_json_round_trip(self):
        world, profiler = small_run()
        original = RunReport.capture("t", world, profiler=profiler)
        restored = RunReport.from_json(original.to_json())
        assert restored.to_dict() == original.to_dict()

    def test_file_round_trip(self, tmp_path):
        world, _profiler = small_run()
        original = RunReport.capture("t", world)
        path = str(tmp_path / "report.json")
        original.write(path)
        restored = RunReport.load(path)
        assert restored.metrics == original.metrics
        assert restored.spans == original.spans

    def test_render_mentions_key_sections(self):
        world, profiler = small_run()
        report = RunReport.capture(
            "demo", world, profiler=profiler, params={"calls": 3}
        )
        text = report.render()
        assert "run report — demo" in text
        assert "metrics" in text
        assert "cs.call" in text  # the span tree
        assert "profile" in text
