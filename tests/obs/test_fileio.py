"""Tests for crash-safe report IO: atomic writes, locked appends.

The concurrency stress is the reproducer for the trajectory-corruption
bug: several processes appending to one JSONL log through plain
``open(path, "a")`` + ``write()`` can interleave partial lines.  The
``locked_append_line`` path (single ``O_APPEND`` write under an
advisory lock) must keep every line intact under the same pressure.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.obs.fileio import (
    append_jsonl,
    atomic_write_text,
    locked_append_line,
    read_jsonl,
    read_jsonl_if_exists,
)


class TestAtomicWrite:
    def test_writes_content(self, tmp_path):
        path = tmp_path / "out.json"
        atomic_write_text(str(path), '{"a": 1}\n')
        assert path.read_text() == '{"a": 1}\n'

    def test_overwrites_previous(self, tmp_path):
        path = tmp_path / "out.json"
        atomic_write_text(str(path), "old\n")
        atomic_write_text(str(path), "new\n")
        assert path.read_text() == "new\n"

    def test_leaves_no_temp_files(self, tmp_path):
        path = tmp_path / "out.json"
        atomic_write_text(str(path), "x\n")
        assert os.listdir(tmp_path) == ["out.json"]

    def test_failure_preserves_previous_content(self, tmp_path):
        path = tmp_path / "out.json"
        atomic_write_text(str(path), "precious\n")
        with pytest.raises(TypeError):
            atomic_write_text(str(path), None)
        assert path.read_text() == "precious\n"


class TestLockedAppend:
    def test_appends_lines(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        locked_append_line(path, "one")
        locked_append_line(path, "two")
        assert open(path).read() == "one\ntwo\n"

    def test_rejects_embedded_newline(self, tmp_path):
        with pytest.raises(ValueError):
            locked_append_line(str(tmp_path / "log"), "a\nb")

    def test_append_jsonl_round_trips(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        entries = [{"n": index, "payload": "x" * index} for index in range(5)]
        for entry in entries:
            append_jsonl(path, entry)
        loaded, skipped = read_jsonl(path)
        assert skipped == 0
        assert loaded == entries


class TestTolerantReader:
    def _corrupt_log(self, tmp_path):
        path = tmp_path / "log.jsonl"
        lines = [
            json.dumps({"ok": 1}),
            '{"truncated": ',          # torn write
            "not json at all",
            "",                        # blank line
            json.dumps({"ok": 2}),
        ]
        path.write_text("\n".join(lines) + "\n")
        return str(path)

    def test_skips_and_counts_malformed(self, tmp_path):
        entries, skipped = read_jsonl(self._corrupt_log(tmp_path))
        assert entries == [{"ok": 1}, {"ok": 2}]
        assert skipped == 2  # blank lines are ignored, not corrupt

    def test_strict_raises_with_line_number(self, tmp_path):
        with pytest.raises(ValueError, match=":2: malformed"):
            read_jsonl(self._corrupt_log(tmp_path), strict=True)

    def test_partial_final_line_tolerated(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text(json.dumps({"ok": 1}) + "\n" + '{"half": ')
        entries, skipped = read_jsonl(str(path))
        assert entries == [{"ok": 1}]
        assert skipped == 1

    def test_missing_file_is_empty(self, tmp_path):
        assert read_jsonl_if_exists(str(tmp_path / "nope")) == ([], 0)

    def test_non_object_lines_counted_as_skipped(self, tmp_path):
        # Trajectory records are objects; stray arrays/scalars are
        # treated as corruption, not silently passed through.
        path = tmp_path / "log.jsonl"
        path.write_text("[1, 2]\n3\n")
        entries, skipped = read_jsonl(str(path))
        assert entries == []
        assert skipped == 2
        with pytest.raises(ValueError, match="not an object"):
            read_jsonl(str(path), strict=True)


_APPENDER = """
import json, sys
from repro.obs.fileio import append_jsonl
path, worker, count = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
for index in range(count):
    append_jsonl(path, {"worker": worker, "index": index, "pad": "x" * 400})
"""


class TestConcurrentAppend:
    def test_four_concurrent_appenders_zero_torn_lines(self, tmp_path):
        # The acceptance criterion: 4 processes, interleaved appends,
        # every line parses and every entry arrives exactly once.
        path = str(tmp_path / "trajectory.jsonl")
        workers, per_worker = 4, 100
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", _APPENDER, path, str(n), str(per_worker)],
                env=env,
            )
            for n in range(workers)
        ]
        assert all(proc.wait(timeout=120) == 0 for proc in procs)

        entries, skipped = read_jsonl(path, strict=True)
        assert skipped == 0
        assert len(entries) == workers * per_worker
        seen = {(entry["worker"], entry["index"]) for entry in entries}
        assert len(seen) == workers * per_worker, "lost or duplicated lines"
        assert all(entry["pad"] == "x" * 400 for entry in entries)
