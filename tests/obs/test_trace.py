"""Trace analytics: DAG reconstruction, attribution, fault resilience.

Two layers of coverage:

* **Synthetic spans** pin the attribution algebra — bucket priorities,
  delivery-stall correlation, ARQ retry gaps, exact partition of the
  invocation window — without running a simulation.
* **Live worlds under PR-5 fault injectors** pin the integration
  contract: duplicate deliveries are counted but never double-count an
  edge, delayed hops surface as transit stalls (not orphans), dropped
  hops surface as retry stalls, and truncated span sets degrade to
  counted orphans instead of crashing.
"""

import json

import pytest

from repro.core import World, mutual_trust, standard_host
from repro.faults import FaultPlan
from repro.net import Position, WIFI_ADHOC
from repro.obs import Span, TraceAnalysis
from repro.obs.trace import BUCKETS, percentile

# ---------------------------------------------------------------------------
# Synthetic-span helpers
# ---------------------------------------------------------------------------

_ids = iter(range(1, 10_000))


def span(name, start, end, parent=None, trace=1, source="a", status="ok",
         **attributes):
    data = {
        "trace_id": trace,
        "span_id": next(_ids),
        "parent_id": parent,
        "name": name,
        "source": source,
        "start": start,
        "end": end,
        "status": status,
        "attributes": attributes,
    }
    return data


def analysis_of(*span_dicts):
    return TraceAnalysis.from_spans(span_dicts)


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 0.99) == 0.0

    def test_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0.5) == 2.0
        assert percentile(values, 0.99) == 4.0
        assert percentile(values, 0.0) == 1.0


class TestSyntheticBreakdown:
    def test_buckets_partition_the_window(self):
        root = span("cs.call", 0.0, 10.0)
        transmit = span(
            "net.transmit", 0.0, 2.0, parent=root["span_id"],
            msg_id=1, t_air=0.5, t_sent=1.5,
        )
        handle = span(
            "host.handle", 2.0, 4.0, parent=root["span_id"],
            source="b", msg_id=1, t_deliver=2.0,
        )
        backoff = span("invoke.backoff", 4.0, 6.0, parent=root["span_id"])
        result = analysis_of(root, transmit, handle, backoff)
        (invocation,) = result.invocations
        assert invocation.queue == 0.5       # transmit start -> t_air
        assert invocation.transit == 1.5     # t_air -> transmit end
        assert invocation.service == 2.0     # host.handle
        assert invocation.retry == 2.0       # invoke.backoff
        assert invocation.other == 4.0       # uncovered remainder
        assert invocation.reconciles()
        assert sum(invocation.buckets.values()) == pytest.approx(10.0)

    def test_priority_retry_beats_service(self):
        root = span("cs.call", 0.0, 4.0)
        handle = span(
            "host.handle", 0.0, 4.0, parent=root["span_id"], source="b"
        )
        backoff = span("invoke.backoff", 1.0, 3.0, parent=root["span_id"])
        (invocation,) = analysis_of(root, handle, backoff).invocations
        assert invocation.retry == 2.0
        assert invocation.service == 2.0  # only the uncovered flanks
        assert invocation.reconciles()

    def test_delivery_stall_extends_transit(self):
        # Transmit span closes at 2.0 but the receiver stamp says the
        # copy only reached the inbox at 3.5 — an injected delay.
        root = span("cs.call", 0.0, 5.0)
        transmit = span(
            "net.transmit", 0.0, 2.0, parent=root["span_id"],
            msg_id=9, t_air=0.0, t_sent=2.0,
        )
        handle = span(
            "host.handle", 3.5, 4.0, parent=root["span_id"],
            source="b", msg_id=9, t_deliver=3.5,
        )
        (invocation,) = analysis_of(root, transmit, handle).invocations
        assert invocation.transit == pytest.approx(3.5)
        assert invocation.service == pytest.approx(0.5)
        assert invocation.other == pytest.approx(1.0)

    def test_arq_gap_between_attempts_is_retry(self):
        root = span("cs.call", 0.0, 8.0)
        first = span(
            "net.transmit", 0.0, 2.0, parent=root["span_id"],
            msg_id=4, attempt=1, t_air=0.0, t_sent=2.0, status="lost",
        )
        second = span(
            "net.transmit", 5.0, 7.0, parent=root["span_id"],
            msg_id=4, attempt=2, t_air=5.0, t_sent=7.0,
        )
        (invocation,) = analysis_of(root, first, second).invocations
        assert invocation.retry == pytest.approx(3.0)  # 2.0 -> 5.0
        assert invocation.transit == pytest.approx(4.0)
        assert invocation.reconciles()

    def test_intervals_clip_to_root_window(self):
        # A server-side handle that outlives the root (reply landed
        # before the handler returned) must not inflate the buckets.
        root = span("cs.call", 0.0, 2.0)
        handle = span(
            "host.handle", 1.0, 5.0, parent=root["span_id"], source="b"
        )
        (invocation,) = analysis_of(root, handle).invocations
        assert invocation.service == pytest.approx(1.0)
        assert invocation.reconciles()

    def test_critical_path_follows_last_finisher(self):
        root = span("cs.call", 0.0, 10.0)
        fast = span("net.transmit", 0.0, 1.0, parent=root["span_id"])
        slow = span("host.handle", 0.0, 9.0, parent=root["span_id"],
                    source="b")
        deep = span("net.transmit", 8.0, 9.0, parent=slow["span_id"],
                    source="b")
        (invocation,) = analysis_of(root, fast, slow, deep).invocations
        names = [node.name for node in invocation.critical_path]
        assert names == ["cs.call", "host.handle", "net.transmit"]


class TestDagReconstruction:
    def test_orphans_counted_not_fatal(self):
        orphan = span("host.handle", 1.0, 2.0, parent=99_999)
        root = span("cs.call", 0.0, 3.0)
        result = analysis_of(orphan, root)
        assert result.orphans == 1
        assert len(result.invocations) == 1  # the real root still counts
        assert len(result.background) == 1   # the orphan tree
        assert result.metrics()["trace.orphans"] == 1.0

    def test_unfinished_spans_excluded_and_counted(self):
        live = span("cs.call", 0.0, None)
        done = span("cs.call", 0.0, 1.0)
        result = analysis_of(live, done)
        assert result.unfinished == 1
        assert len(result.invocations) == 1

    def test_background_roots_are_not_invocations(self):
        fault = span("fault.drop", 0.0, 5.0, source="faults")
        cast = span("net.broadcast", 0.0, 1.0)
        result = analysis_of(fault, cast)
        assert result.invocations == []
        assert len(result.background) == 2

    def test_empty_analysis_is_healthy(self):
        result = analysis_of()
        assert result.metrics()["trace.spans"] == 0.0
        assert result.problems() == []
        assert result.to_chrome()["traceEvents"] == []


class TestProblems:
    def test_histogram_mismatch_reported(self):
        root = span("cs.call", 0.0, 2.0)
        result = analysis_of(root)
        metrics = {
            "paradigm.cs.seconds.count": 1.0,
            "paradigm.cs.seconds.sum": 9.0,  # spans say 2.0
        }
        (problem,) = result.problems(metrics)
        assert "paradigm.cs" in problem

    def test_count_mismatch_reported(self):
        root = span("cs.call", 0.0, 2.0)
        result = analysis_of(root)
        metrics = {"paradigm.cs.seconds.count": 3.0}
        (problem,) = result.problems(metrics)
        assert "3" in problem

    def test_failed_invocations_excluded_from_reconciliation(self):
        ok = span("cs.call", 0.0, 2.0)
        failed = span("cs.call", 3.0, 5.0, status="error")
        result = analysis_of(ok, failed)
        metrics = {
            "paradigm.cs.seconds.count": 1.0,
            "paradigm.cs.seconds.sum": 2.0,
        }
        assert result.problems(metrics) == []


# ---------------------------------------------------------------------------
# Live worlds under fault injection
# ---------------------------------------------------------------------------


def traced_pair(seed=5):
    world = World(seed=seed, trace_enabled=True)
    world.transport._rng.random = lambda: 0.999  # no stochastic loss
    a = standard_host(world, "a", Position(0, 0), [WIFI_ADHOC])
    b = standard_host(world, "b", Position(10, 0), [WIFI_ADHOC])
    mutual_trust(a, b)
    b.register_service("echo", lambda args, host: (args, 32))
    return world, a, b


def run_calls(world, client, calls=3, spacing=1.0):
    def go():
        for index in range(calls):
            yield from client.component("cs").call("b", "echo", index)
            yield world.env.timeout(spacing)

    process = world.env.process(go())
    world.run(until=process)
    world.run(until=world.now + 5.0)  # let server-side spans close
    return TraceAnalysis(world.tracer.finished_spans())


class TestFaultInjectionTraces:
    def test_duplicate_deliveries_counted_once(self):
        world, a, b = traced_pair()
        FaultPlan().duplicate(
            at=0.0, duration=10.0, rate=1.0, delay_s=0.2,
            message_kinds=("cs.reply",),
        ).inject(world)
        result = run_calls(world, a, calls=3)
        assert result.duplicate_deliveries == 3
        assert result.orphans == 0
        assert len(result.invocations) == 3
        # The duplicate copies must not double-count any edge: each
        # invocation still reconciles, and transit stays the clean
        # one-round-trip figure (the dup arrives after the root closed).
        for invocation in result.invocations:
            assert invocation.status == "ok"
            assert invocation.reconciles()
            assert invocation.transit < 0.02

    def test_delayed_hops_are_transit_stalls_not_orphans(self):
        world, a, b = traced_pair()
        FaultPlan().delay(
            at=0.0, duration=10.0, extra_s=0.4, rate=1.0
        ).inject(world)
        result = run_calls(world, a, calls=1)
        (invocation,) = result.invocations
        assert result.orphans == 0
        assert invocation.status == "ok"
        # Both hops (request + reply) were held 0.4s by the injector;
        # the stall lands in transit, not in "other".
        assert invocation.transit == pytest.approx(0.8, abs=0.05)
        assert invocation.other < 0.01
        assert invocation.reconciles()

    def test_dropped_hop_surfaces_as_retry_stall(self):
        world, a, b = traced_pair()
        # The window covers only the first attempt's delivery decision
        # (~5.1ms in); the ARQ retransmission lands after it closes.
        FaultPlan().drop(
            at=0.0, duration=0.006, rate=1.0, message_kinds=("cs.request",)
        ).inject(world)
        result = run_calls(world, a, calls=1)
        (invocation,) = result.invocations
        assert invocation.status == "ok"
        assert result.orphans == 0
        assert invocation.retry > 0.0  # the inter-attempt ARQ gap
        assert any(
            node.name == "net.transmit" and node.attributes.get("attempt") == 2
            for node in result.spans
        )
        assert invocation.reconciles()

    def test_truncated_span_set_degrades_gracefully(self):
        world, a, b = traced_pair()
        result = run_calls(world, a, calls=2)
        spans = [node.to_dict() for node in world.tracer.finished_spans()]
        # Simulate ring eviction: drop every root, keeping the children.
        truncated = [
            data for data in spans if data["parent_id"] is not None
        ]
        degraded = TraceAnalysis.from_spans(truncated)
        assert degraded.orphans > 0
        assert degraded.invocations == []  # no roots -> no invocations
        assert degraded.problems() == []   # degraded, not broken
        assert degraded.metrics()["trace.critical_path.p99"] == 0.0

    def test_same_seed_analyses_bit_identical(self):
        runs = []
        for _ in range(2):
            world, a, b = traced_pair(seed=11)
            runs.append(run_calls(world, a, calls=3).metrics())
        assert runs[0] == runs[1]


# ---------------------------------------------------------------------------
# Exports
# ---------------------------------------------------------------------------


class TestChromeExport:
    def test_document_shape(self):
        world, a, b = traced_pair()
        result = run_calls(world, a, calls=2)
        document = result.to_chrome()
        assert document["displayTimeUnit"] == "ms"
        events = document["traceEvents"]
        complete = [event for event in events if event["ph"] == "X"]
        metadata = [event for event in events if event["ph"] == "M"]
        assert len(complete) == len(result.spans)
        # One process-name record per span source.
        sources = {span.source for span in result.spans}
        assert len(metadata) == len(sources)
        for event in complete:
            assert event["ts"] >= 0.0
            assert event["dur"] >= 0.0
            assert isinstance(event["pid"], int)
        # Valid JSON end to end.
        json.loads(json.dumps(document))

    def test_export_is_deterministic(self):
        world, a, b = traced_pair()
        result = run_calls(world, a, calls=2)
        assert result.to_chrome() == result.to_chrome()


class TestMetricsFamily:
    def test_shares_sum_to_one(self):
        world, a, b = traced_pair()
        metrics = run_calls(world, a, calls=3).metrics()
        total_share = sum(metrics[f"trace.{bucket}_share"] for bucket in BUCKETS)
        assert total_share == pytest.approx(1.0)

    def test_report_capture_carries_trace_metrics(self):
        from repro.obs import RunReport

        world, a, b = traced_pair()
        run_calls(world, a, calls=2)
        report = RunReport.capture("t", world, created_at=world.env.now)
        assert report.metrics["trace.invocations"] == 2.0
        assert "trace.critical_path.p99" in report.metrics
        # Reconciliation against the pipeline's own histograms holds.
        assert TraceAnalysis.from_report(report).problems(report.metrics) == []
