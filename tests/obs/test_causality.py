"""End-to-end span causality: one REV call through a real World.

The acceptance test of the tracing design — a single remote evaluation
must come back as one connected tree spanning both hosts: the client's
``rev.evaluate`` and ``host.request``, the request and reply transits,
and the server's ``host.handle``.
"""

from repro.core import World, mutual_trust, standard_host
from repro.lmu import code_unit
from repro.net import GPRS, LAN, Position


def compute_unit():
    def factory():
        def body(ctx, *args):
            ctx.charge(10_000)
            return {"args": list(args)}

        return body

    return code_unit("worker", "1.0.0", factory, 20_000)


def traced_world():
    world = World(seed=7, trace_enabled=True)
    world.transport._rng.random = lambda: 0.999
    phone = standard_host(world, "phone", Position(0, 0), [GPRS])
    server = standard_host(
        world, "server", Position(0, 0), [LAN], fixed=True
    )
    mutual_trust(phone, server)
    phone.node.interface("gprs").attach()
    return world, phone, server


def run_rev_roundtrip():
    world, phone, server = traced_world()
    phone.codebase.install(compute_unit())

    def go():
        value = yield from phone.component("rev").evaluate(
            "server", ["worker"], args=(1, 2)
        )
        return value

    process = world.env.process(go())
    value = world.run(until=process)
    world.run(until=world.now + 60.0)  # let the server-side span close
    return world, value


class TestRevRoundTripCausality:
    def test_one_connected_complete_tree(self):
        world, value = run_rev_roundtrip()
        assert value == {"args": [1, 2]}
        trees = world.tracer.trees()
        assert len(trees) == 1, [t.span.name for t in trees]
        tree = trees[0]
        assert tree.complete()
        assert tree.span.name == "rev.evaluate"
        # Every span shares one trace id.
        trace_ids = {span.trace_id for _d, span in tree.walk()}
        assert len(trace_ids) == 1

    def test_parent_child_edges(self):
        world, _value = run_rev_roundtrip()
        (tree,) = world.tracer.trees()
        (evaluate,) = tree.find("rev.evaluate")
        (request,) = tree.find("host.request")
        (handle,) = tree.find("host.handle")
        transmits = tree.find("net.transmit")
        assert request.parent_id == evaluate.span_id
        # The server-side handle hangs off the client's request via the
        # wire context carried in the message.
        assert handle.parent_id == request.span_id
        assert handle.source == "server"
        # Both network legs (request out, reply back) are children of
        # the request span: the reply inherits context via reply().
        assert len(transmits) == 2
        assert {t.parent_id for t in transmits} == {request.span_id}
        sources = sorted(t.source for t in transmits)
        assert sources == ["phone", "server"]

    def test_sim_time_ordering(self):
        world, _value = run_rev_roundtrip()
        (tree,) = world.tracer.trees()
        (evaluate,) = tree.find("rev.evaluate")
        (request,) = tree.find("host.request")
        request_leg, reply_leg = sorted(
            tree.find("net.transmit"), key=lambda span: span.start
        )
        assert evaluate.start <= request.start <= request_leg.start
        assert request_leg.end <= reply_leg.start
        assert reply_leg.end == request.end

    def test_disabled_world_stays_clean(self):
        world = World(seed=7)  # tracing off by default
        phone = standard_host(world, "phone", Position(0, 0), [GPRS])
        server = standard_host(
            world, "server", Position(0, 0), [LAN], fixed=True
        )
        mutual_trust(phone, server)
        phone.node.interface("gprs").attach()
        world.transport._rng.random = lambda: 0.999
        phone.codebase.install(compute_unit())

        def go():
            yield from phone.component("rev").evaluate("server", ["worker"])

        process = world.env.process(go())
        world.run(until=process)
        assert len(world.tracer) == 0
        assert world.tracer.started_total == 0
