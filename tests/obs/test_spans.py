"""Unit tests for causal spans and span trees."""

import pytest

from repro.obs import NOOP_SPAN, STATUS_ERROR, STATUS_OK, SpanTracer, build_trees
from repro.sim.tracing import TraceLog


def make_tracer(**kwargs):
    clock = {"now": 0.0}
    tracer = SpanTracer(now=lambda: clock["now"], **kwargs)
    return tracer, clock


class TestSpanLifecycle:
    def test_start_finish_records_interval(self):
        tracer, clock = make_tracer()
        span = tracer.start("op", "host-a", key="value")
        clock["now"] = 2.5
        tracer.finish(span)
        assert span.finished
        assert span.start == 0.0
        assert span.end == 2.5
        assert span.duration == 2.5
        assert span.status == STATUS_OK
        assert span.attributes == {"key": "value"}
        assert tracer.finished_spans() == [span]

    def test_finish_attributes_merge(self):
        tracer, clock = make_tracer()
        span = tracer.start("op", "a", first=1)
        tracer.finish(span, second=2)
        assert span.attributes == {"first": 1, "second": 2}

    def test_double_finish_is_idempotent(self):
        tracer, clock = make_tracer()
        span = tracer.start("op", "a")
        clock["now"] = 1.0
        tracer.finish(span)
        clock["now"] = 9.0
        tracer.finish(span)
        assert span.end == 1.0
        assert len(tracer) == 1

    def test_error_status(self):
        tracer, _clock = make_tracer()
        span = tracer.start("op", "a")
        tracer.finish(span, status=STATUS_ERROR, error="boom")
        assert span.status == STATUS_ERROR
        assert span.attributes["error"] == "boom"

    def test_context_manager_marks_errors(self):
        tracer, _clock = make_tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("op", "a"):
                raise RuntimeError("bad")
        (span,) = tracer.finished_spans()
        assert span.status == STATUS_ERROR

    def test_counters_survive_ring_eviction(self):
        tracer, _clock = make_tracer(max_spans=2)
        for _ in range(5):
            tracer.finish(tracer.start("op", "a"))
        assert len(tracer) == 2
        assert tracer.started_total == 5
        assert tracer.finished_total == 5


class TestParentage:
    def test_child_of_span(self):
        tracer, _clock = make_tracer()
        parent = tracer.start("parent", "a")
        child = tracer.start("child", "a", parent=parent)
        assert child.parent_id == parent.span_id
        assert child.trace_id == parent.trace_id

    def test_child_of_wire_context(self):
        tracer, _clock = make_tracer()
        parent = tracer.start("parent", "a")
        context = tracer.context(parent)
        assert context == {"trace": parent.trace_id, "span": parent.span_id}
        child = tracer.start("child", "b", parent=context)
        assert child.parent_id == parent.span_id
        assert child.trace_id == parent.trace_id

    def test_roots_get_fresh_traces(self):
        tracer, _clock = make_tracer()
        first = tracer.start("a", "x")
        second = tracer.start("b", "x")
        assert first.trace_id != second.trace_id


class TestDisabledTracer:
    def test_start_returns_shared_noop(self):
        tracer, _clock = make_tracer(enabled=False)
        span = tracer.start("op", "a", key="value")
        assert span is NOOP_SPAN
        tracer.finish(span)
        assert len(tracer) == 0
        assert tracer.started_total == 0

    def test_noop_span_accumulates_nothing(self):
        tracer, _clock = make_tracer(enabled=False)
        span = tracer.start("op", "a", key="value")
        span.attributes["more"] = True
        assert NOOP_SPAN.attributes == {}

    def test_context_is_none(self):
        tracer, _clock = make_tracer(enabled=False)
        assert tracer.context(tracer.start("op", "a")) is None


class TestTraceLogMirror:
    def test_finished_span_mirrored(self):
        log = TraceLog()
        clock = {"now": 0.0}
        tracer = SpanTracer(now=lambda: clock["now"], trace=log)
        span = tracer.start("op", "host-a")
        clock["now"] = 1.5
        tracer.finish(span)
        (record,) = log.select(kind="span")
        assert record.fields["name"] == "op"
        assert record.fields["span"] == span.span_id
        assert record.fields["duration"] == 1.5


class TestTrees:
    def test_build_and_walk(self):
        tracer, clock = make_tracer()
        root = tracer.start("root", "a")
        child = tracer.start("child", "a", parent=root)
        grandchild = tracer.start("grandchild", "b", parent=child)
        for span in (grandchild, child, root):
            tracer.finish(span)
        (tree,) = tracer.trees()
        assert tree.size == 3
        assert tree.complete()
        assert [name for name in ("root", "child", "grandchild")] == [
            span.name for _depth, span in tree.walk()
        ]
        assert [depth for depth, _span in tree.walk()] == [0, 1, 2]
        assert tree.find("grandchild") == [grandchild]

    def test_orphans_become_roots(self):
        tracer, _clock = make_tracer()
        parent = tracer.start("parent", "a")
        child = tracer.start("child", "a", parent=parent)
        tracer.finish(child)  # parent still active -> child is an orphan
        trees = tracer.trees()
        assert len(trees) == 1
        assert trees[0].span is child
        assert not trees[0].children

    def test_incomplete_tree_detected(self):
        tracer, _clock = make_tracer()
        root = tracer.start("root", "a")
        child = tracer.start("child", "a", parent=root)
        tracer.finish(root)  # child never finishes
        trees = build_trees(tracer.finished_spans() + [child])
        (tree,) = trees
        assert not tree.complete()

    def test_render_shows_names_and_status(self):
        tracer, clock = make_tracer()
        root = tracer.start("root", "a")
        clock["now"] = 1.0
        tracer.finish(root, status=STATUS_ERROR)
        text = tracer.render()
        assert "root [a]" in text
        assert "!error" in text


class TestDisabledHopStampFastPath:
    """The per-hop timestamps added for trace analytics must cost
    nothing when tracing is off: no ``delivered_at`` stamps on
    messages, no attribute writes surviving on the shared no-op span,
    no allocations in the stamping guard, and bit-identical runs."""

    @staticmethod
    def quiet_pair():
        from repro.core import World, mutual_trust, standard_host
        from repro.net import Position, WIFI_ADHOC

        world = World(seed=9)  # tracing (and spans) off by default
        world.transport._rng.random = lambda: 0.999
        a = standard_host(world, "a", Position(0, 0), [WIFI_ADHOC])
        b = standard_host(world, "b", Position(10, 0), [WIFI_ADHOC])
        mutual_trust(a, b)
        b.register_service("echo", lambda args, host: (args, 32))
        return world, a, b

    def test_delivered_at_not_stamped_when_disabled(self):
        from repro.net import Message

        world, a, b = self.quiet_pair()

        def go():
            message = Message(
                source="a", destination="b", kind="cs.request",
                payload={"service": "echo", "args": 1}, size_bytes=64,
            )
            reply = yield from a.request(message, timeout=30.0)
            return reply

        process = world.env.process(go())
        reply = world.run(until=process)
        assert reply.delivered_at == 0.0
        assert world.tracer.started_total == 0

    def test_delivered_at_stamped_when_enabled(self):
        from repro.net import Message

        world, a, b = self.quiet_pair()
        world.tracer.enabled = True

        def go():
            message = Message(
                source="a", destination="b", kind="cs.request",
                payload={"service": "echo", "args": 1}, size_bytes=64,
            )
            reply = yield from a.request(message, timeout=30.0)
            return reply

        process = world.env.process(go())
        reply = world.run(until=process)
        assert reply.delivered_at > 0.0

    def test_noop_span_sheds_stamp_writes(self):
        # The transport writes hop stamps through span.attributes; the
        # shared no-op span must shed them into a throwaway dict.
        NOOP_SPAN.attributes["t_air"] = 123.0
        NOOP_SPAN.attributes["t_sent"] = 456.0
        assert NOOP_SPAN.attributes == {}

    def test_disabled_stamp_path_is_allocation_free(self):
        import tracemalloc

        tracer, _clock = make_tracer(enabled=False)
        tracemalloc.start()
        for index in range(10_000):
            span = tracer.start(
                "net.transmit", "a", msg_id=index, attempt=1
            )
            if span is not NOOP_SPAN:
                span.attributes["t_air"] = 1.0
            tracer.finish(span)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert len(tracer) == 0
        assert peak < 4096, f"disabled stamping allocated {peak} bytes"

    def test_disabled_runs_stay_bit_identical(self):
        summaries = []
        for _ in range(2):
            world, a, b = self.quiet_pair()

            def go():
                for index in range(5):
                    yield from a.component("cs").call("b", "echo", index)

            process = world.env.process(go())
            world.run(until=process)
            summaries.append(world.summary())
        assert summaries[0] == summaries[1]
