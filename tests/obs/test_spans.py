"""Unit tests for causal spans and span trees."""

import pytest

from repro.obs import NOOP_SPAN, STATUS_ERROR, STATUS_OK, SpanTracer, build_trees
from repro.sim.tracing import TraceLog


def make_tracer(**kwargs):
    clock = {"now": 0.0}
    tracer = SpanTracer(now=lambda: clock["now"], **kwargs)
    return tracer, clock


class TestSpanLifecycle:
    def test_start_finish_records_interval(self):
        tracer, clock = make_tracer()
        span = tracer.start("op", "host-a", key="value")
        clock["now"] = 2.5
        tracer.finish(span)
        assert span.finished
        assert span.start == 0.0
        assert span.end == 2.5
        assert span.duration == 2.5
        assert span.status == STATUS_OK
        assert span.attributes == {"key": "value"}
        assert tracer.finished_spans() == [span]

    def test_finish_attributes_merge(self):
        tracer, clock = make_tracer()
        span = tracer.start("op", "a", first=1)
        tracer.finish(span, second=2)
        assert span.attributes == {"first": 1, "second": 2}

    def test_double_finish_is_idempotent(self):
        tracer, clock = make_tracer()
        span = tracer.start("op", "a")
        clock["now"] = 1.0
        tracer.finish(span)
        clock["now"] = 9.0
        tracer.finish(span)
        assert span.end == 1.0
        assert len(tracer) == 1

    def test_error_status(self):
        tracer, _clock = make_tracer()
        span = tracer.start("op", "a")
        tracer.finish(span, status=STATUS_ERROR, error="boom")
        assert span.status == STATUS_ERROR
        assert span.attributes["error"] == "boom"

    def test_context_manager_marks_errors(self):
        tracer, _clock = make_tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("op", "a"):
                raise RuntimeError("bad")
        (span,) = tracer.finished_spans()
        assert span.status == STATUS_ERROR

    def test_counters_survive_ring_eviction(self):
        tracer, _clock = make_tracer(max_spans=2)
        for _ in range(5):
            tracer.finish(tracer.start("op", "a"))
        assert len(tracer) == 2
        assert tracer.started_total == 5
        assert tracer.finished_total == 5


class TestParentage:
    def test_child_of_span(self):
        tracer, _clock = make_tracer()
        parent = tracer.start("parent", "a")
        child = tracer.start("child", "a", parent=parent)
        assert child.parent_id == parent.span_id
        assert child.trace_id == parent.trace_id

    def test_child_of_wire_context(self):
        tracer, _clock = make_tracer()
        parent = tracer.start("parent", "a")
        context = tracer.context(parent)
        assert context == {"trace": parent.trace_id, "span": parent.span_id}
        child = tracer.start("child", "b", parent=context)
        assert child.parent_id == parent.span_id
        assert child.trace_id == parent.trace_id

    def test_roots_get_fresh_traces(self):
        tracer, _clock = make_tracer()
        first = tracer.start("a", "x")
        second = tracer.start("b", "x")
        assert first.trace_id != second.trace_id


class TestDisabledTracer:
    def test_start_returns_shared_noop(self):
        tracer, _clock = make_tracer(enabled=False)
        span = tracer.start("op", "a", key="value")
        assert span is NOOP_SPAN
        tracer.finish(span)
        assert len(tracer) == 0
        assert tracer.started_total == 0

    def test_noop_span_accumulates_nothing(self):
        tracer, _clock = make_tracer(enabled=False)
        span = tracer.start("op", "a", key="value")
        span.attributes["more"] = True
        assert NOOP_SPAN.attributes == {}

    def test_context_is_none(self):
        tracer, _clock = make_tracer(enabled=False)
        assert tracer.context(tracer.start("op", "a")) is None


class TestTraceLogMirror:
    def test_finished_span_mirrored(self):
        log = TraceLog()
        clock = {"now": 0.0}
        tracer = SpanTracer(now=lambda: clock["now"], trace=log)
        span = tracer.start("op", "host-a")
        clock["now"] = 1.5
        tracer.finish(span)
        (record,) = log.select(kind="span")
        assert record.fields["name"] == "op"
        assert record.fields["span"] == span.span_id
        assert record.fields["duration"] == 1.5


class TestTrees:
    def test_build_and_walk(self):
        tracer, clock = make_tracer()
        root = tracer.start("root", "a")
        child = tracer.start("child", "a", parent=root)
        grandchild = tracer.start("grandchild", "b", parent=child)
        for span in (grandchild, child, root):
            tracer.finish(span)
        (tree,) = tracer.trees()
        assert tree.size == 3
        assert tree.complete()
        assert [name for name in ("root", "child", "grandchild")] == [
            span.name for _depth, span in tree.walk()
        ]
        assert [depth for depth, _span in tree.walk()] == [0, 1, 2]
        assert tree.find("grandchild") == [grandchild]

    def test_orphans_become_roots(self):
        tracer, _clock = make_tracer()
        parent = tracer.start("parent", "a")
        child = tracer.start("child", "a", parent=parent)
        tracer.finish(child)  # parent still active -> child is an orphan
        trees = tracer.trees()
        assert len(trees) == 1
        assert trees[0].span is child
        assert not trees[0].children

    def test_incomplete_tree_detected(self):
        tracer, _clock = make_tracer()
        root = tracer.start("root", "a")
        child = tracer.start("child", "a", parent=root)
        tracer.finish(root)  # child never finishes
        trees = build_trees(tracer.finished_spans() + [child])
        (tree,) = trees
        assert not tree.complete()

    def test_render_shows_names_and_status(self):
        tracer, clock = make_tracer()
        root = tracer.start("root", "a")
        clock["now"] = 1.0
        tracer.finish(root, status=STATUS_ERROR)
        text = tracer.render()
        assert "root [a]" in text
        assert "!error" in text
