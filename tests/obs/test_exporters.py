"""Round-trip tests for the JSONL and Prometheus exporters."""

from repro.obs import (
    SpanTracer,
    metrics_to_prometheus,
    parse_prometheus,
    sanitize_metric_name,
    spans_from_jsonl,
    spans_to_jsonl,
    trace_from_jsonl,
    trace_to_jsonl,
    write_text,
)
from repro.sim import MetricsRegistry, TraceLog


class TestTraceJsonl:
    def test_round_trip(self):
        log = TraceLog()
        log.emit(1.0, "a", "net.send", bytes=64, to="b")
        log.emit(2.0, "b", "net.recv", ok=True)
        text = trace_to_jsonl(log)
        records = trace_from_jsonl(text)
        assert len(records) == 2
        assert records[0].time == 1.0
        assert records[0].kind == "net.send"
        assert records[0].fields == {"bytes": 64, "to": "b"}
        assert records[1].fields == {"ok": True}

    def test_non_json_fields_coerced(self):
        log = TraceLog()
        log.emit(0.0, "a", "k", obj=object())
        (record,) = trace_from_jsonl(trace_to_jsonl(log))
        assert isinstance(record.fields["obj"], str)

    def test_empty_log(self):
        assert trace_from_jsonl(trace_to_jsonl(TraceLog())) == []


class TestSpanJsonl:
    def test_round_trip_preserves_tree_shape(self):
        clock = {"now": 0.0}
        tracer = SpanTracer(now=lambda: clock["now"])
        root = tracer.start("root", "a", key="v")
        child = tracer.start("child", "b", parent=root)
        clock["now"] = 1.0
        tracer.finish(child)
        clock["now"] = 2.0
        tracer.finish(root)
        restored = spans_from_jsonl(spans_to_jsonl(tracer.finished_spans()))
        assert len(restored) == 2
        by_name = {span.name: span for span in restored}
        assert by_name["child"].parent_id == by_name["root"].span_id
        assert by_name["root"].attributes == {"key": "v"}
        assert by_name["root"].end == 2.0
        assert by_name["child"].trace_id == by_name["root"].trace_id

    def test_unfinished_span_round_trips(self):
        tracer = SpanTracer(now=lambda: 0.0)
        span = tracer.start("open", "a")
        (restored,) = spans_from_jsonl(spans_to_jsonl([span]))
        assert not restored.finished


class TestPrometheus:
    def test_sanitize(self):
        assert sanitize_metric_name("net.bytes-sent") == "net_bytes_sent"
        assert sanitize_metric_name("99th") == "_99th"
        assert sanitize_metric_name("a:b_c") == "a:b_c"

    def test_export_and_parse(self):
        registry = MetricsRegistry()
        registry.counter("net.messages").increment(3)
        registry.gauge("host.neighbors").set(2)
        registry.gauge("host.neighbors").set(5)
        for value in (1.0, 2.0, 3.0, 4.0):
            registry.histogram("cs.call_seconds").observe(value)
        registry.series("battery").record(0.0, 90.0)
        text = metrics_to_prometheus(registry)
        assert "# TYPE repro_net_messages counter" in text
        samples = parse_prometheus(text)
        flat = ()
        assert samples[("repro_net_messages", flat)] == 3.0
        assert samples[("repro_host_neighbors", flat)] == 5.0
        assert samples[("repro_host_neighbors_min", flat)] == 2.0
        assert samples[("repro_host_neighbors_max", flat)] == 5.0
        assert samples[("repro_cs_call_seconds_count", flat)] == 4.0
        assert samples[("repro_cs_call_seconds_sum", flat)] == 10.0
        key = ("repro_cs_call_seconds", (("quantile", "0.5"),))
        assert samples[key] == 2.5
        assert samples[("repro_battery", flat)] == 90.0

    def test_labeled_children_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("net.bytes").increment(7)
        registry.counter("net.bytes", labels={"node": "a"}).increment(5)
        registry.counter("net.bytes", labels={"node": "b"}).increment(2)
        registry.histogram(
            "net.latency", labels={"node": "a"}
        ).observe(1.5)
        text = metrics_to_prometheus(registry)
        samples = parse_prometheus(text)
        # The flat total includes forwarded child increments.
        assert samples[("repro_net_bytes", ())] == 14.0
        assert samples[("repro_net_bytes", (("node", "a"),))] == 5.0
        assert samples[("repro_net_bytes", (("node", "b"),))] == 2.0
        assert samples[("repro_net_latency_count", (("node", "a"),))] == 1.0
        quantile_key = (
            "repro_net_latency",
            (("node", "a"), ("quantile", "0.5")),
        )
        assert samples[quantile_key] == 1.5

    def test_empty_registry(self):
        assert metrics_to_prometheus(MetricsRegistry()) == ""

    def test_write_text(self, tmp_path):
        path = str(tmp_path / "metrics.prom")
        registry = MetricsRegistry()
        registry.counter("c").increment()
        write_text(path, metrics_to_prometheus(registry))
        with open(path) as handle:
            content = handle.read()
        assert content.endswith("\n")
        assert parse_prometheus(content)[("repro_c", ())] == 1.0
