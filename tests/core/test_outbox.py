"""Unit tests for disconnected operation (the Outbox component)."""

import pytest

from repro.core import Outbox, World, mutual_trust, standard_host
from repro.errors import MiddlewareError, ServiceNotFound
from repro.net import GPRS, LAN, Position
from tests.core.conftest import loss_free, run


def build():
    world = loss_free(World(seed=211))
    device = standard_host(world, "device", Position(0, 0), [GPRS])
    device.add_component(Outbox(flush_interval=1.0))
    server = standard_host(world, "server", Position(0, 0), [LAN], fixed=True)
    server.register_service("log", lambda args, host: (f"logged:{args}", 32))
    mutual_trust(device, server)
    return world, device, server


class TestOutbox:
    def test_immediate_delivery_when_connected(self):
        world, device, server = build()
        device.node.interface("gprs").attach()
        completion = device.component("outbox").call_eventually(
            "server", "log", "hello"
        )

        def go():
            result = yield completion
            return result

        assert run(world, go()) == "logged:hello"

    def test_queues_while_disconnected_flushes_on_reconnect(self):
        world, device, server = build()
        outbox = device.component("outbox")
        completion = outbox.call_eventually("server", "log", "offline-note")
        world.run(until=10.0)
        assert outbox.pending == 1
        assert not completion.triggered
        device.node.interface("gprs").attach()

        def go():
            result = yield completion
            return result, world.now

        result, finished = run(world, go())
        assert result == "logged:offline-note"
        assert outbox.pending == 0
        assert finished > 10.0

    def test_order_preserved_across_reconnect(self):
        world, device, server = build()
        received = []
        server.unregister_service("log")
        server.register_service(
            "log", lambda args, host: (received.append(args) or len(received), 8)
        )
        outbox = device.component("outbox")
        for index in range(3):
            outbox.call_eventually("server", "log", index)
        world.run(until=5.0)
        device.node.interface("gprs").attach()
        world.run(until=30.0)
        assert received == [0, 1, 2]

    def test_ttl_expiry_fails_entry(self):
        world, device, server = build()
        outbox = device.component("outbox")
        completion = outbox.call_eventually(
            "server", "log", "too-late", ttl=5.0
        )
        world.run(until=20.0)  # never connected
        assert outbox.expired == 1
        assert completion.triggered and not completion.ok
        assert isinstance(completion.value, MiddlewareError)

    def test_fire_and_forget_expiry_does_not_crash_simulation(self):
        world, device, server = build()
        device.component("outbox").call_eventually(
            "server", "log", "ignored", ttl=2.0
        )
        world.run(until=30.0)  # no crash from the undelivered failure

    def test_definitive_remote_error_not_retried(self):
        world, device, server = build()
        device.node.interface("gprs").attach()
        outbox = device.component("outbox")
        completion = outbox.call_eventually("server", "no-such-service")
        world.run(until=10.0)
        assert completion.triggered and not completion.ok
        assert isinstance(completion.value, ServiceNotFound)
        assert outbox.pending == 0
        completion._defused = True  # consumed by this assertion

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            Outbox(flush_interval=0.0)

    def test_metrics_counted(self):
        world, device, server = build()
        device.node.interface("gprs").attach()
        device.component("outbox").call_eventually("server", "log", 1)
        world.run(until=10.0)
        assert world.metrics.counter("outbox.queued").value == 1
        assert world.metrics.counter("outbox.delivered").value == 1
