"""Tests for plugging in paradigms dynamically ("used when needed")."""

import pytest

from repro.core import (
    AgentRuntime,
    ClientServer,
    CodeOnDemand,
    MobileHost,
    UpdateManager,
    World,
    component_unit,
    mutual_trust,
    standard_host,
)
from repro.errors import ComponentError
from repro.lmu import CodeRepository
from repro.net import GPRS, LAN, Position
from repro.security import OPEN_POLICY
from tests.core.conftest import loss_free, run


def minimal_host(world):
    """A host with only the essentials: CS, COD, update manager."""
    node = world.add_node("mini", Position(0, 0), [GPRS])
    host = MobileHost(world, node, policy=OPEN_POLICY)
    host.add_component(ClientServer())
    host.add_component(CodeOnDemand())
    host.add_component(UpdateManager())
    node.interface("gprs").attach()
    return host


def plugin_world():
    world = loss_free(World(seed=161))
    repository = CodeRepository()
    repository.publish(
        component_unit(AgentRuntime, unit_name="component:agents")
    )
    mini = minimal_host(world)
    server = standard_host(
        world, "server", Position(0, 0), [LAN], fixed=True,
        repository=repository,
    )
    mutual_trust(mini, server)
    return world, mini, server


class TestPluginParadigms:
    def test_minimal_host_lacks_agents(self):
        world, mini, server = plugin_world()
        with pytest.raises(ComponentError):
            mini.component("agents")

    def test_install_component_plugs_in_agents(self):
        world, mini, server = plugin_world()

        def go():
            component = yield from mini.component("update").install_component(
                "server", "component:agents"
            )
            return component

        component = run(world, go())
        assert component.kind == "agents"
        assert mini.component("agents") is component
        assert component.started

    def test_plugged_in_runtime_actually_hosts_agents(self):
        from repro.core import Agent

        world, mini, server = plugin_world()

        class Visitor(Agent):
            def on_arrival(self, context):
                if context.host_id != "mini":
                    yield from context.migrate("mini")
                self.state["made_it"] = True
                yield from context.sleep(0)

        def go():
            yield from mini.component("update").install_component(
                "server", "component:agents"
            )
            agent_id = server.component("agents").launch(Visitor())
            final = yield mini.component("agents").completion(agent_id)
            return final

        final = run(world, go())
        assert final["made_it"] is True

    def test_duplicate_install_rejected(self):
        world, mini, server = plugin_world()

        def go():
            yield from mini.component("update").install_component(
                "server", "component:agents"
            )
            yield from mini.component("update").install_component(
                "server", "component:agents"
            )

        with pytest.raises(ComponentError):
            run(world, go())

    def test_component_unit_pinned_against_eviction(self):
        world, mini, server = plugin_world()

        def go():
            yield from mini.component("update").install_component(
                "server", "component:agents"
            )

        run(world, go())
        assert mini.codebase.stats("component:agents").pinned
