"""Unit tests for agent cloning (multi-copy dissemination support)."""

import pytest

from repro.core import Agent, World, mutual_trust, standard_host
from repro.errors import MigrationError
from repro.net import Position, WIFI_ADHOC
from tests.core.conftest import run


class Cloner(Agent):
    """Clones itself to state['target'], then finishes locally."""

    def on_arrival(self, context):
        if self.state.get("is_clone_run"):
            # Behaviour at the clone's host.
            self.state["ran_at"] = context.host_id
            yield from context.sleep(0)
            return
        self.state["is_clone_run"] = True
        clone_id = yield from context.clone_to(str(self.state["target"]))
        self.state["clone_id"] = clone_id
        self.state["still_here"] = context.host_id


class TestCloning:
    def test_clone_runs_remotely_and_original_continues(self, adhoc_pair):
        a, b = adhoc_pair
        runtime_a = a.component("agents")
        runtime_b = b.component("agents")
        agent_id = runtime_a.launch(Cloner(), target="b")

        def go():
            final = yield runtime_a.completion(agent_id)
            return final

        final = run(a.world, go())
        assert final["still_here"] == "a"
        clone_id = final["clone_id"]
        assert clone_id == f"{agent_id}.c1"
        a.world.run(until=a.world.now + 10.0)
        clone_final = runtime_b.completed.get(clone_id)
        assert clone_final is not None
        assert clone_final["ran_at"] == "b"
        assert clone_final["hops"] == 1

    def test_clone_ids_unique_per_clone(self, adhoc_pair):
        a, b = adhoc_pair

        class DoubleCloner(Agent):
            def on_arrival(self, context):
                if self.state.get("is_clone_run"):
                    yield from context.sleep(0)
                    return
                self.state["is_clone_run"] = True
                first = yield from context.clone_to("b")
                second = yield from context.clone_to("b")
                self.state["ids"] = [first, second]

        runtime = a.component("agents")
        agent_id = runtime.launch(DoubleCloner())

        def go():
            final = yield runtime.completion(agent_id)
            return final

        final = run(a.world, go())
        assert final["ids"][0] != final["ids"][1]
        assert a.world.metrics.counter("agents.clones").value == 2

    def test_clone_to_unreachable_raises_and_preserves_state(self, world):
        a = standard_host(world, "a", Position(0, 0), [WIFI_ADHOC])
        standard_host(world, "far", Position(9000, 0), [WIFI_ADHOC])

        class TryClone(Agent):
            def on_arrival(self, context):
                try:
                    yield from context.clone_to("far")
                except MigrationError:
                    self.state["failed"] = True

        runtime = a.component("agents")
        agent_id = runtime.launch(TryClone())
        world.run(until=120.0)
        final = runtime.completed[agent_id]
        assert final["failed"] is True
        assert final.get("clones_made", 0) == 0

    def test_clone_does_not_inherit_parent_clone_counter(self, adhoc_pair):
        a, b = adhoc_pair
        runtime_a = a.component("agents")
        runtime_b = b.component("agents")
        agent_id = runtime_a.launch(Cloner(), target="b")

        def go():
            final = yield runtime_a.completion(agent_id)
            return final

        final = run(a.world, go())
        a.world.run(until=a.world.now + 10.0)
        clone_final = runtime_b.completed[final["clone_id"]]
        assert clone_final.get("clones_made", 0) == 0
