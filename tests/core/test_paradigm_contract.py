"""Cross-paradigm contract parity: one task, four paradigms, one answer.

The point of the unified pipeline: the *same*
:class:`~repro.core.invocation.InvocationTask` pushed through
``ParadigmSelector.select_and_invoke`` under each of CS, REV, COD, and
MA must produce the identical result, surface the identical typed
exception on remote failure, and emit the uniform
``paradigm.<kind>.{calls,served,errors,retries}`` / ``.seconds``
metric set — differing only in traffic profile, which is exactly the
axis the selector trades on.
"""

import pytest

from repro.core import (
    InvocationTask,
    PARADIGMS,
    PARADIGM_COD,
    ParadigmSelector,
    World,
    mutual_trust,
    provision_task,
    standard_host,
)
from repro.core.invocation import PARADIGM_COUNTERS
from repro.errors import RemoteExecutionError
from repro.net import Position, WIFI_ADHOC
from tests.core.conftest import loss_free, run


def make_world():
    world = loss_free(World(seed=11))
    device = standard_host(
        world, "device", Position(0, 0), [WIFI_ADHOC], cpu_speed=0.5
    )
    server = standard_host(
        world,
        "server",
        Position(20, 0),
        [WIFI_ADHOC],
        fixed=True,
        cpu_speed=2.0,
    )
    mutual_trust(device, server)
    return world, device, server


def square_task():
    def factory():
        def body(ctx, payload=None):
            ctx.charge(5_000)
            value = (payload or {}).get("n", 0)
            return {"n": value, "square": value * value}

        return body

    return InvocationTask(
        name="square",
        factory=factory,
        payload={"n": 9},
        work_units=5_000,
        code_bytes=4_000,
        request_bytes=64,
        reply_bytes=64,
        timeout=60.0,
    )


def failing_task():
    def factory():
        def body(ctx, payload=None):
            raise ValueError("bad input")

        return body

    return InvocationTask(
        name="doomed", factory=factory, work_units=1_000, timeout=60.0
    )


@pytest.mark.parametrize("kind", PARADIGMS)
class TestContract:
    def test_same_result_through_every_paradigm(self, kind):
        world, device, server = make_world()
        task = square_task()
        provision_task(server, task)
        selector = ParadigmSelector(available=[kind])

        outcome = run(
            world, selector.select_and_invoke(device, task, "server")
        )
        assert outcome.paradigm == kind
        assert outcome.result == {"n": 9, "square": 81}

    def test_same_exception_type_on_remote_failure(self, kind):
        world, device, server = make_world()
        task = failing_task()
        provision_task(server, task)
        selector = ParadigmSelector(available=[kind])

        with pytest.raises(RemoteExecutionError) as excinfo:
            run(world, selector.select_and_invoke(device, task, "server"))
        assert "bad input" in str(excinfo.value)
        assert world.metrics.counter(f"paradigm.{kind}.errors").value >= 1

    def test_uniform_metric_set(self, kind):
        world, device, server = make_world()
        task = square_task()
        provision_task(server, task)
        selector = ParadigmSelector(available=[kind])
        run(world, selector.select_and_invoke(device, task, "server"))

        metrics = world.metrics
        for counter in PARADIGM_COUNTERS:
            name = f"paradigm.{kind}.{counter}"
            value = metrics.counter(name).value
            if counter in ("calls", "served"):
                assert value >= 1, name
            else:  # clean run: no errors, no retries
                assert value == 0, name
        assert metrics.histogram(f"paradigm.{kind}.seconds").count >= 1

    def test_result_round_trips_a_second_call(self, kind):
        """Invoking twice works (COD hits its cache the second time)."""
        world, device, server = make_world()
        task = square_task()
        provision_task(server, task)
        selector = ParadigmSelector(available=[kind])

        first = run(
            world, selector.select_and_invoke(device, task, "server")
        )
        second = run(
            world, selector.select_and_invoke(device, task, "server")
        )
        assert first.result == second.result
        if kind == PARADIGM_COD:
            assert world.metrics.counter("cod.hits").value == 1
