"""Unit tests for MobileHost: dispatch, components, request/reply, security gate."""

import pytest

from repro.core import Component, MobileHost, World, mutual_trust, standard_host
from repro.errors import (
    ComponentError,
    MiddlewareError,
    RequestTimeout,
    SignatureInvalid,
    Unreachable,
)
from repro.lmu import CodeRepository, build_capsule, code_unit
from repro.net import Message, Position, WIFI_ADHOC
from repro.security import OP_INSTALL_CODE, OPEN_POLICY, sign_capsule
from tests.core.conftest import run


class Echo(Component):
    kind = "echo"

    def __init__(self):
        super().__init__()
        self.seen = []

    def handlers(self):
        return {"echo.ping": self._handle}

    def _handle(self, message):
        self.seen.append(message.payload)
        yield self.require_host().reply_to(message, "echo.pong", payload=message.payload)


def make_host(world, node_id, x=0.0):
    node = world.add_node(node_id, Position(x, 0), [WIFI_ADHOC])
    return MobileHost(world, node, policy=OPEN_POLICY)


class TestComponents:
    def test_add_and_lookup(self, world):
        host = make_host(world, "a")
        component = host.add_component(Echo())
        assert host.component("echo") is component
        assert component.started

    def test_duplicate_component_rejected(self, world):
        host = make_host(world, "a")
        host.add_component(Echo())
        with pytest.raises(ComponentError):
            host.add_component(Echo())

    def test_duplicate_handler_kind_rejected(self, world):
        host = make_host(world, "a")
        host.add_component(Echo())

        class Rival(Echo):
            kind = "rival"

        with pytest.raises(ComponentError):
            host.add_component(Rival())

    def test_remove_component_unwires(self, world):
        host = make_host(world, "a")
        host.add_component(Echo())
        removed = host.remove_component("echo")
        assert not removed.started
        assert removed.host is None
        with pytest.raises(ComponentError):
            host.component("echo")

    def test_remove_missing_component(self, world):
        with pytest.raises(ComponentError):
            make_host(world, "a").remove_component("ghost")

    def test_unattached_component_guards(self):
        component = Echo()
        with pytest.raises(ComponentError):
            component.require_host()
        with pytest.raises(ComponentError):
            component.start()


class TestDispatch:
    def test_routes_to_handler(self, world):
        a = make_host(world, "a")
        b = make_host(world, "b", x=20)
        echo = b.add_component(Echo())

        def send():
            yield a.send(Message("a", "b", "echo.ping", payload="hi"))
            yield world.env.timeout(1.0)

        run(world, send())
        assert echo.seen == ["hi"]

    def test_unhandled_message_counted(self, world):
        a = make_host(world, "a")
        b = make_host(world, "b", x=20)

        def send():
            yield a.send(Message("a", "b", "no.such.kind"))
            yield world.env.timeout(1.0)

        run(world, send())
        assert b.unhandled_messages == 1

    def test_request_reply_roundtrip(self, world):
        a = make_host(world, "a")
        b = make_host(world, "b", x=20)
        b.add_component(Echo())

        def exchange():
            reply = yield from a.request(
                Message("a", "b", "echo.ping", payload={"n": 1})
            )
            return reply.kind, reply.payload

        kind, payload = run(world, exchange())
        assert kind == "echo.pong"
        assert payload == {"n": 1}

    def test_request_timeout_when_no_reply(self, world):
        a = make_host(world, "a")
        make_host(world, "b", x=20)  # no echo component: message unhandled

        def exchange():
            yield from a.request(
                Message("a", "b", "echo.ping"), timeout=2.0
            )

        with pytest.raises(RequestTimeout):
            run(world, exchange())

    def test_request_unreachable_propagates(self, world):
        a = make_host(world, "a")
        make_host(world, "b", x=5000)

        def exchange():
            yield from a.request(Message("a", "b", "echo.ping"))

        with pytest.raises(Unreachable):
            run(world, exchange())

    def test_handler_error_contained(self, world):
        a = make_host(world, "a")
        b = make_host(world, "b", x=20)

        class Bomb(Component):
            kind = "bomb"

            def handlers(self):
                return {"bomb.go": self._handle}

            def _handle(self, message):
                raise MiddlewareError("boom")
                yield

        b.add_component(Bomb())

        def send():
            yield a.send(Message("a", "b", "bomb.go"))
            yield world.env.timeout(1.0)
            return "survived"

        assert run(world, send()) == "survived"


class TestServices:
    def test_register_and_duplicate(self, world):
        host = make_host(world, "a")
        host.register_service("svc", lambda args, host: (None, 0))
        with pytest.raises(MiddlewareError):
            host.register_service("svc", lambda args, host: (None, 0))
        host.unregister_service("svc")
        host.register_service("svc", lambda args, host: (None, 0))


class TestExecute:
    def test_execute_scales_with_cpu_speed(self, world):
        slow_node = world.add_node("slow", Position(0, 0), [WIFI_ADHOC], cpu_speed=0.5)
        slow = MobileHost(world, slow_node, policy=OPEN_POLICY)

        def compute():
            seconds = yield from slow.execute(1_000_000)
            return seconds

        assert run(world, compute()) == pytest.approx(2.0)

    def test_negative_work_rejected(self, world):
        host = make_host(world, "a")
        with pytest.raises(ValueError):
            list(host.execute(-1))


class TestCapsuleGate:
    def _capsule(self, sender="vendor"):
        repository = CodeRepository()
        repository.publish(code_unit("u", "1.0.0", lambda: (lambda ctx: 1), 100))
        return build_capsule(sender, "cod-reply", ["u"], repository.resolve)

    def test_open_policy_admits_unsigned(self, world):
        host = make_host(world, "a")

        def admit():
            principal = yield from host.admit_capsule(
                self._capsule(), OP_INSTALL_CODE
            )
            return principal

        assert run(world, admit()) == "vendor"

    def test_signed_policy_rejects_unsigned(self, world):
        node = world.add_node("s", Position(0, 0), [WIFI_ADHOC])
        host = MobileHost(world, node)  # SIGNED_POLICY default

        def admit():
            yield from host.admit_capsule(self._capsule(), OP_INSTALL_CODE)

        with pytest.raises(SignatureInvalid):
            run(world, admit())

    def test_signed_policy_admits_trusted_signature(self, world):
        node = world.add_node("s", Position(0, 0), [WIFI_ADHOC])
        host = MobileHost(world, node)
        capsule = self._capsule()
        signer = MobileHost(
            world, world.add_node("signer", Position(0, 0), [WIFI_ADHOC])
        )
        sign_capsule(signer.keypair, capsule)
        host.truststore.trust(signer.keypair.public_key)

        def admit():
            principal = yield from host.admit_capsule(capsule, OP_INSTALL_CODE)
            return principal

        assert run(world, admit()) == "signer"
