"""Unit tests for context awareness and paradigm selection."""

import pytest

from repro.core import (
    Battery,
    ContextMonitor,
    ContextRegistry,
    CostWeights,
    KEY_BATTERY,
    KEY_NEIGHBORS,
    ParadigmSelector,
    TaskProfile,
    World,
    estimate_cod,
    estimate_cs,
    estimate_ma,
    estimate_rev,
    standard_host,
)
from repro.net import GPRS, LAN, Position, WIFI_ADHOC
from repro.net.network import _backbone_link, _direct_link


class TestBattery:
    def test_full_at_start(self):
        assert Battery().fraction == 1.0

    def test_cpu_drain(self):
        battery = Battery(capacity_joules=100.0, cpu_watts=2.0)
        battery.consume_cpu(10.0)
        assert battery.fraction == pytest.approx(0.8)

    def test_radio_drain(self):
        battery = Battery(capacity_joules=1.0, radio_joules_per_byte=1e-3)
        battery.consume_radio(500)
        assert battery.fraction == pytest.approx(0.5)

    def test_never_negative(self):
        battery = Battery(capacity_joules=1.0)
        battery.consume(5.0)
        assert battery.fraction == 0.0
        assert battery.empty

    def test_recharge(self):
        battery = Battery(capacity_joules=10.0)
        battery.consume(5.0)
        battery.recharge()
        assert battery.fraction == 1.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            Battery(capacity_joules=0)
        with pytest.raises(ValueError):
            Battery().consume(-1)


class TestContextRegistry:
    def make(self):
        self.time = 0.0
        return ContextRegistry(now=lambda: self.time)

    def test_set_get(self):
        registry = self.make()
        registry.set("k", 1)
        assert registry.get("k") == 1
        assert registry.get("missing", "d") == "d"

    def test_listener_fires_on_change_only(self):
        registry = self.make()
        events = []
        registry.subscribe(lambda key, old, new: events.append((key, old, new)))
        registry.set("k", 1)
        registry.set("k", 1)  # no change
        registry.set("k", 2)
        assert events == [("k", None, 1), ("k", 1, 2)]

    def test_unsubscribe(self):
        registry = self.make()
        events = []
        listener = lambda *a: events.append(a)
        registry.subscribe(listener)
        registry.unsubscribe(listener)
        registry.set("k", 1)
        assert events == []

    def test_freshness(self):
        registry = self.make()
        registry.set("k", 1)
        self.time = 10.0
        assert not registry.fresh("k", max_age=5.0)
        assert registry.fresh("k", max_age=20.0)
        assert not registry.fresh("missing", max_age=1e9)

    def test_snapshot_and_keys(self):
        registry = self.make()
        registry.set("b", 2)
        registry.set("a", 1)
        assert registry.snapshot() == {"a": 1, "b": 2}
        assert registry.keys() == ["a", "b"]


class TestContextMonitor:
    def test_standard_readings_appear(self):
        world = World(seed=5)
        host = standard_host(
            world,
            "a",
            Position(0, 0),
            [WIFI_ADHOC],
            battery=Battery(),
        )
        standard_host(world, "b", Position(10, 0), [WIFI_ADHOC])
        ContextMonitor(host, interval=1.0)
        world.run(until=2.5)
        assert host.context.get(KEY_BATTERY) is not None
        assert host.context.get(KEY_NEIGHBORS) == 1

    def test_bandwidth_towards_reference_peer(self):
        world = World(seed=5)
        host = standard_host(world, "a", Position(0, 0), [GPRS])
        standard_host(world, "srv", Position(0, 0), [LAN], fixed=True)
        host.node.interface("gprs").attach()
        ContextMonitor(host, interval=1.0, reference_peer="srv")
        world.run(until=1.5)
        from repro.core import KEY_BANDWIDTH

        assert host.context.get(KEY_BANDWIDTH) == GPRS.bandwidth_bps

    def test_invalid_interval(self):
        world = World(seed=5)
        host = standard_host(world, "a", Position(0, 0), [WIFI_ADHOC])
        with pytest.raises(ValueError):
            ContextMonitor(host, interval=0.0)


GPRS_LINK = _backbone_link(GPRS, LAN)
WIFI_LINK = _direct_link(WIFI_ADHOC)


def profile(**overrides):
    base = dict(
        interactions=10,
        request_bytes=200,
        reply_bytes=2_000,
        code_bytes=50_000,
        result_bytes=500,
        work_units=50_000,
        expected_reuses=1,
        hosts_to_visit=3,
    )
    base.update(overrides)
    return TaskProfile(**base)


class TestEstimators:
    def test_cs_scales_with_interactions(self):
        small = estimate_cs(profile(interactions=1), GPRS_LINK)
        large = estimate_cs(profile(interactions=100), GPRS_LINK)
        assert large.wireless_bytes > 50 * small.wireless_bytes

    def test_rev_pays_code_once(self):
        few = estimate_rev(profile(interactions=1), GPRS_LINK)
        many = estimate_rev(profile(interactions=100), GPRS_LINK)
        assert many.wireless_bytes == few.wireless_bytes  # traffic flat

    def test_cod_amortises_with_reuse(self):
        once = estimate_cod(profile(expected_reuses=1), GPRS_LINK)
        often = estimate_cod(profile(expected_reuses=100), GPRS_LINK)
        assert often.money < once.money
        assert often.wireless_bytes < once.wireless_bytes

    def test_ma_charges_two_wireless_hops(self):
        estimate = estimate_ma(profile(), GPRS_LINK)
        assert estimate.wireless_bytes >= 2 * profile().code_bytes

    def test_money_zero_on_free_link(self):
        for estimator in (estimate_cs, estimate_rev, estimate_cod, estimate_ma):
            assert estimator(profile(), WIFI_LINK).money == 0.0


class TestSelector:
    def test_cs_wins_single_cheap_interaction(self):
        selector = ParadigmSelector()
        choice = selector.choose(
            profile(interactions=1, reply_bytes=200, code_bytes=100_000),
            GPRS_LINK,
        )
        assert choice.paradigm == "cs"

    def test_rev_wins_chatty_remote_work(self):
        selector = ParadigmSelector(available=["cs", "rev"])
        choice = selector.choose(
            profile(interactions=500, reply_bytes=5_000, code_bytes=5_000),
            GPRS_LINK,
        )
        assert choice.paradigm == "rev"

    def test_cod_wins_heavy_reuse(self):
        selector = ParadigmSelector()
        choice = selector.choose(
            profile(
                interactions=5,
                reply_bytes=2_000,
                expected_reuses=500,
                work_units=1_000,
            ),
            GPRS_LINK,
        )
        assert choice.paradigm == "cod"

    def test_rank_orders_by_composite(self):
        selector = ParadigmSelector()
        ranked = selector.rank(profile(), GPRS_LINK)
        costs = [e.composite(CostWeights()) for e in ranked]
        assert costs == sorted(costs)
        assert len(ranked) == 4

    def test_unknown_paradigm_rejected(self):
        with pytest.raises(ValueError):
            ParadigmSelector(available=["warp-drive"])

    def test_weights_change_winner(self):
        selector = ParadigmSelector(available=["cs", "cod"])
        # COD: tiny amortised download (cheap) but heavy local compute
        # (slow).  CS: repeated traffic (costly) but fast remote compute.
        task = profile(
            interactions=5,
            request_bytes=200,
            reply_bytes=2_000,
            code_bytes=20_000,
            expected_reuses=100,
            work_units=1_000_000,
        )
        fast_first = selector.choose(task, GPRS_LINK, CostWeights(time=1.0, money=0.0))
        cheap_first = selector.choose(
            task, GPRS_LINK, CostWeights(time=0.0, money=5.0)
        )
        assert {fast_first.paradigm, cheap_first.paradigm} == {"cs", "cod"}

    def test_weights_from_context_low_battery(self):
        weights = CostWeights.from_context(battery_fraction=0.1)
        assert weights.energy > 0
        assert CostWeights.from_context(battery_fraction=0.9).energy == 0
