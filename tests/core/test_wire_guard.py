"""Static guard: wire error payloads are shaped only in ``repro.errors``.

Walks the AST of every module under ``src/repro/core`` *and*
``src/repro/security`` and fails if any of them builds a dict literal
with an ``"error_type"`` key — the signature of hand-rolled wire
marshalling that :func:`repro.errors.to_wire` /
:func:`~repro.errors.from_wire` exist to centralise.  The security
package joined the guard when :class:`~repro.security.SandboxProvider`
started shipping typed failures (``ExecuteResult.error_wire``) across
the REV/COD reply path.
"""

import ast
from pathlib import Path

import pytest

from repro.errors import WIRE_TYPE_KEY

_SRC = Path(__file__).resolve().parents[2] / "src" / "repro"
GUARDED_DIRS = (_SRC / "core", _SRC / "security")


def _offending_dicts(tree: ast.AST):
    for node in ast.walk(tree):
        if not isinstance(node, ast.Dict):
            continue
        for key in node.keys:
            if (
                isinstance(key, ast.Constant)
                and key.value == WIRE_TYPE_KEY
            ):
                yield node


@pytest.mark.parametrize(
    "directory", GUARDED_DIRS, ids=lambda d: d.name
)
def test_guarded_dir_exists(directory):
    assert directory.is_dir(), directory


@pytest.mark.parametrize(
    "directory", GUARDED_DIRS, ids=lambda d: d.name
)
def test_no_raw_wire_payload_dicts(directory):
    offenders = []
    for path in sorted(directory.rglob("*.py")):
        tree = ast.parse(path.read_text(), filename=str(path))
        for node in _offending_dicts(tree):
            offenders.append(f"{path.name}:{node.lineno}")
    assert not offenders, (
        "raw {'error_type': ...} wire payload dict(s) found outside "
        f"repro.errors — use to_wire/remote_failure instead: {offenders}"
    )
