"""Static guard: wire error payloads are shaped only in ``repro.errors``.

Walks the AST of every module under ``src/repro/core`` and fails if any
of them builds a dict literal with an ``"error_type"`` key — the
signature of hand-rolled wire marshalling that :func:`repro.errors
.to_wire` / :func:`~repro.errors.from_wire` exist to centralise.
"""

import ast
from pathlib import Path

from repro.errors import WIRE_TYPE_KEY

CORE_DIR = (
    Path(__file__).resolve().parents[2] / "src" / "repro" / "core"
)


def _offending_dicts(tree: ast.AST):
    for node in ast.walk(tree):
        if not isinstance(node, ast.Dict):
            continue
        for key in node.keys:
            if (
                isinstance(key, ast.Constant)
                and key.value == WIRE_TYPE_KEY
            ):
                yield node


def test_core_dir_exists():
    assert CORE_DIR.is_dir(), CORE_DIR


def test_no_raw_wire_payload_dicts_in_core():
    offenders = []
    for path in sorted(CORE_DIR.rglob("*.py")):
        tree = ast.parse(path.read_text(), filename=str(path))
        for node in _offending_dicts(tree):
            offenders.append(f"{path.name}:{node.lineno}")
    assert not offenders, (
        "raw {'error_type': ...} wire payload dict(s) found outside "
        f"repro.errors — use to_wire/remote_failure instead: {offenders}"
    )
