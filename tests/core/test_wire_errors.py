"""Round-trip tests for the exception <-> wire marshalling registry.

The registry in :mod:`repro.errors` is the single place wire error
payloads are shaped; these tests pin the contract the invocation
pipeline relies on: registered types survive the trip intact, foreign
and unknown types degrade to :class:`RemoteExecutionError` with the
remote text preserved.
"""

import pytest

from repro.errors import (
    MigrationError,
    RemoteExecutionError,
    ReproError,
    ServiceNotFound,
    UnitNotFound,
    WIRE_ERROR_KEY,
    WIRE_REMOTE_KEY,
    WIRE_TYPE_KEY,
    from_wire,
    remote_failure,
    to_wire,
    wire_error_types,
)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "cls", [ServiceNotFound, UnitNotFound, MigrationError]
    )
    def test_registered_types_reconstruct_as_themselves(self, cls):
        rebuilt = from_wire(to_wire(cls("no such thing")))
        assert type(rebuilt) is cls
        assert "no such thing" in str(rebuilt)

    def test_payload_shape(self):
        payload = to_wire(ServiceNotFound("gone"))
        assert payload[WIRE_TYPE_KEY] == "ServiceNotFound"
        assert payload[WIRE_ERROR_KEY] == "gone"
        assert WIRE_REMOTE_KEY not in payload

    def test_remote_execution_error_preserves_remote_text(self):
        original = RemoteExecutionError(
            "unit crashed", remote_error="ZeroDivisionError: division by zero"
        )
        rebuilt = from_wire(to_wire(original))
        assert type(rebuilt) is RemoteExecutionError
        assert rebuilt.remote_error == "ZeroDivisionError: division by zero"

    def test_empty_message_falls_back_to_class_name(self):
        rebuilt = from_wire(to_wire(MigrationError()))
        assert type(rebuilt) is MigrationError
        assert str(rebuilt) == "MigrationError"


class TestFallbacks:
    def test_unknown_error_type_degrades_to_remote_execution_error(self):
        payload = {WIRE_ERROR_KEY: "zap", WIRE_TYPE_KEY: "FrobnicationError"}
        rebuilt = from_wire(payload)
        assert type(rebuilt) is RemoteExecutionError
        assert rebuilt.remote_error == "zap"

    def test_foreign_exception_keeps_traceback_style_text(self):
        rebuilt = from_wire(to_wire(ValueError("boom")))
        assert type(rebuilt) is RemoteExecutionError
        assert str(rebuilt) == "ValueError: boom"
        assert rebuilt.remote_error == "ValueError: boom"

    def test_remote_failure_always_rebuilds_as_remote_execution_error(self):
        # Even when the remote side knew the original type name, a
        # text-only failure cannot be faithfully reconstructed.
        payload = remote_failure("KeyError: 'x'", error_type="KeyError")
        rebuilt = from_wire(payload)
        assert type(rebuilt) is RemoteExecutionError
        assert rebuilt.remote_error == "KeyError: 'x'"

    @pytest.mark.parametrize("payload", [None, {}])
    def test_degenerate_payloads(self, payload):
        rebuilt = from_wire(payload)
        assert type(rebuilt) is RemoteExecutionError
        assert str(rebuilt) == "remote failure"


class TestRegistry:
    def test_repro_subclasses_register_automatically(self):
        class _WireProbeError(ReproError):
            pass

        assert wire_error_types()["_WireProbeError"] is _WireProbeError
        rebuilt = from_wire(to_wire(_WireProbeError("probe")))
        assert type(rebuilt) is _WireProbeError

    def test_strict_constructor_subclass_falls_back(self):
        class _StrictError(ReproError):
            def __init__(self, code: int, extra: str) -> None:
                super().__init__(f"{code}:{extra}")

        payload = to_wire(_StrictError(7, "x"))
        rebuilt = from_wire(payload)
        assert type(rebuilt) is RemoteExecutionError
        assert "7:x" in str(rebuilt)
