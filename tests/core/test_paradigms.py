"""Unit tests for the CS, REV, and COD paradigm components."""

import pytest

from repro.core import World, mutual_trust, standard_host
from repro.errors import (
    QuotaExceeded,
    RemoteExecutionError,
    SandboxViolation,
    ServiceNotFound,
    UnitNotFound,
)
from repro.lmu import CodeRepository, DataUnit, code_unit
from repro.net import GPRS, LAN, Position
from repro.security import SecurityPolicy, OP_SERVE_COD
from tests.core.conftest import run


def compute_unit(name="worker", size=20_000, work=100_000):
    def factory():
        def body(ctx, *args):
            ctx.charge(work)
            data = ctx.services.get("data", {})
            return {"args": list(args), "data_keys": sorted(data)}

        return body

    return code_unit(name, "1.0.0", factory, size)


class TestClientServer:
    def test_call_returns_result(self, adhoc_pair):
        a, b = adhoc_pair
        b.register_service("add", lambda args, host: (args["x"] + args["y"], 16))

        def go():
            value = yield from a.component("cs").call("b", "add", {"x": 2, "y": 3})
            return value

        assert run(a.world, go()) == 5

    def test_missing_service_raises(self, adhoc_pair):
        a, b = adhoc_pair

        def go():
            yield from a.component("cs").call("b", "nope")

        with pytest.raises(ServiceNotFound):
            run(a.world, go())

    def test_handler_exception_wrapped(self, adhoc_pair):
        a, b = adhoc_pair

        def broken(args, host):
            raise ValueError("bad input")

        b.register_service("broken", broken)

        def go():
            yield from a.component("cs").call("b", "broken")

        with pytest.raises(RemoteExecutionError) as excinfo:
            run(a.world, go())
        assert "ValueError" in excinfo.value.remote_error

    def test_service_work_units_take_time(self, adhoc_pair):
        a, b = adhoc_pair
        b.register_service(
            "heavy", lambda args, host: (None, 8), work_units=1_000_000
        )

        def go():
            start = a.world.now
            yield from a.component("cs").call("b", "heavy")
            return a.world.now - start

        elapsed = run(a.world, go())
        assert elapsed >= 1.0  # 1e6 units at speed 1.0

    def test_call_metrics(self, adhoc_pair):
        a, b = adhoc_pair
        b.register_service("s", lambda args, host: (None, 8))

        def go():
            yield from a.component("cs").call("b", "s")

        run(a.world, go())
        assert a.world.metrics.counter("cs.calls").value == 1
        assert a.world.metrics.counter("cs.served").value == 1


class TestRemoteEvaluation:
    def test_evaluate_runs_remotely(self, phone_and_server):
        phone, server = phone_and_server
        phone.codebase.install(compute_unit())

        def go():
            value = yield from phone.component("rev").evaluate(
                "server", ["worker"], args=(1, 2)
            )
            return value

        value = run(phone.world, go())
        assert value["args"] == [1, 2]
        runs = server.world.metrics.counter(
            "security.sandbox_runs", labels={"node": server.id}
        )
        assert runs.value == 1

    def test_data_units_visible_to_guest(self, phone_and_server):
        phone, server = phone_and_server
        phone.codebase.install(compute_unit())

        def go():
            value = yield from phone.component("rev").evaluate(
                "server",
                ["worker"],
                data_units=[DataUnit("input", [1, 2, 3], 200)],
            )
            return value

        assert run(phone.world, go())["data_keys"] == ["input"]

    def test_guest_failure_reported_with_remote_error(self, phone_and_server):
        phone, server = phone_and_server

        def factory():
            def body(ctx):
                raise RuntimeError("remote bug")

            return body

        phone.codebase.install(code_unit("bad", "1.0.0", factory, 1000))

        def go():
            yield from phone.component("rev").evaluate("server", ["bad"])

        with pytest.raises(RemoteExecutionError) as excinfo:
            run(phone.world, go())
        assert "remote bug" in excinfo.value.remote_error

    def test_missing_local_unit_raises(self, phone_and_server):
        phone, _ = phone_and_server

        def go():
            yield from phone.component("rev").evaluate("server", ["ghost"])

        with pytest.raises(UnitNotFound):
            run(phone.world, go())

    def test_work_budget_enforced_remotely(self, phone_and_server):
        phone, server = phone_and_server
        object.__setattr__  # noqa: B018 - documentation of frozen dataclass
        server.policy = SecurityPolicy(
            require_signatures=True, guest_work_budget=10.0
        )

        def factory():
            def body(ctx):
                ctx.charge(1_000_000)

            return body

        phone.codebase.install(code_unit("greedy", "1.0.0", factory, 1000))

        def go():
            yield from phone.component("rev").evaluate("server", ["greedy"])

        # The typed wire registry rebuilds the genuine violation class
        # on the caller's side (it is a registered wire error), so the
        # budget trip is no longer flattened into RemoteExecutionError.
        with pytest.raises(SandboxViolation) as excinfo:
            run(phone.world, go())
        assert "work budget" in str(excinfo.value)


class TestCodeOnDemand:
    def _provision(self, server, units):
        repository = CodeRepository()
        repository.publish_all(units)
        server.repository = repository

    def test_fetch_installs_closure(self, phone_and_server):
        phone, server = phone_and_server
        lib = code_unit("lib", "1.0.0", lambda: (lambda ctx: 0), 5_000)
        app = code_unit(
            "app", "1.0.0", lambda: (lambda ctx: 1), 10_000, requires=["lib"]
        )
        self._provision(server, [lib, app])

        def go():
            capsule = yield from phone.component("cod").fetch("server", ["app"])
            return [u.name for u in capsule.code_units]

        assert run(phone.world, go()) == ["lib", "app"]
        assert "app" in phone.codebase and "lib" in phone.codebase

    def test_differential_fetch_skips_installed(self, phone_and_server):
        phone, server = phone_and_server
        lib = code_unit("lib", "1.0.0", lambda: (lambda ctx: 0), 5_000)
        app = code_unit(
            "app", "1.0.0", lambda: (lambda ctx: 1), 10_000, requires=["lib"]
        )
        self._provision(server, [lib, app])
        phone.codebase.install(lib)

        def go():
            capsule = yield from phone.component("cod").fetch("server", ["app"])
            return [u.name for u in capsule.code_units]

        assert run(phone.world, go()) == ["app"]

    def test_missing_unit_raises(self, phone_and_server):
        phone, server = phone_and_server
        self._provision(server, [])

        def go():
            yield from phone.component("cod").fetch("server", ["ghost"])

        with pytest.raises(UnitNotFound):
            run(phone.world, go())

    def test_ensure_hit_and_miss(self, phone_and_server):
        phone, server = phone_and_server
        unit = code_unit("codec", "1.0.0", lambda: (lambda ctx: 0), 5_000)
        self._provision(server, [unit])

        def go():
            first = yield from phone.component("cod").ensure(["codec"], "server")
            second = yield from phone.component("cod").ensure(["codec"], "server")
            return first, second

        assert run(phone.world, go()) == ("miss", "hit")
        metrics = phone.world.metrics
        assert metrics.counter("cod.hits").value == 1
        assert metrics.counter("cod.misses").value == 1

    def test_release_uninstalls(self, phone_and_server):
        phone, server = phone_and_server
        unit = code_unit("codec", "1.0.0", lambda: (lambda ctx: 0), 5_000)
        self._provision(server, [unit])

        def go():
            yield from phone.component("cod").fetch("server", ["codec"])

        run(phone.world, go())
        removed = phone.component("cod").release(["codec", "ghost"])
        assert removed == ["codec"]
        assert "codec" not in phone.codebase

    def test_quota_eviction_on_fetch(self, world):
        phone = standard_host(
            world, "p", Position(0, 0), [GPRS], quota_bytes=250_000
        )
        server = standard_host(world, "s", Position(0, 0), [LAN], fixed=True)
        mutual_trust(phone, server)
        phone.node.interface("gprs").attach()
        units = [
            code_unit(f"u{i}", "1.0.0", lambda: (lambda ctx: 0), 100_000)
            for i in range(3)
        ]
        repository = CodeRepository()
        repository.publish_all(units)
        server.repository = repository

        def go():
            for index in range(3):
                yield from phone.component("cod").fetch("s", [f"u{index}"])

        run(world, go())
        assert phone.codebase.used_bytes <= 250_000
        assert phone.codebase.evictions >= 1

    def test_provider_policy_can_refuse_serving(self, world):
        phone = standard_host(world, "p", Position(0, 0), [GPRS])
        server = standard_host(
            world,
            "s",
            Position(0, 0),
            [LAN],
            fixed=True,
            policy=SecurityPolicy(
                require_signatures=False,
                allowed_operations=frozenset({"install-code"}),
            ),
        )
        mutual_trust(phone, server)
        phone.node.interface("gprs").attach()
        repository = CodeRepository()
        repository.publish(
            code_unit("u", "1.0.0", lambda: (lambda ctx: 0), 1000)
        )
        server.repository = repository

        def go():
            yield from phone.component("cod").fetch("s", ["u"], timeout=5.0)

        from repro.errors import RequestTimeout

        with pytest.raises(RequestTimeout):
            run(world, go())
