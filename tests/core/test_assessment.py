"""Unit tests for design-time paradigm assessment."""

import pytest

from repro.core import (
    CostWeights,
    STANDARD_CONTEXTS,
    TaskProfile,
    assess,
)


def profile(**overrides):
    base = dict(
        interactions=20,
        request_bytes=200,
        reply_bytes=2_000,
        code_bytes=40_000,
        result_bytes=500,
        work_units=20_000,
        expected_reuses=5,
    )
    base.update(overrides)
    return TaskProfile(**base)


class TestAssess:
    def test_covers_all_standard_contexts(self):
        report = assess(profile())
        assert [row.context for row in report.rows] == [
            name for name, _link in STANDARD_CONTEXTS
        ]

    def test_every_row_has_all_paradigm_estimates(self):
        report = assess(profile())
        for row in report.rows:
            assert {e.paradigm for e in row.estimates} == {
                "cs",
                "rev",
                "cod",
                "ma",
            }

    def test_winner_is_cheapest_composite(self):
        report = assess(profile())
        for row in report.rows:
            costs = {
                e.paradigm: e.composite(report.weights) for e in row.estimates
            }
            assert costs[row.winner] == min(costs.values())

    def test_margin_at_least_one(self):
        report = assess(profile())
        for row in report.rows:
            assert row.margin >= 1.0

    def test_metered_links_favour_code_mobility(self):
        report = assess(profile())
        winners = report.winner_by_context()
        # On metered slow links a logical-mobility paradigm must win.
        assert winners["gprs"] in ("cod", "rev", "ma")
        assert winners["gsm-dialup"] in ("cod", "rev", "ma")

    def test_unanimous_detection(self):
        # A one-shot tiny task: CS wins everywhere.
        report = assess(
            profile(
                interactions=1,
                reply_bytes=100,
                code_bytes=500_000,
                expected_reuses=1,
            )
        )
        assert report.unanimous() == "cs"
        # The mixed case is not unanimous.
        assert assess(profile()).unanimous() is None

    def test_restricted_paradigm_set(self):
        report = assess(profile(), paradigms=["cs", "rev"])
        for row in report.rows:
            assert row.winner in ("cs", "rev")
            assert len(row.estimates) == 2

    def test_render_contains_contexts_and_winners(self):
        report = assess(profile())
        text = report.render()
        assert "gprs" in text
        assert "winner" in text

    def test_weights_change_verdict(self):
        # Money-blind assessment on GPRS favours speed.
        report_fast = assess(profile(), weights=CostWeights(time=1, money=0))
        report_cheap = assess(profile(), weights=CostWeights(time=0, money=1))
        assert (
            report_fast.winner_by_context() != report_cheap.winner_by_context()
        )

    def test_estimate_for_unknown_paradigm_raises(self):
        report = assess(profile())
        with pytest.raises(KeyError):
            report.rows[0].estimate_for("warp")
