"""Quota-priced paradigm selection: grants steer the selector.

Acceptance criterion for the provider substrate: on two otherwise
bit-identical worlds — same seed, same topology, same link, same task —
the :class:`~repro.core.adaptation.ParadigmSelector` must rank
paradigms *differently* when the executing side's
:class:`~repro.security.QuotaGrant` for the task's principal differs,
because a starved compute quota prices in the predicted preemption
cost of running the guest there.
"""

import dataclasses

import pytest

from repro.core import (
    InvocationTask,
    LocalExecution,
    PARADIGM_LOCAL,
    PARADIGM_REV,
    ParadigmSelector,
    World,
    mutual_trust,
    provision_task,
    standard_host,
)
from repro.core.adaptation import (
    TaskProfile,
    estimate_local,
    estimate_rev,
)
from repro.net import Position, WIFI_ADHOC
from repro.security import QuotaGrant
from tests.core.conftest import loss_free, run

#: Enough declared work that a starved remote grant's penalty dwarfs
#: the local-CPU disadvantage.
CRUNCH_WORK = 5_000_000.0


def make_world():
    world = loss_free(World(seed=11))
    device = standard_host(
        world, "device", Position(0, 0), [WIFI_ADHOC], cpu_speed=0.5
    )
    server = standard_host(
        world,
        "server",
        Position(20, 0),
        [WIFI_ADHOC],
        fixed=True,
        cpu_speed=2.0,
    )
    mutual_trust(device, server)
    device.add_component(LocalExecution())
    return world, device, server


def crunch_task():
    def factory():
        def body(ctx, payload=None):
            ctx.charge(CRUNCH_WORK)
            return "crunched"

        return body

    return InvocationTask(
        name="crunch",
        factory=factory,
        work_units=CRUNCH_WORK,
        code_bytes=4_000,
        request_bytes=64,
        reply_bytes=64,
        timeout=60.0,
    )


def starve(host, principal, work_units):
    host.policy = dataclasses.replace(
        host.policy,
        quota_grants={principal: QuotaGrant(work_units=work_units)},
    )


def invoke(world, device, task):
    selector = ParadigmSelector(available=[PARADIGM_LOCAL, PARADIGM_REV])
    return run(
        world, selector.select_and_invoke(device, task, "server")
    )


class TestQuotaPricedSelection:
    def test_generous_remote_grant_offloads(self):
        world, device, server = make_world()
        task = crunch_task()
        provision_task(server, task)
        outcome = invoke(world, device, task)
        # Fast server, cheap link, no quota pressure: REV wins.
        assert outcome.paradigm == PARADIGM_REV

    def test_starved_remote_grant_flips_to_local(self):
        world, device, server = make_world()
        task = crunch_task()
        provision_task(server, task)
        # Identical link, identical task — only the server's grant for
        # this task's principal differs from the test above.
        starve(server, "task:crunch", 1_000.0)
        outcome = invoke(world, device, task)
        assert outcome.paradigm == PARADIGM_LOCAL

    def test_starved_local_grant_still_offloads(self):
        world, device, server = make_world()
        task = crunch_task()
        provision_task(server, task)
        starve(device, "task:crunch", 1_000.0)
        outcome = invoke(world, device, task)
        assert outcome.paradigm == PARADIGM_REV


class TestEstimatorPenalty:
    def profile(self, **overrides):
        values = dict(
            interactions=1,
            request_bytes=64,
            reply_bytes=64,
            code_bytes=4_000,
            result_bytes=64,
            work_units=CRUNCH_WORK,
            local_speed=0.5,
            remote_speed=2.0,
        )
        values.update(overrides)
        return TaskProfile(**values)

    def test_no_quota_means_no_penalty(self):
        lenient = self.profile(remote_work_quota=None)
        capped = self.profile(remote_work_quota=CRUNCH_WORK)
        link = _fake_link()
        assert estimate_rev(lenient, link).time_s == pytest.approx(
            estimate_rev(capped, link).time_s
        )

    def test_starved_quota_adds_linear_penalty(self):
        starved = self.profile(remote_work_quota=1_000.0)
        lenient = self.profile(remote_work_quota=None)
        link = _fake_link()
        excess = CRUNCH_WORK - 1_000.0
        delta = (
            estimate_rev(starved, link).time_s
            - estimate_rev(lenient, link).time_s
        )
        assert delta == pytest.approx(excess * 1.0e-4)

    def test_local_estimator_reads_local_quota(self):
        starved = self.profile(local_work_quota=1_000.0)
        lenient = self.profile(local_work_quota=None)
        delta = estimate_local(starved).time_s - estimate_local(lenient).time_s
        assert delta > 0


def _fake_link():
    world, device, server = make_world()
    return world.network.best_link(device.node, server.node)
