"""Unit tests for host builders and device profiles."""

import pytest

from repro.core import (
    STANDARD_COMPONENTS,
    World,
    laptop_host,
    mutual_trust,
    pda_host,
    phone_host,
    server_host,
    standard_host,
)
from repro.net import Position, WIFI_ADHOC


class TestStandardHost:
    def test_installs_standard_components(self, world):
        host = standard_host(world, "h", Position(0, 0), [WIFI_ADHOC])
        for kind in STANDARD_COMPONENTS:
            assert kind in host.components

    def test_mutual_trust_wires_both_ways(self, world):
        a = standard_host(world, "a", Position(0, 0), [WIFI_ADHOC])
        b = standard_host(world, "b", Position(0, 0), [WIFI_ADHOC])
        mutual_trust(a, b)
        assert a.truststore.trusts("b") and b.truststore.trusts("a")
        assert not a.truststore.trusts("a")  # no self entry needed


class TestDeviceProfiles:
    def test_pda_profile(self, world):
        pda = pda_host(world, "pda")
        assert pda.node.cpu_speed == 0.2
        assert pda.codebase.quota_bytes == 2_000_000
        assert pda.battery is not None
        assert "802.11b-adhoc" in pda.node.interfaces
        assert "bluetooth" in pda.node.interfaces

    def test_phone_profile(self, world):
        phone = phone_host(world, "phone")
        assert "gprs" in phone.node.interfaces
        assert phone.node.cpu_speed < 0.2
        assert phone.codebase.quota_bytes == 400_000

    def test_laptop_profile(self, world):
        laptop = laptop_host(world, "laptop")
        assert "gsm-dialup" in laptop.node.interfaces
        assert laptop.node.cpu_speed == 1.0
        assert laptop.codebase.quota_bytes == float("inf")

    def test_server_profile(self, world):
        server = server_host(world, "srv")
        assert server.node.fixed
        assert server.battery is None
        assert "lan" in server.node.interfaces

    def test_overrides_win(self, world):
        pda = pda_host(world, "pda", cpu_speed=0.7, quota_bytes=123)
        assert pda.node.cpu_speed == 0.7
        assert pda.codebase.quota_bytes == 123

    def test_profiles_interoperate(self, world):
        phone = phone_host(world, "phone")
        server = server_host(world, "srv")
        mutual_trust(phone, server)
        phone.node.interface("gprs").attach()
        assert world.network.connected("phone", "srv")
