"""The shared invocation pipeline: retry, marshalling, metrics, selection.

Covers the pipeline mechanics every paradigm now rides on —
:class:`RetryPolicy` backoff over transient link loss, error-reply
sizing, the :class:`LocalExecution` degenerate paradigm, and
``ParadigmSelector.select_and_invoke`` fallback behaviour.  The
cross-paradigm execution contract lives in
``test_paradigm_contract.py``.
"""

import pytest

from repro.core import (
    CostWeights,
    DEFAULT_RETRY,
    InvocationTask,
    LocalExecution,
    PARADIGM_LOCAL,
    PARADIGM_REV,
    ParadigmSelector,
    RetryPolicy,
    World,
    mutual_trust,
    standard_host,
)
from repro.errors import (
    ComponentError,
    RequestTimeout,
    ServiceNotFound,
    Unreachable,
)
from repro.lmu import estimate_size
from repro.errors import to_wire
from repro.net import Position, WIFI_ADHOC
from tests.core.conftest import run


def echo_task(name="echo", **overrides):
    def factory():
        def body(ctx, payload=None):
            ctx.charge(1_000)
            return {"got": payload}

        return body

    fields = dict(
        name=name, factory=factory, payload=7, work_units=1_000,
        code_bytes=4_000, timeout=30.0,
    )
    fields.update(overrides)
    return InvocationTask(**fields)


class TestRetryPolicy:
    def test_exponential_progression(self):
        policy = RetryPolicy(attempts=5, base_delay_s=0.5, multiplier=2.0)
        assert [policy.delay(i) for i in range(4)] == [0.5, 1.0, 2.0, 4.0]

    def test_cap(self):
        policy = RetryPolicy(base_delay_s=1.0, multiplier=10.0, max_delay_s=30.0)
        assert policy.delay(5) == 30.0

    def test_no_retry_means_one_attempt(self):
        from repro.core import NO_RETRY

        assert NO_RETRY.attempts == 1


class TestTransientRetry:
    @pytest.fixture
    def roaming_pair(self, world):
        """Server starts out of Wi-Fi range; the device can call it only
        after it moves back into range."""
        device = standard_host(world, "device", Position(0, 0), [WIFI_ADHOC])
        server = standard_host(
            world, "server", Position(5_000, 0), [WIFI_ADHOC]
        )
        mutual_trust(device, server)
        server.register_service("ping", lambda args, host: ({"pong": args}, 32))
        return device, server

    def test_link_drop_retried_with_backoff(self, world, roaming_pair):
        device, server = roaming_pair

        def come_back():
            yield world.env.timeout(1.0)
            server.node.move_to(Position(10, 0))

        world.env.process(come_back())

        def scenario():
            cs = device.component("cs")
            result = yield from cs.call(
                "server",
                "ping",
                {"n": 1},
                retry=RetryPolicy(attempts=3, base_delay_s=2.0),
            )
            return result

        result = run(world, scenario())
        assert result == {"pong": {"n": 1}}
        # First attempt fails at t=0, backoff 2s, second attempt succeeds.
        metrics = world.metrics
        assert metrics.counter("paradigm.cs.retries").value == 1
        assert metrics.counter("paradigm.cs.errors").value == 0
        assert metrics.counter("paradigm.cs.calls").value == 1
        assert world.env.now >= 2.0

    def test_exhaustion_raises_the_link_error(self, world, roaming_pair):
        device, _server = roaming_pair

        def scenario():
            yield from device.component("cs").call(
                "server",
                "ping",
                retry=RetryPolicy(attempts=2, base_delay_s=0.5),
            )

        with pytest.raises(Unreachable):
            run(world, scenario())
        assert world.metrics.counter("paradigm.cs.retries").value == 1
        assert world.metrics.counter("paradigm.cs.errors").value == 1

    def test_bare_call_still_fails_fast(self, world, roaming_pair):
        device, _server = roaming_pair

        def scenario():
            yield from device.component("cs").call("server", "ping")

        with pytest.raises(Unreachable):
            run(world, scenario())
        assert world.metrics.counter("paradigm.cs.retries").value == 0

    def test_request_timeout_is_not_transient(self, world, adhoc_pair):
        a, b = adhoc_pair
        # A service so slow the reply cannot beat the deadline: a
        # RequestTimeout, which may mean "already served" — retrying it
        # is the outbox's at-least-once job, not the pipeline's.
        b.register_service(
            "slow", lambda args, host: ({}, 16), work_units=50_000_000
        )

        def scenario():
            yield from a.component("cs").call(
                "b", "slow", timeout=1.0, retry=DEFAULT_RETRY
            )

        with pytest.raises(RequestTimeout):
            run(world, scenario())
        assert world.metrics.counter("paradigm.cs.retries").value == 0
        assert world.metrics.counter("paradigm.cs.errors").value == 1


class TestErrorReplies:
    def test_error_reply_sized_from_payload(self, world, adhoc_pair):
        a, b = adhoc_pair
        captured = {}
        original = b.reply_to

        def spy(request, kind, payload=None, size_bytes=0):
            captured.update(kind=kind, payload=payload, size_bytes=size_bytes)
            return original(request, kind, payload=payload, size_bytes=size_bytes)

        b.reply_to = spy

        def scenario():
            yield from a.component("cs").call("b", "nope")

        with pytest.raises(ServiceNotFound):
            run(world, scenario())
        expected = ServiceNotFound("no service 'nope' on b")
        assert captured["size_bytes"] == estimate_size(to_wire(expected))
        assert captured["size_bytes"] != 64  # the old hardcoded guess


class TestLocalExecution:
    def test_invoke_runs_in_the_local_sandbox(self, world):
        solo = standard_host(world, "solo", Position(0, 0), [WIFI_ADHOC])
        solo.add_component(LocalExecution())
        local = solo.paradigm_component(PARADIGM_LOCAL)

        result = run(world, local.invoke(echo_task()))
        assert result == {"got": 7}
        metrics = world.metrics
        assert metrics.counter("paradigm.local.calls").value == 1
        assert metrics.counter("paradigm.local.served").value == 1
        assert metrics.counter("paradigm.local.errors").value == 0
        assert metrics.histogram("paradigm.local.seconds").count == 1


class TestSelectAndInvoke:
    def test_no_link_falls_back_to_local(self, world):
        device = standard_host(
            world, "device", Position(0, 0), [WIFI_ADHOC], cpu_speed=0.1
        )
        server = standard_host(
            world, "server", Position(5_000, 0), [WIFI_ADHOC], cpu_speed=4.0
        )
        mutual_trust(device, server)
        device.add_component(LocalExecution())
        selector = ParadigmSelector(available=[PARADIGM_LOCAL, PARADIGM_REV])

        # Heavy enough that REV would win easily — but there is no link.
        task = echo_task(work_units=50_000_000)
        outcome = run(
            world,
            selector.select_and_invoke(device, task, "server"),
        )
        assert outcome.paradigm == PARADIGM_LOCAL
        assert outcome.result == {"got": 7}
        assert [e.paradigm for e in outcome.ranking] == [PARADIGM_LOCAL]

    def test_no_usable_paradigm_is_a_component_error(self, world):
        device = standard_host(
            world, "device", Position(0, 0), [WIFI_ADHOC]
        )
        # Only link-requiring paradigms available, and no link.
        selector = ParadigmSelector(available=[PARADIGM_REV])

        with pytest.raises(ComponentError):
            run(
                world,
                selector.select_and_invoke(device, echo_task(), "ghost"),
            )

    def test_outcome_carries_the_assessment(self, world, adhoc_pair):
        a, b = adhoc_pair
        a.add_component(LocalExecution())
        selector = ParadigmSelector(available=[PARADIGM_LOCAL, PARADIGM_REV])
        outcome = run(
            world, selector.select_and_invoke(a, echo_task(), "b")
        )
        assert outcome.estimate is outcome.ranking[0]
        assert outcome.estimate.paradigm == outcome.paradigm
        assert {e.paradigm for e in outcome.ranking} == {
            PARADIGM_LOCAL,
            PARADIGM_REV,
        }
        assert outcome.elapsed_s >= 0.0
