"""Unit tests for decentralised discovery and the Jini-like lookup baseline."""

import pytest

from repro.core import (
    Discovery,
    LookupClient,
    LookupServer,
    World,
    mutual_trust,
    service,
    standard_host,
)
from repro.errors import ServiceNotFound
from repro.net import GPRS, LAN, Position, WIFI_ADHOC
from tests.core.conftest import run


class TestDiscovery:
    def test_query_finds_in_range_provider(self, adhoc_pair):
        a, b = adhoc_pair
        b.component("discovery").advertise(
            service("printer", "b", "office", {"color": "yes"})
        )

        def go():
            found = yield from a.component("discovery").find("printer")
            return found

        found = run(a.world, go())
        assert [s.provider for s in found] == ["b"]

    def test_attribute_filtering(self, adhoc_pair):
        a, b = adhoc_pair
        b.component("discovery").advertise(
            service("printer", "b", "mono", {"color": "no"})
        )

        def go():
            found = yield from a.component("discovery").find(
                "printer", attributes={"color": "yes"}
            )
            return found

        assert run(a.world, go()) == []

    def test_out_of_range_provider_not_found(self, world):
        a = standard_host(world, "a", Position(0, 0), [WIFI_ADHOC])
        far = standard_host(world, "far", Position(5000, 0), [WIFI_ADHOC])
        far.component("discovery").advertise(service("printer", "far", "x"))

        def go():
            found = yield from a.component("discovery").find("printer")
            return found

        assert run(world, go()) == []

    def test_own_services_match(self, adhoc_pair):
        a, _ = adhoc_pair
        a.component("discovery").advertise(service("printer", "a", "mine"))

        def go():
            found = yield from a.component("discovery").find("printer")
            return found

        assert [s.provider for s in run(a.world, go())] == ["a"]

    def test_cache_hit_avoids_radio(self, adhoc_pair):
        a, b = adhoc_pair
        b.component("discovery").advertise(service("printer", "b", "office"))

        def go():
            first = yield from a.component("discovery").find("printer")
            second = yield from a.component("discovery").find("printer")
            return first, second

        first, second = run(a.world, go())
        assert first and second
        assert a.world.metrics.counter("disc.cache_hits").value == 1
        assert a.world.metrics.counter("disc.queries").value == 1

    def test_cache_expires(self, adhoc_pair):
        a, b = adhoc_pair
        b.component("discovery").advertise(service("printer", "b", "office"))

        def go():
            yield from a.component("discovery").find("printer")
            yield a.world.env.timeout(100.0)  # past cache_ttl
            found = yield from a.component("discovery").find("printer")
            return found

        run(a.world, go())
        assert a.world.metrics.counter("disc.queries").value == 2

    def test_withdraw_stops_matching(self, adhoc_pair):
        a, b = adhoc_pair
        description = service("printer", "b", "office")
        b.component("discovery").advertise(description)
        b.component("discovery").withdraw(description.key)

        def go():
            found = yield from a.component("discovery").find("printer")
            return found

        assert run(a.world, go()) == []

    def test_cache_hit_still_includes_own_services(self, adhoc_pair):
        a, b = adhoc_pair
        b.component("discovery").advertise(service("printer", "b", "remote"))
        a.component("discovery").advertise(service("printer", "a", "mine"))

        def go():
            first = yield from a.component("discovery").find("printer")
            second = yield from a.component("discovery").find("printer")
            return first, second

        first, second = run(a.world, go())
        assert {s.provider for s in first} == {"a", "b"}
        # The second lookup answers from cache but must not lose "a".
        assert {s.provider for s in second} == {"a", "b"}
        assert a.world.metrics.counter("disc.cache_hits").value == 1

    def test_beaconing_populates_cache(self, world):
        a = standard_host(world, "a", Position(0, 0), [WIFI_ADHOC])
        b = standard_host(
            world, "b", Position(10, 0), [WIFI_ADHOC], beacon_interval=1.0
        )
        mutual_trust(a, b)
        b.component("discovery").advertise(service("printer", "b", "office"))
        world.run(until=3.0)
        assert a.component("discovery").cache  # heard at least one beacon

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            Discovery(beacon_interval=0.0)
        with pytest.raises(ValueError):
            Discovery(cache_ttl=0.0)


def lookup_world():
    from tests.core.conftest import loss_free

    world = loss_free(World(seed=9))
    server = standard_host(world, "lus", Position(0, 0), [LAN], fixed=True)
    server.add_component(LookupServer(lease_duration=20.0))
    provider = standard_host(world, "prov", Position(0, 0), [LAN], fixed=True)
    provider.add_component(LookupClient("lus"))
    client = standard_host(world, "cli", Position(0, 0), [GPRS])
    client.add_component(LookupClient("lus"))
    client.node.interface("gprs").attach()
    mutual_trust(server, provider, client)
    return world, server, provider, client


class TestLookup:
    def test_register_and_find(self):
        world, server, provider, client = lookup_world()

        def go():
            yield from provider.component("lookup-client").register(
                service("ticketing", "prov", "cinema")
            )
            found = yield from client.component("lookup-client").find("ticketing")
            return found

        found = run(world, go())
        assert [s.provider for s in found] == ["prov"]

    def test_lease_expiry_without_renewal(self):
        world, server, provider, client = lookup_world()

        def go():
            yield from provider.component("lookup-client").register(
                service("ticketing", "prov", "cinema")
            )
            # Stop the renewer by withdrawing client-side only.
            provider.component("lookup-client")._registered.clear()
            yield world.env.timeout(60.0)
            found = yield from client.component("lookup-client").find("ticketing")
            return found

        assert run(world, go()) == []

    def test_renewal_keeps_registration_alive(self):
        world, server, provider, client = lookup_world()

        def go():
            yield from provider.component("lookup-client").register(
                service("ticketing", "prov", "cinema")
            )
            yield world.env.timeout(90.0)  # several lease periods
            found = yield from client.component("lookup-client").find("ticketing")
            return found

        assert len(run(world, go())) == 1

    def test_withdraw_removes(self):
        world, server, provider, client = lookup_world()

        def go():
            description = service("ticketing", "prov", "cinema")
            yield from provider.component("lookup-client").register(description)
            yield from provider.component("lookup-client").withdraw(description.key)
            found = yield from client.component("lookup-client").find("ticketing")
            return found

        assert run(world, go()) == []

    def test_unreachable_server_raises_service_not_found(self):
        world, server, provider, client = lookup_world()

        def go():
            yield from provider.component("lookup-client").register(
                service("ticketing", "prov", "cinema")
            )
            server.node.crash()
            yield from client.component("lookup-client").find("ticketing")

        with pytest.raises(ServiceNotFound):
            run(world, go())

    def test_server_restart_recovers_after_reregistration(self):
        world, server, provider, client = lookup_world()

        def go():
            lookup = provider.component("lookup-client")
            yield from lookup.register(service("ticketing", "prov", "cinema"))
            server.node.crash()
            server.component("lookup-server").registrations.clear()
            yield world.env.timeout(5.0)
            server.node.restart()
            yield from lookup.register(service("ticketing", "prov", "cinema2"))
            found = yield from client.component("lookup-client").find("ticketing")
            return found

        assert len(run(world, go())) >= 1
