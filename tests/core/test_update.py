"""Unit tests for dynamic middleware self-update (hot swap vs reinstall)."""

import pytest

from repro.core import (
    Discovery,
    World,
    component_unit,
    mutual_trust,
    standard_host,
)
from repro.errors import ComponentError
from repro.lmu import CodeRepository, Version
from repro.net import GPRS, LAN, Message, Position
from tests.core.conftest import loss_free, run


class DiscoveryV2(Discovery):
    """An 'improved' discovery component to ship as an update."""

    version = Version(1, 1, 0)


def update_world():
    world = loss_free(World(seed=11))
    repository = CodeRepository()
    repository.publish(component_unit(DiscoveryV2, version="1.1.0"))
    phone = standard_host(world, "phone", Position(0, 0), [GPRS])
    server = standard_host(
        world, "server", Position(0, 0), [LAN], fixed=True,
        repository=repository,
    )
    mutual_trust(phone, server)
    phone.node.interface("gprs").attach()
    return world, phone, server


class TestHotSwap:
    def test_swaps_component_version(self):
        world, phone, server = update_world()
        assert str(phone.component("discovery").version) == "1.0.0"

        def go():
            report = yield from phone.component("update").hot_swap(
                "discovery", "server", "component:discovery"
            )
            return report

        report = run(world, go())
        assert report.strategy == "hot-swap"
        assert report.old_version == "1.0.0"
        assert report.new_version == "1.1.0"
        assert str(phone.component("discovery").version) == "1.1.0"
        assert isinstance(phone.component("discovery"), DiscoveryV2)

    def test_downtime_much_smaller_than_fetch_time(self):
        world, phone, server = update_world()

        def go():
            started = world.now
            report = yield from phone.component("update").hot_swap(
                "discovery", "server", "component:discovery"
            )
            return report, world.now - started

        report, total = run(world, go())
        assert report.downtime_s < total / 10.0

    def test_swapped_component_serves_requests(self):
        world, phone, server = update_world()

        def go():
            yield from phone.component("update").hot_swap(
                "discovery", "server", "component:discovery"
            )
            found = yield from phone.component("discovery").find(
                "anything", window=0.5
            )
            return found

        assert run(world, go()) == []

    def test_history_recorded(self):
        world, phone, server = update_world()

        def go():
            yield from phone.component("update").hot_swap(
                "discovery", "server", "component:discovery"
            )

        run(world, go())
        assert len(phone.component("update").history) == 1

    def test_wrong_component_kind_rejected(self):
        world, phone, server = update_world()
        from repro.core import ClientServer

        class NotDiscovery(ClientServer):
            version = Version(1, 1, 0)

        server.repository.publish(
            component_unit(NotDiscovery, unit_name="component:discovery2")
        )

        def go():
            yield from phone.component("update").hot_swap(
                "discovery", "server", "component:discovery2"
            )

        with pytest.raises(ComponentError):
            run(world, go())


class TestFullReinstall:
    def test_reinstall_replaces_stack(self):
        world, phone, server = update_world()

        def go():
            report = yield from phone.component("update").full_reinstall(
                "server", {"discovery": "component:discovery"}
            )
            return report

        report = run(world, go())
        assert report.strategy == "reinstall"
        assert "discovery@1.1.0" in report.new_version
        assert str(phone.component("discovery").version) == "1.1.0"

    def test_reinstall_downtime_exceeds_hot_swap(self):
        world, phone, server = update_world()

        def go():
            reinstall = yield from phone.component("update").full_reinstall(
                "server", {"discovery": "component:discovery"}
            )
            return reinstall

        reinstall = run(world, go())

        world2, phone2, server2 = update_world()

        def go2():
            swap = yield from phone2.component("update").hot_swap(
                "discovery", "server", "component:discovery"
            )
            return swap

        swap = run(world2, go2())
        assert reinstall.downtime_s > swap.downtime_s

    def test_messages_during_reinstall_are_lost(self):
        world, phone, server = update_world()
        # While the stack is down, an inbound cs.request goes unhandled.

        def updater():
            report = yield from phone.component("update").full_reinstall(
                "server", {"discovery": "component:discovery"}
            )
            return report

        def prodder():
            yield world.env.timeout(0.2)
            yield server.send(
                Message("server", "phone", "disc.request", payload={})
            )

        update_process = world.env.process(updater())
        world.env.process(prodder())
        report = world.run(until=update_process)
        world.run(until=world.now + 5.0)
        assert report.requests_lost >= 1
