"""Unit tests for the mobile agent runtime."""

import pytest

from repro.core import (
    Agent,
    ItineraryAgent,
    World,
    mutual_trust,
    standard_host,
)
from repro.errors import MigrationError
from repro.net import LAN, Position, WIFI_ADHOC
from repro.security import SecurityPolicy
from tests.core.conftest import run


class Sitter(Agent):
    """Stays put, counts up, finishes."""

    def on_arrival(self, context):
        yield from context.execute(1000)
        self.state["count"] = int(self.state.get("count", 0)) + 1


class Hopper(Agent):
    """Migrates once to state['target'], then finishes there."""

    def on_arrival(self, context):
        if context.host_id != self.state["target"]:
            yield from context.migrate(str(self.state["target"]))
        self.state["arrived"] = context.host_id
        yield from context.execute(10)


class Suicidal(Agent):
    def on_arrival(self, context):
        yield from context.sleep(1.0)
        context.die()


class Greedy(Agent):
    def on_arrival(self, context):
        yield from context.execute(10_000_000_000)


class Buggy(Agent):
    def on_arrival(self, context):
        yield from context.sleep(0.1)
        raise RuntimeError("agent bug")


class TestLaunchAndCompletion:
    def test_local_completion(self, adhoc_pair):
        a, _ = adhoc_pair
        runtime = a.component("agents")
        agent = Sitter()
        agent_id = runtime.launch(agent)
        final = run(a.world, _await(runtime, agent_id))
        assert final["outcome"] == "completed"
        assert final["count"] == 1

    def test_launch_assigns_identity_and_home(self, adhoc_pair):
        a, _ = adhoc_pair
        runtime = a.component("agents")
        agent = Sitter()
        agent_id = runtime.launch(agent)
        assert agent.state["home"] == "a"
        assert agent_id.startswith("a-agent-")

    def test_completion_event_after_the_fact(self, adhoc_pair):
        a, _ = adhoc_pair
        runtime = a.component("agents")
        agent_id = runtime.launch(Sitter())
        a.world.run(until=10.0)
        final = run(a.world, _await(runtime, agent_id))
        assert final["outcome"] == "completed"

    def test_agent_death(self, adhoc_pair):
        a, _ = adhoc_pair
        runtime = a.component("agents")
        agent_id = runtime.launch(Suicidal())
        final = run(a.world, _await(runtime, agent_id))
        assert final["outcome"] == "died"

    def test_budget_violation_kills_agent(self, adhoc_pair):
        a, _ = adhoc_pair
        a.policy = SecurityPolicy(guest_work_budget=100.0)
        runtime = a.component("agents")
        agent_id = runtime.launch(Greedy())
        final = run(a.world, _await(runtime, agent_id))
        assert final["outcome"] == "killed"
        assert runtime.violations == 1

    def test_agent_crash_contained(self, adhoc_pair):
        a, _ = adhoc_pair
        runtime = a.component("agents")
        agent_id = runtime.launch(Buggy())
        final = run(a.world, _await(runtime, agent_id))
        assert final["outcome"] == "crashed"
        assert runtime.failures == 1


class TestMigration:
    def test_migrates_and_completes_remotely(self, adhoc_pair):
        a, b = adhoc_pair
        agent = Hopper()
        agent_id = a.component("agents").launch(agent, target="b")
        final = run(a.world, _await(b.component("agents"), agent_id))
        assert final["outcome"] == "completed"
        assert final["arrived"] == "b"
        assert final["hops"] == 1

    def test_unreachable_target_strands_agent(self, world):
        a = standard_host(world, "a", Position(0, 0), [WIFI_ADHOC])
        standard_host(world, "far", Position(5000, 0), [WIFI_ADHOC])
        agent_id = a.component("agents").launch(Hopper(), target="far")
        final = run(world, _await(a.component("agents"), agent_id))
        assert final["outcome"] == "stranded"

    def test_untrusting_host_refuses_agent(self, world):
        a = standard_host(world, "a", Position(0, 0), [WIFI_ADHOC])
        b = standard_host(world, "b", Position(10, 0), [WIFI_ADHOC])
        # b does NOT trust a.
        agent_id = a.component("agents").launch(Hopper(), target="b")
        final = run(world, _await(a.component("agents"), agent_id))
        assert final["outcome"] == "stranded"
        assert b.rejected_capsules == 1

    def test_policy_can_refuse_agents(self, world):
        a = standard_host(world, "a", Position(0, 0), [WIFI_ADHOC])
        b = standard_host(
            world,
            "b",
            Position(10, 0),
            [WIFI_ADHOC],
            policy=SecurityPolicy(
                require_signatures=False,
                allowed_operations=frozenset({"install-code"}),
            ),
        )
        mutual_trust(a, b)
        agent_id = a.component("agents").launch(Hopper(), target="b")
        final = run(world, _await(a.component("agents"), agent_id))
        assert final["outcome"] == "stranded"

    def test_migration_to_self_is_an_error(self, adhoc_pair):
        a, _ = adhoc_pair

        class SelfHopper(Agent):
            def on_arrival(self, context):
                try:
                    yield from context.migrate(context.host_id)
                except MigrationError:
                    self.state["caught"] = True

        runtime = a.component("agents")
        agent_id = runtime.launch(SelfHopper())
        final = run(a.world, _await(runtime, agent_id))
        assert final["caught"] is True

    def test_migration_charges_bytes(self, adhoc_pair):
        a, b = adhoc_pair
        agent_id = a.component("agents").launch(Hopper(), target="b")
        run(a.world, _await(b.component("agents"), agent_id))
        assert a.node.costs.total_bytes_sent >= Hopper.code_size


class TestDeliveries:
    def test_deliver_reaches_host_runtime(self, adhoc_pair):
        a, b = adhoc_pair

        class Courier(Agent):
            def on_arrival(self, context):
                if context.host_id != "b":
                    yield from context.migrate("b")
                context.deliver(self.state["message"])
                yield from context.sleep(0)

        received = []
        b.component("agents").on_delivery(
            lambda agent, payload: received.append(payload)
        )
        agent_id = a.component("agents").launch(Courier(), message="hello b")
        run(a.world, _await(b.component("agents"), agent_id))
        assert received == ["hello b"]
        assert b.component("agents").deliveries == ["hello b"]


class PriceCheck(ItineraryAgent):
    def visit(self, context):
        price = yield from context.invoke_local("quote", None)
        return (context.host_id, price)


class TestItineraryAgent:
    def _fleet(self, world, vendor_ids, prices):
        home = standard_host(world, "home", Position(0, 0), [WIFI_ADHOC, LAN])
        vendors = [
            standard_host(world, vendor_id, Position(0, 0), [LAN], fixed=True)
            for vendor_id in vendor_ids
        ]
        mutual_trust(home, *vendors)
        home.node.interface("lan").attach()  # docked: backbone reachable
        for vendor, price in zip(vendors, prices):
            vendor.register_service(
                "quote", lambda args, host, p=price: (p, 16)
            )
        return home, vendors

    def test_visits_all_and_returns(self, world):
        home, vendors = self._fleet(world, ["v1", "v2", "v3"], [30, 10, 20])
        agent = PriceCheck()
        agent_id = home.component("agents").launch(
            agent, itinerary=["v1", "v2", "v3"]
        )
        final = run(world, _await(home.component("agents"), agent_id))
        assert final["outcome"] == "completed"
        assert final["results"] == [("v1", 30), ("v2", 10), ("v3", 20)]
        assert final["hops"] == 4  # three vendors + home

    def test_skips_unreachable_vendor(self, world):
        home, vendors = self._fleet(world, ["v1", "v2"], [5, 7])
        vendors[0].node.crash()
        agent_id = home.component("agents").launch(
            PriceCheck(), itinerary=["v1", "v2"]
        )
        final = run(world, _await(home.component("agents"), agent_id))
        assert final["outcome"] == "completed"
        assert final["results"] == [("v2", 7)]
        assert final["skipped"] == ["v1"]


def _await(runtime, agent_id):
    final = yield runtime.completion(agent_id)
    return final
