"""Unit tests for the context-aware prefetcher."""

import pytest

from repro.core import (
    PrefetchItem,
    Prefetcher,
    World,
    mutual_trust,
    standard_host,
)
from repro.lmu import CodeRepository, code_unit
from repro.net import GPRS, LAN, Position, WIFI_INFRA
from tests.core.conftest import loss_free


def build(quota=float("inf")):
    world = loss_free(World(seed=141))
    device = standard_host(
        world,
        "device",
        Position(0, 0),
        [WIFI_INFRA, GPRS],
        quota_bytes=quota,
    )
    repository = CodeRepository()
    for index in range(4):
        repository.publish(
            code_unit(f"u{index}", "1.0.0", lambda: (lambda ctx: 0), 50_000)
        )
    store = standard_host(
        world,
        "store",
        Position(10, 0),
        [WIFI_INFRA, LAN],
        fixed=True,
        repository=repository,
    )
    mutual_trust(device, store)
    device.node.interface("802.11b-infra").attach()
    return world, device, store


class TestPrefetcher:
    def test_fetches_wishlist_on_free_link(self):
        world, device, store = build()
        wishlist = [PrefetchItem("u0", 1.0), PrefetchItem("u1", 0.5)]
        Prefetcher(device, "store", wishlist, check_interval=1.0)
        world.run(until=20.0)
        assert "u0" in device.codebase and "u1" in device.codebase
        assert world.metrics.counter("prefetch.fetched").value == 2

    def test_popularity_order(self):
        world, device, store = build()
        wishlist = [PrefetchItem("u0", 0.1), PrefetchItem("u1", 0.9)]
        prefetcher = Prefetcher(device, "store", wishlist, check_interval=1.0)
        world.run(until=4.0)  # time for the first round only
        assert prefetcher.prefetched[0] == "u1"

    def test_no_prefetch_on_metered_link(self):
        world, device, store = build()
        device.node.interface("802.11b-infra").detach()
        device.node.interface("gprs").attach()
        Prefetcher(device, "store", [PrefetchItem("u0", 1.0)], check_interval=1.0)
        world.run(until=20.0)
        assert "u0" not in device.codebase
        assert device.node.costs.money == 0.0  # never spent a thing

    def test_budget_fraction_respected(self):
        world, device, store = build(quota=200_000)
        wishlist = [PrefetchItem(f"u{i}", 1.0 - i / 10) for i in range(4)]
        prefetcher = Prefetcher(
            device, "store", wishlist, budget_fraction=0.5, check_interval=1.0
        )
        world.run(until=40.0)
        # 50% of 200kB = 100kB -> at most 2 units of 50kB get prefetched.
        assert device.codebase.used_bytes <= 150_000
        assert prefetcher.skipped_budget >= 1

    def test_unfetchable_unit_dropped_from_wishlist(self):
        world, device, store = build()
        prefetcher = Prefetcher(
            device, "store", [PrefetchItem("ghost", 1.0)], check_interval=1.0
        )
        world.run(until=10.0)
        assert prefetcher.wishlist == []

    def test_want_reranks(self):
        world, device, store = build()
        prefetcher = Prefetcher(device, "store", autostart=False)
        prefetcher.want("u0", 0.2)
        prefetcher.want("u1", 0.8)
        prefetcher.want("u0", 0.9)  # re-rank
        assert [item.unit_name for item in prefetcher.wishlist] == ["u0", "u1"]

    def test_resumes_when_free_link_returns(self):
        world, device, store = build()
        device.node.interface("802.11b-infra").detach()
        Prefetcher(device, "store", [PrefetchItem("u0", 1.0)], check_interval=1.0)
        world.run(until=5.0)
        assert "u0" not in device.codebase
        device.node.interface("802.11b-infra").attach()
        world.run(until=15.0)
        assert "u0" in device.codebase

    def test_invalid_parameters(self):
        world, device, store = build()
        with pytest.raises(ValueError):
            Prefetcher(device, "store", budget_fraction=0.0)
        with pytest.raises(ValueError):
            Prefetcher(device, "store", check_interval=0.0)
