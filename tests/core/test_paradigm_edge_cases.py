"""Edge cases across the paradigm components and message plumbing."""

import pytest

from repro.core import World, mutual_trust, standard_host
from repro.errors import UnitNotFound
from repro.lmu import CodeRepository, DataUnit, code_unit
from repro.net import HEADER_BYTES, Message, Position, WIFI_ADHOC
from tests.core.conftest import run


class TestMessagePlumbing:
    def test_reply_correlation_fields(self):
        request = Message("a", "b", "x.req", payload=1, size_bytes=10)
        reply = request.reply("x.rep", payload=2, size_bytes=20)
        assert reply.source == "b" and reply.destination == "a"
        assert reply.in_reply_to == request.id
        assert reply.id != request.id

    def test_wire_size_includes_header(self):
        message = Message("a", "b", "x", size_bytes=100)
        assert message.wire_size == 100 + HEADER_BYTES

    def test_message_ids_monotonic(self):
        first = Message("a", "b", "x")
        second = Message("a", "b", "x")
        assert second.id > first.id


class TestConcurrentCs:
    def test_interleaved_calls_correlate_correctly(self, adhoc_pair):
        a, b = adhoc_pair
        b.register_service(
            "slow", lambda args, host: (("slow", args), 16), work_units=500_000
        )
        b.register_service(
            "fast", lambda args, host: (("fast", args), 16), work_units=1_000
        )
        results = {}

        def caller(name, service, value):
            result = yield from a.component("cs").call("b", service, value)
            results[name] = result

        a.world.env.process(caller("one", "slow", 1))
        a.world.env.process(caller("two", "fast", 2))
        a.world.run(until=30.0)
        assert results["one"] == ("slow", 1)
        assert results["two"] == ("fast", 2)

    def test_many_outstanding_requests(self, adhoc_pair):
        a, b = adhoc_pair
        b.register_service("echo", lambda args, host: (args, 8))
        received = []

        def caller(value):
            result = yield from a.component("cs").call("b", "echo", value)
            received.append(result)

        for value in range(10):
            a.world.env.process(caller(value))
        a.world.run(until=30.0)
        assert sorted(received) == list(range(10))


class TestRevEdgeCases:
    def test_versioned_root_requirement(self, phone_and_server):
        phone, server = phone_and_server

        def factory():
            def body(ctx):
                return "v2"

            return body

        phone.codebase.install(code_unit("tool", "2.1.0", factory, 1000))

        def go():
            value = yield from phone.component("rev").evaluate(
                "server", ["tool>=2.0"]
            )
            return value

        assert run(phone.world, go()) == "v2"

    def test_versioned_root_unsatisfied_locally(self, phone_and_server):
        phone, _server = phone_and_server
        phone.codebase.install(
            code_unit("tool", "1.0.0", lambda: (lambda ctx: None), 1000)
        )

        def go():
            yield from phone.component("rev").evaluate("server", ["tool>=2.0"])

        with pytest.raises(UnitNotFound):
            run(phone.world, go())

    def test_empty_args_and_multiple_data_units(self, phone_and_server):
        phone, server = phone_and_server

        def factory():
            def body(ctx):
                data = ctx.service("data")
                return sorted(data)

            return body

        phone.codebase.install(code_unit("lister", "1.0.0", factory, 1000))

        def go():
            value = yield from phone.component("rev").evaluate(
                "server",
                ["lister"],
                data_units=[
                    DataUnit("alpha", 1, 100),
                    DataUnit("beta", 2, 100),
                ],
            )
            return value

        assert run(phone.world, go()) == ["alpha", "beta"]


class TestCodEdgeCases:
    def test_fetch_without_install(self, phone_and_server):
        phone, server = phone_and_server
        repository = CodeRepository()
        repository.publish(
            code_unit("tool", "1.0.0", lambda: (lambda ctx: None), 1000)
        )
        server.repository = repository

        def go():
            capsule = yield from phone.component("cod").fetch(
                "server", ["tool"], install=False
            )
            return capsule

        capsule = run(phone.world, go())
        assert capsule.code_unit("tool") is not None
        assert "tool" not in phone.codebase

    def test_fetch_upgrade_over_installed_version(self, phone_and_server):
        phone, server = phone_and_server
        repository = CodeRepository()
        repository.publish(
            code_unit("tool", "1.2.0", lambda: (lambda ctx: "new"), 1000)
        )
        server.repository = repository
        phone.codebase.install(
            code_unit("tool", "1.0.0", lambda: (lambda ctx: "old"), 1000)
        )

        def go():
            yield from phone.component("cod").fetch("server", ["tool"])

        run(phone.world, go())
        assert str(phone.codebase.get("tool").version) == "1.2.0"

    def test_provider_serves_from_own_codebase_without_repository(
        self, adhoc_pair
    ):
        a, b = adhoc_pair
        assert b.repository is None
        b.codebase.install(
            code_unit("shared", "1.0.0", lambda: (lambda ctx: None), 1000)
        )

        def go():
            yield from a.component("cod").fetch("b", ["shared"])

        run(a.world, go())
        assert "shared" in a.codebase


class TestDiscoveryEdgeCases:
    def test_find_with_zero_window_uses_cache_only(self, adhoc_pair):
        a, b = adhoc_pair
        from repro.core import service

        b.component("discovery").advertise(service("printer", "b", "p"))

        def go():
            first = yield from a.component("discovery").find("printer")
            # Cache now warm: an immediate re-find needs no radio round.
            second = yield from a.component("discovery").find("printer")
            return first, second

        first, second = run(a.world, go())
        assert first and second

    def test_invalid_repeats_rejected(self, adhoc_pair):
        a, _ = adhoc_pair

        def go():
            yield from a.component("discovery").find("printer", repeats=0)

        with pytest.raises(ValueError):
            run(a.world, go())

    def test_withdraw_unknown_key_is_noop(self, adhoc_pair):
        _, b = adhoc_pair
        b.component("discovery").withdraw("no/such/key")
