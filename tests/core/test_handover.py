"""Unit tests for vertical handover management."""

import pytest

from repro.core import HandoverManager, World, mutual_trust, standard_host
from repro.net import GPRS, LAN, Position, WIFI_ADHOC
from tests.core.conftest import loss_free


def build():
    world = loss_free(World(seed=71))
    device = standard_host(
        world, "device", Position(0, 0), [WIFI_ADHOC, GPRS]
    )
    hub = standard_host(
        world, "hub", Position(20, 0), [WIFI_ADHOC, LAN], fixed=True
    )
    mutual_trust(device, hub)
    return world, device, hub


class TestHandoverManager:
    def test_stays_detached_inside_hotspot(self):
        world, device, hub = build()
        HandoverManager(device, "hub", interval=1.0)
        world.run(until=5.0)
        assert not device.node.interface("gprs").attached
        assert world.network.connected("device", "hub")

    def test_attaches_gprs_when_leaving_hotspot(self):
        world, device, hub = build()
        manager = HandoverManager(device, "hub", interval=1.0)
        world.run(until=2.0)
        device.node.move_to(Position(5000, 0))
        world.run(until=6.0)
        assert device.node.interface("gprs").attached
        assert world.network.connected("device", "hub")
        assert ("attach", "gprs") in [
            (kind, tech) for _t, kind, tech in manager.handovers
        ]

    def test_detaches_again_on_return(self):
        world, device, hub = build()
        manager = HandoverManager(device, "hub", interval=1.0)
        device.node.move_to(Position(5000, 0))
        world.run(until=4.0)
        assert device.node.interface("gprs").attached
        device.node.move_to(Position(10, 0))
        world.run(until=8.0)
        assert not device.node.interface("gprs").attached
        kinds = [kind for _t, kind, _tech in manager.handovers]
        assert kinds.count("attach") == 1
        assert kinds.count("detach") == 1

    def test_airtime_billed_only_while_attached(self):
        world, device, hub = build()
        # Swap GPRS for dial-up to get per-minute billing.
        world2 = loss_free(World(seed=72))
        from repro.net import DIALUP

        device2 = standard_host(
            world2, "device", Position(0, 0), [WIFI_ADHOC, DIALUP]
        )
        hub2 = standard_host(
            world2, "hub", Position(20, 0), [WIFI_ADHOC, LAN], fixed=True
        )
        mutual_trust(device2, hub2)
        HandoverManager(device2, "hub", interval=1.0)
        world2.run(until=10.0)  # in hotspot: no dial-up, no cost
        assert device2.node.costs.money == 0.0
        device2.node.move_to(Position(5000, 0))
        world2.run(until=70.0)
        device2.node.move_to(Position(10, 0))
        world2.run(until=80.0)
        device2.node.settle_airtime()
        assert device2.node.costs.money > 0.0

    def test_unknown_reference_peer_attaches_metered(self):
        world, device, hub = build()
        HandoverManager(device, "ghost", interval=1.0)
        world.run(until=3.0)
        # No free path can be proven, so the metered fallback attaches.
        assert device.node.interface("gprs").attached

    def test_invalid_interval(self):
        world, device, hub = build()
        with pytest.raises(ValueError):
            HandoverManager(device, "hub", interval=0.0)

    def test_crashed_host_makes_no_decisions(self):
        world, device, hub = build()
        manager = HandoverManager(device, "hub", interval=1.0)
        device.node.crash()
        world.run(until=5.0)
        assert manager.handovers == []
