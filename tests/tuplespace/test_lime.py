"""Unit tests for Lime-style federated tuple spaces."""

import pytest

from repro.core import World, mutual_trust, standard_host
from repro.errors import TupleSpaceError
from repro.net import Position, WIFI_ADHOC
from repro.tuplespace import ANY, LimeSpace
from tests.core.conftest import loss_free, run


def lime_world(positions):
    world = loss_free(World(seed=13))
    hosts = []
    for index, (x, y) in enumerate(positions):
        host = standard_host(world, f"h{index}", Position(x, y), [WIFI_ADHOC])
        host.add_component(LimeSpace(scan_interval=0.5))
        hosts.append(host)
    mutual_trust(*hosts)
    return world, hosts


class TestEngagement:
    def test_peers_in_range_engage(self):
        world, hosts = lime_world([(0, 0), (20, 0)])
        world.run(until=2.0)
        assert hosts[0].component("lime").engaged == {"h1"}
        assert hosts[1].component("lime").engaged == {"h0"}

    def test_distant_peers_do_not_engage(self):
        world, hosts = lime_world([(0, 0), (5000, 0)])
        world.run(until=2.0)
        assert hosts[0].component("lime").engaged == set()

    def test_disengage_on_departure(self):
        world, hosts = lime_world([(0, 0), (20, 0)])
        world.run(until=2.0)
        hosts[1].node.move_to(Position(5000, 0))
        world.run(until=4.0)
        assert hosts[0].component("lime").engaged == set()
        assert world.metrics.counter("lime.disengagements").value >= 1


class TestLocalOps:
    def test_out_rdp_inp(self):
        world, hosts = lime_world([(0, 0)])
        world.run(until=1.0)
        lime = hosts[0].component("lime")
        lime.out(("reading", "h0", 21.5))
        assert lime.rdp(("reading", ANY, ANY)) == ("reading", "h0", 21.5)
        assert lime.inp(("reading", ANY, ANY)) == ("reading", "h0", 21.5)
        assert lime.rdp(("reading", ANY, ANY)) is None


class TestFederatedOps:
    def test_rd_all_spans_engaged_spaces(self):
        world, hosts = lime_world([(0, 0), (20, 0), (40, 0)])
        world.run(until=2.0)
        for index, host in enumerate(hosts):
            host.component("lime").out(("reading", host.id, index * 10))

        def go():
            results = yield from hosts[0].component("lime").federated_rd_all(
                ("reading", ANY, ANY)
            )
            return sorted(results)

        results = run(world, go())
        assert len(results) == 3

    def test_in_all_removes_remotely(self):
        world, hosts = lime_world([(0, 0), (20, 0)])
        world.run(until=2.0)
        hosts[1].component("lime").out(("job", 1))

        def go():
            taken = yield from hosts[0].component("lime").federated_in_all(
                ("job", ANY)
            )
            return taken

        taken = run(world, go())
        assert taken == [("job", 1)]
        assert hosts[1].component("lime").rdp(("job", ANY)) is None

    def test_query_skips_departed_peer(self):
        world, hosts = lime_world([(0, 0), (20, 0)])
        world.run(until=2.0)
        hosts[1].component("lime").out(("reading", 1))
        # Peer leaves between engagement scan and query.
        hosts[1].node.move_to(Position(5000, 0))

        def go():
            results = yield from hosts[0].component("lime").federated_rd_all(
                ("reading", ANY), timeout=2.0
            )
            return results

        assert run(world, go()) == []

    def test_out_to_places_remotely(self):
        world, hosts = lime_world([(0, 0), (20, 0)])
        world.run(until=2.0)

        def go():
            yield from hosts[0].component("lime").out_to("h1", ("gift", 42))
            yield world.env.timeout(1.0)
            return hosts[1].component("lime").rdp(("gift", ANY))

        assert run(world, go()) == ("gift", 42)

    def test_out_to_unengaged_peer_rejected(self):
        world, hosts = lime_world([(0, 0), (5000, 0)])
        world.run(until=2.0)

        def go():
            yield from hosts[0].component("lime").out_to("h1", ("gift", 1))

        with pytest.raises(TupleSpaceError):
            run(world, go())

    def test_federated_query_moves_tuple_bytes(self):
        world, hosts = lime_world([(0, 0), (20, 0)])
        world.run(until=2.0)
        for value in range(50):
            hosts[1].component("lime").out(("bulk", "x" * 100, value))
        bytes_before = hosts[0].node.costs.total_bytes_received

        def go():
            results = yield from hosts[0].component("lime").federated_rd_all(
                ("bulk", ANY, ANY)
            )
            return results

        results = run(world, go())
        assert len(results) == 50
        moved = hosts[0].node.costs.total_bytes_received - bytes_before
        assert moved > 50 * 100  # the raw tuples crossed the radio
