"""Integration tests for Lime remote reactions."""

import pytest

from repro.core import World, mutual_trust, standard_host
from repro.errors import TupleSpaceError
from repro.net import Position, WIFI_ADHOC
from repro.tuplespace import ANY, LimeSpace
from tests.core.conftest import loss_free, run


def pair():
    world = loss_free(World(seed=171))
    a = standard_host(world, "a", Position(0, 0), [WIFI_ADHOC])
    b = standard_host(world, "b", Position(20, 0), [WIFI_ADHOC])
    for host in (a, b):
        host.add_component(LimeSpace(scan_interval=0.5))
    mutual_trust(a, b)
    world.run(until=2.0)  # engagement
    return world, a, b


class TestRemoteReactions:
    def test_listener_fires_on_remote_out(self):
        world, a, b = pair()
        seen = []

        def go():
            yield from a.component("lime").react_remote(
                "b", ("alert", ANY), lambda item: seen.append(item)
            )

        run(world, go())
        b.component("lime").out(("alert", "fire"))
        b.component("lime").out(("normal", 0))
        world.run(until=world.now + 5.0)
        assert seen == [("alert", "fire")]

    def test_reaction_only_for_future_outs(self):
        world, a, b = pair()
        b.component("lime").out(("alert", "before"))
        seen = []

        def go():
            yield from a.component("lime").react_remote(
                "b", ("alert", ANY), lambda item: seen.append(item)
            )

        run(world, go())
        world.run(until=world.now + 3.0)
        assert seen == []  # pre-existing tuples do not fire reactions

    def test_unreact_stops_events(self):
        world, a, b = pair()
        seen = []

        def go():
            reaction_id = yield from a.component("lime").react_remote(
                "b", ("alert", ANY), lambda item: seen.append(item)
            )
            yield from a.component("lime").unreact_remote("b", reaction_id)

        run(world, go())
        b.component("lime").out(("alert", "late"))
        world.run(until=world.now + 5.0)
        assert seen == []

    def test_multiple_subscribers_independent(self):
        world, a, b = pair()
        seen_a = []
        c = standard_host(world, "c", Position(10, 10), [WIFI_ADHOC])
        c.add_component(LimeSpace(scan_interval=0.5))
        mutual_trust(a, b, c)
        world.run(until=world.now + 2.0)
        seen_c = []

        def go_a():
            yield from a.component("lime").react_remote(
                "b", ("alert", ANY), lambda item: seen_a.append(item)
            )

        def go_c():
            yield from c.component("lime").react_remote(
                "b", ("alert", int), lambda item: seen_c.append(item)
            )

        run(world, go_a())
        run(world, go_c())
        b.component("lime").out(("alert", "text"))
        b.component("lime").out(("alert", 42))
        world.run(until=world.now + 5.0)
        assert seen_a == [("alert", "text"), ("alert", 42)]
        assert seen_c == [("alert", 42)]

    def test_unengaged_peer_rejected(self):
        world, a, b = pair()
        b.node.move_to(Position(5000, 0))
        world.run(until=world.now + 2.0)

        def go():
            yield from a.component("lime").react_remote(
                "b", ("alert", ANY), lambda item: None
            )

        with pytest.raises(TupleSpaceError):
            run(world, go())

    def test_event_counts_metrics(self):
        world, a, b = pair()

        def go():
            yield from a.component("lime").react_remote(
                "b", ("x", ANY), lambda item: None
            )

        run(world, go())
        assert world.metrics.counter("lime.remote_reactions").value == 1
