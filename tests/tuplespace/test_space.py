"""Unit tests for the Linda tuple space."""

import pytest

from repro.errors import TupleSpaceError
from repro.sim import Environment
from repro.tuplespace import ANY, Template, TupleSpace, as_template


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def space(env):
    return TupleSpace(env)


class TestTemplateMatching:
    def test_exact_values(self):
        assert Template("a", 1).matches(("a", 1))
        assert not Template("a", 1).matches(("a", 2))

    def test_wildcard(self):
        assert Template("a", ANY).matches(("a", 99))

    def test_type_matching(self):
        assert Template("a", int).matches(("a", 5))
        assert not Template("a", int).matches(("a", "five"))

    def test_predicate_matching(self):
        assert Template("t", lambda v: v > 10).matches(("t", 11))
        assert not Template("t", lambda v: v > 10).matches(("t", 9))

    def test_predicate_errors_are_non_matches(self):
        assert not Template("t", lambda v: v > 10).matches(("t", "nan"))

    def test_arity_must_match(self):
        assert not Template("a").matches(("a", 1))

    def test_non_tuple_never_matches(self):
        assert not Template(ANY).matches(["list"])

    def test_as_template_accepts_tuple(self):
        assert as_template(("a", ANY)).matches(("a", 1))

    def test_as_template_rejects_garbage(self):
        with pytest.raises(TupleSpaceError):
            as_template("string")


class TestNonBlockingOps:
    def test_out_and_rdp(self, space):
        space.out(("reading", 20))
        assert space.rdp(("reading", ANY)) == ("reading", 20)
        assert len(space) == 1  # rdp does not remove

    def test_inp_removes(self, space):
        space.out(("reading", 20))
        assert space.inp(("reading", ANY)) == ("reading", 20)
        assert len(space) == 0

    def test_miss_returns_none(self, space):
        assert space.rdp(("nope", ANY)) is None
        assert space.inp(("nope", ANY)) is None

    def test_out_rejects_non_tuple(self, space):
        with pytest.raises(TupleSpaceError):
            space.out(["not", "a", "tuple"])

    def test_rd_all_and_in_all(self, space):
        for value in (1, 2, 3):
            space.out(("r", value))
        space.out(("other", 9))
        assert space.rd_all(("r", ANY)) == [("r", 1), ("r", 2), ("r", 3)]
        assert len(space) == 4
        taken = space.in_all(("r", ANY))
        assert len(taken) == 3
        assert len(space) == 1

    def test_size_bytes_grows(self, space):
        before = space.size_bytes
        space.out(("data", "x" * 1000))
        assert space.size_bytes > before + 900


class TestBlockingOps:
    def test_rd_immediate_when_present(self, env, space):
        space.out(("k", 1))

        def reader(env):
            value = yield space.rd(("k", ANY))
            return value

        process = env.process(reader(env))
        assert env.run(until=process) == ("k", 1)
        assert len(space) == 1

    def test_rd_blocks_until_out(self, env, space):
        log = []

        def reader(env):
            value = yield space.rd(("k", ANY))
            log.append((env.now, value))

        def writer(env):
            yield env.timeout(5.0)
            space.out(("k", 42))

        env.process(reader(env))
        env.process(writer(env))
        env.run()
        assert log == [(5.0, ("k", 42))]

    def test_in_blocks_and_removes(self, env, space):
        def taker(env):
            value = yield space.in_(("k", ANY))
            return value

        def writer(env):
            yield env.timeout(1.0)
            space.out(("k", 7))

        process = env.process(taker(env))
        env.process(writer(env))
        assert env.run(until=process) == ("k", 7)
        assert len(space) == 0

    def test_competing_takers_get_distinct_tuples(self, env, space):
        received = []

        def taker(env):
            value = yield space.in_(("k", ANY))
            received.append(value)

        env.process(taker(env))
        env.process(taker(env))

        def writer(env):
            yield env.timeout(1.0)
            space.out(("k", 1))
            space.out(("k", 2))

        env.process(writer(env))
        env.run()
        assert sorted(received) == [("k", 1), ("k", 2)]


class TestReactions:
    def test_reaction_fires_on_match(self, space):
        seen = []
        space.react(("alert", ANY), lambda item: seen.append(item))
        space.out(("alert", "fire"))
        space.out(("normal", 1))
        assert seen == [("alert", "fire")]

    def test_unsubscribe(self, space):
        seen = []
        unsubscribe = space.react(("alert", ANY), lambda item: seen.append(item))
        unsubscribe()
        space.out(("alert", "fire"))
        assert seen == []
        unsubscribe()  # idempotent
