"""Unit tests for the declarative fault plan."""

import pytest

from repro.faults import FAULT_KINDS, FaultPlan, FaultSpec


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(kind="meteor", at=1.0)

    def test_negative_schedule_rejected(self):
        with pytest.raises(ValueError, match="past"):
            FaultSpec(kind="drop", at=-1.0)

    def test_rate_bounds(self):
        with pytest.raises(ValueError, match="rate"):
            FaultSpec(kind="drop", at=0.0, rate=1.5)

    def test_overlapping_repeats_rejected(self):
        with pytest.raises(ValueError, match="period"):
            FaultSpec(
                kind="crash",
                at=0.0,
                duration=10.0,
                targets=("a",),
                repeat=3,
                period=5.0,
            )

    def test_partition_needs_two_groups(self):
        with pytest.raises(ValueError, match="two groups"):
            FaultSpec(kind="partition", at=0.0, groups=(("a", "b"),))

    def test_crash_needs_targets(self):
        with pytest.raises(ValueError, match="target"):
            FaultSpec(kind="crash", at=0.0)

    def test_hostile_guest_needs_targets(self):
        with pytest.raises(ValueError, match="target"):
            FaultSpec(kind="hostile_guest", at=0.0, guest="quota_loop")

    def test_hostile_guest_must_be_registered(self):
        with pytest.raises(ValueError, match="unknown hostile guest"):
            FaultSpec(
                kind="hostile_guest", at=0.0, targets=("a",), guest="meteor"
            )

    def test_window_occurrences(self):
        spec = FaultSpec(
            kind="drop", at=10.0, duration=2.0, repeat=3, period=5.0
        )
        assert spec.window(0) == (10.0, 12.0)
        assert spec.window(2) == (20.0, 22.0)

    def test_matches_targets_and_kind_globs(self):
        spec = FaultSpec(
            kind="drop",
            at=0.0,
            targets=("b",),
            message_kinds=("cs.*",),
        )
        assert spec.matches("b", "cs.request")
        assert not spec.matches("a", "cs.request")
        assert not spec.matches("b", "disc.request")

    def test_empty_scopes_match_everything(self):
        spec = FaultSpec(kind="corrupt", at=0.0)
        assert spec.matches("anyone", "any.kind")


class TestFaultPlan:
    def make_plan(self):
        return (
            FaultPlan()
            .link_flap(["a"], at=1.0, down_s=2.0)
            .crash(["b"], at=3.0, down_s=4.0)
            .partition([["a"], ["b"]], at=5.0, duration=6.0)
            .drop(at=7.0, duration=1.0, rate=0.5)
            .duplicate(at=8.0, duration=1.0, rate=0.25, delay_s=0.1)
            .delay(at=9.0, duration=1.0, extra_s=2.0)
            .corrupt(at=10.0, duration=1.0, rate=0.1)
            .hostile_guest(["b"], at=11.0, guest="quota_loop")
        )

    def test_builders_cover_all_kinds(self):
        kinds = {spec.kind for spec in self.make_plan()}
        assert kinds == set(FAULT_KINDS)

    def test_churn_round_robin(self):
        plan = FaultPlan().churn(
            ["a", "b"], start=10.0, period=5.0, down_s=2.0, rounds=2
        )
        schedule = [(spec.targets[0], spec.at) for spec in plan]
        assert schedule == [
            ("a", 10.0),
            ("b", 15.0),
            ("a", 20.0),
            ("b", 25.0),
        ]

    def test_churn_must_restart(self):
        with pytest.raises(ValueError, match="restart"):
            FaultPlan().churn(["a"], start=0.0, period=5.0, down_s=0.0)

    def test_roundtrip_through_dict(self):
        plan = self.make_plan()
        clone = FaultPlan.from_dict(plan.to_dict())
        assert clone.faults == plan.faults

    def test_dict_form_omits_defaults(self):
        plan = FaultPlan().drop(at=1.0, duration=2.0, rate=1.0)
        data = plan.to_dict()["faults"][0]
        assert data == {"kind": "drop", "at": 1.0, "duration": 2.0}

    def test_shifted_moves_every_fault(self):
        shifted = self.make_plan().shifted(100.0)
        assert [spec.at for spec in shifted] == [
            101.0, 103.0, 105.0, 107.0, 108.0, 109.0, 110.0, 111.0,
        ]

    def test_end_time_covers_repeats(self):
        plan = FaultPlan().crash(
            ["a"], at=10.0, down_s=2.0, repeat=3, period=20.0
        )
        assert plan.end_time() == 52.0
