"""Recovery invariants and whole-run determinism under chaos.

These are the tier-1 robustness guarantees: a correct middleware stack
converges back to service after every recoverable fault, and the whole
chaotic trajectory is a pure function of the seed.
"""

from repro.faults import (
    FaultPlan,
    run_chaos,
    verify_agent_reroute,
    verify_discovery_recovery,
    verify_local_degradation,
    verify_retry_convergence,
)

from .conftest import run


class TestRecoveryInvariants:
    def test_retries_converge_under_standard_plan(self):
        outcome = verify_retry_convergence(seed=11)
        assert outcome.completion_rate >= 0.95
        assert outcome.failed <= outcome.requests * 0.05

    def test_discovery_refinds_after_partition_heals(self):
        found = verify_discovery_recovery(seed=5)
        assert found == {"before": 1, "during": 0, "after": 1}

    def test_agent_rides_out_crashed_hop(self):
        outcome = verify_agent_reroute(seed=3)
        assert outcome["results"] == 2
        assert outcome["retries"] >= 1

    def test_selection_degrades_to_local_offline(self):
        assert verify_local_degradation(seed=2) == "local"

    def test_standard_plan_faults_all_fire(self):
        outcome = run_chaos(seed=7)
        summary = outcome.summary
        # Unconditional topology faults always fire...
        for name in (
            "faults.crash",
            "faults.restart",
            "faults.partition",
            "faults.heal",
            "faults.link_flap",
        ):
            assert summary.get(name, 0.0) >= 1.0, name
        # ...and the message windows demonstrably bit this workload.
        for name in (
            "faults.messages_dropped",
            "faults.messages_duplicated",
            "faults.messages_corrupted",
        ):
            assert summary.get(name, 0.0) >= 1.0, name


class TestStaleReplies:
    """The duplicate injector is the reproducer for the stale-reply bug:
    a late second copy of a reply must be discarded by correlation id,
    not crash dispatch or resolve a stranger's request."""

    def test_duplicate_reply_discarded_and_counted(self, world, adhoc_pair):
        a, b = adhoc_pair
        b.register_service("echo", lambda args, host: (args, 8))
        FaultPlan().duplicate(
            at=0.0, duration=60.0, rate=1.0, delay_s=0.5,
            message_kinds=("cs.reply",),
        ).inject(world)

        def scenario():
            first = yield from a.components["cs"].call(
                b.id, "echo", args="one", timeout=5.0
            )
            # Survive past the duplicate's arrival, then call again:
            # dispatch must still be alive and correlating correctly.
            yield world.env.timeout(2.0)
            second = yield from a.components["cs"].call(
                b.id, "echo", args="two", timeout=5.0
            )
            return first, second

        first, second = run(world, scenario())
        world.run(until=world.now + 2.0)
        assert (first, second) == ("one", "two")
        assert world.metrics.counter("host.stale_replies").value == 2
        assert world.metrics.counter("paradigm.cs.stale_replies").value == 2

    def test_discovery_replies_survive_duplication(self, world, adhoc_pair):
        a, b = adhoc_pair
        from repro.core.services import ServiceDescription

        b.components["discovery"].advertise(
            ServiceDescription(
                service_type="printer", provider=b.id, name="lobby"
            )
        )
        # Discovery replies are not request()-correlated; duplicating
        # them must not trip the stale-discard path.
        FaultPlan().duplicate(
            at=0.0, duration=60.0, rate=1.0, delay_s=0.2,
            message_kinds=("disc.reply",),
        ).inject(world)

        def scenario():
            found = yield from a.components["discovery"].find(
                "printer", use_cache=False
            )
            return found

        found = run(world, scenario())
        assert len(found) == 1
        assert world.metrics.counter("host.stale_replies").value == 0


class TestWholeRunDeterminism:
    """Same-seed chaos runs must be bit-identical — every field.

    ``run_chaos`` stamps ``created_at`` with sim-time, so the whole
    report document is a pure function of the seed; nothing needs to be
    stripped before comparing.
    """

    def test_same_seed_identical_run_reports(self):
        first = run_chaos(seed=17)
        second = run_chaos(seed=17)
        assert first.report == second.report
        assert first.summary == second.summary

    def test_created_at_is_sim_time(self):
        outcome = run_chaos(seed=17)
        assert outcome.report["created_at"] == outcome.duration_s

    def test_report_carries_chaos_metrics(self):
        report = run_chaos(seed=17).report
        metrics = report["metrics"]
        assert metrics["chaos.completion_rate"] >= 0.95
        assert "faults.crash" in metrics
        assert report["params"]["faults"] > 0
