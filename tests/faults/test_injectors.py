"""Kernel-level behaviour of the fault injector."""

import pytest

from repro.core import World, standard_host
from repro.errors import RequestTimeout
from repro.faults import FaultPlan
from repro.net import Message, Position, WIFI_ADHOC

from .conftest import loss_free, run


class TestTopologyFaults:
    def test_crash_and_restart(self, world, adhoc_pair):
        a, b = adhoc_pair
        FaultPlan().crash([b.id], at=5.0, down_s=10.0).inject(world)
        world.run(until=6.0)
        assert not b.node.up
        world.run(until=16.0)
        assert b.node.up
        assert world.metrics.counter("faults.crash").value == 1
        assert world.metrics.counter("faults.restart").value == 1

    def test_crash_without_restart_is_permanent(self, world, adhoc_pair):
        _a, b = adhoc_pair
        FaultPlan().crash([b.id], at=5.0).inject(world)
        world.run(until=100.0)
        assert not b.node.up

    def test_link_flap_restores_attachment(self, world, phone_and_server):
        phone, _server = phone_and_server
        gprs = phone.node.interface("gprs")
        assert gprs.attached
        FaultPlan().link_flap([phone.id], at=2.0, down_s=4.0).inject(world)
        world.run(until=3.0)
        assert not gprs.enabled
        assert not gprs.attached
        world.run(until=20.0)
        assert gprs.enabled
        assert gprs.attached

    def test_link_flap_bumps_topology_epoch(self, world, adhoc_pair):
        a, _b = adhoc_pair
        FaultPlan().link_flap([a.id], at=1.0, down_s=1.0).inject(world)
        before = world.network.topology_epoch
        world.run(until=1.5)
        assert world.network.topology_epoch > before

    def test_partition_severs_and_heals(self, world, adhoc_pair):
        a, b = adhoc_pair
        FaultPlan().partition(
            [[a.id], [b.id]], at=5.0, duration=10.0
        ).inject(world)
        world.run(until=1.0)
        assert world.network.best_link(a.node, b.node) is not None
        world.run(until=6.0)
        assert world.network.best_link(a.node, b.node) is None
        world.run(until=16.0)
        assert world.network.best_link(a.node, b.node) is not None
        assert world.metrics.counter("faults.partition").value == 1
        assert world.metrics.counter("faults.heal").value == 1

    def test_partition_spares_unlisted_nodes(self, world):
        a = standard_host(world, "a", Position(0, 0), [WIFI_ADHOC])
        b = standard_host(world, "b", Position(20, 0), [WIFI_ADHOC])
        c = standard_host(world, "c", Position(40, 0), [WIFI_ADHOC])
        FaultPlan().partition(
            [[a.id], [b.id]], at=0.0, duration=10.0
        ).inject(world)
        world.run(until=1.0)
        assert world.network.best_link(a.node, b.node) is None
        assert world.network.best_link(a.node, c.node) is not None
        assert world.network.best_link(b.node, c.node) is not None

    def test_repeating_fault_refires(self, world, adhoc_pair):
        _a, b = adhoc_pair
        FaultPlan().crash(
            [b.id], at=2.0, down_s=1.0, repeat=3, period=10.0
        ).inject(world)
        world.run(until=40.0)
        assert world.metrics.counter("faults.crash").value == 3
        assert world.metrics.counter("faults.restart").value == 3
        assert b.node.up

    def test_topology_only_plan_leaves_transport_unhooked(
        self, world, adhoc_pair
    ):
        _a, b = adhoc_pair
        FaultPlan().crash([b.id], at=1.0, down_s=1.0).inject(world)
        assert world.transport.faults is None


class TestMessageFaults:
    def message(self, a, b):
        return Message(source=a.id, destination=b.id, kind="x.ping")

    def test_drop_window_forces_loss_then_clears(self, world, adhoc_pair):
        a, b = adhoc_pair
        FaultPlan().drop(at=0.0, duration=5.0, rate=1.0).inject(world)

        def scenario():
            delivered = yield world.transport.send(self.message(a, b))
            assert delivered is False
            yield world.env.timeout(6.0 - world.now)
            delivered = yield world.transport.send(self.message(a, b))
            assert delivered is True

        run(world, scenario())
        assert world.metrics.counter("faults.messages_dropped").value == 1

    def test_reliable_send_recovers_from_drop_window(self, world, adhoc_nodes):
        a, b = adhoc_nodes
        # The window closes after the first attempt; ARQ retransmits.
        FaultPlan().drop(at=0.0, duration=0.01, rate=1.0).inject(world)

        def scenario():
            attempts = yield world.transport.send_reliable(
                self.message(a, b), max_attempts=4
            )
            return attempts

        attempts = run(world, scenario())
        assert attempts > 1
        assert len(b.inbox.items) == 1

    def test_drop_scoped_by_message_kind(self, world, adhoc_pair):
        a, b = adhoc_pair
        FaultPlan().drop(
            at=0.0, duration=5.0, rate=1.0, message_kinds=("y.*",)
        ).inject(world)

        def scenario():
            delivered = yield world.transport.send(self.message(a, b))
            assert delivered is True

        run(world, scenario())

    def test_delay_postpones_arrival_without_slowing_sender(
        self, world, adhoc_nodes
    ):
        a, b = adhoc_nodes
        FaultPlan().delay(at=0.0, duration=5.0, extra_s=2.0).inject(world)
        times = {}

        def receiver():
            yield b.inbox.get()
            times["arrival"] = world.now

        def sender():
            delivered = yield world.transport.send(self.message(a, b))
            times["acked"] = world.now
            assert delivered is True

        world.env.process(receiver())
        run(world, sender())
        world.run(until=10.0)
        assert times["arrival"] >= times["acked"] + 2.0
        assert world.metrics.counter("faults.messages_delayed").value == 1

    def test_duplicate_delivers_two_copies(self, world, adhoc_nodes):
        a, b = adhoc_nodes
        FaultPlan().duplicate(
            at=0.0, duration=5.0, rate=1.0, delay_s=0.5
        ).inject(world)

        def scenario():
            yield world.transport.send(self.message(a, b))

        run(world, scenario())
        world.run(until=10.0)
        copies = [m for m in b.inbox.items if m.kind == "x.ping"]
        assert len(copies) == 2
        assert copies[0].id == copies[1].id  # same logical message
        assert world.metrics.counter("faults.messages_duplicated").value == 1

    def test_corrupt_marks_message(self, world, adhoc_nodes):
        a, b = adhoc_nodes
        FaultPlan().corrupt(at=0.0, duration=5.0, rate=1.0).inject(world)

        def scenario():
            delivered = yield world.transport.send(self.message(a, b))
            assert delivered is True

        run(world, scenario())
        (received,) = b.inbox.items
        assert received.corrupted
        assert world.metrics.counter("faults.messages_corrupted").value == 1

    def test_corrupted_request_discarded_then_times_out(
        self, world, adhoc_pair
    ):
        a, b = adhoc_pair
        FaultPlan().corrupt(
            at=0.0, duration=60.0, rate=1.0, message_kinds=("cs.request",)
        ).inject(world)

        def scenario():
            with pytest.raises(RequestTimeout):
                yield from a.components["cs"].call(
                    b.id, "anything", timeout=3.0
                )

        run(world, scenario())
        assert world.metrics.counter("host.corrupt_discarded").value >= 1


class TestDeterminism:
    def chaos_fingerprint(self, seed):
        from repro.faults import run_chaos

        return run_chaos(seed=seed).summary

    def test_same_seed_same_metrics(self):
        assert self.chaos_fingerprint(13) == self.chaos_fingerprint(13)

    def test_different_seed_differs(self):
        assert self.chaos_fingerprint(13) != self.chaos_fingerprint(14)

    def test_arming_plan_does_not_perturb_unfaulted_run(self):
        """A plan whose windows never match any message must not change
        the trajectory of an otherwise identical run (separate streams,
        no draws on non-matching traffic)."""

        def trajectory(with_plan):
            world = loss_free(World(seed=21))
            a = standard_host(world, "a", Position(0, 0), [WIFI_ADHOC])
            b = standard_host(world, "b", Position(20, 0), [WIFI_ADHOC])
            if with_plan:
                FaultPlan().drop(
                    at=0.0, duration=1000.0, rate=0.5,
                    message_kinds=("never.*",),
                ).inject(world)

            def scenario():
                result = yield from a.components["cs"].call(
                    b.id, "echo", args=1, timeout=5.0
                )
                return result

            b.register_service("echo", lambda args, host: (args, 8))
            run(world, scenario())
            return world.summary()

        baseline = trajectory(with_plan=False)
        armed = trajectory(with_plan=True)
        for key, value in baseline.items():
            assert armed[key] == value, key
