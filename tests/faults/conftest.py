"""Shared fixtures for fault-injection tests."""

import pytest

from repro.core import World, mutual_trust, standard_host
from repro.net import GPRS, LAN, Position, WIFI_ADHOC


def loss_free(world):
    """Disable stochastic transport loss: injected faults become the
    only source of disruption, making assertions exact."""
    world.transport._rng.random = lambda: 0.999
    return world


def run(world, generator):
    """Run a generator as a process to completion; return its value."""
    process = world.env.process(generator)
    return world.run(until=process)


@pytest.fixture
def world():
    return loss_free(World(seed=42))


@pytest.fixture
def adhoc_nodes(world):
    """Two bare nodes (no middleware host, no dispatch loop), so tests
    can inspect raw inbox contents."""
    a = world.add_node("na", Position(0, 0), [WIFI_ADHOC])
    b = world.add_node("nb", Position(20, 0), [WIFI_ADHOC])
    return a, b


@pytest.fixture
def adhoc_pair(world):
    """Two mutually trusting hosts in Wi-Fi ad-hoc range."""
    a = standard_host(world, "a", Position(0, 0), [WIFI_ADHOC])
    b = standard_host(world, "b", Position(20, 0), [WIFI_ADHOC])
    mutual_trust(a, b)
    return a, b


@pytest.fixture
def phone_and_server(world):
    """A GPRS phone (attached) and a fixed LAN server."""
    phone = standard_host(world, "phone", Position(0, 0), [GPRS], cpu_speed=0.2)
    server = standard_host(
        world, "server", Position(0, 0), [LAN], fixed=True, cpu_speed=2.0
    )
    mutual_trust(phone, server)
    phone.node.interface("gprs").attach()
    return phone, server
