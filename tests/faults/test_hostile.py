"""Hostile-guest containment invariants and determinism.

The tier-1 guarantees of the hostile-guest fault family: benign
completion survives the attacks, every hostile guest is terminated by
its :class:`~repro.security.QuotaGrant` with ``SandboxViolation``
(nothing escapes the providers), the whole hostile trajectory is a
pure function of the seed, and an *unarmed* hostile run is
bit-identical to the plain chaos harness — arming the machinery costs
nothing until a plan actually fires.
"""

from repro.faults import (
    FaultPlan,
    HOSTILE_GRANT,
    hostile_plan,
    run_chaos,
    run_hostile,
    verify_hostile_containment,
)


class TestContainmentInvariants:
    def test_benign_completion_survives_hostile_guests(self):
        outcome = verify_hostile_containment(seed=7)
        assert outcome.completion_rate >= 0.95

    def test_every_guest_terminated_nothing_escapes(self):
        outcome = run_hostile(seed=7)
        summary = outcome.summary
        guests = summary["hostile.guests"]
        # Standard plan: quota_loop on one server, storage_bomb on
        # every server, service_flood on one — at least 3 launches.
        assert guests >= 3.0
        assert summary["hostile.terminated"] == guests
        assert summary["hostile.escapes"] == 0.0

    def test_quota_usage_lands_in_labeled_metrics(self):
        outcome = run_hostile(seed=7)
        metrics = outcome.report["metrics"]
        # Per-node attribution of the attack surface...
        assert metrics['hostile.guests{node="server-0"}'] >= 1.0
        assert metrics['hostile.terminated{node="server-0"}'] >= 1.0
        # ...and the provider-side security families it consumed.
        assert metrics['security.sandbox_violations{node="server-0"}'] >= 1.0
        assert any(
            key.startswith("security.guest_storage_peak")
            for key in metrics
        )

    def test_strict_grant_clamps_metered_work(self):
        outcome = run_hostile(seed=7)
        metrics = outcome.report["metrics"]
        # The strict provider preempts at the quota: the hungriest
        # hostile guest metered exactly the grant, never more.
        assert metrics["hostile.work_units.max"] == HOSTILE_GRANT.work_units

    def test_service_flood_capped_at_grant(self):
        outcome = run_hostile(seed=7)
        summary = outcome.summary
        assert (
            summary["security.guest_service_calls"]
            == HOSTILE_GRANT.service_calls
        )


class TestDeterminism:
    def test_same_seed_same_report(self):
        first = run_hostile(seed=13)
        second = run_hostile(seed=13)
        assert first.report == second.report

    def test_different_seed_differs(self):
        assert run_hostile(seed=13).summary != run_hostile(seed=14).summary

    def test_unarmed_run_matches_plain_chaos(self):
        # Same fleet shape, empty plans: the hostile harness (strict
        # grants armed but never fired) must be bit-identical to the
        # plain chaos harness — the substrate refactor costs nothing
        # on the benign path.
        hostile = run_hostile(seed=21, clients=3, servers=2, hostile=FaultPlan())
        chaos = run_chaos(seed=21, clients=3, servers=2, plan=FaultPlan())
        assert hostile.summary == chaos.summary
        assert hostile.completed == chaos.completed
        assert hostile.duration_s == chaos.duration_s


class TestPlanShape:
    def test_standard_plan_covers_all_three_bodies(self):
        plan = hostile_plan(servers=2)
        guests = [spec.guest for spec in plan]
        assert sorted(set(guests)) == [
            "quota_loop",
            "service_flood",
            "storage_bomb",
        ]

    def test_crashed_target_is_skipped_not_fatal(self):
        # A hostile guest aimed at a down node is a no-op, not a crash
        # of the injector.
        plan = FaultPlan()
        plan.crash(["server-0"], at=5.0, down_s=30.0)
        plan.hostile_guest(["server-0"], at=10.0, guest="quota_loop")
        outcome = run_hostile(seed=3, hostile=plan)
        assert outcome.summary.get("hostile.guests", 0.0) == 0.0
        assert outcome.summary.get("hostile.escapes", 0.0) == 0.0
