"""Unit tests for versions, requirements, and unit definitions."""

import pytest

from repro.errors import CodebaseError
from repro.lmu import CodeUnit, DataUnit, Requirement, Version, code_unit


class TestVersion:
    def test_parse_full(self):
        assert Version.parse("1.2.3") == Version(1, 2, 3)

    def test_parse_short(self):
        assert Version.parse("2.1") == Version(2, 1, 0)

    def test_parse_rejects_garbage(self):
        for bad in ("", "1", "a.b.c", "1.2.3.4", "-1.0"):
            with pytest.raises(CodebaseError):
                Version.parse(bad)

    def test_ordering(self):
        assert Version(1, 0, 0) < Version(1, 0, 1) < Version(1, 1, 0) < Version(2, 0, 0)

    def test_compatibility_same_major_newer_ok(self):
        assert Version(1, 5, 0).compatible_with(Version(1, 2, 0))

    def test_compatibility_older_fails(self):
        assert not Version(1, 1, 0).compatible_with(Version(1, 2, 0))

    def test_compatibility_major_change_fails(self):
        assert not Version(2, 0, 0).compatible_with(Version(1, 9, 9))

    def test_str_roundtrip(self):
        assert str(Version.parse("3.4.5")) == "3.4.5"


class TestRequirement:
    def test_parse_bare_name(self):
        requirement = Requirement.parse("codec-ogg")
        assert requirement.name == "codec-ogg"
        assert requirement.min_version == Version(0, 0, 0)

    def test_parse_with_version(self):
        requirement = Requirement.parse("codec-ogg>=1.2")
        assert requirement.min_version == Version(1, 2, 0)

    def test_satisfied_by(self):
        unit = code_unit("codec-ogg", "1.3.0", lambda: (lambda ctx: None), 100)
        assert Requirement.parse("codec-ogg>=1.2").satisfied_by(unit)
        assert not Requirement.parse("codec-ogg>=1.4").satisfied_by(unit)
        assert not Requirement.parse("other").satisfied_by(unit)

    def test_str_forms(self):
        assert str(Requirement.parse("x")) == "x"
        assert str(Requirement.parse("x>=1.0.0")) == "x>=1.0.0"


class TestCodeUnit:
    def test_qualified_name(self):
        unit = code_unit("player", "2.0.1", lambda: (lambda ctx: None), 10)
        assert unit.qualified_name == "player@2.0.1"

    def test_instantiate_fresh_instances(self):
        instances = []

        def factory():
            def run(context):
                return len(instances)

            instances.append(run)
            return run

        unit = code_unit("u", "1.0", factory, 10)
        first = unit.instantiate()
        second = unit.instantiate()
        assert first is not second

    def test_empty_name_rejected(self):
        with pytest.raises(CodebaseError):
            code_unit("", "1.0", lambda: (lambda ctx: None), 10)

    def test_negative_size_rejected(self):
        with pytest.raises(CodebaseError):
            code_unit("u", "1.0", lambda: (lambda ctx: None), -5)

    def test_provides_capabilities(self):
        unit = code_unit(
            "codec", "1.0", lambda: (lambda ctx: None), 10, provides=["codec:ogg"]
        )
        assert "codec:ogg" in unit.provides


class TestDataUnit:
    def test_holds_payload(self):
        data = DataUnit("state", {"x": 1}, 50)
        assert data.payload == {"x": 1}

    def test_negative_size_rejected(self):
        with pytest.raises(CodebaseError):
            DataUnit("state", None, -1)
