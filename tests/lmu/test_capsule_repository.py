"""Unit tests for capsules, repositories, and the serializer size model."""

import pytest

from repro.errors import DependencyError, UnitNotFound
from repro.lmu import (
    Capsule,
    Codebase,
    CodeRepository,
    DataUnit,
    MANIFEST_BYTES,
    MANIFEST_ENTRY_BYTES,
    Requirement,
    Version,
    build_capsule,
    code_unit,
    estimate_size,
    install_capsule,
)


def unit(name, version="1.0.0", size=100, requires=None, provides=None):
    return code_unit(
        name,
        version,
        lambda: (lambda ctx: name),
        size,
        requires=requires,
        provides=provides,
    )


def make_repository(*units_):
    repository = CodeRepository()
    repository.publish_all(list(units_))
    return repository


class TestRepository:
    def test_publish_and_latest(self):
        repository = make_repository(unit("a", "1.0.0"), unit("a", "1.2.0"))
        assert str(repository.latest("a").version) == "1.2.0"

    def test_latest_missing_raises(self):
        with pytest.raises(UnitNotFound):
            CodeRepository().latest("ghost")

    def test_resolve_respects_version_floor(self):
        repository = make_repository(
            unit("a", "1.0.0"), unit("a", "1.5.0"), unit("a", "2.0.0")
        )
        resolved = repository.resolve(Requirement.parse("a>=1.2"))
        assert str(resolved.version) == "1.5.0"  # 2.0 is a different major line

    def test_resolve_unsatisfiable(self):
        repository = make_repository(unit("a", "1.0.0"))
        with pytest.raises(UnitNotFound):
            repository.resolve(Requirement.parse("a>=1.5"))

    def test_withdraw_version_and_all(self):
        repository = make_repository(unit("a", "1.0.0"), unit("a", "1.1.0"))
        repository.withdraw("a", Version.parse("1.1.0"))
        assert str(repository.latest("a").version) == "1.0.0"
        repository.withdraw("a")
        assert "a" not in repository

    def test_withdraw_missing_raises(self):
        with pytest.raises(UnitNotFound):
            CodeRepository().withdraw("ghost")

    def test_providers_of(self):
        repository = make_repository(
            unit("ogg", provides=["codec:ogg"]),
            unit("mp3", provides=["codec:mp3"]),
        )
        assert [u.name for u in repository.providers_of("codec:mp3")] == ["mp3"]

    def test_total_bytes(self):
        repository = make_repository(unit("a", size=100), unit("b", size=250))
        assert repository.total_bytes() == 350


class TestCapsuleBuild:
    def test_closure_included_dependency_first(self):
        repository = make_repository(
            unit("app", requires=["lib"]), unit("lib")
        )
        capsule = build_capsule("host-a", "cod-reply", ["app"], repository.resolve)
        assert [u.name for u in capsule.code_units] == ["lib", "app"]
        assert capsule.manifest.purpose == "cod-reply"

    def test_size_model(self):
        repository = make_repository(unit("a", size=1000))
        capsule = build_capsule("s", "cod-reply", ["a"], repository.resolve)
        assert capsule.size_bytes == MANIFEST_BYTES + MANIFEST_ENTRY_BYTES + 1000

    def test_data_units_counted(self):
        repository = make_repository(unit("a", size=100))
        capsule = build_capsule(
            "s",
            "agent",
            ["a"],
            repository.resolve,
            data_units=[DataUnit("state", {"k": 1}, 500)],
        )
        assert capsule.size_bytes == (
            MANIFEST_BYTES + 2 * MANIFEST_ENTRY_BYTES + 100 + 500
        )
        assert capsule.data_unit("state").payload == {"k": 1}

    def test_differential_shipping_skips_installed(self):
        repository = make_repository(unit("app", requires=["lib"]), unit("lib"))
        receiver = Codebase()
        receiver.install(unit("lib"))
        capsule = build_capsule(
            "s", "cod-reply", ["app"], repository.resolve,
            already_installed=receiver.inventory(),
        )
        assert [u.name for u in capsule.code_units] == ["app"]

    def test_lookup_helpers(self):
        repository = make_repository(unit("a"))
        capsule = build_capsule("s", "cod-reply", ["a"], repository.resolve)
        assert capsule.code_unit("a").name == "a"
        with pytest.raises(UnitNotFound):
            capsule.code_unit("ghost")
        with pytest.raises(UnitNotFound):
            capsule.data_unit("ghost")


class TestCapsuleIntegrity:
    def test_digest_stable(self):
        repository = make_repository(unit("a"))
        capsule = build_capsule("s", "cod-reply", ["a"], repository.resolve)
        assert capsule.content_digest() == capsule.content_digest()

    def test_tamper_changes_digest(self):
        repository = make_repository(unit("a"))
        capsule = build_capsule("s", "cod-reply", ["a"], repository.resolve)
        before = capsule.content_digest()
        capsule.tamper()
        assert capsule.content_digest() != before

    def test_different_contents_different_digest(self):
        repository = make_repository(unit("a"), unit("b"))
        one = build_capsule("s", "cod-reply", ["a"], repository.resolve)
        two = build_capsule("s", "cod-reply", ["b"], repository.resolve)
        assert one.content_digest() != two.content_digest()


class TestInstallCapsule:
    def test_installs_everything(self):
        repository = make_repository(unit("app", requires=["lib"]), unit("lib"))
        capsule = build_capsule("s", "cod-reply", ["app"], repository.resolve)
        codebase = Codebase()
        installed = install_capsule(capsule, codebase)
        assert installed == ["lib", "app"]
        assert "app" in codebase and "lib" in codebase

    def test_differential_capsule_needs_local_dependency(self):
        repository = make_repository(unit("app", requires=["lib"]), unit("lib"))
        receiver = Codebase()
        receiver.install(unit("lib"))
        capsule = build_capsule(
            "s", "cod-reply", ["app"], repository.resolve,
            already_installed=receiver.inventory(),
        )
        # Receiver then evicted lib: installation must fail up front.
        receiver.uninstall("lib")
        with pytest.raises(DependencyError):
            install_capsule(capsule, receiver)

    def test_pinned_installation(self):
        repository = make_repository(unit("core"))
        capsule = build_capsule("s", "update", ["core"], repository.resolve)
        codebase = Codebase()
        install_capsule(capsule, codebase, pinned=True)
        assert codebase.stats("core").pinned


class TestSerializer:
    def test_none_and_bool(self):
        assert estimate_size(None) < estimate_size(1.0)
        assert estimate_size(True) < estimate_size(1)

    def test_strings_scale_with_length(self):
        assert estimate_size("x" * 100) - estimate_size("") == 100

    def test_bytes_exact(self):
        assert estimate_size(b"abc") - estimate_size(b"") == 3

    def test_collections_recurse(self):
        flat = estimate_size([1, 2, 3])
        nested = estimate_size([[1], [2], [3]])
        assert nested > flat

    def test_mapping_counts_keys_and_values(self):
        assert estimate_size({"key": "value"}) > estimate_size("keyvalue")

    def test_declared_size_wins(self):
        class Declared:
            size_bytes = 5000

        assert estimate_size(Declared()) >= 5000

    def test_opaque_object_fallback(self):
        class Opaque:
            pass

        assert estimate_size(Opaque()) > 0

    def test_deep_nesting_bounded(self):
        value = []
        for _ in range(100):
            value = [value]
        assert estimate_size(value) > 0  # terminates, no recursion error
