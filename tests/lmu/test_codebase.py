"""Unit tests for the local codebase: install, versions, quota, eviction."""

import pytest

from repro.errors import (
    DependencyError,
    QuotaExceeded,
    UnitNotFound,
    VersionConflict,
)
from repro.lmu import (
    Codebase,
    code_unit,
    dependency_closure,
    largest_first_policy,
    lfu_policy,
    lru_policy,
)


def unit(name, version="1.0.0", size=100, requires=None, provides=None):
    return code_unit(
        name,
        version,
        lambda: (lambda ctx: name),
        size,
        requires=requires,
        provides=provides,
    )


class FakeClock:
    def __init__(self):
        self.time = 0.0

    def __call__(self):
        return self.time


class TestInstall:
    def test_install_and_get(self):
        codebase = Codebase()
        codebase.install(unit("a"))
        assert "a" in codebase
        assert codebase.get("a").name == "a"

    def test_get_missing_raises(self):
        with pytest.raises(UnitNotFound):
            Codebase().get("ghost")

    def test_upgrade_same_major(self):
        codebase = Codebase()
        codebase.install(unit("a", "1.0.0"))
        codebase.install(unit("a", "1.2.0"))
        assert str(codebase.get("a").version) == "1.2.0"

    def test_downgrade_rejected(self):
        codebase = Codebase()
        codebase.install(unit("a", "1.2.0"))
        with pytest.raises(VersionConflict):
            codebase.install(unit("a", "1.1.0"))

    def test_major_change_rejected(self):
        codebase = Codebase()
        codebase.install(unit("a", "1.0.0"))
        with pytest.raises(VersionConflict):
            codebase.install(unit("a", "2.0.0"))

    def test_major_change_after_uninstall(self):
        codebase = Codebase()
        codebase.install(unit("a", "1.0.0"))
        codebase.uninstall("a")
        codebase.install(unit("a", "2.0.0"))
        assert str(codebase.get("a").version) == "2.0.0"

    def test_used_bytes_accounts_upgrades(self):
        codebase = Codebase()
        codebase.install(unit("a", "1.0.0", size=100))
        codebase.install(unit("a", "1.1.0", size=150))
        assert codebase.used_bytes == 150


class TestQuotaAndEviction:
    def test_quota_enforced_without_eviction(self):
        codebase = Codebase(quota_bytes=150, eviction=None)
        codebase.install(unit("a", size=100))
        with pytest.raises(QuotaExceeded):
            codebase.install(unit("b", size=100))

    def test_lru_evicts_least_recent(self):
        clock = FakeClock()
        codebase = Codebase(quota_bytes=250, eviction=lru_policy, now=clock)
        codebase.install(unit("a", size=100))
        clock.time = 1.0
        codebase.install(unit("b", size=100))
        clock.time = 2.0
        codebase.touch("a")  # b is now least recently used
        clock.time = 3.0
        codebase.install(unit("c", size=100))
        assert "b" not in codebase
        assert "a" in codebase and "c" in codebase
        assert codebase.evictions == 1

    def test_lfu_evicts_least_frequent(self):
        clock = FakeClock()
        codebase = Codebase(quota_bytes=250, eviction=lfu_policy, now=clock)
        codebase.install(unit("a", size=100))
        codebase.install(unit("b", size=100))
        for _ in range(3):
            codebase.touch("b")
        codebase.install(unit("c", size=100))
        assert "a" not in codebase

    def test_largest_first_frees_big_units(self):
        codebase = Codebase(quota_bytes=300, eviction=largest_first_policy)
        codebase.install(unit("small", size=50))
        codebase.install(unit("big", size=200))
        codebase.install(unit("incoming", size=150))
        assert "big" not in codebase
        assert "small" in codebase

    def test_pinned_units_never_evicted(self):
        codebase = Codebase(quota_bytes=200, eviction=lru_policy)
        codebase.install(unit("core", size=100), pinned=True)
        codebase.install(unit("app", size=100))
        codebase.install(unit("new", size=100))
        assert "core" in codebase
        assert "app" not in codebase

    def test_eviction_insufficient_raises(self):
        codebase = Codebase(quota_bytes=200, eviction=lru_policy)
        codebase.install(unit("core", size=150), pinned=True)
        with pytest.raises(QuotaExceeded):
            codebase.install(unit("huge", size=100))

    def test_uninstall_pinned_refuses(self):
        codebase = Codebase()
        codebase.install(unit("core"), pinned=True)
        with pytest.raises(VersionConflict):
            codebase.uninstall("core")
        codebase.unpin("core")
        codebase.uninstall("core")
        assert "core" not in codebase

    def test_invalid_quota(self):
        with pytest.raises(ValueError):
            Codebase(quota_bytes=0)

    def test_upgrade_keeps_pin(self):
        codebase = Codebase()
        codebase.install(unit("core", "1.0.0"), pinned=True)
        codebase.install(unit("core", "1.1.0"))
        with pytest.raises(VersionConflict):
            codebase.uninstall("core")


class TestQueries:
    def test_satisfies_requirement(self):
        codebase = Codebase()
        codebase.install(unit("a", "1.5.0"))
        from repro.lmu import Requirement

        assert codebase.satisfies(Requirement.parse("a>=1.2"))
        assert not codebase.satisfies(Requirement.parse("a>=1.6"))
        assert not codebase.satisfies(Requirement.parse("b"))

    def test_missing_requirements(self):
        codebase = Codebase()
        dependent = unit("app", requires=["lib>=1.0", "other"])
        codebase.install(unit("lib", "1.2.0"))
        missing = codebase.missing_requirements(dependent)
        assert [str(req) for req in missing] == ["other"]

    def test_providers_of_capability(self):
        codebase = Codebase()
        codebase.install(unit("ogg", provides=["codec:ogg"]))
        codebase.install(unit("mp3", provides=["codec:mp3"]))
        assert [u.name for u in codebase.providers_of("codec:ogg")] == ["ogg"]

    def test_touch_updates_stats(self):
        clock = FakeClock()
        codebase = Codebase(now=clock)
        codebase.install(unit("a"))
        clock.time = 5.0
        codebase.touch("a")
        stats = codebase.stats("a")
        assert stats.last_used == 5.0
        assert stats.use_count == 1


class TestDependencyClosure:
    def build_resolver(self, units):
        by_name = {u.name: u for u in units}

        def resolve(requirement):
            try:
                return by_name[requirement.name]
            except KeyError:
                raise UnitNotFound(requirement.name) from None

        return resolve

    def test_dependencies_ordered_first(self):
        resolver = self.build_resolver(
            [
                unit("app", requires=["lib"]),
                unit("lib", requires=["base"]),
                unit("base"),
            ]
        )
        closure = dependency_closure(["app"], resolver)
        assert [u.name for u in closure] == ["base", "lib", "app"]

    def test_shared_dependency_once(self):
        resolver = self.build_resolver(
            [
                unit("a", requires=["base"]),
                unit("b", requires=["base"]),
                unit("base"),
            ]
        )
        closure = dependency_closure(["a", "b"], resolver)
        assert [u.name for u in closure].count("base") == 1

    def test_cycle_detected(self):
        resolver = self.build_resolver(
            [unit("a", requires=["b"]), unit("b", requires=["a"])]
        )
        with pytest.raises(DependencyError, match="cycle"):
            dependency_closure(["a"], resolver)

    def test_missing_dependency_surfaces(self):
        resolver = self.build_resolver([unit("a", requires=["ghost"])])
        with pytest.raises(UnitNotFound):
            dependency_closure(["a"], resolver)

    def test_unsatisfiable_version_detected(self):
        resolver = self.build_resolver([unit("a", "1.0.0")])
        with pytest.raises(DependencyError):
            dependency_closure(["a>=1.5"], resolver)
