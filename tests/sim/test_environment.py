"""Unit tests for the discrete-event kernel: environment, events, processes."""

import pytest

from repro.errors import EmptySchedule, Interrupt, SimulationError
from repro.sim import Environment


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_clock_custom_start():
    env = Environment(initial_time=10.0)
    assert env.now == 10.0


def test_timeout_advances_clock():
    env = Environment()
    timeout = env.timeout(5.0, value="done")
    result = env.run(until=timeout)
    assert result == "done"
    assert env.now == 5.0


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1.0)


def test_run_until_time_stops_exactly():
    env = Environment()
    env.timeout(10.0)
    env.run(until=3.0)
    assert env.now == 3.0


def test_run_until_past_time_rejected():
    env = Environment()
    env.run(until=5.0)
    with pytest.raises(ValueError):
        env.run(until=1.0)


def test_run_empty_schedule_returns():
    env = Environment()
    assert env.run() is None


def test_step_on_empty_schedule_raises():
    env = Environment()
    with pytest.raises(EmptySchedule):
        env.step()


def test_process_returns_value():
    env = Environment()

    def worker(env):
        yield env.timeout(2.0)
        return 42

    process = env.process(worker(env))
    assert env.run(until=process) == 42
    assert env.now == 2.0


def test_process_sequencing_same_time_is_fifo():
    env = Environment()
    order = []

    def worker(env, tag):
        yield env.timeout(1.0)
        order.append(tag)

    for tag in ("a", "b", "c"):
        env.process(worker(env, tag))
    env.run()
    assert order == ["a", "b", "c"]


def test_process_waits_on_another_process():
    env = Environment()

    def inner(env):
        yield env.timeout(3.0)
        return "inner-result"

    def outer(env):
        result = yield env.process(inner(env))
        return result + "!"

    process = env.process(outer(env))
    assert env.run(until=process) == "inner-result!"


def test_process_failure_propagates_to_waiter():
    env = Environment()

    def failing(env):
        yield env.timeout(1.0)
        raise RuntimeError("boom")

    def waiter(env):
        try:
            yield env.process(failing(env))
        except RuntimeError as error:
            return f"caught {error}"

    process = env.process(waiter(env))
    assert env.run(until=process) == "caught boom"


def test_unhandled_process_failure_crashes_simulation():
    env = Environment()

    def failing(env):
        yield env.timeout(1.0)
        raise RuntimeError("nobody catches this")

    env.process(failing(env))
    with pytest.raises(RuntimeError, match="nobody catches this"):
        env.run()


def test_yielding_non_event_is_an_error():
    env = Environment()

    def bad(env):
        yield 42

    env.process(bad(env))
    with pytest.raises(SimulationError):
        env.run()


def test_event_succeed_once_only():
    env = Environment()
    event = env.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)


def test_event_fail_requires_exception():
    env = Environment()
    with pytest.raises(TypeError):
        env.event().fail("not an exception")


def test_event_value_unavailable_until_triggered():
    env = Environment()
    event = env.event()
    with pytest.raises(SimulationError):
        _ = event.value


def test_manual_event_wakes_waiter():
    env = Environment()
    gate = env.event()
    log = []

    def opener(env):
        yield env.timeout(4.0)
        gate.succeed("open")

    def waiter(env):
        value = yield gate
        log.append((env.now, value))

    env.process(opener(env))
    env.process(waiter(env))
    env.run()
    assert log == [(4.0, "open")]


def test_any_of_fires_on_first():
    env = Environment()

    def worker(env):
        fast = env.timeout(1.0, value="fast")
        slow = env.timeout(5.0, value="slow")
        results = yield env.any_of([fast, slow])
        return list(results.values())

    process = env.process(worker(env))
    assert env.run(until=process) == ["fast"]
    # The slow timeout still exists but the run is over at t=1 + slow at 5.
    env.run()
    assert env.now == 5.0


def test_all_of_waits_for_every_event():
    env = Environment()

    def worker(env):
        events = [env.timeout(t, value=t) for t in (1.0, 3.0, 2.0)]
        results = yield env.all_of(events)
        return sorted(results.values())

    process = env.process(worker(env))
    assert env.run(until=process) == [1.0, 2.0, 3.0]
    assert env.now == 3.0


def test_all_of_empty_fires_immediately():
    env = Environment()

    def worker(env):
        results = yield env.all_of([])
        return results

    process = env.process(worker(env))
    assert env.run(until=process) == {}


def test_interrupt_delivers_cause():
    env = Environment()
    log = []

    def sleeper(env):
        try:
            yield env.timeout(100.0)
        except Interrupt as interrupt:
            log.append((env.now, interrupt.cause))

    def interrupter(env, victim):
        yield env.timeout(2.0)
        victim.interrupt(cause="wake up")

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    assert log == [(2.0, "wake up")]


def test_interrupted_process_can_keep_running():
    env = Environment()
    log = []

    def sleeper(env):
        try:
            yield env.timeout(100.0)
        except Interrupt:
            pass
        yield env.timeout(1.0)
        log.append(env.now)

    def interrupter(env, victim):
        yield env.timeout(2.0)
        victim.interrupt()

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    assert log == [3.0]


def test_interrupting_dead_process_raises():
    env = Environment()

    def quick(env):
        yield env.timeout(1.0)

    process = env.process(quick(env))
    env.run()
    with pytest.raises(SimulationError):
        process.interrupt()


def test_stale_timeout_does_not_resume_twice():
    env = Environment()
    wakeups = []

    def sleeper(env):
        try:
            yield env.timeout(5.0)
            wakeups.append("timeout")
        except Interrupt:
            wakeups.append("interrupt")
        # Wait past the stale timeout's original firing time.
        yield env.timeout(10.0)
        wakeups.append("after")

    def interrupter(env, victim):
        yield env.timeout(1.0)
        victim.interrupt()

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    assert wakeups == ["interrupt", "after"]


def test_run_until_already_processed_event():
    env = Environment()
    timeout = env.timeout(1.0, value="x")
    env.run()
    assert env.run(until=timeout) == "x"


def test_deterministic_event_ordering_with_priorities():
    env = Environment()
    order = []

    def a(env):
        yield env.timeout(1.0)
        order.append("a")
        yield env.timeout(0.0)
        order.append("a2")

    def b(env):
        yield env.timeout(1.0)
        order.append("b")

    env.process(a(env))
    env.process(b(env))
    env.run()
    assert order == ["a", "b", "a2"]


def test_peek_reports_next_event_time():
    env = Environment()
    assert env.peek() == float("inf")
    env.timeout(7.0)
    assert env.peek() == 7.0
