"""Unit tests for Store and Resource coordination primitives."""

import pytest

from repro.sim import Environment, Resource, Store


def run_process(env, generator):
    process = env.process(generator)
    return env.run(until=process)


def test_store_put_then_get():
    env = Environment()
    store = Store(env)

    def worker(env):
        yield store.put("item")
        item = yield store.get()
        return item

    assert run_process(env, worker(env)) == "item"


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)
    log = []

    def consumer(env):
        item = yield store.get()
        log.append((env.now, item))

    def producer(env):
        yield env.timeout(5.0)
        yield store.put("late")

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert log == [(5.0, "late")]


def test_store_fifo_ordering():
    env = Environment()
    store = Store(env)
    received = []

    def producer(env):
        for index in range(3):
            yield store.put(index)

    def consumer(env):
        for _ in range(3):
            item = yield store.get()
            received.append(item)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert received == [0, 1, 2]


def test_store_capacity_blocks_producer():
    env = Environment()
    store = Store(env, capacity=1)
    log = []

    def producer(env):
        yield store.put("a")
        log.append(("a-stored", env.now))
        yield store.put("b")
        log.append(("b-stored", env.now))

    def consumer(env):
        yield env.timeout(10.0)
        item = yield store.get()
        log.append(("got-" + item, env.now))

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert log == [("a-stored", 0.0), ("got-a", 10.0), ("b-stored", 10.0)]


def test_store_invalid_capacity():
    env = Environment()
    with pytest.raises(ValueError):
        Store(env, capacity=0)


def test_store_predicate_get_skips_non_matching():
    env = Environment()
    store = Store(env)
    received = []

    def producer(env):
        yield store.put({"kind": "x"})
        yield store.put({"kind": "y"})

    def consumer(env):
        item = yield store.get(predicate=lambda m: m["kind"] == "y")
        received.append(item["kind"])
        item = yield store.get()
        received.append(item["kind"])

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert received == ["y", "x"]


def test_store_try_get_nonblocking():
    env = Environment()
    store = Store(env)
    assert store.try_get() is None

    def producer(env):
        yield store.put(1)

    env.process(producer(env))
    env.run()
    assert store.try_get() == 1
    assert store.try_get() is None


def test_store_get_cancel_withdraws_request():
    env = Environment()
    store = Store(env)
    outcomes = []

    def racer(env):
        get = store.get()
        timeout = env.timeout(1.0)
        result = yield env.any_of([get, timeout])
        if get in result:
            outcomes.append("got")
        else:
            get.cancel()
            outcomes.append("timed-out")

    def late_producer(env):
        yield env.timeout(5.0)
        yield store.put("late")

    env.process(racer(env))
    env.process(late_producer(env))
    env.run()
    assert outcomes == ["timed-out"]
    # The cancelled get must not have consumed the item.
    assert store.try_get() == "late"


def test_resource_serialises_access():
    env = Environment()
    resource = Resource(env, capacity=1)
    log = []

    def worker(env, tag, hold):
        request = resource.request()
        yield request
        log.append((tag, "acquired", env.now))
        yield env.timeout(hold)
        resource.release(request)

    env.process(worker(env, "a", 3.0))
    env.process(worker(env, "b", 1.0))
    env.run()
    assert log == [("a", "acquired", 0.0), ("b", "acquired", 3.0)]


def test_resource_capacity_two_runs_concurrently():
    env = Environment()
    resource = Resource(env, capacity=2)
    log = []

    def worker(env, tag):
        with resource.request() as request:
            yield request
            log.append((tag, env.now))
            yield env.timeout(1.0)

    for tag in ("a", "b", "c"):
        env.process(worker(env, tag))
    env.run()
    assert log == [("a", 0.0), ("b", 0.0), ("c", 1.0)]


def test_resource_queue_length_and_count():
    env = Environment()
    resource = Resource(env, capacity=1)

    def holder(env):
        request = resource.request()
        yield request
        yield env.timeout(10.0)
        resource.release(request)

    def observer(env):
        yield env.timeout(1.0)
        resource.request()
        yield env.timeout(1.0)
        return resource.count, resource.queue_length

    env.process(holder(env))
    process = env.process(observer(env))
    assert env.run(until=process) == (1, 1)


def test_resource_invalid_capacity():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)
