"""Kernel edge cases: condition failures, interrupt races, event misuse."""

import pytest

from repro.errors import Interrupt, SimulationError
from repro.sim import Environment
from repro.sim.events import Condition


class TestConditionFailures:
    def test_any_of_fails_when_child_fails_first(self):
        env = Environment()

        def worker(env):
            doomed = env.event()
            healthy = env.timeout(10.0)

            def fail_soon(env):
                yield env.timeout(1.0)
                doomed.fail(RuntimeError("child failed"))

            env.process(fail_soon(env))
            try:
                yield env.any_of([doomed, healthy])
            except RuntimeError as error:
                return str(error)

        process = env.process(worker(env))
        assert env.run(until=process) == "child failed"

    def test_all_of_fails_fast_on_any_child_failure(self):
        env = Environment()
        times = []

        def worker(env):
            doomed = env.event()
            slow = env.timeout(100.0)

            def fail_soon(env):
                yield env.timeout(1.0)
                doomed.fail(ValueError("nope"))

            env.process(fail_soon(env))
            try:
                yield env.all_of([doomed, slow])
            except ValueError:
                times.append(env.now)

        env.process(worker(env))
        env.run()
        assert times == [1.0]  # did not wait for the slow child

    def test_late_failing_child_of_decided_condition_is_defused(self):
        env = Environment()

        def worker(env):
            fast = env.timeout(1.0, value="fast")
            doomed = env.event()

            def fail_later(env):
                yield env.timeout(5.0)
                doomed.fail(RuntimeError("late failure"))

            env.process(fail_later(env))
            result = yield env.any_of([fast, doomed])
            return list(result.values())

        process = env.process(worker(env))
        assert env.run(until=process) == ["fast"]
        # The late failure must not crash the simulation when it fires.
        env.run()

    def test_condition_with_mixed_environments_rejected(self):
        env_a = Environment()
        env_b = Environment()
        with pytest.raises(ValueError):
            Condition(
                env_a,
                lambda events, count: True,
                [env_a.timeout(1), env_b.timeout(1)],
            )

    def test_condition_over_already_processed_events(self):
        env = Environment()
        done = env.timeout(1.0, value="x")
        env.run()

        def worker(env):
            result = yield env.all_of([done])
            return list(result.values())

        process = env.process(worker(env))
        assert env.run(until=process) == ["x"]


class TestInterruptRaces:
    def test_interrupt_while_waiting_on_process(self):
        env = Environment()
        outcome = []

        def inner(env):
            yield env.timeout(100.0)
            return "inner done"

        def outer(env):
            child = env.process(inner(env))
            try:
                result = yield child
                outcome.append(result)
            except Interrupt:
                outcome.append("interrupted")
                # The child keeps running independently.
                result = yield child
                outcome.append(result)

        def interrupter(env, victim):
            yield env.timeout(1.0)
            victim.interrupt()

        victim = env.process(outer(env))
        env.process(interrupter(env, victim))
        env.run()
        assert outcome == ["interrupted", "inner done"]

    def test_double_interrupt_delivers_twice(self):
        env = Environment()
        causes = []

        def sleeper(env):
            for _ in range(2):
                try:
                    yield env.timeout(100.0)
                except Interrupt as interrupt:
                    causes.append(interrupt.cause)

        def interrupter(env, victim):
            yield env.timeout(1.0)
            victim.interrupt("first")
            yield env.timeout(1.0)
            victim.interrupt("second")

        victim = env.process(sleeper(env))
        env.process(interrupter(env, victim))
        env.run()
        assert causes == ["first", "second"]

    def test_interrupt_cause_none_by_default(self):
        env = Environment()
        seen = []

        def sleeper(env):
            try:
                yield env.timeout(10.0)
            except Interrupt as interrupt:
                seen.append(interrupt.cause)

        def interrupter(env, victim):
            yield env.timeout(1.0)
            victim.interrupt()

        victim = env.process(sleeper(env))
        env.process(interrupter(env, victim))
        env.run()
        assert seen == [None]


class TestEventMisuse:
    def test_fail_then_succeed_rejected(self):
        env = Environment()
        event = env.event()
        event.fail(RuntimeError("x"))
        event._defused = True
        with pytest.raises(SimulationError):
            event.succeed()
        env.run()

    def test_callback_on_processed_event_rejected(self):
        env = Environment()
        timeout = env.timeout(1.0)
        env.run()
        with pytest.raises(SimulationError):
            timeout.add_callback(lambda event: None)

    def test_ok_before_trigger_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            _ = env.event().ok

    def test_schedule_negative_delay_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            env.schedule(env.event(), delay=-1.0)


class TestRunSemantics:
    def test_run_until_failed_event_raises(self):
        env = Environment()

        def failer(env):
            yield env.timeout(1.0)
            raise RuntimeError("process died")

        process = env.process(failer(env))
        with pytest.raises(RuntimeError, match="process died"):
            env.run(until=process)

    def test_run_until_event_that_never_fires(self):
        env = Environment()
        orphan = env.event()
        env.timeout(5.0)
        with pytest.raises(SimulationError, match="ran dry"):
            env.run(until=orphan)

    def test_nested_processes_compose(self):
        env = Environment()

        def leaf(env, value):
            yield env.timeout(1.0)
            return value * 2

        def middle(env):
            first = yield env.process(leaf(env, 10))
            second = yield env.process(leaf(env, first))
            return second

        def root(env):
            result = yield env.process(middle(env))
            return result

        process = env.process(root(env))
        assert env.run(until=process) == 40
        assert env.now == 2.0
