"""Unit tests for metrics, RNG streams, and tracing."""

import pytest

from repro.sim import MetricsRegistry, RandomStreams, TraceLog, derive_seed
from repro.sim.metrics import Counter, Gauge, Histogram, TimeSeries


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = Counter("bytes")
        counter.increment(10)
        counter.increment()
        assert counter.value == 11

    def test_rejects_decrease(self):
        with pytest.raises(ValueError):
            Counter("bytes").increment(-1)


class TestGauge:
    def test_tracks_last_min_max(self):
        gauge = Gauge("depth")
        gauge.set(5)
        gauge.set(2)
        gauge.add(1)
        assert gauge.value == 3
        assert gauge.max == 5
        assert gauge.min == 2

    def test_never_set_gauge_has_sane_extremes(self):
        gauge = Gauge("depth")
        assert gauge.value == 0.0
        assert gauge.min == 0.0  # not +inf
        assert gauge.max == 0.0  # not -inf
        assert not gauge.touched

    def test_touched_after_set(self):
        gauge = Gauge("depth")
        gauge.set(-3)
        assert gauge.touched
        assert gauge.min == -3
        assert gauge.max == -3

    def test_p50_is_median_of_written_values(self):
        gauge = Gauge("depth")
        for value in [9.0, 1.0, 5.0]:
            gauge.set(value)
        assert gauge.p50 == 5.0
        gauge.set(2.0)
        gauge.set(3.0)  # history [1, 2, 3, 5, 9]
        assert gauge.p50 == 3.0
        assert gauge.quantile(0.0) == 1.0
        assert gauge.quantile(1.0) == 9.0

    def test_p50_of_never_set_gauge_is_zero(self):
        assert Gauge("depth").p50 == 0.0


class TestHistogram:
    def test_mean_and_quantiles(self):
        histogram = Histogram("latency")
        for value in [1.0, 2.0, 3.0, 4.0]:
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.mean == 2.5
        assert histogram.median == 2.5
        assert histogram.min == 1.0
        assert histogram.max == 4.0
        assert histogram.quantile(0.0) == 1.0
        assert histogram.quantile(1.0) == 4.0

    def test_empty_histogram_is_safe(self):
        histogram = Histogram("latency")
        assert histogram.mean == 0.0
        assert histogram.median == 0.0

    def test_quantile_bounds_checked(self):
        with pytest.raises(ValueError):
            Histogram("x").quantile(1.5)

    def test_single_sample(self):
        histogram = Histogram("x")
        histogram.observe(7.0)
        assert histogram.quantile(0.3) == 7.0

    def test_p99(self):
        histogram = Histogram("x")
        for value in range(1, 101):
            histogram.observe(float(value))
        assert histogram.p99 == 99.01

    def test_lazy_sort_interleaved_queries(self):
        # Queries between observations must always see sorted data.
        histogram = Histogram("x")
        histogram.observe(5.0)
        histogram.observe(1.0)
        assert histogram.min == 1.0
        histogram.observe(0.5)
        assert histogram.min == 0.5
        assert histogram.max == 5.0
        assert histogram.median == 1.0

    def test_p50_aliases_median(self):
        histogram = Histogram("x")
        for value in [1.0, 2.0, 3.0, 4.0]:
            histogram.observe(value)
        assert histogram.p50 == histogram.median == 2.5

    def test_observation_order_survives_quantile_queries(self):
        # samples_since hands out insertion-order windows; the lazy
        # sorted copy must never reorder the observation buffer.
        histogram = Histogram("x")
        histogram.observe(5.0)
        histogram.observe(1.0)
        assert histogram.median == 3.0  # forces a sort
        histogram.observe(2.0)
        assert histogram.samples_since(0) == [5.0, 1.0, 2.0]
        assert histogram.samples_since(2) == [2.0]
        assert histogram.samples_since(3) == []


class TestTimeSeries:
    def test_records_in_order(self):
        series = TimeSeries("battery")
        series.record(0.0, 100.0)
        series.record(10.0, 90.0)
        assert series.values() == [100.0, 90.0]
        assert series.last() == (10.0, 90.0)

    def test_rejects_time_reversal(self):
        series = TimeSeries("x")
        series.record(5.0, 1.0)
        with pytest.raises(ValueError):
            series.record(4.0, 1.0)

    def test_time_average_step_interpolation(self):
        series = TimeSeries("x")
        series.record(0.0, 10.0)
        series.record(5.0, 20.0)
        series.record(10.0, 20.0)
        # 10 for 5s then 20 for 5s -> average 15
        assert series.time_average() == 15.0

    def test_time_average_single_point(self):
        series = TimeSeries("x")
        series.record(0.0, 3.0)
        assert series.time_average() == 3.0


class TestRegistry:
    def test_lazily_creates_and_caches(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")

    def test_snapshot_flattens(self):
        registry = MetricsRegistry()
        registry.counter("sent").increment(3)
        registry.gauge("depth").set(2)
        registry.histogram("lat").observe(1.0)
        registry.series("battery").record(0.0, 100.0)
        snapshot = registry.snapshot()
        assert snapshot["sent"] == 3
        assert snapshot["depth"] == 2
        assert snapshot["lat.count"] == 1
        assert snapshot["battery.last"] == 100.0

    def test_snapshot_gauge_extremes_and_p99(self):
        registry = MetricsRegistry()
        registry.gauge("depth").set(4)
        registry.gauge("depth").set(1)
        for value in range(1, 101):
            registry.histogram("lat").observe(float(value))
        snapshot = registry.snapshot()
        assert snapshot["depth.min"] == 1.0
        assert snapshot["depth.max"] == 4.0
        assert snapshot["lat.p99"] == 99.01

    def test_snapshot_exposes_p50_and_extremes(self):
        registry = MetricsRegistry()
        for value in (4.0, 1.0, 2.0):
            registry.gauge("depth").set(value)
        for value in range(1, 101):
            registry.histogram("lat").observe(float(value))
        snapshot = registry.snapshot()
        assert snapshot["depth.p50"] == 2.0
        assert snapshot["lat.p50"] == 50.5
        assert snapshot["lat.p50"] == snapshot["lat.median"]
        assert snapshot["lat.min"] == 1.0
        assert snapshot["lat.max"] == 100.0

    def test_snapshot_untouched_gauge_is_zero(self):
        registry = MetricsRegistry()
        registry.gauge("depth")
        snapshot = registry.snapshot()
        assert snapshot["depth.min"] == 0.0
        assert snapshot["depth.max"] == 0.0

    def test_names_sorted(self):
        registry = MetricsRegistry()
        registry.counter("z")
        registry.counter("a")
        assert registry.names() == ["a", "z"]


class TestRandomStreams:
    def test_same_name_same_sequence(self):
        a = RandomStreams(42).stream("arrivals")
        b = RandomStreams(42).stream("arrivals")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_names_differ(self):
        streams = RandomStreams(42)
        a = streams.stream("arrivals")
        b = streams.stream("mobility")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_different_seeds_differ(self):
        a = RandomStreams(1).stream("x")
        b = RandomStreams(2).stream("x")
        assert a.random() != b.random()

    def test_stream_cached(self):
        streams = RandomStreams(0)
        assert streams.stream("x") is streams.stream("x")
        assert "x" in streams

    def test_spawn_is_independent(self):
        root = RandomStreams(7)
        child = root.spawn("experiment-1")
        assert child.stream("x").random() != root.stream("x").random()

    def test_derive_seed_stable(self):
        assert derive_seed(1, "a") == derive_seed(1, "a")
        assert derive_seed(1, "a") != derive_seed(1, "b")


class TestTraceLog:
    def test_emit_and_select(self):
        log = TraceLog()
        log.emit(1.0, "host-a", "msg.send", size=100)
        log.emit(2.0, "host-b", "msg.recv", size=100)
        assert len(log) == 2
        assert log.count("msg.send") == 1
        sends = log.select(kind="msg.send")
        assert sends[0].fields["size"] == 100
        assert log.select(source="host-b")[0].kind == "msg.recv"

    def test_where_filter(self):
        log = TraceLog()
        log.emit(1.0, "a", "x", value=1)
        log.emit(2.0, "a", "x", value=2)
        big = log.select(where=lambda r: r.fields["value"] > 1)
        assert len(big) == 1

    def test_bounded_ring(self):
        log = TraceLog(max_records=2)
        for index in range(5):
            log.emit(float(index), "s", "k")
        assert len(log) == 2
        assert log.count("k") == 5  # counts survive eviction

    def test_disabled_still_counts(self):
        log = TraceLog(enabled=False)
        log.emit(0.0, "s", "k")
        assert len(log) == 0
        assert log.count("k") == 1

    def test_disabled_counting_is_optional(self):
        # count_when_disabled=False buys a true zero-cost disabled mode:
        # no records AND no kind counting.
        log = TraceLog(enabled=False, count_when_disabled=False)
        log.emit(0.0, "s", "k")
        assert len(log) == 0
        assert log.count("k") == 0

    def test_count_when_disabled_irrelevant_while_enabled(self):
        log = TraceLog(enabled=True, count_when_disabled=False)
        log.emit(0.0, "s", "k")
        assert len(log) == 1
        assert log.count("k") == 1

    def test_render_contains_fields(self):
        log = TraceLog()
        log.emit(1.5, "host", "event.kind", detail="yes")
        assert "detail=yes" in log.render()

    def test_clear(self):
        log = TraceLog()
        log.emit(0.0, "s", "k")
        log.clear()
        assert len(log) == 0
        assert log.count("k") == 0
