"""Labeled metric families: forwarding, cardinality bounds, decimation."""

import pytest

from repro.sim import MetricsRegistry
from repro.sim.metrics import (
    DEFAULT_LABEL_CAPACITY,
    OVERFLOW_LABEL,
    Histogram,
    labeled_name,
    rollup_by_label,
    split_labeled,
)


class TestLabeledNames:
    def test_labeled_name_sorts_keys(self):
        assert (
            labeled_name("net.bytes", {"node": "a", "link": "wifi"})
            == 'net.bytes{link="wifi",node="a"}'
        )

    def test_split_labeled_round_trip(self):
        name = labeled_name("net.bytes", {"node": "a"})
        base, labels = split_labeled(name)
        assert base == "net.bytes"
        assert labels == {"node": "a"}

    def test_split_labeled_flat_name(self):
        base, labels = split_labeled("net.bytes")
        assert base == "net.bytes"
        assert labels is None

    def test_escaping_round_trips(self):
        ugly = 'no"de\\with\nweird'
        name = labeled_name("m", {"node": ugly})
        _base, labels = split_labeled(name)
        assert labels == {"node": ugly}

    def test_split_labeled_keeps_stat_suffix(self):
        base, labels = split_labeled('host.rtt{node="a"}.p95')
        assert base == "host.rtt.p95"
        assert labels == {"node": "a"}


class TestForwarding:
    def test_counter_child_forwards_to_flat_parent(self):
        registry = MetricsRegistry()
        registry.counter("net.msgs").increment(1)
        registry.counter("net.msgs", labels={"node": "a"}).increment(2)
        registry.counter("net.msgs", labels={"node": "b"}).increment(3)
        assert registry.counter("net.msgs").value == 6
        assert registry.counter("net.msgs", labels={"node": "a"}).value == 2

    def test_histogram_child_forwards_observations(self):
        registry = MetricsRegistry()
        registry.histogram("rtt", labels={"node": "a"}).observe(1.0)
        registry.histogram("rtt", labels={"node": "b"}).observe(3.0)
        parent = registry.histogram("rtt")
        assert parent.count == 2
        assert parent.total == 4.0

    def test_gauge_child_forwards_sets(self):
        registry = MetricsRegistry()
        registry.gauge("load", labels={"node": "a"}).set(5.0)
        assert registry.gauge("load").value == 5.0

    def test_children_appear_in_snapshot_under_labeled_keys(self):
        registry = MetricsRegistry()
        registry.counter("net.msgs", labels={"node": "a"}).increment()
        snapshot = registry.snapshot()
        assert snapshot['net.msgs{node="a"}'] == 1.0
        assert snapshot["net.msgs"] == 1.0  # forwarded flat total

    def test_same_labels_return_same_child(self):
        registry = MetricsRegistry()
        first = registry.counter("c", labels={"node": "a"})
        second = registry.counter("c", labels={"node": "a"})
        assert first is second

    def test_labeled_children_accessor(self):
        registry = MetricsRegistry()
        registry.counter("c", labels={"node": "b"}).increment(2)
        registry.counter("c", labels={"node": "a"}).increment(1)
        children = registry.labeled_children("c")
        assert sorted(children) == ["a", "b"]
        assert children["b"].value == 2

    def test_labeled_children_creates_nothing(self):
        registry = MetricsRegistry()
        assert registry.labeled_children("never.created") == {}
        assert "never.created" not in registry.snapshot()


class TestCardinality:
    def test_overflow_folds_into_other(self):
        registry = MetricsRegistry(label_capacity=2)
        for node in ("a", "b", "c", "d"):
            registry.counter("c", labels={"node": node}).increment()
        children = registry.labeled_children("c")
        assert sorted(children) == sorted(["a", "b", OVERFLOW_LABEL])
        assert children[OVERFLOW_LABEL].value == 2
        assert registry.counter("c").value == 4  # flat total intact

    def test_overflow_counted_once_per_distinct_series(self):
        registry = MetricsRegistry(label_capacity=1)
        registry.counter("c", labels={"node": "a"}).increment()
        for _ in range(3):
            registry.counter("c", labels={"node": "b"}).increment()
        registry.counter("c", labels={"node": "z"}).increment()
        assert registry.counter("obs.labels.overflow").value == 2

    def test_series_counter_tracks_created_children(self):
        registry = MetricsRegistry()
        registry.counter("c", labels={"node": "a"})
        registry.counter("c", labels={"node": "b"})
        registry.histogram("h", labels={"node": "a"})
        assert registry.counter("obs.labels.series").value == 3

    def test_label_cardinality(self):
        registry = MetricsRegistry()
        registry.counter("c", labels={"node": "a"})
        registry.counter("c", labels={"node": "b"})
        assert registry.label_cardinality("c") == 2
        assert registry.label_cardinality("missing") == 0

    def test_default_capacity(self):
        registry = MetricsRegistry()
        for index in range(DEFAULT_LABEL_CAPACITY + 10):
            registry.counter("c", labels={"node": f"n{index}"}).increment()
        children = registry.labeled_children("c")
        assert len(children) == DEFAULT_LABEL_CAPACITY + 1  # + __other__
        assert children[OVERFLOW_LABEL].value == 10


class TestRollup:
    def test_rollup_by_label_groups_per_node(self):
        registry = MetricsRegistry()
        registry.counter("net.msgs", labels={"node": "a"}).increment(2)
        registry.counter("net.msgs", labels={"node": "b"}).increment(5)
        registry.histogram("rtt", labels={"node": "a"}).observe(1.0)
        rollup = rollup_by_label(registry.snapshot())
        assert rollup["a"]["net.msgs"] == 2.0
        assert rollup["b"]["net.msgs"] == 5.0
        assert rollup["a"]["rtt.count"] == 1.0
        assert list(rollup) == sorted(rollup)

    def test_rollup_ignores_flat_metrics(self):
        rollup = rollup_by_label({"flat.metric": 1.0})
        assert rollup == {}


class TestDecimation:
    def test_exact_count_and_sum_survive_decimation(self):
        histogram = Histogram("h", max_samples=8)
        for value in range(100):
            histogram.observe(float(value))
        assert histogram.observed == 100
        assert histogram.count == 100
        assert histogram.total == sum(range(100))
        assert histogram.retained <= 8

    def test_retained_ordinals_are_stride_multiples(self):
        histogram = Histogram("h", max_samples=4)
        for value in range(40):
            histogram.observe(float(value))
        stride = histogram._stride
        assert stride > 1
        # Values equal their ordinal here, so the retained samples
        # must all sit on stride boundaries.
        assert all(int(v) % stride == 0 for v in histogram._samples)

    def test_decimation_is_deterministic(self):
        def run():
            histogram = Histogram("h", max_samples=16)
            for value in range(1000):
                histogram.observe(float(value * 7 % 101))
            return list(histogram._samples), histogram._stride

        assert run() == run()

    def test_quantiles_answer_over_subsample(self):
        histogram = Histogram("h", max_samples=8)
        for value in range(64):
            histogram.observe(float(value))
        assert 0.0 <= histogram.p50 <= 63.0
        assert histogram.mean == pytest.approx(31.5)  # exact despite cap

    def test_samples_since_uses_ordinals_across_decimation(self):
        histogram = Histogram("h", max_samples=8)
        for value in range(20):
            histogram.observe(float(value))
        window = histogram.samples_since(10)
        stride = histogram._stride
        # Only retained ordinals >= 10 qualify; with values == ordinals
        # the window content is directly checkable.
        assert window == [
            float(v) for v in range(0, 20, stride) if v >= 10
        ]
        assert histogram.samples_since(histogram.observed) == []

    def test_uncapped_samples_since_unchanged(self):
        histogram = Histogram("h")
        for value in range(5):
            histogram.observe(float(value))
        assert histogram.samples_since(3) == [3.0, 4.0]

    def test_gauge_cap(self):
        registry = MetricsRegistry(max_samples=8)
        gauge = registry.gauge("g")
        for value in range(100):
            gauge.set(float(value))
        assert gauge.value == 99.0  # latest value always exact
        assert gauge.observed == 100
        assert gauge.retained <= 8
        assert gauge.max <= 99.0

    def test_registry_threads_cap_to_labeled_children(self):
        registry = MetricsRegistry(max_samples=4)
        child = registry.histogram("h", labels={"node": "a"})
        for value in range(50):
            child.observe(float(value))
        assert child.retained <= 4
        assert registry.histogram("h").retained <= 4

    def test_max_samples_validation(self):
        with pytest.raises(ValueError):
            MetricsRegistry(max_samples=1)
        with pytest.raises(ValueError):
            MetricsRegistry(label_capacity=0)
