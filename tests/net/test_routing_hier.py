"""Unit tests for the city-scale routing fabric.

Covers the :class:`HierarchicalRouter` planning ladder (flat delegate,
straight corridor, coarse-cell certificate/corridor, flat fallback),
its dirty-cell path cache, the dirty-repaired :class:`RoutingTable`,
the connectivity monitor's dirty-cell scan skip, and same-seed
determinism with the hierarchical planner driving a live Router.
"""

import pytest

from repro.errors import Unreachable
from repro.net import (
    ConnectivityMonitor,
    HierarchicalRouter,
    Message,
    Network,
    NetworkNode,
    Position,
    Router,
    RoutingTable,
    Transport,
    WIFI_ADHOC,
)
from repro.sim import Environment, MetricsRegistry, RandomStreams


def adhoc_node(env, node_id, x=0.0, y=0.0):
    return NetworkNode(env, node_id, Position(x, y), technologies=[WIFI_ADHOC])


def make_network():
    env = Environment()
    return env, Network(env)


def add_chain(env, network, count, spacing=90.0, prefix="n"):
    return [
        network.add_node(adhoc_node(env, f"{prefix}{i}", spacing * i, 0))
        for i in range(count)
    ]


class TestHierarchicalRouterPlanning:
    def test_small_world_delegates_to_flat(self):
        env, network = make_network()
        add_chain(env, network, 4)
        router = HierarchicalRouter(network)  # default flat_threshold 256
        assert router.path("n0", "n3") == network.shortest_path(
            "n0", "n3", adhoc_only=True
        )
        assert router.stats["flat"] == 1
        assert router.stats["misses"] == 0

    def test_greedy_walk_finds_chain_path(self):
        env, network = make_network()
        add_chain(env, network, 6)
        router = HierarchicalRouter(network, flat_threshold=0)
        path = router.path("n0", "n5")
        assert path == [f"n{i}" for i in range(6)]
        # The cheap gateway walk resolves a straight chain by itself.
        assert router.stats["greedy"] == 1
        assert router.stats["corridor"] == 0
        # Same answer again, now from the path cache.
        assert router.path("n0", "n5") == path
        assert router.stats["hits"] == 1

    def test_greedy_walk_backtracks_out_of_dead_end(self):
        env, network = make_network()
        # A decoy pocket: from s the decoy looks best (closest to t in
        # metres) but only connects back to s.  The guided walk burns
        # the decoy, backtracks, and takes the arc overhead — no
        # corridor BFS needed.
        layout = {
            "s": (0, 0),
            "decoy": (95, 0),
            "a1": (30, 95),
            "a2": (110, 130),
            "a3": (200, 100),
            "a4": (280, 60),
            "t": (290, 20),
        }
        for node_id, (x, y) in layout.items():
            network.add_node(adhoc_node(env, node_id, x, y))
        router = HierarchicalRouter(network, flat_threshold=0)
        path = router.path("s", "t")
        assert path == ["s", "a1", "a2", "a3", "a4", "t"]
        assert router.stats["greedy"] == 1
        assert router.stats["corridor"] == 0

    def test_cell_unreachable_is_exact_negative(self):
        env, network = make_network()
        add_chain(env, network, 3)
        # A second island far away: the cells between are empty, so the
        # coarse layer proves unreachability without any flat BFS.
        add_chain(env, network, 3, prefix="far")
        for i in range(3):
            network.node(f"far{i}").move_to(Position(2000 + 90 * i, 0))
        router = HierarchicalRouter(network, flat_threshold=0)
        assert router.path("n0", "far2") is None
        assert router.stats["cell_unreachable"] == 1
        assert network.shortest_path("n0", "far2", adhoc_only=True) is None

    def test_detour_world_falls_back_to_flat(self):
        env, network = make_network()
        # Source and target sit in adjacent cells but out of range; the
        # only path climbs two cell rows above both corridors, so the
        # planner must fall back to flat BFS — and then return the
        # optimal path (stretch 1 by construction).
        points = {
            "s": (50, 50),
            "a1": (50, 140),
            "a2": (50, 230),
            "a3": (50, 320),
            "top": (105, 320),
            "b3": (160, 320),
            "b2": (160, 230),
            "b1": (160, 140),
            "t": (160, 50),
        }
        for node_id, (x, y) in points.items():
            network.add_node(adhoc_node(env, node_id, x, y))
        router = HierarchicalRouter(network, flat_threshold=0)
        flat = network.shortest_path("s", "t", adhoc_only=True)
        assert flat is not None and len(flat) == 9
        assert router.path("s", "t") == flat
        assert router.stats["flat_fallback"] == 1

    def test_down_endpoints_unroutable(self):
        env, network = make_network()
        nodes = add_chain(env, network, 3)
        router = HierarchicalRouter(network, flat_threshold=0)
        nodes[2].crash()
        assert router.path("n0", "n2") is None
        assert router.path("n2", "n0") is None
        assert router.path("n2", "n2") == ["n2"]

    def test_invalid_stretch_rejected(self):
        env, network = make_network()
        with pytest.raises(ValueError):
            HierarchicalRouter(network, stretch=0)


class TestHierarchicalPathCache:
    def test_unrelated_change_keeps_cached_path(self):
        env, network = make_network()
        add_chain(env, network, 5)
        bystander = network.add_node(adhoc_node(env, "by", 0, 2000))
        router = HierarchicalRouter(network, flat_threshold=0)
        path = router.path("n0", "n4")
        assert path is not None
        bystander.move_to(Position(500, 2000))  # cross-cell, far away
        assert router.path("n0", "n4") == path
        assert router.stats["hits"] == 1
        assert router.stats["misses"] == 1

    def test_change_on_path_replans(self):
        env, network = make_network()
        nodes = add_chain(env, network, 5)
        router = HierarchicalRouter(network, flat_threshold=0)
        assert router.path("n0", "n4") == [f"n{i}" for i in range(5)]
        nodes[2].crash()
        assert router.path("n0", "n4") is None
        assert network.shortest_path("n0", "n4", adhoc_only=True) is None
        nodes[2].restart()
        assert router.path("n0", "n4") == [f"n{i}" for i in range(5)]

    def test_negative_flushed_when_link_appears(self):
        env, network = make_network()
        add_chain(env, network, 2, spacing=180.0)  # out of range
        router = HierarchicalRouter(network, flat_threshold=0)
        assert router.path("n0", "n1") is None
        bridge = network.add_node(adhoc_node(env, "mid", 90, 0))
        assert router.path("n0", "n1") == ["n0", "mid", "n1"]
        assert bridge is network.node("mid")


class TestRoutingTableRepair:
    def test_far_component_change_keeps_tree(self):
        env, network = make_network()
        add_chain(env, network, 3)
        far = [
            network.add_node(adhoc_node(env, f"far{i}", 5000 + 90 * i, 0))
            for i in range(2)
        ]
        table = RoutingTable(network)
        assert table.path("n0", "n2") == ["n0", "n1", "n2"]
        far[1].move_to(Position(5500, 0))  # epoch bumps, other component
        assert table.path("n0", "n2") == ["n0", "n1", "n2"]
        assert table.stats == {"hits": 1, "misses": 1, "repairs": 0, "flushes": 0}

    def test_member_change_repairs_tree(self):
        env, network = make_network()
        nodes = add_chain(env, network, 4)
        table = RoutingTable(network)
        assert table.path("n0", "n3") == ["n0", "n1", "n2", "n3"]
        nodes[1].crash()
        assert table.path("n0", "n3") is None
        assert table.stats["repairs"] == 1
        assert table.stats["misses"] == 2

    def test_node_joining_component_repairs_tree(self):
        env, network = make_network()
        add_chain(env, network, 2, spacing=150.0)  # n0 .. n1 unreachable
        joiner = network.add_node(adhoc_node(env, "j", 0, 2000))
        table = RoutingTable(network)
        assert table.path("n0", "n1") is None
        joiner.move_to(Position(75, 0))  # bridges the gap
        assert table.path("n0", "n1") == ["n0", "j", "n1"]
        assert table.stats["repairs"] >= 1

    def test_global_change_flushes(self):
        env, network = make_network()
        add_chain(env, network, 3)
        table = RoutingTable(network)
        table.path("n0", "n2")
        network.set_link_filter(lambda a, b: True)
        table.path("n0", "n2")
        assert table.stats["flushes"] == 1

    def test_repair_off_flushes_on_any_bump(self):
        env, network = make_network()
        add_chain(env, network, 3)
        far = network.add_node(adhoc_node(env, "far", 5000, 0))
        table = RoutingTable(network, repair=False)
        table.path("n0", "n2")
        far.move_to(Position(5500, 0))
        table.path("n0", "n2")
        assert table.stats["misses"] == 2
        assert table.stats["flushes"] == 1

    def test_metrics_published(self):
        env, network = make_network()
        nodes = add_chain(env, network, 3)
        metrics = MetricsRegistry()
        table = RoutingTable(network, metrics=metrics)
        table.path("n0", "n2")
        table.path("n0", "n1")
        nodes[1].crash()
        table.path("n0", "n2")
        snapshot = metrics.snapshot()
        assert snapshot["routing.tree_misses"] == 2.0
        assert snapshot["routing.tree_hits"] == 1.0
        assert snapshot["routing.repairs"] == 1.0


class TestAdjacencyDownNodes:
    def test_adjacency_emits_only_up_nodes(self):
        env, network = make_network()
        nodes = add_chain(env, network, 4)
        nodes[1].crash()
        nodes[3].crash()
        graph = network.adjacency()
        assert set(graph) == {"n0", "n2"}
        assert graph["n0"] == frozenset()
        from repro.net import reference as ref

        naive = ref.naive_adjacency(network)
        assert set(naive) == {"n0", "n2"}
        assert {k: set(v) for k, v in graph.items()} == naive

    def test_backbone_clique_is_implicit(self):
        env, network = make_network()
        from repro.net import LAN

        for i in range(6):
            network.add_node(
                NetworkNode(
                    env,
                    f"srv{i}",
                    Position(200.0 * i, 0),
                    technologies=[LAN],
                    fixed=True,
                )
            )
        view = network.adjacency()
        assert view.backbone == frozenset(f"srv{i}" for i in range(6))
        assert view.edge_count() == 0  # no materialised clique edges
        # ...but membership queries still see the full clique.
        assert view["srv0"] == frozenset(f"srv{i}" for i in range(1, 6))
        assert network.shortest_path("srv0", "srv5") == ["srv0", "srv5"]


class TestMoveElision:
    def test_in_cell_jitter_elides_epoch(self):
        env, network = make_network()
        a = network.add_node(adhoc_node(env, "a", 10, 10))
        network.add_node(adhoc_node(env, "b", 60, 10))
        neighbors = network.neighbors(a)
        epoch = network.topology_epoch
        a.move_to(Position(20, 10))  # same cell, b still in range
        assert network.topology_epoch == epoch
        assert network.cache_stats["moves_elided"] == 1
        assert network.neighbors(a) is neighbors  # caches untouched
        # The grid still tracked the move.
        assert network.grid.position_of("a") == Position(20, 10)

    def test_range_crossing_move_still_bumps(self):
        env, network = make_network()
        a = network.add_node(adhoc_node(env, "a", 0, 0))
        network.add_node(adhoc_node(env, "b", 99, 0))
        assert [n.id for n in network.neighbors(a)] == ["b"]
        epoch = network.topology_epoch
        # Same cell as before (0,0) but b falls out of range.
        a.move_to(Position(0, 50))
        assert network.topology_epoch > epoch
        assert network.neighbors(a) == ()

    def test_cell_crossing_move_bumps(self):
        env, network = make_network()
        a = network.add_node(adhoc_node(env, "a", 90, 0))
        epoch = network.topology_epoch
        a.move_to(Position(110, 0))
        assert network.topology_epoch > epoch


class TestMonitorDirtySkip:
    def test_far_change_skips_rescan(self):
        env, network = make_network()
        a = network.add_node(adhoc_node(env, "a", 0, 0))
        network.add_node(adhoc_node(env, "b", 50, 0))
        far = network.add_node(adhoc_node(env, "far", 5000, 0))
        metrics = MetricsRegistry()
        monitor = ConnectivityMonitor(env, network, a, metrics=metrics)
        assert monitor.scan_now() == {"b"}
        far.move_to(Position(5200, 0))  # bumps the epoch, far away
        assert monitor.scan_now() == {"b"}
        assert metrics.snapshot()["monitor.scans_elided"] == 1.0

    def test_near_change_still_rescans(self):
        env, network = make_network()
        a = network.add_node(adhoc_node(env, "a", 0, 0))
        b = network.add_node(adhoc_node(env, "b", 50, 0))
        monitor = ConnectivityMonitor(env, network, a)
        assert monitor.scan_now() == {"b"}
        b.move_to(Position(500, 0))
        assert monitor.scan_now() == set()
        b.move_to(Position(80, 0))
        assert monitor.scan_now() == {"b"}


class TestHierarchicalDeterminism:
    @staticmethod
    def _run_world(seed):
        """A mobile world routed by the hierarchical planner; returns a
        trace of every delivery (time, hops, path lengths)."""
        from repro.net import Area, RandomWaypoint

        env = Environment()
        network = Network(env)
        streams = RandomStreams(seed)
        transport = Transport(env, network, streams)
        nodes = [
            network.add_node(
                adhoc_node(env, f"n{i}", 40.0 * (i % 6), 40.0 * (i // 6))
            )
            for i in range(24)
        ]
        RandomWaypoint(
            env, nodes, Area(220, 220), streams, speed_range=(1.0, 5.0)
        )
        planner = HierarchicalRouter(network, flat_threshold=0)
        router = Router(env, network, transport, table=planner)
        trace = []

        def traffic(env):
            for round_index in range(5):
                yield env.timeout(7.0)
                message = Message(
                    f"n{round_index}", f"n{23 - round_index}", "ping",
                    size_bytes=120,
                )
                try:
                    hops = yield router.send_multihop(message)
                    trace.append((env.now, hops))
                except Unreachable:
                    trace.append((env.now, None))

        env.process(traffic(env))
        env.run(until=60.0)
        trace.append(tuple(sorted(planner.stats.items())))
        return trace

    def test_same_seed_same_deliveries(self):
        assert self._run_world(11) == self._run_world(11)
