"""Unit tests for radio-infrastructure (hotspot) coverage."""

import pytest

from repro.net import (
    LAN,
    Network,
    NetworkNode,
    Position,
    WIFI_INFRA,
)
from repro.sim import Environment


def build():
    env = Environment()
    network = Network(env)
    laptop = network.add_node(
        NetworkNode(env, "laptop", Position(0, 0), technologies=[WIFI_INFRA])
    )
    access_point = network.add_node(
        NetworkNode(
            env, "ap", Position(50, 0), technologies=[WIFI_INFRA, LAN],
            fixed=True,
        )
    )
    server = network.add_node(
        NetworkNode(env, "server", Position(0, 0), technologies=[LAN], fixed=True)
    )
    laptop.interface("802.11b-infra").attach()
    return env, network, laptop, access_point, server


class TestHotspotCoverage:
    def test_in_range_of_ap_reaches_backbone(self):
        env, network, laptop, ap, server = build()
        link = network.best_link(laptop, server)
        assert link is not None
        assert link.via_backbone
        assert link.sender_technology is WIFI_INFRA

    def test_out_of_ap_range_loses_backbone(self):
        env, network, laptop, ap, server = build()
        laptop.move_to(Position(500, 0))
        assert network.best_link(laptop, server) is None

    def test_ap_crash_loses_coverage(self):
        env, network, laptop, ap, server = build()
        ap.crash()
        assert network.best_link(laptop, server) is None
        ap.restart()
        assert network.best_link(laptop, server) is not None

    def test_ap_disabled_radio_loses_coverage(self):
        env, network, laptop, ap, server = build()
        ap.interface("802.11b-infra").disable()
        assert network.best_link(laptop, server) is None

    def test_mobile_peer_is_not_a_base_station(self):
        env, network, laptop, ap, server = build()
        other = network.add_node(
            NetworkNode(
                env, "other", Position(0, 1), technologies=[WIFI_INFRA]
            )
        )
        other.interface("802.11b-infra").attach()
        laptop.move_to(Position(500, 0))
        other.move_to(Position(500, 1))
        # Two mobile hotspot clients next to each other, far from the AP:
        # neither has coverage.
        assert network.best_link(laptop, other) is None

    def test_wired_and_cellular_unaffected_by_position(self):
        env, network, laptop, ap, server = build()
        far_server = network.add_node(
            NetworkNode(
                env, "far", Position(99999, 0), technologies=[LAN], fixed=True
            )
        )
        assert network.best_link(server, far_server) is not None

    def test_fixed_node_is_its_own_base_station(self):
        env, network, laptop, ap, server = build()
        kiosk = network.add_node(
            NetworkNode(
                env,
                "kiosk",
                Position(9000, 0),
                technologies=[WIFI_INFRA],
                fixed=True,
            )
        )
        assert network.best_link(kiosk, server) is not None
