"""Unit tests for mobility models, connectivity monitoring, and routing."""

import pytest

from repro.errors import Unreachable
from repro.net import (
    Area,
    ConnectivityMonitor,
    Message,
    Network,
    NetworkNode,
    PathMobility,
    Position,
    RandomWaypoint,
    Router,
    Transport,
    WIFI_ADHOC,
    grid_positions,
)
from repro.sim import Environment, RandomStreams


def adhoc_node(env, node_id, x=0.0, y=0.0):
    return NetworkNode(env, node_id, Position(x, y), technologies=[WIFI_ADHOC])


class TestRandomWaypoint:
    def test_nodes_stay_in_area(self):
        env = Environment()
        area = Area(100, 100)
        streams = RandomStreams(3)
        nodes = [adhoc_node(env, f"n{i}", 50, 50) for i in range(5)]
        RandomWaypoint(env, nodes, area, streams, speed_range=(1.0, 5.0))
        env.run(until=200.0)
        for node in nodes:
            assert area.contains(node.position)

    def test_nodes_actually_move(self):
        env = Environment()
        area = Area(100, 100)
        nodes = [adhoc_node(env, "n0", 50, 50)]
        RandomWaypoint(env, nodes, area, RandomStreams(3), pause_range=(0, 0))
        env.run(until=30.0)
        assert nodes[0].position != Position(50, 50)

    def test_same_seed_same_trajectory(self):
        def trajectory(seed):
            env = Environment()
            node = adhoc_node(env, "n0", 50, 50)
            RandomWaypoint(
                env, [node], Area(100, 100), RandomStreams(seed), pause_range=(0, 0)
            )
            env.run(until=50.0)
            return node.position

        assert trajectory(9) == trajectory(9)
        assert trajectory(9) != trajectory(10)

    def test_invalid_parameters(self):
        env = Environment()
        with pytest.raises(ValueError):
            RandomWaypoint(
                env, [], Area(10, 10), RandomStreams(0), speed_range=(0.0, 1.0)
            )
        with pytest.raises(ValueError):
            RandomWaypoint(env, [], Area(10, 10), RandomStreams(0), tick=0.0)


class TestPathMobility:
    def test_reaches_waypoints_on_time(self):
        env = Environment()
        node = adhoc_node(env, "walker", 0, 0)
        PathMobility(
            env,
            {"walker": node},
            {"walker": [(10.0, Position(100, 0)), (20.0, Position(100, 100))]},
        )
        env.run(until=10.5)
        assert node.position.distance_to(Position(100, 0)) < 1e-6
        env.run(until=20.5)
        assert node.position.distance_to(Position(100, 100)) < 1e-6


class TestGridPositions:
    def test_count_and_containment(self):
        area = Area(100, 100)
        positions = grid_positions(10, area)
        assert len(positions) == 10
        assert all(area.contains(p) for p in positions)

    def test_zero_count(self):
        assert grid_positions(0, Area(10, 10)) == []

    def test_positions_distinct(self):
        positions = grid_positions(9, Area(90, 90))
        assert len(set(positions)) == 9


class TestConnectivityMonitor:
    def test_detects_appearance_and_disappearance(self):
        env = Environment()
        network = Network(env)
        a = network.add_node(adhoc_node(env, "a", 0, 0))
        b = network.add_node(adhoc_node(env, "b", 500, 0))
        monitor = ConnectivityMonitor(env, network, a, interval=1.0)
        events = []
        monitor.subscribe(lambda peer, up: events.append((peer, up)))

        def mover(env):
            yield env.timeout(5.0)
            b.move_to(Position(50, 0))
            yield env.timeout(5.0)
            b.move_to(Position(500, 0))

        env.process(mover(env))
        env.run(until=15.0)
        assert ("b", True) in events
        assert ("b", False) in events

    def test_scan_now_returns_current_set(self):
        env = Environment()
        network = Network(env)
        a = network.add_node(adhoc_node(env, "a", 0, 0))
        network.add_node(adhoc_node(env, "b", 10, 0))
        monitor = ConnectivityMonitor(env, network, a)
        assert monitor.scan_now() == {"b"}

    def test_unsubscribe_stops_callbacks(self):
        env = Environment()
        network = Network(env)
        a = network.add_node(adhoc_node(env, "a", 0, 0))
        network.add_node(adhoc_node(env, "b", 10, 0))
        monitor = ConnectivityMonitor(env, network, a)
        events = []
        listener = lambda peer, up: events.append(peer)
        monitor.subscribe(listener)
        monitor.unsubscribe(listener)
        monitor.scan_now()
        assert events == []

    def test_invalid_interval(self):
        env = Environment()
        network = Network(env)
        a = network.add_node(adhoc_node(env, "a"))
        with pytest.raises(ValueError):
            ConnectivityMonitor(env, network, a, interval=0.0)


class TestRouter:
    def build_chain(self, spacing=90.0, count=4):
        env = Environment()
        network = Network(env)
        streams = RandomStreams(5)
        transport = Transport(env, network, streams)
        transport._rng.random = lambda: 0.99  # deterministic: no loss
        nodes = [
            network.add_node(adhoc_node(env, f"n{i}", spacing * i, 0))
            for i in range(count)
        ]
        router = Router(env, network, transport)
        return env, network, router, nodes

    def test_multihop_delivery(self):
        env, network, router, nodes = self.build_chain()
        message = Message("n0", "n3", "hello", size_bytes=200)

        def run(env):
            hops = yield router.send_multihop(message)
            received = yield nodes[3].inbox.get()
            return hops, received

        process = env.process(run(env))
        hops, received = env.run(until=process)
        assert hops == 3
        assert received.kind == "hello"
        assert received.source == "n0"
        assert received.via == "multihop"

    def test_intermediate_inboxes_left_clean(self):
        env, network, router, nodes = self.build_chain()
        message = Message("n0", "n3", "hello")

        def run(env):
            yield router.send_multihop(message)

        env.process(run(env))
        env.run()
        for node in nodes[1:3]:
            assert node.inbox.try_get() is None

    def test_partition_raises_unreachable(self):
        env, network, router, nodes = self.build_chain(spacing=300.0)

        def run(env):
            yield router.send_multihop(Message("n0", "n3", "hello"))

        env.process(run(env))
        with pytest.raises(Unreachable):
            env.run()

    def test_single_hop_to_neighbor(self):
        env, network, router, nodes = self.build_chain(count=2)

        def run(env):
            hops = yield router.send_multihop(Message("n0", "n1", "hi"))
            return hops

        process = env.process(run(env))
        assert env.run(until=process) == 1
