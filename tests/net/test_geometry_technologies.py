"""Unit tests for geometry and link technology profiles."""

import random

import pytest

from repro.net import (
    Area,
    BLUETOOTH,
    DIALUP,
    GPRS,
    LAN,
    Position,
    TECHNOLOGIES,
    WIFI_ADHOC,
    technology,
)


class TestPosition:
    def test_distance(self):
        assert Position(0, 0).distance_to(Position(3, 4)) == 5.0

    def test_towards_moves_step(self):
        moved = Position(0, 0).towards(Position(10, 0), 4.0)
        assert moved == Position(4.0, 0.0)

    def test_towards_does_not_overshoot(self):
        target = Position(1, 0)
        assert Position(0, 0).towards(target, 100.0) == target

    def test_towards_zero_distance(self):
        here = Position(5, 5)
        assert here.towards(here, 1.0) == here


class TestArea:
    def test_contains(self):
        area = Area(100, 50)
        assert area.contains(Position(50, 25))
        assert not area.contains(Position(101, 25))
        assert not area.contains(Position(50, -1))

    def test_random_position_inside(self):
        area = Area(30, 40)
        rng = random.Random(1)
        for _ in range(100):
            assert area.contains(area.random_position(rng))

    def test_clamp(self):
        area = Area(10, 10)
        assert area.clamp(Position(-5, 20)) == Position(0, 10)


class TestTechnologies:
    def test_transfer_time(self):
        # 9600 bps -> 1200 bytes/s
        assert DIALUP.transfer_time(1200) == pytest.approx(1.0)

    def test_transfer_cost_gprs(self):
        assert GPRS.transfer_cost(1_000_000) == pytest.approx(6.0)

    def test_free_technologies_cost_nothing(self):
        for tech in (WIFI_ADHOC, BLUETOOTH, LAN):
            assert tech.transfer_cost(10_000_000) == 0.0

    def test_adhoc_flag(self):
        assert WIFI_ADHOC.is_adhoc
        assert BLUETOOTH.is_adhoc
        assert not GPRS.is_adhoc
        assert not LAN.is_adhoc

    def test_lookup_by_name(self):
        assert technology("gprs") is GPRS
        with pytest.raises(KeyError):
            technology("carrier-pigeon")

    def test_registry_complete(self):
        assert {"802.11b-adhoc", "bluetooth", "gprs", "gsm-dialup", "lan"} <= set(
            TECHNOLOGIES
        )

    def test_dialup_has_slow_setup(self):
        assert DIALUP.setup_s >= 10.0


class TestSpatialGrid:
    def _grid(self, cell=100.0):
        from repro.net import SpatialGrid

        return SpatialGrid(cell_size=cell)

    def test_insert_and_range_query(self):
        grid = self._grid()
        grid.insert("a", Position(0, 0))
        grid.insert("b", Position(50, 0))
        grid.insert("c", Position(500, 0))
        assert sorted(grid.near(Position(0, 0), 100.0)) == ["a", "b"]
        assert sorted(grid.near(Position(0, 0), 1000.0)) == ["a", "b", "c"]

    def test_query_radius_is_exact_not_cell_granular(self):
        grid = self._grid(cell=100.0)
        grid.insert("edge", Position(100.0, 0))
        grid.insert("outside", Position(100.1, 0))
        assert grid.near(Position(0, 0), 100.0) == ["edge"]

    def test_move_rebuckets(self):
        grid = self._grid()
        grid.insert("a", Position(0, 0))
        grid.move("a", Position(950, 950))
        assert grid.near(Position(0, 0), 200.0) == []
        assert grid.near(Position(1000, 1000), 200.0) == ["a"]

    def test_remove(self):
        grid = self._grid()
        grid.insert("a", Position(10, 10))
        assert "a" in grid and len(grid) == 1
        grid.remove("a")
        assert "a" not in grid and len(grid) == 0
        assert grid.near(Position(10, 10), 50.0) == []
        grid.remove("a")  # idempotent

    def test_rebuild_preserves_items(self):
        grid = self._grid(cell=10.0)
        for index in range(20):
            grid.insert(f"n{index}", Position(index * 7.0, index * 3.0))
        grid.rebuild(150.0)
        assert grid.cell_size == 150.0
        assert len(grid) == 20
        assert sorted(grid.near(Position(0, 0), 10_000.0)) == sorted(
            f"n{index}" for index in range(20)
        )

    def test_negative_coordinates(self):
        grid = self._grid()
        grid.insert("neg", Position(-250.0, -50.0))
        assert grid.near(Position(-200, 0), 100.0) == ["neg"]

    def test_invalid_cell_size(self):
        with pytest.raises(ValueError):
            self._grid(cell=0.0)
