"""Unit tests for geometry and link technology profiles."""

import random

import pytest

from repro.net import (
    Area,
    BLUETOOTH,
    DIALUP,
    GPRS,
    LAN,
    Position,
    TECHNOLOGIES,
    WIFI_ADHOC,
    technology,
)


class TestPosition:
    def test_distance(self):
        assert Position(0, 0).distance_to(Position(3, 4)) == 5.0

    def test_towards_moves_step(self):
        moved = Position(0, 0).towards(Position(10, 0), 4.0)
        assert moved == Position(4.0, 0.0)

    def test_towards_does_not_overshoot(self):
        target = Position(1, 0)
        assert Position(0, 0).towards(target, 100.0) == target

    def test_towards_zero_distance(self):
        here = Position(5, 5)
        assert here.towards(here, 1.0) == here


class TestArea:
    def test_contains(self):
        area = Area(100, 50)
        assert area.contains(Position(50, 25))
        assert not area.contains(Position(101, 25))
        assert not area.contains(Position(50, -1))

    def test_random_position_inside(self):
        area = Area(30, 40)
        rng = random.Random(1)
        for _ in range(100):
            assert area.contains(area.random_position(rng))

    def test_clamp(self):
        area = Area(10, 10)
        assert area.clamp(Position(-5, 20)) == Position(0, 10)


class TestTechnologies:
    def test_transfer_time(self):
        # 9600 bps -> 1200 bytes/s
        assert DIALUP.transfer_time(1200) == pytest.approx(1.0)

    def test_transfer_cost_gprs(self):
        assert GPRS.transfer_cost(1_000_000) == pytest.approx(6.0)

    def test_free_technologies_cost_nothing(self):
        for tech in (WIFI_ADHOC, BLUETOOTH, LAN):
            assert tech.transfer_cost(10_000_000) == 0.0

    def test_adhoc_flag(self):
        assert WIFI_ADHOC.is_adhoc
        assert BLUETOOTH.is_adhoc
        assert not GPRS.is_adhoc
        assert not LAN.is_adhoc

    def test_lookup_by_name(self):
        assert technology("gprs") is GPRS
        with pytest.raises(KeyError):
            technology("carrier-pigeon")

    def test_registry_complete(self):
        assert {"802.11b-adhoc", "bluetooth", "gprs", "gsm-dialup", "lan"} <= set(
            TECHNOLOGIES
        )

    def test_dialup_has_slow_setup(self):
        assert DIALUP.setup_s >= 10.0
