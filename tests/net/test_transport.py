"""Unit tests for the transport: timing, loss, cost, reliability, broadcast."""

import pytest

from repro.errors import MessageTooLarge, TransportTimeout, Unreachable
from repro.net import (
    GPRS,
    HEADER_BYTES,
    LAN,
    Message,
    Network,
    NetworkNode,
    Position,
    Transport,
    WIFI_ADHOC,
)
from repro.sim import Environment, RandomStreams


def build(loss_free=True):
    env = Environment()
    network = Network(env)
    streams = RandomStreams(7)
    transport = Transport(env, network, streams)
    return env, network, transport


def add_pair(env, network, distance=10.0):
    a = network.add_node(
        NetworkNode(env, "a", Position(0, 0), technologies=[WIFI_ADHOC])
    )
    b = network.add_node(
        NetworkNode(env, "b", Position(distance, 0), technologies=[WIFI_ADHOC])
    )
    return a, b


class TestSend:
    def test_delivery_time_matches_model(self):
        env, network, transport = build()
        a, b = add_pair(env, network)
        message = Message("a", "b", "test", payload="hi", size_bytes=10_000)

        def run(env):
            delivered = yield transport.send(message)
            return delivered, env.now

        process = env.process(run(env))
        delivered, finished = env.run(until=process)
        assert delivered is True
        wire = 10_000 + HEADER_BYTES
        expected = wire * 8 / WIFI_ADHOC.bandwidth_bps + WIFI_ADHOC.latency_s
        assert finished == pytest.approx(expected)

    def test_message_lands_in_inbox(self):
        env, network, transport = build()
        a, b = add_pair(env, network)
        message = Message("a", "b", "ping")

        def run(env):
            yield transport.send(message)
            received = yield b.inbox.get()
            return received

        process = env.process(run(env))
        received = env.run(until=process)
        assert received.kind == "ping"
        assert received.via == "802.11b-adhoc"

    def test_unreachable_raises(self):
        env, network, transport = build()
        add_pair(env, network, distance=500.0)
        message = Message("a", "b", "ping")

        def run(env):
            yield transport.send(message)

        env.process(run(env))
        with pytest.raises(Unreachable):
            env.run()

    def test_costs_accounted_both_ends(self):
        env, network, transport = build()
        phone = network.add_node(
            NetworkNode(env, "a", Position(0, 0), technologies=[GPRS])
        )
        srv = network.add_node(
            NetworkNode(env, "b", Position(0, 0), technologies=[LAN], fixed=True)
        )
        phone.interface("gprs").attach()
        message = Message("a", "b", "upload", size_bytes=1_000_000 - HEADER_BYTES)

        def run(env):
            yield transport.send(message)

        env.process(run(env))
        env.run()
        assert phone.costs.bytes_sent["gprs"] == 1_000_000
        assert srv.costs.bytes_received["lan"] == 1_000_000
        assert phone.costs.money == pytest.approx(GPRS.cost_per_mb)
        assert srv.costs.money == 0.0

    def test_oversized_message_rejected(self):
        env, network, transport = build()
        add_pair(env, network)
        huge = Message("a", "b", "blob", size_bytes=WIFI_ADHOC.max_payload + 1)

        def run(env):
            yield transport.send(huge)

        env.process(run(env))
        with pytest.raises(MessageTooLarge):
            env.run()

    def test_crash_mid_transfer_drops(self):
        env, network, transport = build()
        a, b = add_pair(env, network)
        message = Message("a", "b", "big", size_bytes=1_000_000)

        def run(env):
            delivered = yield transport.send(message)
            return delivered

        def killer(env):
            yield env.timeout(0.5)
            b.crash()

        process = env.process(run(env))
        env.process(killer(env))
        assert env.run(until=process) is False

    def test_move_out_of_range_mid_transfer_drops(self):
        env, network, transport = build()
        a, b = add_pair(env, network)
        message = Message("a", "b", "big", size_bytes=1_000_000)

        def run(env):
            delivered = yield transport.send(message)
            return delivered

        def mover(env):
            yield env.timeout(0.5)
            b.move_to(Position(1000, 0))

        process = env.process(run(env))
        env.process(mover(env))
        assert env.run(until=process) is False

    def test_radio_serialises_concurrent_sends(self):
        env, network, transport = build()
        a, b = add_pair(env, network)
        # two 5e5-byte messages at 5 Mbps = 0.8s each transmission
        times = []

        def run(env, message):
            yield transport.send(message)
            times.append(env.now)

        env.process(run(env, Message("a", "b", "m1", size_bytes=500_000)))
        env.process(run(env, Message("a", "b", "m2", size_bytes=500_000)))
        env.run()
        assert len(times) == 2
        # Second message cannot finish at the same instant: channel was held.
        assert times[1] > times[0]
        assert times[1] - times[0] == pytest.approx(
            (500_000 + HEADER_BYTES) * 8 / WIFI_ADHOC.bandwidth_bps, rel=0.01
        )


class TestReliableSend:
    def test_succeeds_first_attempt_on_clean_link(self):
        env, network, transport = build()
        transport._rng.random = lambda: 0.99  # never lose
        add_pair(env, network)
        message = Message("a", "b", "data", size_bytes=100)

        def run(env):
            attempts = yield transport.send_reliable(message)
            return attempts

        process = env.process(run(env))
        assert env.run(until=process) == 1

    def test_retries_on_loss_then_succeeds(self):
        env, network, transport = build()
        draws = iter([0.0, 0.0, 0.99])  # lose, lose, deliver
        transport._rng.random = lambda: next(draws)
        a, b = add_pair(env, network)
        message = Message("a", "b", "data", size_bytes=100)

        def run(env):
            attempts = yield transport.send_reliable(message)
            return attempts

        process = env.process(run(env))
        assert env.run(until=process) == 3
        assert transport.metrics.counter("net.retransmissions").value == 2

    def test_exhausted_attempts_raise_timeout(self):
        env, network, transport = build()
        transport._rng.random = lambda: 0.0  # always lose
        add_pair(env, network)
        message = Message("a", "b", "data", size_bytes=100)

        def run(env):
            yield transport.send_reliable(message, max_attempts=2)

        env.process(run(env))
        with pytest.raises(TransportTimeout):
            env.run()

    def test_unreachable_from_start(self):
        env, network, transport = build()
        add_pair(env, network, distance=1000.0)

        def run(env):
            yield transport.send_reliable(Message("a", "b", "x"))

        env.process(run(env))
        with pytest.raises(Unreachable):
            env.run()

    def test_invalid_attempts(self):
        env, network, transport = build()
        add_pair(env, network)
        with pytest.raises(ValueError):
            transport.send_reliable(Message("a", "b", "x"), max_attempts=0)


class TestBroadcast:
    def test_all_in_range_neighbors_hear(self):
        env, network, transport = build()
        transport._rng.random = lambda: 0.99  # no loss
        a = network.add_node(
            NetworkNode(env, "a", Position(0, 0), technologies=[WIFI_ADHOC])
        )
        network.add_node(
            NetworkNode(env, "b", Position(50, 0), technologies=[WIFI_ADHOC])
        )
        network.add_node(
            NetworkNode(env, "c", Position(0, 50), technologies=[WIFI_ADHOC])
        )
        network.add_node(
            NetworkNode(env, "far", Position(500, 0), technologies=[WIFI_ADHOC])
        )

        def run(env):
            heard = yield transport.broadcast(a, "hello", size_bytes=100)
            return sorted(heard)

        process = env.process(run(env))
        assert env.run(until=process) == ["b", "c"]

    def test_broadcast_with_no_neighbors(self):
        env, network, transport = build()
        a = network.add_node(
            NetworkNode(env, "a", Position(0, 0), technologies=[WIFI_ADHOC])
        )

        def run(env):
            heard = yield transport.broadcast(a, "hello")
            return heard

        process = env.process(run(env))
        assert env.run(until=process) == []
        # The transmission itself still cost airtime bytes.
        assert a.costs.total_bytes_sent > 0
