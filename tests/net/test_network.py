"""Unit tests for nodes, interfaces, and connectivity computation."""

import pytest

from repro.errors import NetworkError
from repro.net import (
    BLUETOOTH,
    DIALUP,
    GPRS,
    LAN,
    Network,
    NetworkNode,
    Position,
    WIFI_ADHOC,
    prefer_fast,
)
from repro.sim import Environment


def make_network():
    env = Environment()
    network = Network(env)
    return env, network


def mobile(env, node_id, x=0.0, y=0.0, techs=(WIFI_ADHOC,)):
    return NetworkNode(env, node_id, Position(x, y), technologies=techs)


def server(env, node_id):
    return NetworkNode(
        env, node_id, Position(0, 0), technologies=[LAN], fixed=True
    )


class TestNodeBasics:
    def test_duplicate_node_rejected(self):
        env, network = make_network()
        network.add_node(mobile(env, "a"))
        with pytest.raises(NetworkError):
            network.add_node(mobile(env, "a"))

    def test_duplicate_interface_rejected(self):
        env, _ = make_network()
        node = mobile(env, "a")
        with pytest.raises(NetworkError):
            node.add_interface(WIFI_ADHOC)

    def test_unknown_node_lookup(self):
        _, network = make_network()
        with pytest.raises(NetworkError):
            network.node("ghost")

    def test_crash_clears_inbox_and_restart(self):
        env, _ = make_network()
        node = mobile(env, "a")

        def fill(env):
            yield node.inbox.put("x")

        env.process(fill(env))
        env.run()
        node.crash()
        assert not node.up
        assert node.inbox.try_get() is None
        node.restart()
        assert node.up


class TestAdhocConnectivity:
    def test_in_range_connects(self):
        env, network = make_network()
        a = network.add_node(mobile(env, "a", 0, 0))
        b = network.add_node(mobile(env, "b", 50, 0))
        link = network.best_link(a, b)
        assert link is not None
        assert link.sender_technology is WIFI_ADHOC
        assert not link.via_backbone

    def test_out_of_range_disconnects(self):
        env, network = make_network()
        a = network.add_node(mobile(env, "a", 0, 0))
        b = network.add_node(mobile(env, "b", 150, 0))
        assert network.best_link(a, b) is None

    def test_bluetooth_shorter_range(self):
        env, network = make_network()
        a = network.add_node(mobile(env, "a", 0, 0, techs=[BLUETOOTH]))
        b = network.add_node(mobile(env, "b", 15, 0, techs=[BLUETOOTH]))
        assert network.best_link(a, b) is None
        b.move_to(Position(5, 0))
        assert network.best_link(a, b) is not None

    def test_down_node_unreachable(self):
        env, network = make_network()
        a = network.add_node(mobile(env, "a", 0, 0))
        b = network.add_node(mobile(env, "b", 10, 0))
        b.crash()
        assert network.best_link(a, b) is None

    def test_disabled_interface_unusable(self):
        env, network = make_network()
        a = network.add_node(mobile(env, "a", 0, 0))
        b = network.add_node(mobile(env, "b", 10, 0))
        a.interface("802.11b-adhoc").disable()
        assert network.best_link(a, b) is None
        a.interface("802.11b-adhoc").enable()
        assert network.best_link(a, b) is not None

    def test_self_link_rejected(self):
        env, network = make_network()
        a = network.add_node(mobile(env, "a"))
        with pytest.raises(NetworkError):
            network.links_between(a, a)


class TestBackboneConnectivity:
    def test_gprs_reaches_lan_server(self):
        env, network = make_network()
        phone = network.add_node(mobile(env, "phone", 0, 0, techs=[GPRS]))
        srv = network.add_node(server(env, "srv"))
        phone.interface("gprs").attach()
        link = network.best_link(phone, srv)
        assert link is not None
        assert link.via_backbone
        assert link.bandwidth_bps == GPRS.bandwidth_bps  # min of the two
        assert link.latency_s > GPRS.latency_s  # backbone adds latency

    def test_unattached_infrastructure_is_unreachable(self):
        env, network = make_network()
        phone = network.add_node(mobile(env, "phone", 0, 0, techs=[GPRS]))
        srv = network.add_node(server(env, "srv"))
        assert network.best_link(phone, srv) is None

    def test_detach_disconnects(self):
        env, network = make_network()
        phone = network.add_node(mobile(env, "phone", 0, 0, techs=[GPRS]))
        srv = network.add_node(server(env, "srv"))
        phone.interface("gprs").attach()
        assert network.connected("phone", "srv")
        phone.interface("gprs").detach()
        assert not network.connected("phone", "srv")

    def test_fixed_nodes_auto_attached(self):
        env, network = make_network()
        a = network.add_node(server(env, "a"))
        b = network.add_node(server(env, "b"))
        link = network.best_link(a, b)
        assert link is not None and link.via_backbone

    def test_attach_adhoc_interface_rejected(self):
        env, _ = make_network()
        node = mobile(env, "a")
        with pytest.raises(NetworkError):
            node.interface("802.11b-adhoc").attach()

    def test_policy_prefers_free_link(self):
        env, network = make_network()
        a = network.add_node(
            mobile(env, "a", 0, 0, techs=[WIFI_ADHOC, GPRS])
        )
        b = network.add_node(
            mobile(env, "b", 10, 0, techs=[WIFI_ADHOC, GPRS])
        )
        a.interface("gprs").attach()
        b.interface("gprs").attach()
        link = network.best_link(a, b)
        assert link.sender_technology is WIFI_ADHOC

    def test_prefer_fast_policy_picks_bandwidth(self):
        env, network = make_network()
        a = network.add_node(mobile(env, "a", 0, 0, techs=[BLUETOOTH, WIFI_ADHOC]))
        b = network.add_node(mobile(env, "b", 5, 0, techs=[BLUETOOTH, WIFI_ADHOC]))
        link = network.best_link(a, b, policy=prefer_fast)
        assert link.sender_technology is WIFI_ADHOC


class TestGraphQueries:
    def test_neighbors_lists_in_range_only(self):
        env, network = make_network()
        a = network.add_node(mobile(env, "a", 0, 0))
        network.add_node(mobile(env, "b", 50, 0))
        network.add_node(mobile(env, "c", 500, 0))
        assert [n.id for n in network.neighbors(a)] == ["b"]

    def test_neighbors_excludes_backbone(self):
        env, network = make_network()
        phone = network.add_node(mobile(env, "phone", techs=[GPRS]))
        network.add_node(server(env, "srv"))
        phone.interface("gprs").attach()
        assert network.neighbors(phone) == ()

    def test_adjacency_symmetric(self):
        env, network = make_network()
        network.add_node(mobile(env, "a", 0, 0))
        network.add_node(mobile(env, "b", 50, 0))
        graph = network.adjacency()
        assert "b" in graph["a"] and "a" in graph["b"]

    def test_reachable_set_transitive(self):
        env, network = make_network()
        network.add_node(mobile(env, "a", 0, 0))
        network.add_node(mobile(env, "b", 90, 0))
        network.add_node(mobile(env, "c", 180, 0))
        network.add_node(mobile(env, "d", 500, 0))
        assert network.reachable_set("a") == {"a", "b", "c"}

    def test_shortest_path_multi_hop(self):
        env, network = make_network()
        network.add_node(mobile(env, "a", 0, 0))
        network.add_node(mobile(env, "b", 90, 0))
        network.add_node(mobile(env, "c", 180, 0))
        assert network.shortest_path("a", "c") == ["a", "b", "c"]

    def test_shortest_path_none_when_partitioned(self):
        env, network = make_network()
        network.add_node(mobile(env, "a", 0, 0))
        network.add_node(mobile(env, "b", 1000, 0))
        assert network.shortest_path("a", "b") is None

    def test_shortest_path_to_self(self):
        env, network = make_network()
        network.add_node(mobile(env, "a", 0, 0))
        assert network.shortest_path("a", "a") == ["a"]


class TestAirtimeBilling:
    def test_dialup_airtime_charged_on_detach(self):
        env, network = make_network()
        phone = network.add_node(mobile(env, "phone", techs=[DIALUP]))

        def session(env):
            delay = phone.interface("gsm-dialup").attach()
            yield env.timeout(delay)
            yield env.timeout(60.0)
            phone.interface("gsm-dialup").detach()

        env.process(session(env))
        env.run()
        # 20s setup + 60s connected = 80s at 0.3/min = 0.4
        assert phone.costs.money == pytest.approx(80.0 / 60.0 * 0.3)

    def test_settle_bills_without_detaching(self):
        env, network = make_network()
        phone = network.add_node(mobile(env, "phone", techs=[DIALUP]))

        def session(env):
            phone.interface("gsm-dialup").attach()
            yield env.timeout(30.0)
            phone.settle_airtime()

        env.process(session(env))
        env.run()
        assert phone.costs.money == pytest.approx(30.0 / 60.0 * 0.3)
        assert phone.interface("gsm-dialup").attached

    def test_attach_twice_is_idempotent(self):
        env, network = make_network()
        phone = network.add_node(mobile(env, "phone", techs=[GPRS]))
        assert phone.interface("gprs").attach() == GPRS.setup_s
        assert phone.interface("gprs").attach() == 0.0


class TestTopologyEpoch:
    def test_mutations_bump_epoch(self):
        env, network = make_network()
        a = network.add_node(mobile(env, "a", 0, 0))
        network.add_node(mobile(env, "b", 50, 0, techs=[WIFI_ADHOC, GPRS]))
        epoch = network.topology_epoch
        # Out-of-range, cross-cell move; small in-cell jitter that
        # changes no in-range set is elided (see TestMoveElision).
        a.move_to(Position(200, 0))
        assert network.topology_epoch > epoch
        a.move_to(Position(0, 0))
        epoch = network.topology_epoch
        a.crash()
        assert network.topology_epoch > epoch
        epoch = network.topology_epoch
        a.restart()
        assert network.topology_epoch > epoch
        epoch = network.topology_epoch
        network.node("b").interface("gprs").attach()
        assert network.topology_epoch > epoch
        epoch = network.topology_epoch
        network.node("b").interface("gprs").detach()
        assert network.topology_epoch > epoch
        epoch = network.topology_epoch
        a.interface("802.11b-adhoc").disable()
        assert network.topology_epoch > epoch
        epoch = network.topology_epoch
        a.interface("802.11b-adhoc").enable()
        assert network.topology_epoch > epoch
        epoch = network.topology_epoch
        a.add_interface(GPRS)
        assert network.topology_epoch > epoch

    def test_noop_mutations_do_not_bump(self):
        env, network = make_network()
        a = network.add_node(mobile(env, "a", 5, 5))
        epoch = network.topology_epoch
        a.move_to(Position(5, 5))  # same place
        a.restart()  # already up
        a.interface("802.11b-adhoc").enable()  # already enabled
        assert network.topology_epoch == epoch

    def test_stable_epoch_reuses_cached_results(self):
        env, network = make_network()
        a = network.add_node(mobile(env, "a", 0, 0))
        network.add_node(mobile(env, "b", 50, 0))
        first = network.neighbors(a)
        assert network.neighbors(a) is first
        graph = network.adjacency()
        assert network.adjacency() is graph
        hits = network.cache_stats["hits"]
        network.neighbors(a)
        assert network.cache_stats["hits"] > hits

    def test_move_invalidates_neighbors(self):
        env, network = make_network()
        a = network.add_node(mobile(env, "a", 0, 0))
        b = network.add_node(mobile(env, "b", 50, 0))
        assert [n.id for n in network.neighbors(a)] == ["b"]
        b.move_to(Position(500, 0))
        assert network.neighbors(a) == ()
        b.move_to(Position(80, 0))
        assert [n.id for n in network.neighbors(a)] == ["b"]

    def test_unregistered_nodes_still_queryable(self):
        env, network = make_network()
        network.add_node(mobile(env, "a", 0, 0))
        loose = mobile(env, "ghost", 10, 0)
        links = network.links_between(network.node("a"), loose)
        assert links and not links[0].via_backbone
        # Loose nodes never pollute the pair cache.
        assert ("a", "ghost") not in network._links_cache

    def test_node_cannot_join_two_networks(self):
        env, network = make_network()
        other = Network(env)
        a = network.add_node(mobile(env, "a"))
        with pytest.raises(NetworkError):
            other.add_node(a)

    def test_cache_info_snapshot(self):
        env, network = make_network()
        network.add_node(mobile(env, "a", 0, 0))
        info = network.cache_info()
        assert info["epoch"] == float(network.topology_epoch)
        assert {"hits", "misses", "invalidations", "grid_cell_m"} <= set(info)
