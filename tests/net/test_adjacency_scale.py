"""Adjacency snapshots must stay sublinear in the backbone clique.

The implicit-clique representation keeps the backbone-attached set as
one frozenset instead of O(n²) materialised edges; this test pins that
property with tracemalloc at thousands of attached nodes (a quadratic
snapshot would blow the ratio to ~4x when the world doubles).
"""

import gc
import tracemalloc

from repro.net import LAN, Network, NetworkNode, Position
from repro.sim import Environment


def _backbone_world(count):
    env = Environment()
    network = Network(env)
    for i in range(count):
        network.add_node(
            NetworkNode(
                env,
                f"srv{i}",
                Position(10.0 * (i % 100), 10.0 * (i // 100)),
                technologies=[LAN],
                fixed=True,
            )
        )
    return network


def _snapshot_bytes(count):
    network = _backbone_world(count)
    gc.collect()
    tracemalloc.start()
    try:
        before, _ = tracemalloc.get_traced_memory()
        view = network.adjacency()
        after, _ = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    assert len(view.backbone) == count
    assert view.edge_count() == 0  # nothing materialised
    assert len(view["srv0"]) == count - 1  # ...but the clique is there
    return after - before


class TestImplicitCliqueMemory:
    def test_snapshot_memory_sublinear_in_clique_size(self):
        half = _snapshot_bytes(2500)
        full = _snapshot_bytes(5000)
        assert full > 0 and half > 0
        ratio = full / half
        # Linear doubles (~2); the old quadratic clique quadrupled.
        assert ratio < 3.0, f"snapshot memory grew {ratio:.1f}x for 2x nodes"

    def test_clique_bfs_touches_clique_once(self):
        network = _backbone_world(2000)
        # One flat BFS over the implicit clique: reaches everyone in a
        # single absorption step instead of walking 2M edges.
        reachable = network.reachable_set("srv0")
        assert len(reachable) == 2000
        assert network.shortest_path("srv0", "srv1999") == ["srv0", "srv1999"]
