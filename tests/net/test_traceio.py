"""Unit tests for mobility-trace and connectivity-timeline I/O."""

import io

import pytest

from repro.errors import NetworkError
from repro.net import (
    ConnectivityRecorder,
    Network,
    NetworkNode,
    Position,
    WIFI_ADHOC,
    dump_mobility,
    load_mobility,
    replay_mobility,
)
from repro.sim import Environment


SAMPLE = """\
# node time x y
walker 0.0 0.0 0.0
walker 10.0 100.0 0.0
sitter 0.0 5.0 5.0
"""


class TestMobilityIO:
    def test_roundtrip(self):
        waypoints = load_mobility(io.StringIO(SAMPLE))
        out = io.StringIO()
        dump_mobility(waypoints, out)
        again = load_mobility(io.StringIO(out.getvalue()))
        assert again == waypoints

    def test_load_sorts_by_time(self):
        scrambled = "a 10.0 1 1\na 0.0 0 0\n"
        waypoints = load_mobility(io.StringIO(scrambled))
        times = [time for time, _pos in waypoints["a"]]
        assert times == [0.0, 10.0]

    def test_comments_and_blanks_ignored(self):
        text = "\n# comment\n\na 0 1 2\n"
        waypoints = load_mobility(io.StringIO(text))
        assert waypoints["a"] == [(0.0, Position(1.0, 2.0))]

    def test_malformed_arity_rejected_with_line_number(self):
        with pytest.raises(NetworkError, match="line 2"):
            load_mobility(io.StringIO("a 0 1 2\na 1 2\n"))

    def test_malformed_number_rejected(self):
        with pytest.raises(NetworkError):
            load_mobility(io.StringIO("a zero 1 2\n"))

    def test_replay_drives_node(self):
        env = Environment()
        node = NetworkNode(env, "walker", Position(50, 50), [WIFI_ADHOC])
        replay_mobility(env, {"walker": node, "sitter": NetworkNode(env, "sitter", Position(0, 0))}, io.StringIO(SAMPLE))
        assert node.position == Position(0.0, 0.0)  # snapped to first point
        env.run(until=10.5)
        assert node.position.distance_to(Position(100.0, 0.0)) < 1e-6

    def test_replay_unknown_node_rejected(self):
        env = Environment()
        with pytest.raises(NetworkError, match="unknown nodes"):
            replay_mobility(env, {}, io.StringIO(SAMPLE))


class TestConnectivityRecorder:
    def build(self):
        env = Environment()
        network = Network(env)
        a = network.add_node(
            NetworkNode(env, "a", Position(0, 0), [WIFI_ADHOC])
        )
        b = network.add_node(
            NetworkNode(env, "b", Position(500, 0), [WIFI_ADHOC])
        )
        recorder = ConnectivityRecorder(env, network, a, interval=1.0)
        return env, a, b, recorder

    def test_records_up_and_down(self):
        env, a, b, recorder = self.build()

        def mover(env):
            yield env.timeout(5.0)
            b.move_to(Position(50, 0))
            yield env.timeout(5.0)
            b.move_to(Position(500, 0))

        env.process(mover(env))
        env.run(until=15.0)
        states = [state for _t, _a, _b, state in recorder.events]
        assert states == ["up", "down"]
        assert recorder.contact_count("b") == 1

    def test_total_contact_time(self):
        env, a, b, recorder = self.build()

        def mover(env):
            yield env.timeout(5.0)
            b.move_to(Position(50, 0))
            yield env.timeout(10.0)
            b.move_to(Position(500, 0))

        env.process(mover(env))
        env.run(until=30.0)
        contact = recorder.total_contact_time("b", until=30.0)
        assert contact == pytest.approx(10.0, abs=2.1)

    def test_open_contact_counts_to_until(self):
        env, a, b, recorder = self.build()
        b.move_to(Position(50, 0))
        env.run(until=10.0)
        assert recorder.total_contact_time("b", until=10.0) >= 9.0

    def test_dump_format(self):
        env, a, b, recorder = self.build()
        b.move_to(Position(50, 0))
        env.run(until=3.0)
        out = io.StringIO()
        lines = recorder.dump(out)
        text = out.getvalue()
        assert lines >= 2
        assert "a b up" in text
