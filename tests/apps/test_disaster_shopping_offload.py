"""Integration tests: disaster messaging, shopping agents, offloading."""

import pytest

from repro.apps import (
    DeliveryLog,
    run_local,
    run_offloaded,
    AdaptiveOffloader,
    make_vendor,
    send_via_agent,
    send_via_cs,
    shop_interactively,
    shop_with_agent,
)
from repro.core import World, mutual_trust, standard_host
from repro.net import (
    GPRS,
    LAN,
    PathMobility,
    Position,
    WIFI_ADHOC,
)
from tests.core.conftest import loss_free, run


class TestDisasterMessaging:
    def static_chain(self, spacing):
        """A line of nodes; spacing > 100 means no end-to-end path."""
        world = loss_free(World(seed=31))
        hosts = [
            standard_host(world, f"n{i}", Position(i * spacing, 0), [WIFI_ADHOC])
            for i in range(4)
        ]
        mutual_trust(*hosts)
        return world, hosts

    def test_cs_succeeds_when_connected(self):
        world, hosts = self.static_chain(spacing=50)

        def go():
            report = yield from send_via_cs(hosts[0], "n1", "help", ttl=30.0)
            return report

        report = run(world, go())
        assert report.delivered
        assert report.attempts == 1

    def test_cs_fails_when_partitioned(self):
        world, hosts = self.static_chain(spacing=500)

        def go():
            report = yield from send_via_cs(
                hosts[0], "n3", "help", ttl=20.0, retry_interval=5.0
            )
            return report

        report = run(world, go())
        assert not report.delivered
        assert report.attempts >= 3

    def test_agent_delivers_to_direct_neighbor(self):
        world, hosts = self.static_chain(spacing=50)
        log = DeliveryLog(hosts[1])
        send_via_agent(hosts[0], "n1", "help", ttl=60.0)
        world.run(until=30.0)
        assert log.payloads() == ["help"]

    def test_agent_rides_mobility_across_partition(self):
        world = loss_free(World(seed=32))
        alice = standard_host(world, "alice", Position(0, 0), [WIFI_ADHOC])
        mule = standard_host(world, "mule", Position(50, 0), [WIFI_ADHOC])
        bob = standard_host(world, "bob", Position(1000, 0), [WIFI_ADHOC])
        mutual_trust(alice, mule, bob)
        # The mule walks from alice's side over to bob.
        PathMobility(
            world.env,
            {"mule": mule.node},
            {"mule": [(5.0, Position(50, 0)), (60.0, Position(990, 0))]},
        )
        log = DeliveryLog(bob)
        send_via_agent(alice, "bob", "sos", ttl=300.0)
        world.run(until=200.0)
        assert log.payloads() == ["sos"]
        # CS could never have done this: no end-to-end path ever existed
        # at any single instant... verify at start at least:
        assert not world.network.connected("alice", "bob")

    def test_agent_expires_when_stranded(self):
        world, hosts = self.static_chain(spacing=500)
        runtime = hosts[0].component("agents")
        agent_id = send_via_agent(hosts[0], "n3", "help", ttl=20.0)
        world.run(until=60.0)
        final = runtime.completed.get(agent_id)
        assert final is not None
        assert final["outcome"] == "died"


def shopping_world(vendor_count=3):
    world = loss_free(World(seed=33))
    device = standard_host(world, "device", Position(0, 0), [GPRS], cpu_speed=0.2)
    device.node.interface("gprs").attach()
    vendors = []
    prices = {}
    for index in range(vendor_count):
        vendor = standard_host(
            world, f"shop{index}", Position(0, 0), [LAN], fixed=True
        )
        price = 100.0 - 10.0 * index
        make_vendor(vendor, {"camera": price})
        prices[vendor.id] = price
        vendors.append(vendor)
    mutual_trust(device, *vendors)
    return world, device, vendors, prices


class TestShopping:
    def test_agent_finds_best_price_and_buys(self):
        world, device, vendors, prices = shopping_world()

        def go():
            final = yield from shop_with_agent(
                device, "camera", [v.id for v in vendors]
            )
            return final

        final = run(world, go())
        assert final["outcome"] == "completed"
        best_vendor, best_price = final["best"]
        assert best_price == min(prices.values())
        assert final["receipt"]["charged"] == best_price

    def test_agent_skips_crashed_vendor(self):
        world, device, vendors, prices = shopping_world()
        vendors[2].node.crash()  # the cheapest one is gone

        def go():
            final = yield from shop_with_agent(
                device, "camera", [v.id for v in vendors]
            )
            return final

        final = run(world, go())
        assert final["outcome"] == "completed"
        assert final["best"][1] == 90.0  # second cheapest

    def test_interactive_browsing_buys_same_product(self):
        world, device, vendors, prices = shopping_world()

        def go():
            report = yield from shop_interactively(
                device, "camera", [v.id for v in vendors], think_time_s=0.5
            )
            return report

        report = run(world, go())
        assert report.best[1] == min(prices.values())
        assert report.receipt["charged"] == min(prices.values())
        assert report.pages_viewed == 3 * 5

    def test_agent_moves_fewer_wireless_bytes_than_browsing(self):
        world_a, device_a, vendors_a, _ = shopping_world()

        def go_a():
            final = yield from shop_with_agent(
                device_a, "camera", [v.id for v in vendors_a]
            )
            return final

        run(world_a, go_a())
        agent_wireless = device_a.node.costs.wireless_bytes()

        world_b, device_b, vendors_b, _ = shopping_world()

        def go_b():
            report = yield from shop_interactively(
                device_b, "camera", [v.id for v in vendors_b], think_time_s=0.0
            )
            return report

        run(world_b, go_b())
        browse_wireless = device_b.node.costs.wireless_bytes()
        assert agent_wireless < browse_wireless


class TestOffloading:
    def offload_world(self):
        world = loss_free(World(seed=34))
        device = standard_host(
            world, "device", Position(0, 0), [WIFI_ADHOC], cpu_speed=0.1
        )
        server = standard_host(
            world,
            "server",
            Position(10, 0),
            [WIFI_ADHOC],
            fixed=True,
            cpu_speed=4.0,
        )
        mutual_trust(device, server)
        return world, device, server

    def test_local_run_time_matches_model(self):
        world, device, server = self.offload_world()

        def go():
            report = yield from run_local(device, 1_000_000)
            return report

        report = run(world, go())
        assert report.where == "local"
        assert report.elapsed_s == pytest.approx(10.0)  # 1e6 units at 0.1x

    def test_offload_beats_local_for_heavy_work(self):
        world, device, server = self.offload_world()

        def go():
            local = yield from run_local(device, 20_000_000)
            remote = yield from run_offloaded(device, "server", 20_000_000)
            return local, remote

        local, remote = run(world, go())
        assert remote.elapsed_s < local.elapsed_s

    def test_local_beats_offload_for_tiny_work(self):
        world, device, server = self.offload_world()

        def go():
            local = yield from run_local(device, 1_000)
            remote = yield from run_offloaded(device, "server", 1_000)
            return local, remote

        local, remote = run(world, go())
        assert local.elapsed_s < remote.elapsed_s

    def test_adaptive_offloader_picks_correctly(self):
        world, device, server = self.offload_world()
        offloader = AdaptiveOffloader(device, "server")

        def go():
            yield from offloader.run(1_000)
            yield from offloader.run(50_000_000)

        run(world, go())
        assert offloader.decisions == ["local", "offload"]

    def test_adaptive_offloader_stays_local_when_partitioned(self):
        world, device, server = self.offload_world()
        server.node.crash()
        offloader = AdaptiveOffloader(device, "server")

        def go():
            report = yield from offloader.run(50_000_000)
            return report

        report = run(world, go())
        assert report.where == "local"
