"""Integration tests for the spray-and-wait multi-copy messenger."""

import pytest

from repro.apps import DeliveryLog, send_via_spray
from repro.core import World, mutual_trust, standard_host
from repro.net import Area, PathMobility, Position, WIFI_ADHOC
from repro.workloads import adhoc_fleet
from tests.core.conftest import loss_free


class TestSprayMessenger:
    def test_invalid_copies(self):
        world = loss_free(World(seed=95))
        a = standard_host(world, "a", Position(0, 0), [WIFI_ADHOC])
        with pytest.raises(ValueError):
            send_via_spray(a, "b", "x", copies=0)

    def test_direct_neighbor_delivery(self):
        world = loss_free(World(seed=95))
        a = standard_host(world, "a", Position(0, 0), [WIFI_ADHOC])
        b = standard_host(world, "b", Position(50, 0), [WIFI_ADHOC])
        mutual_trust(a, b)
        log = DeliveryLog(b)
        send_via_spray(a, "b", "hello", copies=4, ttl=60.0)
        world.run(until=30.0)
        assert "hello" in [payload for _v, payload, _t in log.received]

    def test_spraying_replicates_to_relays(self):
        world = loss_free(World(seed=96))
        source = standard_host(world, "src", Position(0, 0), [WIFI_ADHOC])
        relays = [
            standard_host(world, f"r{i}", Position(40 + i, 0), [WIFI_ADHOC])
            for i in range(3)
        ]
        # Destination far away: only spraying happens for now.
        destination = standard_host(
            world, "dst", Position(5000, 0), [WIFI_ADHOC]
        )
        mutual_trust(source, destination, *relays)
        send_via_spray(source, "dst", "sos", copies=8, ttl=120.0, beat=1.0)
        world.run(until=60.0)
        assert world.metrics.counter("agents.clones").value >= 1

    def test_relayed_copy_delivers_via_mobility(self):
        world = loss_free(World(seed=97))
        source = standard_host(world, "src", Position(0, 0), [WIFI_ADHOC])
        mule = standard_host(world, "mule", Position(50, 0), [WIFI_ADHOC])
        destination = standard_host(
            world, "dst", Position(2000, 0), [WIFI_ADHOC]
        )
        mutual_trust(source, mule, destination)
        PathMobility(
            world.env,
            {"mule": mule.node},
            {"mule": [(10.0, Position(50, 0)), (120.0, Position(1990, 0))]},
        )
        log = DeliveryLog(destination)
        send_via_spray(source, "dst", "sos", copies=4, ttl=600.0)
        world.run(until=400.0)
        payloads = [payload for _v, payload, _t in log.received]
        assert "sos" in payloads

    def test_single_copy_waits_instead_of_spraying(self):
        world = loss_free(World(seed=98))
        source = standard_host(world, "src", Position(0, 0), [WIFI_ADHOC])
        relay = standard_host(world, "relay", Position(50, 0), [WIFI_ADHOC])
        standard_host(world, "dst", Position(5000, 0), [WIFI_ADHOC])
        mutual_trust(source, relay)
        send_via_spray(source, "dst", "sos", copies=1, ttl=60.0)
        world.run(until=70.0)
        # Wait phase: no cloning to the relay ever happens.
        assert world.metrics.counter("agents.clones").value == 0
