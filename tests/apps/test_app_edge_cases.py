"""Edge cases across the scenario applications."""

import pytest

from repro.apps import (
    DeliveryLog,
    LocationAwareBrowser,
    MediaPlayer,
    build_codec_repository,
    make_venue,
    send_via_spray,
)
from repro.core import ItineraryAgent, World, mutual_trust, standard_host
from repro.net import GPRS, LAN, PathMobility, Position, WIFI_ADHOC
from tests.core.conftest import loss_free, run


class TestBrowserWander:
    def test_wander_discovers_venue_en_route(self):
        world = loss_free(World(seed=181))
        user = standard_host(world, "user", Position(0, 0), [WIFI_ADHOC])
        cinema = standard_host(
            world, "cinema", Position(1000, 0), [WIFI_ADHOC], fixed=True
        )
        mutual_trust(user, cinema)
        make_venue(cinema, "roxy")
        browser = LocationAwareBrowser(user)
        # The user strolls past the cinema.
        PathMobility(
            world.env,
            {"user": user.node},
            {"user": [(60.0, Position(950, 0)), (120.0, Position(2000, 0))]},
        )
        world.env.process(browser.wander(interval=5.0, rounds=30))
        world.run(until=200.0)
        assert any(
            encounter.description.name == "roxy"
            for encounter in browser.encounters.values()
        )

    def test_wander_bounded_rounds_terminates(self):
        world = loss_free(World(seed=182))
        user = standard_host(world, "user", Position(0, 0), [WIFI_ADHOC])
        browser = LocationAwareBrowser(user)
        process = world.env.process(browser.wander(interval=1.0, rounds=3))
        world.run(until=process)
        assert world.now < 60.0


class TestMediaUnderLoss:
    def test_playback_succeeds_over_lossy_link(self):
        # Real (not stubbed) loss draws; reliable transport retries.
        world = World(seed=183)
        phone = standard_host(world, "phone", Position(0, 0), [GPRS])
        store = standard_host(
            world,
            "store",
            Position(0, 0),
            [LAN],
            fixed=True,
            repository=build_codec_repository(),
        )
        mutual_trust(phone, store)
        phone.node.interface("gprs").attach()
        player = MediaPlayer(phone, "store")

        def go():
            record = yield from player.play("wav")
            return record

        record = run(world, go())
        assert record.outcome == "miss"
        assert "codec-wav" in phone.codebase


class TestItineraryDuplicates:
    def test_same_host_visited_twice(self):
        world = loss_free(World(seed=184))
        home = standard_host(world, "home", Position(0, 0), [LAN])
        home.node.interface("lan").attach()
        vendor = standard_host(world, "v", Position(0, 0), [LAN], fixed=True)
        mutual_trust(home, vendor)
        counter = {"calls": 0}

        def tick(args, host):
            counter["calls"] += 1
            return (counter["calls"], 8)

        vendor.register_service("tick", tick)

        class DoubleVisit(ItineraryAgent):
            def visit(self, context):
                value = yield from context.invoke_local("tick", None)
                return value

        runtime = home.component("agents")
        agent_id = runtime.launch(DoubleVisit(), itinerary=["v", "v"])

        def go():
            final = yield runtime.completion(agent_id)
            return final

        final = run(world, go())
        assert final["outcome"] == "completed"
        assert final["results"] == [1, 2]
        # Both visits happened during a single stay: 1 hop out + 1 home.
        assert final["hops"] == 2


class TestSprayDeliveryDedup:
    def test_multiple_copies_may_arrive_log_keeps_all(self):
        world = loss_free(World(seed=185))
        source = standard_host(world, "src", Position(0, 0), [WIFI_ADHOC])
        relay = standard_host(world, "relay", Position(40, 0), [WIFI_ADHOC])
        destination = standard_host(world, "dst", Position(80, 0), [WIFI_ADHOC])
        mutual_trust(source, relay, destination)
        log = DeliveryLog(destination)
        send_via_spray(source, "dst", "sos", copies=4, ttl=120.0)
        world.run(until=120.0)
        payloads = [payload for _v, payload, _t in log.received]
        # At least one copy arrived; duplicates are the application's to
        # dedup (the log records every arrival faithfully).
        assert payloads.count("sos") >= 1
        unique = set(payloads)
        assert unique == {"sos"}
