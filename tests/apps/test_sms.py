"""Integration tests: SMS-as-agents through a message centre."""

import pytest

from repro.apps import SmsInbox, send_sms
from repro.core import World, mutual_trust, standard_host
from repro.net import GPRS, LAN, Position
from tests.core.conftest import loss_free, run


def sms_world():
    world = loss_free(World(seed=61))
    sender = standard_host(world, "sender", Position(0, 0), [GPRS])
    centre = standard_host(world, "centre", Position(0, 0), [LAN], fixed=True)
    recipient = standard_host(world, "recipient", Position(0, 0), [GPRS])
    mutual_trust(sender, centre, recipient)
    sender.node.interface("gprs").attach()
    # Recipient starts detached: phone off / out of coverage.
    return world, sender, centre, recipient


class TestSmsDelivery:
    def test_immediate_delivery_when_recipient_attached(self):
        world, sender, centre, recipient = sms_world()
        recipient.node.interface("gprs").attach()
        inbox = SmsInbox(recipient)
        send_sms(sender, "centre", "recipient", "hello")
        world.run(until=60.0)
        assert inbox.texts() == ["hello"]

    def test_parks_at_centre_until_recipient_attaches(self):
        world, sender, centre, recipient = sms_world()
        inbox = SmsInbox(recipient)
        send_sms(sender, "centre", "recipient", "wake up", retry=2.0)
        world.run(until=100.0)
        assert inbox.texts() == []  # recipient still off
        # Sender can even go offline; the agent waits at the centre.
        sender.node.interface("gprs").detach()
        recipient.node.interface("gprs").attach()
        world.run(until=200.0)
        assert inbox.texts() == ["wake up"]
        assert inbox.messages[0]["from"] == "sender"

    def test_ttl_expires_undelivered_message(self):
        world, sender, centre, recipient = sms_world()
        inbox = SmsInbox(recipient)
        send_sms(sender, "centre", "recipient", "too late", ttl=30.0, retry=2.0)
        world.run(until=100.0)
        recipient.node.interface("gprs").attach()
        world.run(until=200.0)
        assert inbox.texts() == []
        assert world.metrics.counter("agents.died").value == 1

    def test_receipt_returns_to_sender(self):
        world, sender, centre, recipient = sms_world()
        recipient.node.interface("gprs").attach()
        SmsInbox(recipient)
        agent_id = send_sms(
            sender, "centre", "recipient", "ping", receipt=True, retry=1.0
        )
        runtime = sender.component("agents")

        def await_receipt():
            final = yield runtime.completion(agent_id)
            return final

        final = run(world, await_receipt())
        assert final["status"] == "delivered"
        assert final["delivered_at"] > 0

    def test_multiple_messages_queue_independently(self):
        world, sender, centre, recipient = sms_world()
        inbox = SmsInbox(recipient)
        for index in range(3):
            send_sms(sender, "centre", "recipient", f"msg-{index}", retry=2.0)
        world.run(until=60.0)
        recipient.node.interface("gprs").attach()
        world.run(until=180.0)
        assert sorted(inbox.texts()) == ["msg-0", "msg-1", "msg-2"]

    def test_unreachable_centre_strands_agent(self):
        world, sender, centre, recipient = sms_world()
        centre.node.crash()
        agent_id = send_sms(sender, "centre", "recipient", "void")
        world.run(until=120.0)
        final = sender.component("agents").completed.get(agent_id)
        assert final is not None
        assert final["outcome"] == "stranded"
