"""Integration tests: codec-on-demand media player and location-based services."""

import pytest

from repro.apps import (
    CODEC_CATALOGUE,
    LocationAwareBrowser,
    MediaPlayer,
    build_codec_repository,
    codec_unit_name,
    make_venue,
    preinstall_all_codecs,
)
from repro.core import World, mutual_trust, standard_host
from repro.errors import QuotaExceeded, UnitNotFound
from repro.net import GPRS, LAN, Position, WIFI_ADHOC
from tests.core.conftest import loss_free, run


def media_world(quota=float("inf")):
    world = loss_free(World(seed=21))
    phone = standard_host(
        world, "phone", Position(0, 0), [GPRS], cpu_speed=0.2, quota_bytes=quota
    )
    vendor = standard_host(
        world,
        "vendor",
        Position(0, 0),
        [LAN],
        fixed=True,
        repository=build_codec_repository(),
    )
    mutual_trust(phone, vendor)
    phone.node.interface("gprs").attach()
    return world, phone, vendor


class TestMediaPlayer:
    def test_first_play_misses_then_hits(self):
        world, phone, vendor = media_world()
        player = MediaPlayer(phone, "vendor")

        def go():
            first = yield from player.play("ogg", "song-1")
            second = yield from player.play("ogg", "song-2")
            return first, second

        first, second = run(world, go())
        assert first.outcome == "miss"
        assert second.outcome == "hit"
        assert second.time_to_play_s < first.time_to_play_s
        assert codec_unit_name("ogg") in phone.codebase
        assert "dsp-lib" in phone.codebase  # dependency came along

    def test_unknown_format_fails(self):
        world, phone, vendor = media_world()
        player = MediaPlayer(phone, "vendor")

        def go():
            yield from player.play("eight-track")

        with pytest.raises(UnitNotFound):
            run(world, go())
        assert player.history[-1].outcome == "failed"

    def test_quota_eviction_keeps_playing(self):
        # Quota fits the DSP library plus ~2 codecs.
        world, phone, vendor = media_world(quota=400_000)
        phone.codebase.pin  # noqa: B018 - documents that nothing is pinned
        player = MediaPlayer(phone, "vendor")
        formats = ["mp3", "ogg", "aac", "real", "mp3", "wav"]

        def go():
            for format_name in formats:
                yield from player.play(format_name)

        run(world, go())
        assert len(player.history) == len(formats)
        assert phone.codebase.used_bytes <= 400_000
        assert phone.codebase.evictions >= 1

    def test_drop_codec_frees_storage(self):
        world, phone, vendor = media_world()
        player = MediaPlayer(phone, "vendor")

        def go():
            yield from player.play("mp3")

        run(world, go())
        used = phone.codebase.used_bytes
        assert player.drop_codec("mp3")
        assert phone.codebase.used_bytes < used
        assert not player.drop_codec("mp3")  # already gone

    def test_miss_rate_and_mean_time(self):
        world, phone, vendor = media_world()
        player = MediaPlayer(phone, "vendor")

        def go():
            yield from player.play("mp3")
            yield from player.play("mp3")

        run(world, go())
        assert player.miss_rate == 0.5
        assert player.mean_time_to_play() > 0

    def test_preinstall_all_exceeds_small_quota(self):
        world, phone, vendor = media_world(quota=400_000)
        phone.codebase.eviction = None
        with pytest.raises(QuotaExceeded):
            preinstall_all_codecs(phone, vendor.repository)

    def test_preinstall_all_fits_large_quota(self):
        world, phone, vendor = media_world()
        installed = preinstall_all_codecs(phone, vendor.repository)
        assert len(installed) == len(CODEC_CATALOGUE) + 1  # + dsp-lib


class TestLocationBasedServices:
    def venue_world(self):
        world = loss_free(World(seed=22))
        user = standard_host(world, "user", Position(0, 0), [WIFI_ADHOC])
        cinema = standard_host(
            world, "cinema", Position(2000, 0), [WIFI_ADHOC], fixed=True
        )
        mutual_trust(user, cinema)
        make_venue(cinema, "odeon", ticket_price=9.0)
        return world, user, cinema

    def test_venue_not_found_when_far(self):
        world, user, cinema = self.venue_world()
        browser = LocationAwareBrowser(user)

        def go():
            fresh = yield from browser.look_around()
            return fresh

        assert run(world, go()) == []

    def test_ui_fetched_on_entering_premises(self):
        world, user, cinema = self.venue_world()
        browser = LocationAwareBrowser(user)
        user.node.move_to(Position(1950, 0))  # walk into range

        def go():
            fresh = yield from browser.look_around()
            return fresh

        fresh = run(world, go())
        assert len(fresh) == 1
        assert fresh[0].description.name == "odeon"
        assert "ui-odeon" in user.codebase
        assert fresh[0].setup_time_s > 0

    def test_order_tickets_through_fetched_ui(self):
        world, user, cinema = self.venue_world()
        browser = LocationAwareBrowser(user)
        user.node.move_to(Position(1950, 0))

        def go():
            yield from browser.look_around()
            receipt = yield from browser.order_tickets("odeon", seats=3)
            return receipt

        receipt = run(world, go())
        assert receipt == {"venue": "odeon", "seats": 3, "total": 27.0}

    def test_second_visit_reuses_ui(self):
        world, user, cinema = self.venue_world()
        browser = LocationAwareBrowser(user)
        user.node.move_to(Position(1950, 0))

        def go():
            yield from browser.look_around()
            yield from browser.look_around()

        run(world, go())
        assert world.metrics.counter("cod.misses").value == 1

    def test_order_unknown_venue_raises(self):
        from repro.errors import ServiceNotFound

        world, user, cinema = self.venue_world()
        browser = LocationAwareBrowser(user)

        def go():
            yield from browser.order_tickets("multiplex")

        with pytest.raises(ServiceNotFound):
            run(world, go())
