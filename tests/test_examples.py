"""Smoke tests: every shipped example runs to completion.

Each example is executed in a subprocess (the way a user runs it) and
must exit cleanly with its expected headline in the output.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")

#: (script, timeout seconds, substring that must appear in stdout)
EXAMPLES = [
    ("quickstart.py", 120, "agent completed"),
    ("codec_on_demand.py", 120, "preinstall-everything fails"),
    ("shopping_agent.py", 120, "cheaper"),
    ("adaptive_offload.py", 120, "decisions:"),
    ("design_assessment.py", 120, "winner"),
    ("disaster_mesh.py", 300, "agent delivery"),
    ("field_survey.py", 120, "uploads reaching HQ : 24 / 24"),
]


@pytest.mark.parametrize(
    "script,timeout,expected", EXAMPLES, ids=[e[0] for e in EXAMPLES]
)
def test_example_runs(script, timeout, expected):
    path = os.path.join(EXAMPLES_DIR, script)
    completed = subprocess.run(
        [sys.executable, path],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert expected in completed.stdout
