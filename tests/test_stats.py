"""Unit and property tests for the small-sample statistics helpers."""

import math
import random

import pytest
from hypothesis import given, strategies as st

from repro.analysis import (
    Summary,
    mean,
    proportion_ci95,
    sample_stddev,
    summarize,
    t_critical_95,
)


class TestBasics:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_mean_empty_rejected(self):
        with pytest.raises(ValueError):
            mean([])

    def test_stddev_known_value(self):
        assert sample_stddev([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) == (
            pytest.approx(2.138, abs=1e-3)
        )

    def test_stddev_singleton_zero(self):
        assert sample_stddev([5.0]) == 0.0

    def test_t_critical_small_n(self):
        assert t_critical_95(1) == pytest.approx(12.706)
        assert t_critical_95(10) == pytest.approx(2.228)

    def test_t_critical_large_n(self):
        assert t_critical_95(100) == pytest.approx(1.960)

    def test_t_critical_invalid(self):
        with pytest.raises(ValueError):
            t_critical_95(0)


class TestSummarize:
    def test_known_sample(self):
        summary = summarize([10.0, 12.0, 14.0])
        assert summary.count == 3
        assert summary.mean == 12.0
        assert summary.minimum == 10.0 and summary.maximum == 14.0
        assert summary.ci_low < 12.0 < summary.ci_high

    def test_singleton_infinite_interval(self):
        assert summarize([5.0]).ci95_halfwidth == float("inf")

    def test_str_form(self):
        text = str(summarize([1.0, 2.0, 3.0]))
        assert "n=3" in text and "±" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_ci_covers_true_mean_usually(self):
        # Statistical sanity: ~95% of intervals from N(0,1) samples
        # should cover 0.  Use a generous acceptance band.
        rng = random.Random(1234)
        covered = 0
        trials = 300
        for _ in range(trials):
            sample = [rng.gauss(0.0, 1.0) for _ in range(8)]
            summary = summarize(sample)
            if summary.ci_low <= 0.0 <= summary.ci_high:
                covered += 1
        assert covered / trials > 0.88


class TestProportionCI:
    def test_bounds_checked(self):
        with pytest.raises(ValueError):
            proportion_ci95(1, 0)
        with pytest.raises(ValueError):
            proportion_ci95(5, 4)

    def test_floor_at_half_trial(self):
        # All-success small samples still report nonzero uncertainty.
        assert proportion_ci95(6, 6) == pytest.approx(1.0 / 12)

    def test_widest_at_half(self):
        assert proportion_ci95(5, 10) > proportion_ci95(9, 10)


class TestProperties:
    @given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=50))
    def test_mean_within_extremes(self, values):
        summary = summarize(values)
        assert summary.minimum - 1e-9 <= summary.mean <= summary.maximum + 1e-9

    @given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=50))
    def test_interval_symmetric_about_mean(self, values):
        summary = summarize(values)
        assert summary.ci_high - summary.mean == pytest.approx(
            summary.mean - summary.ci_low
        )

    @given(st.floats(-1e3, 1e3), st.integers(2, 20))
    def test_constant_sample_negligible_width(self, value, count):
        # The mean of n copies is not bit-identical to the value, so the
        # width is bounded by floating rounding, not exactly zero.
        summary = summarize([value] * count)
        assert summary.stddev <= 1e-9 * max(1.0, abs(value))
        assert summary.ci95_halfwidth <= 1e-8 * max(1.0, abs(value))
