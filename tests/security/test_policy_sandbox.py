"""Unit tests for security policies and the sandbox."""

import pytest

from repro.errors import PolicyViolation, SandboxViolation
from repro.security import (
    CLIENT_ONLY_POLICY,
    ExecutionContext,
    InProcessProvider,
    OPEN_POLICY,
    OP_ACCEPT_AGENT,
    OP_ACCEPT_REV,
    OP_SERVE_COD,
    QuotaGrant,
    Sandbox,
    SecurityPolicy,
    StrictProvider,
)
from repro.sim.metrics import MetricsRegistry


class TestPolicy:
    def test_default_allows_everything(self):
        policy = SecurityPolicy()
        policy.check(OP_ACCEPT_REV, "anyone")
        policy.check(OP_ACCEPT_AGENT)

    def test_operation_whitelist(self):
        policy = SecurityPolicy(allowed_operations=frozenset({OP_SERVE_COD}))
        policy.check(OP_SERVE_COD)
        with pytest.raises(PolicyViolation):
            policy.check(OP_ACCEPT_AGENT)

    def test_principal_whitelist(self):
        policy = SecurityPolicy(allowed_principals=frozenset({"alice"}))
        policy.check(OP_ACCEPT_REV, "alice")
        with pytest.raises(PolicyViolation):
            policy.check(OP_ACCEPT_REV, "mallory")

    def test_unknown_operation_is_programming_error(self):
        with pytest.raises(ValueError):
            SecurityPolicy().check("launch-missiles")

    def test_unknown_operation_in_constructor(self):
        with pytest.raises(ValueError):
            SecurityPolicy(allowed_operations=frozenset({"bogus"}))

    def test_allows_boolean_form(self):
        assert CLIENT_ONLY_POLICY.allows("install-code")
        assert not CLIENT_ONLY_POLICY.allows(OP_ACCEPT_AGENT)

    def test_open_policy_unsigned(self):
        assert not OPEN_POLICY.require_signatures


class TestExecutionContext:
    def test_charge_within_budget(self):
        context = ExecutionContext("host", "guest", work_budget=100)
        context.charge(60)
        context.charge(40)
        assert context.work_remaining == 0

    def test_charge_over_budget_raises(self):
        context = ExecutionContext("host", "guest", work_budget=100)
        with pytest.raises(SandboxViolation):
            context.charge(101)

    def test_negative_charge_rejected(self):
        context = ExecutionContext("host", "guest")
        with pytest.raises(ValueError):
            context.charge(-1)

    def test_storage_within_budget(self):
        context = ExecutionContext("host", "guest", storage_budget_bytes=10_000)
        context.store("key", "value")
        assert context.fetch("key") == "value"

    def test_storage_over_budget_raises_and_rolls_back(self):
        context = ExecutionContext("host", "guest", storage_budget_bytes=100)
        with pytest.raises(SandboxViolation):
            context.store("blob", "x" * 1000)
        assert context.fetch("blob") is None

    def test_discard(self):
        context = ExecutionContext("host", "guest")
        context.store("k", 1)
        context.discard("k")
        assert context.fetch("k") is None

    def test_service_lookup(self):
        context = ExecutionContext("host", "guest", services={"echo": len})
        assert context.service("echo") is len
        with pytest.raises(SandboxViolation):
            context.service("missing")


class TestSandbox:
    def test_successful_run(self):
        sandbox = Sandbox("host")
        context = ExecutionContext("host", "guest")

        def guest(ctx, x):
            ctx.charge(10)
            return x * 2

        result = sandbox.run(guest, context, 21)
        assert result.ok and result.value == 42
        assert result.work_used == 10

    def test_guest_exception_contained(self):
        sandbox = Sandbox("host")
        context = ExecutionContext("host", "guest")

        def guest(ctx):
            raise ValueError("guest bug")

        result = sandbox.run(guest, context)
        assert not result.ok
        assert result.error_type == "ValueError"
        assert "guest bug" in result.error

    def test_budget_violation_reported(self):
        metrics = MetricsRegistry()
        sandbox = Sandbox("host", metrics=metrics)
        context = ExecutionContext("host", "guest", work_budget=5)

        def greedy(ctx):
            ctx.charge(10)

        result = sandbox.run(greedy, context)
        assert not result.ok
        assert result.error_type == "SandboxViolation"
        violations = metrics.counter(
            "security.sandbox_violations", labels={"node": "host"}
        )
        assert violations.value == 1
        # Labeled children roll up into the flat family total.
        assert metrics.counter("security.sandbox_violations").value == 1

    def test_cpu_seconds_mapping(self):
        sandbox = Sandbox("host")
        context = ExecutionContext("host", "guest")

        def guest(ctx):
            ctx.charge(1_000_000)

        result = sandbox.run(guest, context)
        assert result.cpu_seconds_reference == pytest.approx(1.0)

    def test_execution_counter(self):
        metrics = MetricsRegistry()
        sandbox = Sandbox("host", metrics=metrics)
        for _ in range(3):
            sandbox.run(lambda ctx: None, ExecutionContext("host", "guest"))
        runs = metrics.counter(
            "security.sandbox_runs", labels={"node": "host"}
        )
        assert runs.value == 3


class TestQuotaGrants:
    def test_default_grant_mirrors_legacy_scalars(self):
        policy = SecurityPolicy(
            guest_work_budget=123.0, guest_storage_bytes=456
        )
        grant = policy.grant_for("anyone")
        assert grant.work_units == 123.0
        assert grant.storage_bytes == 456
        assert grant.service_calls is None
        assert grant.provider == "inprocess"

    def test_exact_match_beats_glob(self):
        policy = SecurityPolicy(
            quota_grants={
                "task:*": QuotaGrant(work_units=10.0),
                "task:big": QuotaGrant(work_units=99.0),
            }
        )
        assert policy.grant_for("task:big").work_units == 99.0
        assert policy.grant_for("task:other").work_units == 10.0

    def test_glob_grants_match_in_insertion_order(self):
        policy = SecurityPolicy(
            quota_grants={
                "hostile:*": QuotaGrant(work_units=1.0, provider="strict"),
                "*": QuotaGrant(work_units=2.0),
            }
        )
        assert policy.grant_for("hostile:quota_loop").provider == "strict"
        assert policy.grant_for("task:x").work_units == 2.0


class TestProviders:
    def run_greedy(self, provider, budget=100.0, charge=150.0):
        session = provider.open_session(
            "guest", QuotaGrant(work_units=budget)
        )
        result = provider.execute(
            session, lambda ctx: ctx.charge(charge)
        )
        totals = provider.close_session(session)
        return session, result, totals

    def test_capabilities_distinguish_flavors(self):
        lenient = InProcessProvider("h").capabilities()
        strict = StrictProvider("h").capabilities()
        assert not lenient.strict_quotas
        assert strict.strict_quotas
        assert lenient.name == "inprocess" and strict.name == "strict"

    def test_inprocess_overshoots_then_trips(self):
        _, result, totals = self.run_greedy(InProcessProvider("h"))
        assert not result.ok
        assert result.error_type == "SandboxViolation"
        # Post-hoc metering: the final charge lands before the check.
        assert totals.work_units == 150.0

    def test_strict_preempts_at_quota(self):
        _, result, totals = self.run_greedy(StrictProvider("h"))
        assert not result.ok
        assert result.error_type == "SandboxViolation"
        # Preemption clamps metered work to exactly the grant.
        assert totals.work_units == 100.0

    def test_session_lifecycle(self):
        provider = StrictProvider("h")
        session = provider.open_session(
            "guest", QuotaGrant(), now=5.0, cpu_speed=2.0
        )
        assert session.open and session.opened_at == 5.0
        provider.execute(session, lambda ctx: ctx.charge(1_000_000))
        totals = provider.close_session(session, now=9.0)
        assert not session.open and session.closed_at == 9.0
        # 1e6 units at 2x reference speed -> 0.5 wall sim-seconds.
        assert totals.wall_sim_seconds == pytest.approx(0.5)

    def test_service_call_quota_enforced(self):
        provider = StrictProvider("h")
        session = provider.open_session(
            "guest",
            QuotaGrant(service_calls=2),
            services={"ping": lambda: None},
        )

        def flood(ctx):
            while True:
                ctx.service("ping")

        result = provider.execute(session, flood)
        assert not result.ok
        assert result.error_type == "SandboxViolation"
        assert provider.close_session(session).service_calls == 2

    def test_base_exception_never_escapes(self):
        provider = InProcessProvider("h")
        session = provider.open_session("guest", QuotaGrant())

        class Hostile(BaseException):
            pass

        def bomb(ctx):
            raise Hostile("escape attempt")

        result = provider.execute(session, bomb)
        assert not result.ok
        assert "escape attempt" in result.error
