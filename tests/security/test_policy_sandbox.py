"""Unit tests for security policies and the sandbox."""

import pytest

from repro.errors import PolicyViolation, SandboxViolation
from repro.security import (
    CLIENT_ONLY_POLICY,
    ExecutionContext,
    OPEN_POLICY,
    OP_ACCEPT_AGENT,
    OP_ACCEPT_REV,
    OP_SERVE_COD,
    Sandbox,
    SecurityPolicy,
)


class TestPolicy:
    def test_default_allows_everything(self):
        policy = SecurityPolicy()
        policy.check(OP_ACCEPT_REV, "anyone")
        policy.check(OP_ACCEPT_AGENT)

    def test_operation_whitelist(self):
        policy = SecurityPolicy(allowed_operations=frozenset({OP_SERVE_COD}))
        policy.check(OP_SERVE_COD)
        with pytest.raises(PolicyViolation):
            policy.check(OP_ACCEPT_AGENT)

    def test_principal_whitelist(self):
        policy = SecurityPolicy(allowed_principals=frozenset({"alice"}))
        policy.check(OP_ACCEPT_REV, "alice")
        with pytest.raises(PolicyViolation):
            policy.check(OP_ACCEPT_REV, "mallory")

    def test_unknown_operation_is_programming_error(self):
        with pytest.raises(ValueError):
            SecurityPolicy().check("launch-missiles")

    def test_unknown_operation_in_constructor(self):
        with pytest.raises(ValueError):
            SecurityPolicy(allowed_operations=frozenset({"bogus"}))

    def test_allows_boolean_form(self):
        assert CLIENT_ONLY_POLICY.allows("install-code")
        assert not CLIENT_ONLY_POLICY.allows(OP_ACCEPT_AGENT)

    def test_open_policy_unsigned(self):
        assert not OPEN_POLICY.require_signatures


class TestExecutionContext:
    def test_charge_within_budget(self):
        context = ExecutionContext("host", "guest", work_budget=100)
        context.charge(60)
        context.charge(40)
        assert context.work_remaining == 0

    def test_charge_over_budget_raises(self):
        context = ExecutionContext("host", "guest", work_budget=100)
        with pytest.raises(SandboxViolation):
            context.charge(101)

    def test_negative_charge_rejected(self):
        context = ExecutionContext("host", "guest")
        with pytest.raises(ValueError):
            context.charge(-1)

    def test_storage_within_budget(self):
        context = ExecutionContext("host", "guest", storage_budget_bytes=10_000)
        context.store("key", "value")
        assert context.fetch("key") == "value"

    def test_storage_over_budget_raises_and_rolls_back(self):
        context = ExecutionContext("host", "guest", storage_budget_bytes=100)
        with pytest.raises(SandboxViolation):
            context.store("blob", "x" * 1000)
        assert context.fetch("blob") is None

    def test_discard(self):
        context = ExecutionContext("host", "guest")
        context.store("k", 1)
        context.discard("k")
        assert context.fetch("k") is None

    def test_service_lookup(self):
        context = ExecutionContext("host", "guest", services={"echo": len})
        assert context.service("echo") is len
        with pytest.raises(SandboxViolation):
            context.service("missing")


class TestSandbox:
    def test_successful_run(self):
        sandbox = Sandbox("host")
        context = ExecutionContext("host", "guest")

        def guest(ctx, x):
            ctx.charge(10)
            return x * 2

        result = sandbox.run(guest, context, 21)
        assert result.ok and result.value == 42
        assert result.work_used == 10

    def test_guest_exception_contained(self):
        sandbox = Sandbox("host")
        context = ExecutionContext("host", "guest")

        def guest(ctx):
            raise ValueError("guest bug")

        result = sandbox.run(guest, context)
        assert not result.ok
        assert result.error_type == "ValueError"
        assert "guest bug" in result.error

    def test_budget_violation_reported(self):
        sandbox = Sandbox("host")
        context = ExecutionContext("host", "guest", work_budget=5)

        def greedy(ctx):
            ctx.charge(10)

        result = sandbox.run(greedy, context)
        assert not result.ok
        assert result.error_type == "SandboxViolation"
        assert sandbox.violations == 1

    def test_cpu_seconds_mapping(self):
        sandbox = Sandbox("host")
        context = ExecutionContext("host", "guest")

        def guest(ctx):
            ctx.charge(1_000_000)

        result = sandbox.run(guest, context)
        assert result.cpu_seconds_reference == pytest.approx(1.0)

    def test_execution_counter(self):
        sandbox = Sandbox("host")
        for _ in range(3):
            sandbox.run(lambda ctx: None, ExecutionContext("host", "guest"))
        assert sandbox.executions == 3
