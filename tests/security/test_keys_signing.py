"""Unit tests for keys, capsule signing, and trust stores."""

import random

import pytest

from repro.errors import SignatureInvalid, UntrustedPrincipal
from repro.lmu import build_capsule, code_unit, CodeRepository
from repro.security import (
    KeyPair,
    TrustStore,
    capsule_verification_delay,
    sign_capsule,
    signing_delay,
    verification_delay,
    verify_capsule,
)


def make_capsule():
    repository = CodeRepository()
    repository.publish(
        code_unit("app", "1.0.0", lambda: (lambda ctx: None), 1000)
    )
    return build_capsule("host-a", "cod-reply", ["app"], repository.resolve)


def make_keypair(name="vendor", seed=1):
    return KeyPair.generate(name, random.Random(seed))


class TestKeyPair:
    def test_sign_verify_roundtrip(self):
        keys = make_keypair()
        signature = keys.sign(b"hello")
        assert keys.public_key.verify(b"hello", signature)

    def test_tampered_data_fails(self):
        keys = make_keypair()
        signature = keys.sign(b"hello")
        assert not keys.public_key.verify(b"HELLO", signature)

    def test_wrong_signer_fails(self):
        alice = make_keypair("alice", 1)
        mallory = make_keypair("mallory", 2)
        signature = mallory.sign(b"data")
        assert not alice.public_key.verify(b"data", signature)

    def test_forged_signer_name_fails(self):
        alice = make_keypair("alice", 1)
        mallory = make_keypair("mallory", 2)
        forged = mallory.sign(b"data")
        forged = type(forged)(signer="alice", tag=forged.tag)
        assert not alice.public_key.verify(b"data", forged)

    def test_deterministic_generation(self):
        assert (
            make_keypair(seed=3).sign(b"x").tag == make_keypair(seed=3).sign(b"x").tag
        )

    def test_empty_principal_rejected(self):
        with pytest.raises(ValueError):
            KeyPair("", b"secret")

    def test_generate_requires_rng(self):
        # The old `rng or random.Random()` fallback minted OS-entropy
        # keys, silently breaking same-seed reproducibility.
        with pytest.raises(TypeError):
            KeyPair.generate("vendor")
        with pytest.raises(ValueError):
            KeyPair.generate("vendor", None)

    def test_same_seed_worlds_mint_identical_keys(self):
        from repro.core import World, standard_host

        fingerprints = []
        for _run in range(2):
            world = World(seed=99)
            host = standard_host(world, "phone")
            fingerprints.append(host.keypair.public_key.fingerprint())
        assert fingerprints[0] == fingerprints[1]

    def test_fingerprint_stable(self):
        keys = make_keypair()
        assert keys.public_key.fingerprint() == keys.public_key.fingerprint()


class TestTrustStore:
    def test_trust_and_lookup(self):
        store = TrustStore()
        keys = make_keypair()
        store.trust(keys.public_key)
        assert store.trusts("vendor")
        assert store.key_of("vendor") is keys.public_key

    def test_untrusted_lookup_raises(self):
        with pytest.raises(UntrustedPrincipal):
            TrustStore().key_of("stranger")

    def test_revoke(self):
        store = TrustStore()
        store.trust(make_keypair().public_key)
        store.revoke("vendor")
        assert not store.trusts("vendor")
        store.revoke("vendor")  # idempotent

    def test_principals_sorted(self):
        store = TrustStore()
        store.trust(make_keypair("zed", 1).public_key)
        store.trust(make_keypair("amy", 2).public_key)
        assert store.principals() == ["amy", "zed"]


class TestCapsuleSigning:
    def test_signed_capsule_verifies(self):
        keys = make_keypair()
        capsule = make_capsule()
        sign_capsule(keys, capsule)
        store = TrustStore()
        store.trust(keys.public_key)
        assert verify_capsule(store, capsule) == "vendor"

    def test_unsigned_capsule_rejected(self):
        store = TrustStore()
        with pytest.raises(SignatureInvalid):
            verify_capsule(store, make_capsule())

    def test_untrusted_signer_rejected(self):
        keys = make_keypair()
        capsule = make_capsule()
        sign_capsule(keys, capsule)
        with pytest.raises(UntrustedPrincipal):
            verify_capsule(TrustStore(), capsule)

    def test_tampered_capsule_rejected(self):
        keys = make_keypair()
        capsule = make_capsule()
        sign_capsule(keys, capsule)
        capsule.tamper()
        store = TrustStore()
        store.trust(keys.public_key)
        with pytest.raises(SignatureInvalid):
            verify_capsule(store, capsule)

    def test_signature_adds_wire_bytes(self):
        capsule = make_capsule()
        before = capsule.size_bytes
        sign_capsule(make_keypair(), capsule)
        assert capsule.size_bytes > before


class TestDelayModel:
    def test_delays_grow_with_size(self):
        assert signing_delay(1_000_000) > signing_delay(1_000)
        assert verification_delay(1_000_000) > verification_delay(1_000)

    def test_faster_cpu_is_faster(self):
        assert signing_delay(1000, cpu_speed=2.0) < signing_delay(1000, cpu_speed=1.0)

    def test_capsule_verification_delay_positive(self):
        assert capsule_verification_delay(make_capsule()) > 0
