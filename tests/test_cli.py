"""Tests for the ``python -m repro`` command-line interface."""

import subprocess
import sys

import pytest

from repro.__main__ import build_parser, main


class TestCliInProcess:
    def test_info_returns_zero(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro 1.0.0" in out
        assert "E1-E10" in out

    def test_assess_defaults(self, capsys):
        assert main(["assess"]) == 0
        out = capsys.readouterr().out
        assert "Paradigm assessment" in out
        assert "winner" in out

    def test_assess_flags_change_output(self, capsys):
        main(["assess", "--interactions", "1", "--code-bytes", "500000"])
        out = capsys.readouterr().out
        assert "n=1" in out

    def test_no_command_prints_help(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().out.lower()

    def test_parser_knows_all_commands(self):
        parser = build_parser()
        text = parser.format_help()
        for command in (
            "info", "demo", "assess", "report", "compare", "trace",
        ):
            assert command in text

    def test_module_docstring_enumerates_all_commands(self):
        # The top-level --help body is the module docstring; every
        # registered subcommand must appear there.
        import repro.__main__ as cli

        parser = build_parser()
        actions = [
            action for action in parser._actions
            if hasattr(action, "choices") and action.choices
        ]
        for command in actions[0].choices:
            assert f"``{command}``" in cli.__doc__, (
                f"subcommand {command!r} missing from CLI docs"
            )


class TestReportCliErrors:
    def test_unknown_name_exits_nonzero_with_message(self, capsys):
        assert main(["report", "no-such-report-anywhere"]) == 1
        err = capsys.readouterr().err
        assert "no report named" in err

    def test_corrupt_json_exits_nonzero_not_traceback(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{definitely not json")
        assert main(["report", str(bad)]) == 1
        err = capsys.readouterr().err
        assert "not valid JSON" in err

    def test_schema_mismatch_exits_nonzero(self, tmp_path, capsys):
        future = tmp_path / "future.json"
        future.write_text('{"schema": 99, "name": "x", "metrics": {}}')
        assert main(["report", str(future)]) == 1
        err = capsys.readouterr().err
        assert "newer than this code" in err

    def test_non_report_object_exits_nonzero(self, tmp_path, capsys):
        not_report = tmp_path / "list.json"
        not_report.write_text("[1, 2, 3]")
        assert main(["report", str(not_report)]) == 1
        assert "expected a JSON object" in capsys.readouterr().err

    def test_valid_report_still_renders(self, tmp_path, capsys):
        from repro.obs import RunReport

        path = str(tmp_path / "ok.json")
        RunReport("tiny", metrics={"a.b": 1.0}).write(path)
        assert main(["report", path]) == 0
        assert "run report — tiny" in capsys.readouterr().out


def _write_traced_report(path):
    """A tiny two-call traced run, captured as a full report."""
    from repro.core import World, mutual_trust, standard_host
    from repro.net import Position, WIFI_ADHOC
    from repro.obs import RunReport

    world = World(seed=3, trace_enabled=True)
    world.transport._rng.random = lambda: 0.999
    a = standard_host(world, "a", Position(0, 0), [WIFI_ADHOC])
    b = standard_host(world, "b", Position(10, 0), [WIFI_ADHOC])
    mutual_trust(a, b)
    b.register_service("echo", lambda args, host: (args, 32))

    def go():
        for index in range(2):
            yield from a.component("cs").call("b", "echo", index)

    process = world.env.process(go())
    world.run(until=process)
    world.run(until=world.now + 5.0)
    report = RunReport.capture("traced", world, created_at=world.env.now)
    report.write(str(path))
    return str(path)


class TestTraceCli:
    @pytest.fixture(scope="class")
    def traced_report(self, tmp_path_factory):
        return _write_traced_report(
            tmp_path_factory.mktemp("trace") / "traced.json"
        )

    def test_summary(self, traced_report, capsys):
        assert main(["trace", "summary", traced_report]) == 0
        out = capsys.readouterr().out
        assert "latency attribution" in out
        assert "trace.critical_path.p99" in out

    def test_summary_strict_passes_on_clean_run(self, traced_report, capsys):
        assert main(["trace", "summary", traced_report, "--strict"]) == 0

    def test_critical_path(self, traced_report, capsys):
        assert main(
            ["trace", "critical-path", traced_report, "--top", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "cs.call" in out
        assert "total" in out

    def test_slowest(self, traced_report, capsys):
        assert main(["trace", "slowest", traced_report, "-n", "2"]) == 0
        out = capsys.readouterr().out
        assert "slowest invocations" in out

    def test_export_chrome_stdout(self, traced_report, capsys):
        import json

        assert main(["trace", "export", traced_report]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["traceEvents"]
        assert document["displayTimeUnit"] == "ms"

    def test_export_chrome_to_file(self, traced_report, tmp_path, capsys):
        import json

        out_path = tmp_path / "trace.json"
        assert main(
            [
                "trace", "export", traced_report,
                "--format", "chrome", "--out", str(out_path), "--strict",
            ]
        ) == 0
        with open(out_path) as handle:
            document = json.load(handle)
        assert any(event["ph"] == "X" for event in document["traceEvents"])

    def test_unknown_report_exits_nonzero(self, capsys):
        assert main(["trace", "summary", "no-such-report-anywhere"]) == 1
        assert "no report named" in capsys.readouterr().err

    def test_spanless_report_exits_nonzero(self, tmp_path, capsys):
        from repro.obs import RunReport

        path = str(tmp_path / "bare.json")
        RunReport("bare", metrics={"a": 1.0}).write(path)
        assert main(["trace", "summary", path]) == 1
        assert "no spans" in capsys.readouterr().err

    def test_corrupt_json_exits_nonzero(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        assert main(["trace", "summary", str(bad)]) == 1
        assert "not valid JSON" in capsys.readouterr().err


class TestCliSubprocess:
    def test_module_entry_point(self):
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "info"],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert completed.returncode == 0
        assert "logical-mobility middleware" in completed.stdout


class TestWorldSummary:
    def test_summary_combines_metrics_and_fleet(self):
        from repro.core import World, mutual_trust, standard_host
        from repro.net import Position, WIFI_ADHOC

        world = World(seed=3)
        world.transport._rng.random = lambda: 0.999
        a = standard_host(world, "a", Position(0, 0), [WIFI_ADHOC])
        b = standard_host(world, "b", Position(10, 0), [WIFI_ADHOC])
        mutual_trust(a, b)
        b.register_service("s", lambda args, host: (1, 100))

        def go():
            yield from a.component("cs").call("b", "s")

        process = world.env.process(go())
        world.run(until=process)
        world.run(until=world.now + 2.0)  # let ack bookkeeping settle
        summary = world.summary()
        assert summary["world.nodes"] == 2.0
        assert summary["fleet.bytes_sent"] > 0
        assert summary["fleet.bytes_sent"] == summary["fleet.bytes_received"]
        assert summary["cs.calls"] == 1


class TestBatteryCrash:
    def test_flat_battery_takes_host_down(self):
        from repro.core import Battery, ContextMonitor, World, standard_host
        from repro.net import Position, WIFI_ADHOC

        world = World(seed=4)
        host = standard_host(
            world,
            "h",
            Position(0, 0),
            [WIFI_ADHOC],
            battery=Battery(capacity_joules=1.0, idle_watts=0.5),
        )
        ContextMonitor(host, interval=1.0, crash_on_empty_battery=True)
        world.run(until=10.0)
        assert host.battery.empty
        assert not host.node.up

    def test_without_flag_host_stays_up(self):
        from repro.core import Battery, ContextMonitor, World, standard_host
        from repro.net import Position, WIFI_ADHOC

        world = World(seed=4)
        host = standard_host(
            world,
            "h",
            Position(0, 0),
            [WIFI_ADHOC],
            battery=Battery(capacity_joules=1.0, idle_watts=0.5),
        )
        ContextMonitor(host, interval=1.0)
        world.run(until=10.0)
        assert host.battery.empty
        assert host.node.up
