"""Tests for the ``python -m repro`` command-line interface."""

import subprocess
import sys

import pytest

from repro.__main__ import build_parser, main


class TestCliInProcess:
    def test_info_returns_zero(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro 1.0.0" in out
        assert "E1-E10" in out

    def test_assess_defaults(self, capsys):
        assert main(["assess"]) == 0
        out = capsys.readouterr().out
        assert "Paradigm assessment" in out
        assert "winner" in out

    def test_assess_flags_change_output(self, capsys):
        main(["assess", "--interactions", "1", "--code-bytes", "500000"])
        out = capsys.readouterr().out
        assert "n=1" in out

    def test_no_command_prints_help(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().out.lower()

    def test_parser_knows_all_commands(self):
        parser = build_parser()
        text = parser.format_help()
        for command in ("info", "demo", "assess"):
            assert command in text


class TestCliSubprocess:
    def test_module_entry_point(self):
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "info"],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert completed.returncode == 0
        assert "logical-mobility middleware" in completed.stdout


class TestWorldSummary:
    def test_summary_combines_metrics_and_fleet(self):
        from repro.core import World, mutual_trust, standard_host
        from repro.net import Position, WIFI_ADHOC

        world = World(seed=3)
        world.transport._rng.random = lambda: 0.999
        a = standard_host(world, "a", Position(0, 0), [WIFI_ADHOC])
        b = standard_host(world, "b", Position(10, 0), [WIFI_ADHOC])
        mutual_trust(a, b)
        b.register_service("s", lambda args, host: (1, 100))

        def go():
            yield from a.component("cs").call("b", "s")

        process = world.env.process(go())
        world.run(until=process)
        world.run(until=world.now + 2.0)  # let ack bookkeeping settle
        summary = world.summary()
        assert summary["world.nodes"] == 2.0
        assert summary["fleet.bytes_sent"] > 0
        assert summary["fleet.bytes_sent"] == summary["fleet.bytes_received"]
        assert summary["cs.calls"] == 1


class TestBatteryCrash:
    def test_flat_battery_takes_host_down(self):
        from repro.core import Battery, ContextMonitor, World, standard_host
        from repro.net import Position, WIFI_ADHOC

        world = World(seed=4)
        host = standard_host(
            world,
            "h",
            Position(0, 0),
            [WIFI_ADHOC],
            battery=Battery(capacity_joules=1.0, idle_watts=0.5),
        )
        ContextMonitor(host, interval=1.0, crash_on_empty_battery=True)
        world.run(until=10.0)
        assert host.battery.empty
        assert not host.node.up

    def test_without_flag_host_stays_up(self):
        from repro.core import Battery, ContextMonitor, World, standard_host
        from repro.net import Position, WIFI_ADHOC

        world = World(seed=4)
        host = standard_host(
            world,
            "h",
            Position(0, 0),
            [WIFI_ADHOC],
            battery=Battery(capacity_joules=1.0, idle_watts=0.5),
        )
        ContextMonitor(host, interval=1.0)
        world.run(until=10.0)
        assert host.battery.empty
        assert host.node.up
