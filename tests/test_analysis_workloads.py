"""Unit tests for the analysis helpers and workload generators."""

import random

import pytest

from repro.analysis import crossover, format_value, render_series, render_table
from repro.core import World
from repro.net import Area
from repro.workloads import TASK_CLASSES, adhoc_fleet, mixed_tasks, zipf_indices


class TestFormatValue:
    def test_bools(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"

    def test_large_floats_grouped(self):
        assert format_value(1234567.0) == "1,234,567"

    def test_small_floats_scientific(self):
        assert "e" in format_value(0.0001)

    def test_zero(self):
        assert format_value(0.0) == "0"

    def test_strings_passthrough(self):
        assert format_value("abc") == "abc"


class TestRenderTable:
    def test_contains_title_headers_and_cells(self):
        text = render_table(
            "My Table", ["x", "value"], [[1, 10.0], [2, 20.0]], note="hello"
        )
        assert "My Table" in text
        assert "value" in text
        assert "20.0" in text
        assert "note: hello" in text

    def test_columns_aligned(self):
        text = render_table("T", ["a", "b"], [[1, 2], [100, 200]])
        lines = text.splitlines()
        # All data lines equal width.
        widths = {len(line) for line in lines[2:]}
        assert len(widths) == 1

    def test_empty_rows_ok(self):
        text = render_table("T", ["a"], [])
        assert "T" in text


class TestRenderSeries:
    def test_merges_x_values(self):
        text = render_series(
            "Fig",
            "x",
            [
                ("up", [(1, 10), (2, 20)]),
                ("down", [(1, 20), (3, 5)]),
            ],
        )
        assert "Fig" in text
        assert "up" in text and "down" in text
        # x=3 appears even though "up" has no point there.
        assert "3" in text


class TestCrossover:
    def test_finds_first_win(self):
        a = [(1, 10), (2, 20), (3, 30)]
        b = [(1, 25), (2, 25), (3, 25)]
        assert crossover(a, b) == 3

    def test_none_when_never_wins(self):
        a = [(1, 10), (2, 20)]
        b = [(1, 100), (2, 100)]
        assert crossover(a, b) is None

    def test_immediate_win(self):
        a = [(1, 10)]
        b = [(1, 5)]
        assert crossover(a, b) == 1


class TestZipf:
    def test_count_and_range(self):
        rng = random.Random(1)
        draws = zipf_indices(rng, 10, 500)
        assert len(draws) == 500
        assert all(0 <= index < 10 for index in draws)

    def test_head_is_hotter_than_tail(self):
        rng = random.Random(2)
        draws = zipf_indices(rng, 10, 2000)
        assert draws.count(0) > draws.count(9) * 2

    def test_deterministic_under_seed(self):
        assert zipf_indices(random.Random(3), 5, 50) == zipf_indices(
            random.Random(3), 5, 50
        )

    def test_empty_catalogue_rejected(self):
        with pytest.raises(ValueError):
            zipf_indices(random.Random(0), 0, 10)

    def test_higher_exponent_more_skew(self):
        flat = zipf_indices(random.Random(4), 10, 2000, exponent=0.1)
        skewed = zipf_indices(random.Random(4), 10, 2000, exponent=2.5)
        assert skewed.count(0) > flat.count(0)


class TestAdhocFleet:
    def test_builds_trusting_fleet(self):
        world = World(seed=5)
        hosts = adhoc_fleet(world, 4, Area(100, 100))
        assert len(hosts) == 4
        # Mutual trust: any host trusts any other's key.
        assert hosts[0].truststore.trusts("n3")
        assert hosts[3].truststore.trusts("n0")

    def test_grid_placement_deterministic(self):
        world_a = World(seed=5)
        world_b = World(seed=99)
        a = adhoc_fleet(world_a, 5, Area(100, 100), placement="grid")
        b = adhoc_fleet(world_b, 5, Area(100, 100), placement="grid")
        assert [h.node.position for h in a] == [h.node.position for h in b]

    def test_random_placement_inside_area(self):
        world = World(seed=6)
        area = Area(50, 50)
        hosts = adhoc_fleet(world, 10, area)
        assert all(area.contains(h.node.position) for h in hosts)

    def test_unknown_placement_rejected(self):
        world = World(seed=7)
        with pytest.raises(ValueError):
            adhoc_fleet(world, 2, Area(10, 10), placement="teleport")


class TestMixedTasks:
    def test_count_and_classes(self):
        rng = random.Random(8)
        tasks = mixed_tasks(rng, 100)
        assert len(tasks) == 100
        names = {name for name, _profile in tasks}
        assert names <= set(TASK_CLASSES)
        assert len(names) >= 2  # genuinely mixed

    def test_profiles_carry_speeds(self):
        rng = random.Random(9)
        tasks = mixed_tasks(rng, 5, local_speed=0.3, remote_speed=2.0)
        for _name, profile in tasks:
            assert profile.local_speed == 0.3
            assert profile.remote_speed == 2.0

    def test_weights_sum_to_one(self):
        assert sum(spec["weight"] for spec in TASK_CLASSES.values()) == pytest.approx(
            1.0
        )
