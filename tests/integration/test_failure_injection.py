"""Failure injection across the middleware: crashes, partitions, drained
batteries, lease expiry.  These are integration tests — each one builds
a small deployment and breaks it mid-operation."""

import pytest

from repro.core import (
    Battery,
    LookupClient,
    LookupServer,
    World,
    mutual_trust,
    service,
    standard_host,
)
from repro.errors import (
    RequestTimeout,
    TransportTimeout,
    Unreachable,
)
from repro.lmu import CodeRepository, code_unit
from repro.net import GPRS, LAN, Position, WIFI_ADHOC
from tests.core.conftest import loss_free, run


def pair(seed=81):
    world = loss_free(World(seed=seed))
    a = standard_host(world, "a", Position(0, 0), [WIFI_ADHOC])
    b = standard_host(world, "b", Position(20, 0), [WIFI_ADHOC])
    mutual_trust(a, b)
    return world, a, b


class TestCrashMidOperation:
    def test_rev_target_crash_before_reply_times_out(self):
        world, a, b = pair()

        def slow_factory():
            def body(ctx):
                ctx.charge(50_000_000)  # long enough to crash mid-run
                return "done"

            return body

        a.codebase.install(code_unit("slow", "1.0.0", slow_factory, 1000))

        def killer():
            yield world.env.timeout(1.0)
            b.node.crash()

        def go():
            yield from a.component("rev").evaluate("b", ["slow"], timeout=10.0)

        world.env.process(killer())
        with pytest.raises((RequestTimeout, TransportTimeout)):
            run(world, go())

    def test_cod_provider_crash_leaves_client_clean(self):
        world, a, b = pair()
        b.repository = CodeRepository()
        b.repository.publish(
            code_unit("big", "1.0.0", lambda: (lambda ctx: 0), 2_000_000)
        )

        def killer():
            yield world.env.timeout(0.5)
            b.node.crash()

        def go():
            yield from a.component("cod").fetch("b", ["big"], timeout=10.0)

        world.env.process(killer())
        with pytest.raises((RequestTimeout, TransportTimeout)):
            run(world, go())
        assert "big" not in a.codebase  # nothing half-installed

    def test_cs_call_to_crashed_server_unreachable(self):
        world, a, b = pair()
        b.register_service("s", lambda args, host: (1, 8))
        b.node.crash()

        def go():
            yield from a.component("cs").call("b", "s", timeout=5.0)

        with pytest.raises((Unreachable, TransportTimeout)):
            run(world, go())

    def test_server_restart_recovers_service(self):
        world, a, b = pair()
        b.register_service("s", lambda args, host: ("pong", 8))
        b.node.crash()

        def go():
            try:
                yield from a.component("cs").call("b", "s", timeout=5.0)
            except (Unreachable, TransportTimeout):
                pass
            b.node.restart()
            value = yield from a.component("cs").call("b", "s")
            return value

        assert run(world, go()) == "pong"


class TestAgentFailures:
    def test_migration_target_crashes_before_transfer(self):
        from repro.core import Agent

        world, a, b = pair()

        class Hopper(Agent):
            def on_arrival(self, context):
                yield from context.migrate("b")

        b.node.crash()
        runtime = a.component("agents")
        agent_id = runtime.launch(Hopper())
        world.run(until=120.0)
        final = runtime.completed[agent_id]
        assert final["outcome"] == "stranded"

    def test_operations_from_crashed_host_fail_contained(self):
        from repro.core import Agent

        world, a, b = pair()

        class Sleeper(Agent):
            def on_arrival(self, context):
                yield from context.sleep(5.0)
                yield from context.migrate("b")

        runtime = a.component("agents")
        agent_id = runtime.launch(Sleeper())
        world.run(until=1.0)
        a.node.crash()
        world.run(until=120.0)
        final = runtime.completed.get(agent_id)
        # The agent's migration from a dead host fails and is contained
        # (never crashes the simulation).
        assert final is not None
        assert final["outcome"] in ("crashed", "stranded")

    def test_agent_survives_transient_loss(self):
        from repro.core import Agent

        world, a, b = pair()
        # Heavy loss: 50% of transfers drop; reliable transport retries.
        draws = iter([0.0, 0.0, 0.9, 0.9, 0.9, 0.9] * 50)
        world.transport._rng.random = lambda: next(draws)

        class Hopper(Agent):
            def on_arrival(self, context):
                if context.host_id != "b":
                    yield from context.migrate("b")
                self.state["done"] = True
                yield from context.sleep(0)

        runtime_b = b.component("agents")
        agent_id = a.component("agents").launch(Hopper())
        world.run(until=60.0)
        final = runtime_b.completed.get(agent_id)
        assert final is not None and final["done"] is True


class TestLeaseExpiryUnderPartition:
    def test_provider_reregisters_after_partition(self):
        world = loss_free(World(seed=82))
        lus = standard_host(world, "lus", Position(0, 0), [LAN], fixed=True)
        lus.add_component(LookupServer(lease_duration=10.0, sweep_interval=1.0))
        provider = standard_host(world, "prov", Position(0, 0), [GPRS])
        provider.add_component(LookupClient("lus", request_timeout=3.0))
        client = standard_host(world, "cli", Position(0, 0), [GPRS])
        client.add_component(LookupClient("lus"))
        mutual_trust(lus, provider, client)
        provider.node.interface("gprs").attach()
        client.node.interface("gprs").attach()

        def go():
            yield from provider.component("lookup-client").register(
                service("printer", "prov", "p1")
            )
            # Partition the provider long enough for the lease to expire.
            provider.node.interface("gprs").detach()
            yield world.env.timeout(30.0)
            assert not lus.component("lookup-server").registrations
            provider.node.interface("gprs").attach()
            yield world.env.timeout(30.0)
            found = yield from client.component("lookup-client").find("printer")
            return found

        found = run(world, go())
        assert [s.provider for s in found] == ["prov"]
        assert world.metrics.counter("lookup.reregistrations").value >= 1


class TestBatteryDrain:
    def test_compute_and_radio_drain_battery(self):
        world = loss_free(World(seed=83))
        battery = Battery(capacity_joules=100.0, cpu_watts=2.0)
        device = standard_host(
            world, "device", Position(0, 0), [WIFI_ADHOC], battery=battery
        )
        peer = standard_host(world, "peer", Position(10, 0), [WIFI_ADHOC])
        mutual_trust(device, peer)
        peer.register_service("sink", lambda args, host: (None, 8))

        def go():
            yield from device.execute(10_000_000)  # 10 s of CPU at 1.0x
            yield from device.component("cs").call(
                "peer", "sink", "x" * 10_000
            )

        run(world, go())
        assert battery.fraction < 1.0
        assert battery.level_joules < 100.0 - 2.0 * 9.9  # CPU drain happened

    def test_empty_battery_is_observable(self):
        battery = Battery(capacity_joules=1.0, cpu_watts=1.0)
        battery.consume_cpu(2.0)
        assert battery.empty


class TestPartitionMidStream:
    def test_reliable_send_gives_up_when_peer_walks_away(self):
        world, a, b = pair()
        from repro.net import Message

        def walker():
            yield world.env.timeout(0.2)
            b.node.move_to(Position(5000, 0))

        def go():
            yield world.transport.send_reliable(
                Message("a", "b", "bulk", size_bytes=2_000_000),
                max_attempts=3,
            )

        world.env.process(walker())
        with pytest.raises(TransportTimeout):
            run(world, go())

    def test_discovery_empty_after_partition(self):
        world, a, b = pair()
        b.component("discovery").advertise(service("printer", "b", "p"))
        b.node.move_to(Position(5000, 0))

        def go():
            found = yield from a.component("discovery").find("printer")
            return found

        assert run(world, go()) == []
