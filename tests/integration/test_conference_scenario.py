"""System test: an ad-hoc conference hall.

Attendees with Wi-Fi PDAs share session notes through Lime spaces,
subscribe to announcement reactions, discover the hall's printer, and
one attendee sends a late-arriving colleague the slides via a
store-carry-forward agent when the colleague finally walks in.  No
infrastructure anywhere — the paper's ad-hoc story end to end.
"""

import pytest

from repro.apps import DeliveryLog, send_via_agent
from repro.core import World, mutual_trust, service, standard_host
from repro.net import PathMobility, Position, WIFI_ADHOC
from repro.tuplespace import ANY, LimeSpace
from tests.core.conftest import loss_free, run


@pytest.fixture
def hall():
    world = loss_free(World(seed=201))
    # Three attendees seated in the hall, one printer, one late colleague.
    attendees = [
        standard_host(world, f"att{i}", Position(10 * i, 0), [WIFI_ADHOC])
        for i in range(3)
    ]
    printer = standard_host(
        world, "printer", Position(30, 10), [WIFI_ADHOC], fixed=True
    )
    late = standard_host(world, "late", Position(5000, 0), [WIFI_ADHOC])
    everyone = attendees + [printer, late]
    mutual_trust(*everyone)
    for host in attendees + [late]:
        host.add_component(LimeSpace(scan_interval=0.5))
    printer.component("discovery").advertise(
        service("printer", "printer", "hall-laser")
    )
    # The colleague walks in at t=120.
    PathMobility(
        world.env,
        {"late": late.node},
        {"late": [(120.0, Position(60, 0))]},
    )
    world.run(until=2.0)  # engagement settles
    return world, attendees, printer, late


def test_conference_day(hall):
    world, attendees, printer, late = hall
    milestones = {}

    # 1. Attendee 0 announces; the others hear via remote reactions.
    heard = {"att1": [], "att2": []}

    def subscribe(index):
        def go():
            yield from attendees[index].component("lime").react_remote(
                "att0",
                ("announce", ANY),
                lambda item: heard[f"att{index}"].append(item[1]),
            )

        return go

    run(world, subscribe(1)())
    run(world, subscribe(2)())
    attendees[0].component("lime").out(("announce", "keynote moved to 14:00"))
    world.run(until=world.now + 5.0)
    milestones["announcements"] = (heard["att1"], heard["att2"])

    # 2. Notes accumulate; attendee 2 gathers them all federated.
    for index, host in enumerate(attendees):
        host.component("lime").out(("note", host.id, f"insight-{index}"))

    def gather():
        notes = yield from attendees[2].component("lime").federated_rd_all(
            ("note", ANY, ANY)
        )
        return sorted(note[2] for note in notes)

    milestones["notes"] = run(world, gather())

    # 3. The hall printer is discoverable without any lookup server.
    def find_printer():
        found = yield from attendees[1].component("discovery").find("printer")
        return [s.name for s in found]

    milestones["printer"] = run(world, find_printer())

    # 4. Slides for the late colleague ride an agent until they arrive.
    log = DeliveryLog(late)
    send_via_agent(attendees[0], "late", "slides.pdf", ttl=600.0)
    world.run(until=400.0)
    milestones["slides"] = [payload for _v, payload, _t in log.received]

    assert milestones["announcements"] == (
        ["keynote moved to 14:00"],
        ["keynote moved to 14:00"],
    )
    assert milestones["notes"] == ["insight-0", "insight-1", "insight-2"]
    assert milestones["printer"] == ["hall-laser"]
    assert milestones["slides"] == ["slides.pdf"]
    # Everything happened without a single infrastructure byte.
    for host in attendees:
        assert host.node.costs.money == 0.0
