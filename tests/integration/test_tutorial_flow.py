"""The docs/TUTORIAL.md field-survey walkthrough, as an executable test.

If this test breaks, the tutorial is lying to users.
"""

import pytest

from repro import World, mutual_trust
from repro.apps import DeliveryLog, send_via_agent
from repro.core import (
    HandoverManager,
    Outbox,
    PrefetchItem,
    Prefetcher,
    TaskProfile,
    assess,
    pda_host,
    server_host,
)
from repro.lmu import CodeRepository, code_unit
from repro.net import Area, Position, WIFI_INFRA
from repro.tuplespace import ANY, LimeSpace
from tests.core.conftest import loss_free, run


@pytest.fixture
def site():
    world = loss_free(World(seed=221))
    surveyors = [
        pda_host(world, f"surveyor{i}", Position(30.0 * i, 50.0))
        for i in range(4)
    ]
    hq = server_host(world, "hq", Position(0.0, 0.0))
    gate = server_host(
        world, "gate", Position(10.0, 10.0), technologies=[WIFI_INFRA]
    )
    mutual_trust(hq, gate, *surveyors)
    for surveyor in surveyors:
        surveyor.add_component(LimeSpace(scan_interval=0.5))
        surveyor.add_component(Outbox(flush_interval=1.0))
        HandoverManager(surveyor, "hq", interval=1.0)
    hq.register_service("upload", lambda args, host: ("ack", 16))
    world.run(until=2.0)
    return world, surveyors, hq, gate


def test_field_survey_walkthrough(site):
    world, surveyors, hq, gate = site
    alice = surveyors[0]

    # §2/3 — take readings, share them through the transient tuple space.
    def collect():
        for surveyor, value in zip(surveyors, (21.5, 22.0, 20.8, 21.1)):
            surveyor.component("lime").out(("reading", surveyor.id, value))
            yield from surveyor.execute(5_000)

    run(world, collect())

    def gather():
        readings = yield from alice.component("lime").federated_rd_all(
            ("reading", ANY, ANY)
        )
        return readings

    readings = run(world, gather())
    # Alice sees her own reading plus every surveyor currently in range.
    assert len(readings) >= 2

    # §4 — queue the upload; it flushes once the hotspot is reachable.
    # Surveyors start near the gate, so wifi-infra coverage exists; the
    # PDA must first associate.
    alice.node.interface("802.11b-infra").attach()
    completion = alice.component("outbox").call_eventually(
        "hq", "upload", [tuple(reading) for reading in readings]
    )

    def await_upload():
        result = yield completion
        return result

    assert run(world, await_upload()) == "ack"

    # §4b — peer messaging across the field rides an agent.
    log = DeliveryLog(surveyors[3])
    send_via_agent(alice, "surveyor3", "meet at the gate", ttl=300.0)
    world.run(until=world.now + 120.0)
    assert "meet at the gate" in [p for _v, p, _t in log.received]

    # §5 — a new decoder appears at HQ; prefetch it over the free link.
    hq.repository = CodeRepository()
    hq.repository.publish(
        code_unit("decoder-x2", "1.0.0", lambda: (lambda ctx: "x2"), 60_000)
    )
    Prefetcher(
        alice, "hq", [PrefetchItem("decoder-x2", 1.0)], check_interval=1.0
    )
    world.run(until=world.now + 15.0)
    assert "decoder-x2" in alice.codebase
    assert alice.node.costs.money == 0.0  # all of it rode free links

    # §6 — the design-time assessment renders and picks a winner.
    report = assess(
        TaskProfile(
            interactions=30,
            request_bytes=128,
            reply_bytes=4_096,
            code_bytes=20_000,
            result_bytes=256,
            work_units=30_000,
            expected_reuses=10,
        )
    )
    assert "winner" in report.render()

    # §7 — observability.
    summary = world.summary()
    assert summary["fleet.bytes_sent"] > 0
    assert summary["world.nodes"] == 6.0
