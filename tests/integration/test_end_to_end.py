"""End-to-end system test: one simulated day on one PDA.

A single simulation in which the same device, moving through town,
exercises every subsystem: handover between hotspot and GPRS, COD
(media codecs), LBS discovery + proxy fetch + CS ordering, an SMS
agent through the message centre, a shopping agent, REV offloading,
and a live middleware hot swap — with milestones asserted along the
way.
"""

import pytest

from repro.apps import (
    LocationAwareBrowser,
    MediaPlayer,
    SmsInbox,
    build_codec_repository,
    make_vendor,
    make_venue,
    send_sms,
    shop_with_agent,
    run_offloaded,
)
from repro.core import (
    Battery,
    Discovery,
    HandoverManager,
    World,
    component_unit,
    mutual_trust,
    standard_host,
)
from repro.lmu import Version
from repro.net import GPRS, LAN, Position, WIFI_ADHOC, WIFI_INFRA
from tests.core.conftest import loss_free, run


class DiscoveryV2(Discovery):
    version = Version(1, 1, 0)


HOME = Position(0, 0)
TOWN = Position(5000, 0)
CINEMA = Position(5000, 40)


@pytest.fixture
def city():
    world = loss_free(World(seed=91))
    pda = standard_host(
        world,
        "pda",
        HOME,
        [WIFI_ADHOC, WIFI_INFRA, GPRS],
        cpu_speed=0.2,
        quota_bytes=600_000,
        battery=Battery(),
    )
    # Home hotspot: an access point bridging ad-hoc radio to the backbone.
    home_ap = standard_host(
        world, "home-ap", Position(10, 0), [WIFI_INFRA, LAN], fixed=True
    )
    pda.node.interface("802.11b-infra").attach()  # associate at home
    media_store = standard_host(
        world, "media-store", Position(0, 0), [LAN], fixed=True,
        repository=build_codec_repository(),
    )
    cinema = standard_host(
        world, "cinema", CINEMA, [WIFI_ADHOC, LAN], fixed=True
    )
    make_venue(cinema, "odeon", ticket_price=7.0)
    centre = standard_host(world, "sms-centre", Position(0, 0), [LAN], fixed=True)
    friend = standard_host(world, "friend", Position(0, 0), [GPRS])
    shops = []
    for index in range(3):
        shop = standard_host(
            world, f"shop{index}", Position(0, 0), [LAN], fixed=True
        )
        make_vendor(shop, {"film-poster": 20.0 - index})
        shops.append(shop)
    compute = standard_host(
        world, "compute", Position(0, 0), [LAN], fixed=True, cpu_speed=4.0
    )
    media_store.repository.publish(component_unit(DiscoveryV2, version="1.1.0"))
    everyone = [pda, home_ap, media_store, cinema, centre, friend, compute] + shops
    mutual_trust(*everyone)
    return world, pda, friend, shops


def test_a_day_in_the_life(city):
    world, pda, friend, shops = city
    HandoverManager(pda, "media-store", interval=1.0)
    player = MediaPlayer(pda, "media-store")
    browser = LocationAwareBrowser(pda)
    inbox_friend = SmsInbox(friend)
    milestones = {}

    def day():
        # 07:00 — at home in the hotspot: play a podcast, codec via COD.
        yield world.env.timeout(2.0)  # handover settles: Wi-Fi, free
        record = yield from player.play("ogg", "morning-news")
        milestones["codec"] = record.outcome
        assert not pda.node.interface("gprs").attached  # free path used

        # 08:00 — walk to town: hotspot lost, GPRS takes over.
        pda.node.move_to(TOWN)
        yield world.env.timeout(5.0)
        milestones["handover"] = pda.node.interface("gprs").attached

        # 09:00 — text a friend through the message centre (friend's
        # phone is off; the agent parks at the centre).
        send_sms(pda, "sms-centre", "friend", "movie tonight?", retry=2.0)
        yield world.env.timeout(10.0)
        friend.node.interface("gprs").attach()
        yield world.env.timeout(20.0)
        milestones["sms"] = list(inbox_friend.texts())

        # 10:00 — buy a poster via a shopping agent over GPRS.
        final = yield from shop_with_agent(
            pda, "film-poster", [shop.id for shop in shops]
        )
        milestones["shopping"] = final["best"]

        # 11:00 — offload a heavy computation to the compute server.
        report = yield from run_offloaded(pda, "compute", 20_000_000)
        milestones["offload"] = report.elapsed_s

        # 12:00 — middleware self-update while running.
        update = yield from pda.component("update").hot_swap(
            "discovery", "media-store", "component:discovery"
        )
        milestones["update"] = (update.downtime_s, update.requests_lost)

        # 19:00 — arrive at the cinema; its UI appears transparently.
        pda.node.move_to(Position(CINEMA.x - 20, CINEMA.y))
        yield world.env.timeout(5.0)
        fresh = yield from browser.look_around()
        milestones["venue"] = [e.description.name for e in fresh]
        receipt = yield from browser.order_tickets("odeon", seats=2)
        milestones["tickets"] = receipt

    run(world, day())

    assert milestones["codec"] == "miss"  # first play fetched the codec
    assert milestones["handover"] is True
    assert milestones["sms"] == ["movie tonight?"]
    assert milestones["shopping"] == ("shop2", 18.0)
    assert milestones["offload"] < 20_000_000 / 1e6 / 0.2  # beat local time
    assert milestones["update"][0] < 0.1
    assert milestones["venue"] == ["odeon"]
    assert milestones["tickets"]["total"] == 14.0
    # The whole day stayed within the device's means.
    assert pda.battery.fraction > 0.1
    assert pda.codebase.used_bytes <= 600_000
    assert pda.node.costs.money > 0  # GPRS segments were metered
    assert str(pda.component("discovery").version) == "1.1.0"
