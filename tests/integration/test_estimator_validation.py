"""Validate the paradigm cost estimators against the simulated middleware.

The adaptation engine (and E7) trusts closed-form estimators.  These
tests run the same task through the *real* simulated middleware under
each paradigm and check that the estimators get the decisions right:
ordering of paradigms, crossover neighbourhood, and traffic magnitudes
within a factor-two band.
"""

import pytest

from repro.core import (
    TaskProfile,
    World,
    estimate_cod,
    estimate_cs,
    estimate_rev,
    mutual_trust,
    standard_host,
)
from repro.lmu import CodeRepository, code_unit
from repro.net import GPRS, LAN, Position
from repro.net.network import _backbone_link
from tests.core.conftest import loss_free, run

REQUEST_BYTES = 200
REPLY_BYTES = 2_000
CODE_BYTES = 40_000
WORK = 20_000
LINK = _backbone_link(GPRS, LAN)


def build():
    world = loss_free(World(seed=191))
    device = standard_host(world, "device", Position(0, 0), [GPRS], cpu_speed=0.2)
    server = standard_host(
        world, "server", Position(0, 0), [LAN], fixed=True, cpu_speed=2.0
    )
    mutual_trust(device, server)
    device.node.interface("gprs").attach()
    server.register_service(
        "step",
        lambda args, host: ({"r": args}, REPLY_BYTES),
        work_units=WORK,
    )
    return world, device, server


def profile(rounds):
    return TaskProfile(
        interactions=rounds,
        request_bytes=REQUEST_BYTES,
        reply_bytes=REPLY_BYTES,
        code_bytes=CODE_BYTES,
        result_bytes=100,
        work_units=WORK,
        local_speed=0.2,
        remote_speed=2.0,
    )


def simulate_cs(rounds):
    world, device, server = build()

    def go():
        for index in range(rounds):
            yield from device.component("cs").call(
                "server", "step", index, request_size=REQUEST_BYTES
            )

    run(world, go())
    return device.node.costs.wireless_bytes(), world.now


def simulate_rev(rounds):
    world, device, server = build()

    def factory():
        def body(ctx):
            for _ in range(rounds):
                ctx.charge(WORK)
            return "done"

        return body

    device.codebase.install(code_unit("task", "1.0.0", factory, CODE_BYTES))

    def go():
        yield from device.component("rev").evaluate("server", ["task"])

    run(world, go())
    return device.node.costs.wireless_bytes(), world.now


class TestEstimatorOrdering:
    def test_cs_vs_rev_winner_matches_simulation(self):
        for rounds in (1, 40):
            cs_sim_bytes, cs_sim_time = simulate_cs(rounds)
            rev_sim_bytes, rev_sim_time = simulate_rev(rounds)
            cs_est = estimate_cs(profile(rounds), LINK)
            rev_est = estimate_rev(profile(rounds), LINK)
            sim_winner = "cs" if cs_sim_time < rev_sim_time else "rev"
            est_winner = "cs" if cs_est.time_s < rev_est.time_s else "rev"
            assert sim_winner == est_winner, f"disagreement at n={rounds}"

    def test_traffic_magnitudes_within_factor_two(self):
        for rounds in (1, 10, 40):
            cs_sim_bytes, _time = simulate_cs(rounds)
            cs_est = estimate_cs(profile(rounds), LINK)
            assert cs_est.wireless_bytes == pytest.approx(
                cs_sim_bytes, rel=1.0
            )
        rev_sim_bytes, _time = simulate_rev(10)
        rev_est = estimate_rev(profile(10), LINK)
        assert rev_est.wireless_bytes == pytest.approx(rev_sim_bytes, rel=1.0)

    def test_cs_time_estimate_tracks_simulation_growth(self):
        _bytes_small, time_small = simulate_cs(2)
        _bytes_large, time_large = simulate_cs(20)
        est_small = estimate_cs(profile(2), LINK).time_s
        est_large = estimate_cs(profile(20), LINK).time_s
        sim_growth = time_large / time_small
        est_growth = est_large / est_small
        assert est_growth == pytest.approx(sim_growth, rel=0.5)

    def test_cod_amortisation_direction_matches(self):
        # The estimator says per-use cost falls with reuse; verify the
        # simulated equivalent: second play of a fetched unit is nearly
        # free compared to the first.
        once = estimate_cod(profile(1), LINK)
        often_profile = TaskProfile(
            interactions=1,
            request_bytes=REQUEST_BYTES,
            reply_bytes=REPLY_BYTES,
            code_bytes=CODE_BYTES,
            result_bytes=100,
            work_units=WORK,
            local_speed=0.2,
            remote_speed=2.0,
            expected_reuses=10,
        )
        often = estimate_cod(often_profile, LINK)
        assert often.money < once.money
        assert often.wireless_bytes < once.wireless_bytes
