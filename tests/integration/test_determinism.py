"""Determinism guarantees: seeded worlds replay identically, and
independent worlds in one process never perturb one another."""

import pytest

from repro.apps import send_via_agent, DeliveryLog
from repro.core import World, mutual_trust, standard_host
from repro.net import Area, Position, RandomWaypoint
from repro.workloads import adhoc_fleet


def run_scenario(seed):
    """A stochastic scenario: mobility + lossy radio + agents."""
    world = World(seed=seed)
    hosts = adhoc_fleet(world, 8, Area(300, 300), placement="random")
    RandomWaypoint(
        world.env,
        [h.node for h in hosts[1:-1]],
        Area(300, 300),
        world.streams,
        speed_range=(1.0, 4.0),
    )
    log = DeliveryLog(hosts[-1])
    send_via_agent(hosts[0], hosts[-1].id, "ping", ttl=120.0)
    world.run(until=150.0)
    return (
        tuple(sorted(payload for _v, payload, _t in log.received)),
        world.metrics.counter("agents.migrations").value,
        round(sum(h.node.costs.total_bytes for h in hosts), 3),
        tuple((round(h.node.position.x, 6), round(h.node.position.y, 6)) for h in hosts),
    )


class TestReplayDeterminism:
    def test_same_seed_same_everything(self):
        assert run_scenario(777) == run_scenario(777)

    def test_different_seed_different_trajectories(self):
        assert run_scenario(777)[3] != run_scenario(778)[3]

    def test_result_independent_of_prior_worlds(self):
        # Run unrelated simulations first; the scenario must not notice.
        baseline = run_scenario(999)
        for noise_seed in (1, 2, 3):
            world = World(seed=noise_seed)
            hosts = adhoc_fleet(world, 4, Area(100, 100))
            send_via_agent(hosts[0], hosts[-1].id, "noise", ttl=30.0)
            world.run(until=40.0)
        assert run_scenario(999) == baseline

    def test_interleaved_worlds_do_not_interfere(self):
        # Build two worlds and advance them alternately; each must match
        # its solo run.
        solo = run_scenario(555)

        world_a = World(seed=555)
        hosts_a = adhoc_fleet(world_a, 8, Area(300, 300), placement="random")
        RandomWaypoint(
            world_a.env,
            [h.node for h in hosts_a[1:-1]],
            Area(300, 300),
            world_a.streams,
            speed_range=(1.0, 4.0),
        )
        log_a = DeliveryLog(hosts_a[-1])
        send_via_agent(hosts_a[0], hosts_a[-1].id, "ping", ttl=120.0)

        world_b = World(seed=42)
        hosts_b = adhoc_fleet(world_b, 5, Area(200, 200))
        send_via_agent(hosts_b[0], hosts_b[-1].id, "other", ttl=60.0)

        for step in range(1, 16):
            world_a.run(until=step * 10.0)
            world_b.run(until=min(step * 10.0, 70.0))

        interleaved = (
            tuple(sorted(payload for _v, payload, _t in log_a.received)),
            world_a.metrics.counter("agents.migrations").value,
            round(sum(h.node.costs.total_bytes for h in hosts_a), 3),
            tuple(
                (round(h.node.position.x, 6), round(h.node.position.y, 6))
                for h in hosts_a
            ),
        )
        assert interleaved == solo
