"""Failure injection: links that flap while components are mid-protocol."""

import pytest

from repro.core import Outbox, World, mutual_trust, standard_host
from repro.net import GPRS, LAN, Position, WIFI_ADHOC
from tests.core.conftest import loss_free


class TestOutboxUnderFlapping:
    def test_entries_survive_repeated_disconnects(self):
        world = loss_free(World(seed=231))
        device = standard_host(world, "device", Position(0, 0), [GPRS])
        device.add_component(Outbox(flush_interval=0.5))
        server = standard_host(world, "server", Position(0, 0), [LAN], fixed=True)
        received = []
        server.register_service(
            "log", lambda args, host: (received.append(args) or "ok", 8)
        )
        mutual_trust(device, server)
        outbox = device.component("outbox")
        for index in range(5):
            outbox.call_eventually("server", "log", index, ttl=600.0)

        def flapper():
            gprs = device.node.interface("gprs")
            for _cycle in range(6):
                gprs.attach()
                yield world.env.timeout(3.0)
                gprs.detach()
                yield world.env.timeout(3.0)
            gprs.attach()

        world.env.process(flapper())
        world.run(until=120.0)
        # At-least-once semantics: every entry arrives; a flap between a
        # server-side execution and its reply may cause a duplicate.
        assert set(received) == {0, 1, 2, 3, 4}
        assert len(received) <= 10
        assert outbox.pending == 0
        assert outbox.expired == 0

    def test_queue_grows_only_while_disconnected(self):
        world = loss_free(World(seed=232))
        device = standard_host(world, "device", Position(0, 0), [GPRS])
        device.add_component(Outbox(flush_interval=0.5))
        server = standard_host(world, "server", Position(0, 0), [LAN], fixed=True)
        server.register_service("log", lambda args, host: ("ok", 8))
        mutual_trust(device, server)
        outbox = device.component("outbox")

        def producer():
            for index in range(10):
                outbox.call_eventually("server", "log", index, ttl=600.0)
                yield world.env.timeout(2.0)

        world.env.process(producer())
        world.run(until=10.0)
        assert outbox.pending >= 4  # disconnected: backlog builds
        device.node.interface("gprs").attach()
        world.run(until=60.0)
        assert outbox.pending == 0


class TestAgentUnderFlapping:
    def test_sms_agent_rides_out_centre_flaps(self):
        from repro.apps import SmsInbox, send_sms

        world = loss_free(World(seed=233))
        sender = standard_host(world, "sender", Position(0, 0), [GPRS])
        centre = standard_host(world, "centre", Position(0, 0), [LAN], fixed=True)
        recipient = standard_host(world, "recipient", Position(0, 0), [GPRS])
        mutual_trust(sender, centre, recipient)
        sender.node.interface("gprs").attach()
        inbox = SmsInbox(recipient)
        send_sms(sender, "centre", "recipient", "persist", retry=1.0)
        world.run(until=10.0)  # agent now parked at the centre

        def flapper():
            for _cycle in range(3):
                centre.node.crash()
                yield world.env.timeout(5.0)
                centre.node.restart()
                yield world.env.timeout(5.0)

        world.env.process(flapper())
        world.run(until=60.0)
        # Centre crashes clear its inbox but hosted agents... the agent
        # lives in the runtime, not the inbox; once the recipient shows
        # up it still delivers.
        recipient.node.interface("gprs").attach()
        world.run(until=150.0)
        assert inbox.texts() == ["persist"]


class TestDiscoveryUnderFlapping:
    def test_cache_smooths_over_short_outages(self):
        from repro.core import service

        world = loss_free(World(seed=234))
        a = standard_host(world, "a", Position(0, 0), [WIFI_ADHOC])
        b = standard_host(world, "b", Position(20, 0), [WIFI_ADHOC])
        mutual_trust(a, b)
        b.component("discovery").advertise(service("printer", "b", "p"))
        results = []

        def seeker():
            for _round in range(6):
                found = yield from a.component("discovery").find(
                    "printer", window=1.0
                )
                results.append(bool(found))
                yield world.env.timeout(4.0)

        def flapper():
            yield world.env.timeout(6.0)
            b.node.crash()
            yield world.env.timeout(6.0)
            b.node.restart()

        world.env.process(seeker())
        world.env.process(flapper())
        world.run(until=60.0)
        # First lookups hit; the cached advert answers during the short
        # outage (cache_ttl 30s); later live lookups hit again.
        assert results[0] is True
        assert all(results)
