"""Tests for the matrix orchestrator: replay identity, merge, failures.

The load-bearing invariant here is **cross-process replay
equivalence**: a job executed in a spawn worker must produce the same
report, byte for byte, as the same job executed in this process.  That
is what makes pooled matrix results interchangeable with serial ones —
and it is exactly the invariant the message-id scoping bug broke
(``net.message._message_ids`` is process-global, so a worker's second
job used to see ids offset by its first job's history).
"""

import itertools
import json
import random

import pytest

from repro.runner import (
    RunMatrix,
    execute_job,
    merge_matrix_report,
    report_bytes,
    resolve_scenario,
    run_matrix,
)

#: Small-fleet chaos params so each job stays in the low milliseconds.
FAST = {"clients": 2, "servers": 1, "requests_per_client": 2}


def _fast_matrix(name="m", seeds=(0, 1), scenarios=("chaos",)):
    return RunMatrix(
        name=name, scenarios=scenarios, seeds=seeds, params=dict(FAST)
    )


# A deliberately nondeterministic scenario: each call returns a fresh
# counter value, so any strict replay must mismatch.  Referenced by
# dotted path to exercise the module:callable resolution too.
_NONDET_CALLS = itertools.count()


def nondet_job(seed, plan=None, **params):
    return {
        "schema": 3,
        "name": "nondet",
        "created_at": 0.0,
        "env": {},
        "params": {},
        "metrics": {"nondet.calls": float(next(_NONDET_CALLS))},
        "kind_counts": {},
        "profile": None,
        "spans": [],
        "series": None,
    }


def not_a_report_job(seed, plan=None, **params):
    return ["not", "a", "dict"]


class TestExecuteJob:
    def test_ok_payload_is_report_dict(self):
        key, status, payload = execute_job(
            {"scenario": "chaos", "seed": 3, "params": dict(FAST)}
        )
        assert (key, status) == ("chaos/default/s3", "ok")
        assert payload["schema"] == 3
        assert "chaos.completion_rate" in payload["metrics"]

    def test_same_process_residue_free(self):
        # The reproducer for the message-id bug: the second job run in
        # a process must match a job run in a fresh scope bit for bit.
        job = {"scenario": "chaos", "seed": 5, "params": dict(FAST)}
        first = execute_job(dict(job))[2]
        second = execute_job(dict(job))[2]
        assert report_bytes(first) == report_bytes(second)

    def test_exception_contained_as_error(self):
        key, status, payload = execute_job(
            {"scenario": "chaos", "seed": 0, "params": {"bogus_kwarg": 1}}
        )
        assert status == "error"
        assert "bogus_kwarg" in payload

    def test_non_dict_return_is_error(self):
        _key, status, payload = execute_job(
            {
                "scenario": "tests.runner.test_orchestrator:not_a_report_job",
                "seed": 0,
            }
        )
        assert status == "error"
        assert "RunReport dict" in payload


class TestResolveScenario:
    def test_builtin_names(self):
        assert callable(resolve_scenario("chaos"))
        assert callable(resolve_scenario("hostile"))

    def test_dotted_path(self):
        fn = resolve_scenario("tests.runner.test_orchestrator:nondet_job")
        assert fn is nondet_job

    def test_unknown_name_lists_known(self):
        with pytest.raises(ValueError, match="chaos, hostile"):
            resolve_scenario("nope")

    def test_dangling_path_raises(self):
        with pytest.raises(ModuleNotFoundError):
            resolve_scenario("no.such.module:fn")
        with pytest.raises(AttributeError):
            resolve_scenario("repro.runner:no_such_fn")


class TestSerialRun:
    def test_all_jobs_complete(self):
        result = run_matrix(_fast_matrix(seeds=(0, 1, 2)))
        assert result.ok and result.verdict == "ok"
        assert sorted(result.reports) == [
            "chaos/default/s0", "chaos/default/s1", "chaos/default/s2",
        ]
        assert result.report["metrics"]["runner.completed_jobs"] == 3.0

    def test_failures_captured_not_raised(self):
        matrix = RunMatrix(name="bad", seeds=(0,), params={"bogus": 1})
        result = run_matrix(matrix)
        assert not result.ok
        assert result.verdict == "failed"
        assert list(result.failures) == ["chaos/default/s0"]
        metrics = result.report["metrics"]
        assert metrics["runner.failures"] == 1.0
        assert metrics['runner.job_ok{job="chaos/default/s0"}'] == 0.0
        verdict = result.to_verdict()
        assert verdict["verdict"] == "failed"
        assert verdict["failures"]

    def test_strict_replay_clean_on_deterministic_scenario(self):
        result = run_matrix(_fast_matrix(), strict=True)
        assert result.ok
        assert result.replayed == 2
        assert result.report["metrics"]["runner.replay_mismatches"] == 0.0

    def test_strict_replay_flags_nondeterminism(self):
        matrix = RunMatrix(
            name="nondet",
            scenarios=("tests.runner.test_orchestrator:nondet_job",),
            seeds=(0, 1),
        )
        result = run_matrix(matrix, strict=True)
        assert not result.ok
        assert len(result.replay_mismatches) == 2
        assert result.report["metrics"]["runner.replay_mismatches"] == 2.0
        assert "REPLAY-MISMATCH" in result.render()

    def test_bad_worker_count_rejected(self):
        with pytest.raises(ValueError):
            run_matrix(_fast_matrix(), workers=0)


class TestPooledRun:
    """Spawn-pool paths: slower (interpreter start per worker), so the
    matrices stay tiny."""

    def test_pooled_jobs_byte_identical_to_in_process(self):
        # The acceptance criterion: a worker-pool job report is byte
        # identical to the same job executed in this process.
        matrix = _fast_matrix(seeds=(0, 1))
        pooled = run_matrix(matrix, workers=2)
        assert pooled.ok and pooled.workers == 2
        for job in matrix.jobs():
            _key, status, local = execute_job(job.to_dict())
            assert status == "ok"
            assert report_bytes(pooled.reports[job.key]) == report_bytes(
                local
            ), f"cross-process divergence for {job.key}"

    def test_merged_report_independent_of_worker_count(self):
        matrix = _fast_matrix(seeds=(2, 3))
        serial = run_matrix(matrix, workers=1)
        pooled = run_matrix(matrix, workers=2)
        assert report_bytes(serial.report) == report_bytes(pooled.report)

    def test_pool_survives_failing_job(self):
        # One seed carries a poison param via a dotted-path scenario
        # that raises inside the worker; the other jobs still land.
        matrix = RunMatrix(
            name="mixed", seeds=(0, 1, 2), params=dict(FAST)
        )
        good = run_matrix(matrix, workers=2)
        assert good.ok
        bad = RunMatrix(name="bad", seeds=(0, 1), params={"bogus": 1})
        result = run_matrix(bad, workers=2)
        assert len(result.failures) == 2
        assert not result.ok


class TestMergeDeterminism:
    def _reports(self):
        matrix = _fast_matrix(seeds=(0, 1, 2))
        result = run_matrix(matrix)
        return matrix, result.reports

    def test_merge_ignores_completion_order(self):
        matrix, reports = self._reports()
        keys = list(reports)
        merged = []
        for ordering in (keys, list(reversed(keys))):
            random.Random(17).shuffle(ordering)
            shuffled = {key: reports[key] for key in ordering}
            merged.append(merge_matrix_report(matrix, shuffled))
        assert report_bytes(merged[0]) == report_bytes(merged[1])

    def test_merge_is_schema_v3_with_job_nodes(self):
        matrix, reports = self._reports()
        document = merge_matrix_report(matrix, reports)
        assert document["schema"] == 3
        assert sorted(document["nodes"]) == sorted(reports)
        for section in document["nodes"].values():
            assert "chaos.completion_rate" in section

    def test_aggregates_cover_every_stat(self):
        matrix, reports = self._reports()
        metrics = merge_matrix_report(matrix, reports)["metrics"]
        for stat in ("min", "p50", "p90", "max", "mean"):
            assert f"agg.chaos.completion_rate.{stat}" in metrics
        assert metrics["agg.chaos.completion_rate.min"] <= metrics[
            "agg.chaos.completion_rate.max"
        ]

    def test_merged_document_is_json_clean(self):
        matrix, reports = self._reports()
        document = merge_matrix_report(matrix, reports)
        assert json.loads(json.dumps(document)) == document

    def test_sim_seconds_total_sums_jobs(self):
        matrix, reports = self._reports()
        metrics = merge_matrix_report(matrix, reports)["metrics"]
        expected = sum(
            report["env"]["sim_time"] for report in reports.values()
        )
        assert metrics["runner.sim_seconds_total"] == pytest.approx(
            expected
        )

    def test_merged_report_loads_as_checked_run_report(self, tmp_path):
        from repro.obs import RunReport

        matrix, reports = self._reports()
        document = merge_matrix_report(matrix, reports)
        path = tmp_path / "matrix.json"
        path.write_text(json.dumps(document))
        loaded = RunReport.load_checked(str(path))
        assert loaded.name == matrix.name
        assert len(loaded.nodes) == len(reports)
