"""Tests for ``python -m repro matrix`` (in-process via ``main``)."""

import json

from repro.__main__ import main

#: Tiny chaos params so every CLI invocation stays fast.
FAST_ARGS = [
    "--param", "clients=2",
    "--param", "servers=1",
    "--param", "requests_per_client=2",
]


class TestMatrixCli:
    def test_flag_built_spec_runs_serial(self, capsys):
        code = main(
            ["matrix", "--scenario", "chaos", "--seeds", "0,1"] + FAST_ARGS
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "verdict: OK" in captured.out
        assert "chaos/default/s0" in captured.out
        assert "2 seed(s)" in captured.err

    def test_spec_file_positional(self, tmp_path, capsys):
        spec = tmp_path / "spec.json"
        spec.write_text(json.dumps({
            "name": "filed",
            "scenarios": ["chaos"],
            "seeds": [0],
            "params": {"clients": 2, "servers": 1,
                       "requests_per_client": 2},
        }))
        assert main(["matrix", str(spec)]) == 0
        assert "filed" in capsys.readouterr().err

    def test_json_verdict(self, capsys):
        code = main(
            ["matrix", "--seeds", "0", "--json", "--strict"] + FAST_ARGS
        )
        assert code == 0
        verdict = json.loads(capsys.readouterr().out)
        assert verdict["verdict"] == "ok"
        assert verdict["jobs"] == 1
        assert verdict["strict"] is True
        assert verdict["replayed"] == 1
        assert verdict["replay_mismatches"] == []

    def test_out_writes_checked_report(self, tmp_path, capsys):
        from repro.obs import RunReport

        out = tmp_path / "merged.json"
        code = main(
            ["matrix", "--seeds", "0..1", "--out", str(out)] + FAST_ARGS
        )
        assert code == 0
        report = RunReport.load_checked(str(out))
        assert report.metrics["runner.completed_jobs"] == 2.0
        assert len(report.nodes) == 2

    def test_seed_range_and_plans(self, capsys):
        code = main(
            ["matrix", "--seeds", "0..2", "--plan", "default",
             "--plan", "none"] + FAST_ARGS
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "chaos/none/s2" in captured.out
        assert "= 6 job(s)" in captured.err

    def test_failing_job_exits_one(self, capsys):
        code = main(["matrix", "--seeds", "0", "--param", "bogus=1"])
        captured = capsys.readouterr()
        assert code == 1
        assert "FAIL chaos/default/s0" in captured.out
        assert "verdict: FAILED" in captured.out

    def test_strict_nondeterminism_exits_one(self, capsys):
        code = main([
            "matrix", "--strict", "--seeds", "0",
            "--scenario", "tests.runner.test_orchestrator:nondet_job",
        ])
        captured = capsys.readouterr()
        assert code == 1
        assert "REPLAY-MISMATCH" in captured.out

    def test_missing_spec_file_is_usage_error(self, capsys):
        assert main(["matrix", "/no/such/spec.json"]) == 2
        assert "bad matrix spec" in capsys.readouterr().err

    def test_corrupt_spec_file_is_usage_error(self, tmp_path, capsys):
        spec = tmp_path / "bad.json"
        spec.write_text("{not json")
        assert main(["matrix", str(spec)]) == 2
        assert "bad matrix spec" in capsys.readouterr().err

    def test_unknown_scenario_is_usage_error(self, capsys):
        assert main(["matrix", "--scenario", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_zero_workers_is_usage_error(self, capsys):
        assert main(["matrix", "--seeds", "0", "--jobs", "0"]) == 2
        assert "workers" in capsys.readouterr().err

    def test_duplicate_seeds_is_usage_error(self, capsys):
        assert main(["matrix", "--seeds", "1,1"]) == 2
        assert "duplicate seeds" in capsys.readouterr().err
