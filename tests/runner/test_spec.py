"""Tests for the run-matrix spec: expansion, round-trip, validation."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runner import (
    MatrixJob,
    RunMatrix,
    plan_label,
    seeds_from_text,
)


class TestPlanLabel:
    def test_default_forms(self):
        assert plan_label(None, 0) == "default"
        assert plan_label("default", 3) == "default"

    def test_none_plan(self):
        assert plan_label("none", 1) == "none"

    def test_inline_dict_is_positional(self):
        assert plan_label({"specs": []}, 2) == "plan2"

    def test_junk_raises(self):
        with pytest.raises(ValueError):
            plan_label(42, 0)


class TestMatrixJob:
    def test_key_shape(self):
        job = MatrixJob(scenario="chaos", seed=7, plan_name="none")
        assert job.key == "chaos/none/s7"

    def test_round_trip(self):
        job = MatrixJob(
            scenario="hostile",
            seed=3,
            plan={"specs": []},
            plan_name="plan1",
            params=(("clients", 2), ("servers", 1)),
        )
        again = MatrixJob.from_dict(job.to_dict())
        assert again == job
        assert again.kwargs == {"clients": 2, "servers": 1}

    def test_from_dict_sorts_params(self):
        job = MatrixJob.from_dict(
            {"scenario": "chaos", "seed": 0, "params": {"b": 2, "a": 1}}
        )
        assert job.params == (("a", 1), ("b", 2))

    def test_from_dict_rejects_non_dict_params(self):
        with pytest.raises(ValueError):
            MatrixJob.from_dict(
                {"scenario": "chaos", "seed": 0, "params": [1, 2]}
            )


class TestRunMatrix:
    def test_expansion_order_is_scenario_plan_seed(self):
        matrix = RunMatrix(
            name="m",
            scenarios=("chaos", "hostile"),
            seeds=(0, 1),
            plans=(None, "none"),
        )
        assert [job.key for job in matrix.jobs()] == [
            "chaos/default/s0",
            "chaos/default/s1",
            "chaos/none/s0",
            "chaos/none/s1",
            "hostile/default/s0",
            "hostile/default/s1",
            "hostile/none/s0",
            "hostile/none/s1",
        ]
        assert len(matrix) == 8

    def test_job_keys_unique(self):
        matrix = RunMatrix(
            name="m", seeds=(0, 1, 2), plans=(None, "none", {"specs": []})
        )
        keys = [job.key for job in matrix]
        assert len(set(keys)) == len(keys)

    def test_params_reach_every_job(self):
        matrix = RunMatrix(name="m", params={"clients": 3})
        assert all(
            job.kwargs == {"clients": 3} for job in matrix.jobs()
        )

    def test_duplicate_seeds_rejected(self):
        with pytest.raises(ValueError, match="duplicate seeds"):
            RunMatrix(name="m", seeds=(1, 1))

    def test_duplicate_plan_labels_rejected(self):
        with pytest.raises(ValueError, match="duplicate plan labels"):
            RunMatrix(name="m", plans=(None, "default"))

    def test_empty_scenarios_rejected(self):
        with pytest.raises(ValueError):
            RunMatrix(name="m", scenarios=())

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            RunMatrix(name="m", seeds=())

    def test_round_trip(self):
        matrix = RunMatrix(
            name="sweep",
            scenarios=("chaos",),
            seeds=(0, 3, 5),
            plans=("default", "none", {"specs": []}),
            params={"clients": 2},
        )
        again = RunMatrix.from_json(matrix.to_json())
        assert again.to_dict() == matrix.to_dict()
        assert [job.key for job in again] == [job.key for job in matrix]

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(
            json.dumps({"name": "filed", "seeds": [1, 2]})
        )
        matrix = RunMatrix.load(str(path))
        assert matrix.name == "filed"
        assert matrix.seeds == (1, 2)

    def test_from_dict_rejects_missing_name(self):
        with pytest.raises(ValueError, match="name"):
            RunMatrix.from_dict({"seeds": [0]})

    def test_from_dict_rejects_non_object(self):
        with pytest.raises(ValueError):
            RunMatrix.from_dict([1, 2])

    def test_describe_counts(self):
        matrix = RunMatrix(name="m", seeds=(0, 1), plans=(None, "none"))
        assert "2 plan(s) x 2 seed(s) = 4 job(s)" in matrix.describe()


class TestSeedsFromText:
    def test_comma_list(self):
        assert seeds_from_text("0,1,5") == (0, 1, 5)

    def test_range(self):
        assert seeds_from_text("0..7") == tuple(range(8))

    def test_single(self):
        assert seeds_from_text("42") == (42,)

    def test_empty_range_raises(self):
        with pytest.raises(ValueError):
            seeds_from_text("5..3")

    def test_garbage_raises(self):
        with pytest.raises(ValueError):
            seeds_from_text("zero")


_json_values = st.one_of(
    st.integers(min_value=-(10**6), max_value=10**6),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=12),
    st.booleans(),
)


class TestSpecProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        name=st.text(min_size=1, max_size=16),
        seeds=st.lists(
            st.integers(min_value=0, max_value=10**6),
            min_size=1,
            max_size=8,
            unique=True,
        ),
        params=st.dictionaries(
            st.text(min_size=1, max_size=8), _json_values, max_size=4
        ),
    )
    def test_json_round_trip_exact(self, name, seeds, params):
        matrix = RunMatrix(name=name, seeds=seeds, params=params)
        again = RunMatrix.from_json(matrix.to_json())
        assert again.to_dict() == matrix.to_dict()
        assert len(again) == len(matrix)

    @settings(max_examples=50, deadline=None)
    @given(
        seeds=st.lists(
            st.integers(min_value=0, max_value=999),
            min_size=1,
            max_size=6,
            unique=True,
        ),
        scenario_count=st.integers(min_value=1, max_value=3),
    )
    def test_expansion_size_and_uniqueness(self, seeds, scenario_count):
        scenarios = tuple(f"scenario{i}" for i in range(scenario_count))
        matrix = RunMatrix(name="m", scenarios=scenarios, seeds=seeds)
        jobs = matrix.jobs()
        assert len(jobs) == len(scenarios) * len(seeds)
        assert len({job.key for job in jobs}) == len(jobs)
        # Expansion is deterministic: same spec, same order.
        assert [job.key for job in matrix.jobs()] == [
            job.key for job in jobs
        ]
