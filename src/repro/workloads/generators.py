"""Workload generators shared by the experiment benchmarks."""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple

from ..core import MobileHost, TaskProfile, World, mutual_trust, standard_host
from ..net import Area, LinkTechnology, WIFI_ADHOC, grid_positions


def zipf_indices(
    rng: random.Random, catalogue_size: int, count: int, exponent: float = 1.0
) -> List[int]:
    """``count`` catalogue indices drawn Zipf(``exponent``) — index 0 hottest."""
    if catalogue_size <= 0:
        raise ValueError("catalogue must be non-empty")
    weights = [1.0 / (rank + 1) ** exponent for rank in range(catalogue_size)]
    total = sum(weights)
    cumulative = []
    acc = 0.0
    for weight in weights:
        acc += weight / total
        cumulative.append(acc)
    draws = []
    for _ in range(count):
        u = rng.random()
        for index, threshold in enumerate(cumulative):
            if u <= threshold:
                draws.append(index)
                break
        else:  # floating point tail
            draws.append(catalogue_size - 1)
    return draws


def adhoc_fleet(
    world: World,
    count: int,
    area: Area,
    technologies: Sequence[LinkTechnology] = (WIFI_ADHOC,),
    placement: str = "random",
    prefix: str = "n",
    cpu_speed: float = 0.5,
) -> List[MobileHost]:
    """``count`` mutually trusting ad-hoc hosts placed in ``area``.

    ``placement`` is ``"random"`` (from the world's seeded stream) or
    ``"grid"`` (deterministic, for density sweeps).
    """
    if placement == "grid":
        positions = grid_positions(count, area)
    elif placement == "random":
        rng = world.streams.stream("fleet.placement")
        positions = [area.random_position(rng) for _ in range(count)]
    else:
        raise ValueError(f"unknown placement {placement!r}")
    hosts = [
        standard_host(
            world,
            f"{prefix}{index}",
            positions[index],
            technologies,
            cpu_speed=cpu_speed,
        )
        for index in range(count)
    ]
    mutual_trust(*hosts)
    return hosts


#: The mixed task classes of experiment E7, with generation weights.
TASK_CLASSES: Dict[str, dict] = {
    # Quick one-shot lookups: CS territory.
    "lookup": dict(
        interactions=1,
        request_bytes=128,
        reply_bytes=512,
        code_bytes=40_000,
        result_bytes=256,
        work_units=5_000,
        expected_reuses=1,
        weight=0.4,
    ),
    # Chatty bulk processing over many rounds: REV territory.
    "bulk": dict(
        interactions=80,
        request_bytes=512,
        reply_bytes=4_096,
        code_bytes=25_000,
        result_bytes=512,
        work_units=20_000,
        expected_reuses=1,
        weight=0.25,
    ),
    # A capability exercised over and over: COD territory.
    "capability": dict(
        interactions=2,
        request_bytes=128,
        reply_bytes=1_024,
        code_bytes=60_000,
        result_bytes=128,
        work_units=3_000,
        expected_reuses=50,
        weight=0.25,
    ),
    # Multi-host errands: MA territory.
    "errand": dict(
        interactions=4,
        request_bytes=128,
        reply_bytes=6_000,
        code_bytes=12_000,
        result_bytes=256,
        work_units=5_000,
        expected_reuses=1,
        hosts_to_visit=5,
        weight=0.1,
    ),
}


def mixed_tasks(
    rng: random.Random,
    count: int,
    local_speed: float = 0.2,
    remote_speed: float = 1.0,
) -> List[Tuple[str, TaskProfile]]:
    """A randomized stream of (class name, profile) pairs for E7."""
    names = list(TASK_CLASSES)
    weights = [TASK_CLASSES[name]["weight"] for name in names]
    tasks = []
    for _ in range(count):
        name = rng.choices(names, weights=weights)[0]
        spec = {
            key: value
            for key, value in TASK_CLASSES[name].items()
            if key != "weight"
        }
        profile = TaskProfile(
            local_speed=local_speed, remote_speed=remote_speed, **spec
        )
        tasks.append((name, profile))
    return tasks
