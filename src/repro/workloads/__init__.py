"""Workload generators for the experiment suite."""

from .generators import TASK_CLASSES, adhoc_fleet, mixed_tasks, zipf_indices

__all__ = ["TASK_CLASSES", "adhoc_fleet", "mixed_tasks", "zipf_indices"]
