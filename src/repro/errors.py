"""Exception hierarchy shared by every subsystem of :mod:`repro`.

Every error raised by this library derives from :class:`ReproError`, so
applications can catch one base class.  Subsystems define their own
narrower subclasses here (rather than in their own packages) so that the
hierarchy can be inspected in one place and no import cycles arise
between substrate packages.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the repro library."""


# ---------------------------------------------------------------------------
# Simulation kernel
# ---------------------------------------------------------------------------


class SimulationError(ReproError):
    """Base class for errors raised by the discrete-event kernel."""


class StopSimulation(SimulationError):
    """Raised internally to halt :meth:`Environment.run` at a target event."""

    def __init__(self, value: object = None) -> None:
        super().__init__(value)
        self.value = value


class EmptySchedule(SimulationError):
    """The event queue ran dry before the requested stop condition."""


class Interrupt(SimulationError):
    """Thrown into a process that another process interrupted.

    The interrupting party supplies ``cause``; the interrupted generator
    receives this exception at its current yield point.
    """

    def __init__(self, cause: object = None) -> None:
        super().__init__(cause)

    @property
    def cause(self) -> object:
        """The value passed to :meth:`Process.interrupt`."""
        return self.args[0]


# ---------------------------------------------------------------------------
# Network substrate
# ---------------------------------------------------------------------------


class NetworkError(ReproError):
    """Base class for network-substrate failures."""


class Unreachable(NetworkError):
    """No usable link currently exists towards the destination."""


class TransportTimeout(NetworkError):
    """A reliable-delivery attempt exhausted its retry/time budget."""


class MessageTooLarge(NetworkError):
    """Payload exceeds the interface's maximum transfer size."""


# ---------------------------------------------------------------------------
# Logical mobility units
# ---------------------------------------------------------------------------


class CodebaseError(ReproError):
    """Base class for codebase / LMU packaging failures."""


class UnitNotFound(CodebaseError):
    """The requested code or data unit is not present in the codebase."""


class VersionConflict(CodebaseError):
    """An installation would clash with an incompatible installed version."""


class DependencyError(CodebaseError):
    """Dependency closure could not be computed (missing or cyclic)."""


class QuotaExceeded(CodebaseError):
    """Installing a unit would exceed the host's storage quota."""


# ---------------------------------------------------------------------------
# Security
# ---------------------------------------------------------------------------


class SecurityError(ReproError):
    """Base class for security-layer failures."""


class SignatureInvalid(SecurityError):
    """A capsule's signature does not verify against its contents."""


class UntrustedPrincipal(SecurityError):
    """The signer is not present in the verifier's trust store."""


class PolicyViolation(SecurityError):
    """The security policy forbids the attempted operation."""


class SandboxViolation(SecurityError):
    """Sandboxed code exceeded its resource budget or escaped its rights."""


# ---------------------------------------------------------------------------
# Middleware core
# ---------------------------------------------------------------------------


class MiddlewareError(ReproError):
    """Base class for middleware-core failures."""


class ServiceNotFound(MiddlewareError):
    """Discovery produced no provider for the requested service type."""


class RequestTimeout(MiddlewareError):
    """A request/reply exchange received no answer within its deadline."""


class RemoteExecutionError(MiddlewareError):
    """A remotely evaluated unit raised; carries the remote traceback text."""

    def __init__(self, message: str, remote_error: str = "") -> None:
        super().__init__(message)
        self.remote_error = remote_error


class MigrationError(MiddlewareError):
    """An agent migration failed (refused, unreachable, or lost)."""


class ComponentError(MiddlewareError):
    """A middleware component could not be installed, started, or swapped."""


# ---------------------------------------------------------------------------
# Tuple space
# ---------------------------------------------------------------------------


class TupleSpaceError(ReproError):
    """Base class for tuple-space failures."""
