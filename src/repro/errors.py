"""Exception hierarchy shared by every subsystem of :mod:`repro`.

Every error raised by this library derives from :class:`ReproError`, so
applications can catch one base class.  Subsystems define their own
narrower subclasses here (rather than in their own packages) so that the
hierarchy can be inspected in one place and no import cycles arise
between substrate packages.

This module also owns the **wire marshalling registry** used by the
invocation pipeline (:mod:`repro.core.invocation`): a remote failure
crosses the network as a plain payload dict and is rebuilt into a typed
exception on the caller's side.  :func:`to_wire` serialises any
exception; :func:`from_wire` reverses it, falling back to
:class:`RemoteExecutionError` for error types this process does not
know.  Paradigm modules must not hand-roll ``{"error_type": ...}``
dict literals — a guard test enforces that the registry stays the only
place wire payloads are shaped.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Type

#: Wire payload key carrying the registered exception type name.
WIRE_TYPE_KEY = "error_type"
#: Wire payload key carrying the human-readable error text.
WIRE_ERROR_KEY = "error"
#: Wire payload key carrying the remote traceback text, when one exists.
WIRE_REMOTE_KEY = "remote_error"

#: Registered name -> exception class (populated automatically for every
#: :class:`ReproError` subclass; see :func:`register_wire_error`).
_WIRE_TYPES: Dict[str, Type["ReproError"]] = {}


def register_wire_error(cls: Type["ReproError"]) -> Type["ReproError"]:
    """Register ``cls`` for wire round-tripping under its class name.

    Every :class:`ReproError` subclass registers itself on definition;
    this hook exists for plugins defining exception types outside this
    module.  Returns ``cls`` so it can be used as a decorator.
    """
    _WIRE_TYPES[cls.__name__] = cls
    return cls


def wire_error_types() -> Mapping[str, Type["ReproError"]]:
    """A read-only view of the registered wire error types."""
    return dict(_WIRE_TYPES)


class ReproError(Exception):
    """Base class of every exception raised by the repro library."""

    def __init_subclass__(cls, **kwargs: object) -> None:
        super().__init_subclass__(**kwargs)
        register_wire_error(cls)


register_wire_error(ReproError)


# ---------------------------------------------------------------------------
# Simulation kernel
# ---------------------------------------------------------------------------


class SimulationError(ReproError):
    """Base class for errors raised by the discrete-event kernel."""


class StopSimulation(SimulationError):
    """Raised internally to halt :meth:`Environment.run` at a target event."""

    def __init__(self, value: object = None) -> None:
        super().__init__(value)
        self.value = value


class EmptySchedule(SimulationError):
    """The event queue ran dry before the requested stop condition."""


class Interrupt(SimulationError):
    """Thrown into a process that another process interrupted.

    The interrupting party supplies ``cause``; the interrupted generator
    receives this exception at its current yield point.
    """

    def __init__(self, cause: object = None) -> None:
        super().__init__(cause)

    @property
    def cause(self) -> object:
        """The value passed to :meth:`Process.interrupt`."""
        return self.args[0]


# ---------------------------------------------------------------------------
# Network substrate
# ---------------------------------------------------------------------------


class NetworkError(ReproError):
    """Base class for network-substrate failures."""


class Unreachable(NetworkError):
    """No usable link currently exists towards the destination."""


class TransportTimeout(NetworkError):
    """A reliable-delivery attempt exhausted its retry/time budget."""


class MessageTooLarge(NetworkError):
    """Payload exceeds the interface's maximum transfer size."""


# ---------------------------------------------------------------------------
# Logical mobility units
# ---------------------------------------------------------------------------


class CodebaseError(ReproError):
    """Base class for codebase / LMU packaging failures."""


class UnitNotFound(CodebaseError):
    """The requested code or data unit is not present in the codebase."""


class VersionConflict(CodebaseError):
    """An installation would clash with an incompatible installed version."""


class DependencyError(CodebaseError):
    """Dependency closure could not be computed (missing or cyclic)."""


class QuotaExceeded(CodebaseError):
    """Installing a unit would exceed the host's storage quota."""


# ---------------------------------------------------------------------------
# Security
# ---------------------------------------------------------------------------


class SecurityError(ReproError):
    """Base class for security-layer failures."""


class SignatureInvalid(SecurityError):
    """A capsule's signature does not verify against its contents."""


class UntrustedPrincipal(SecurityError):
    """The signer is not present in the verifier's trust store."""


class PolicyViolation(SecurityError):
    """The security policy forbids the attempted operation."""


class SandboxViolation(SecurityError):
    """Sandboxed code exceeded its resource budget or escaped its rights."""


# ---------------------------------------------------------------------------
# Middleware core
# ---------------------------------------------------------------------------


class MiddlewareError(ReproError):
    """Base class for middleware-core failures."""


class ServiceNotFound(MiddlewareError):
    """Discovery produced no provider for the requested service type."""


class RequestTimeout(MiddlewareError):
    """A request/reply exchange received no answer within its deadline."""


class RemoteExecutionError(MiddlewareError):
    """A remotely evaluated unit raised; carries the remote traceback text."""

    def __init__(self, message: str, remote_error: str = "") -> None:
        super().__init__(message)
        self.remote_error = remote_error


class MigrationError(MiddlewareError):
    """An agent migration failed (refused, unreachable, or lost)."""


class ComponentError(MiddlewareError):
    """A middleware component could not be installed, started, or swapped."""


# ---------------------------------------------------------------------------
# Tuple space
# ---------------------------------------------------------------------------


class TupleSpaceError(ReproError):
    """Base class for tuple-space failures."""


# ---------------------------------------------------------------------------
# Exception <-> wire marshalling
# ---------------------------------------------------------------------------


def to_wire(error: BaseException) -> Dict[str, object]:
    """Serialise ``error`` into the payload dict shipped in error replies.

    Registered :class:`ReproError` subclasses travel under their class
    name and are rebuilt as the same type by :func:`from_wire`; foreign
    exceptions (application/guest code) keep their class name too, but
    the receiving side falls back to :class:`RemoteExecutionError` since
    it cannot (and should not) reconstruct arbitrary types.
    """
    text = str(error) or type(error).__name__
    if not isinstance(error, ReproError):
        # Foreign errors keep the "ClassName: message" remote-traceback
        # shape applications expect in ``remote_error``.
        text = f"{type(error).__name__}: {error}"
    payload: Dict[str, object] = {
        WIRE_ERROR_KEY: text,
        WIRE_TYPE_KEY: type(error).__name__,
    }
    remote = getattr(error, "remote_error", "")
    if remote:
        payload[WIRE_REMOTE_KEY] = str(remote)
    return payload


def remote_failure(text: str, error_type: str = "") -> Dict[str, object]:
    """The wire payload for a failure that only exists as *text* remotely.

    Used when the remote side holds an error string rather than a live
    exception (a sandboxed guest's converted failure): the caller always
    rebuilds it as :class:`RemoteExecutionError` carrying the text.
    """
    payload: Dict[str, object] = {
        WIRE_ERROR_KEY: text,
        WIRE_TYPE_KEY: "RemoteExecutionError",
        WIRE_REMOTE_KEY: text,
    }
    if error_type:
        payload["remote_error_type"] = error_type
    return payload


def from_wire(payload: Optional[Mapping[str, object]]) -> "ReproError":
    """Rebuild the typed exception carried by an error-reply payload.

    Unknown (or missing) ``error_type`` values — application exception
    classes, skewed versions — fall back to
    :class:`RemoteExecutionError` with the remote text attached, so a
    caller can always ``except ReproError``.
    """
    payload = payload or {}
    name = str(payload.get(WIRE_TYPE_KEY, ""))
    text = str(payload.get(WIRE_ERROR_KEY, "")) or "remote failure"
    remote = str(payload.get(WIRE_REMOTE_KEY, "") or text)
    cls = _WIRE_TYPES.get(name)
    if cls is None:
        return RemoteExecutionError(text, remote_error=remote)
    try:
        error = cls(text)
    except TypeError:  # a subclass with a stricter constructor
        return RemoteExecutionError(text, remote_error=remote)
    if isinstance(error, RemoteExecutionError):
        error.remote_error = remote
    return error
