"""Lime-style transiently shared tuple spaces (the data-sharing baseline).

Each host carries a local :class:`TupleSpace`.  When hosts come into
ad-hoc range they *engage*: federated queries then span the union of
engaged spaces — remote matches travel back as messages, which is
exactly the property E9 measures (the tuple space moves *data* to the
query, where REV moves *code* to the data).

This is the paper's characterisation of Lime: a flat tuple space shared
across connected hosts, with location parameters for remote out, and no
security layer.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Set, Tuple

from ..errors import TupleSpaceError
from ..lmu.serializer import estimate_size
from ..net import ConnectivityMonitor, Message
from ..core.components import Component, MessageHandler
from .space import Template, TupleSpace, as_template

KIND_QUERY = "lime.query"
KIND_REPLY = "lime.reply"
KIND_OUT = "lime.out"
KIND_REACT = "lime.react"
KIND_UNREACT = "lime.unreact"
KIND_EVENT = "lime.event"


class LimeSpace(Component):
    """Host-level tuple space with Lime-style engagement."""

    kind = "lime"
    code_size = 9_000

    def __init__(self, scan_interval: float = 1.0) -> None:
        super().__init__()
        self.scan_interval = scan_interval
        self.space: Optional[TupleSpace] = None
        #: Host ids currently engaged (in ad-hoc range).
        self.engaged: Set[str] = set()
        self._monitor: Optional[ConnectivityMonitor] = None
        #: Remote reactions we registered elsewhere: id -> listener.
        self._remote_listeners: Dict[int, object] = {}
        #: Reactions peers registered here: id -> (subscriber, unsubscribe).
        self._served_reactions: Dict[int, tuple] = {}
        self._reaction_counter = 0

    def start(self) -> None:
        super().start()
        host = self.require_host()
        self.space = TupleSpace(self.env, name=f"its:{host.id}")
        self._monitor = ConnectivityMonitor(
            self.env,
            host.world.network,
            host.node,
            interval=self.scan_interval,
            metrics=host.world.metrics,
            trace=host.world.trace,
        )
        self._monitor.subscribe(self._on_peer_change)

    def handlers(self) -> Dict[str, MessageHandler]:
        return {
            KIND_QUERY: self._handle_query,
            KIND_OUT: self._handle_out,
            KIND_REACT: self._handle_react,
            KIND_UNREACT: self._handle_unreact,
            KIND_EVENT: self._handle_event,
        }

    def _on_peer_change(self, peer_id: str, appeared: bool) -> None:
        host = self.require_host()
        if appeared:
            self.engaged.add(peer_id)
            host.world.metrics.counter("lime.engagements").increment()
        else:
            self.engaged.discard(peer_id)
            host.world.metrics.counter("lime.disengagements").increment()

    # -- local operations ------------------------------------------------------------

    def out(self, item: Tuple) -> None:
        """Insert into the local space."""
        self._space().out(item)

    def rdp(self, template: object) -> Optional[Tuple]:
        return self._space().rdp(template)

    def inp(self, template: object) -> Optional[Tuple]:
        return self._space().inp(template)

    # -- federated operations -----------------------------------------------------------

    def out_to(self, peer_id: str, item: Tuple) -> Generator:
        """Lime's located out: place a tuple in a *remote* engaged space."""
        host = self.require_host()
        if peer_id not in self.engaged:
            raise TupleSpaceError(
                f"{host.id}: peer {peer_id} is not engaged"
            )
        message = Message(
            source=host.id,
            destination=peer_id,
            kind=KIND_OUT,
            payload={"tuple": item},
            size_bytes=estimate_size(item),
        )
        yield host.send(message)

    def federated_rd_all(
        self, template: object, timeout: float = 5.0
    ) -> Generator:
        """Read all matches across the local and engaged spaces.

        Remote tuples are *copied* over the radio — the byte cost this
        baseline pays.  Unreachable peers are skipped silently, as in
        Lime's transient sharing.
        """
        return (
            yield from self._federated(template, take=False, timeout=timeout)
        )

    def federated_in_all(
        self, template: object, timeout: float = 5.0
    ) -> Generator:
        """Take all matches across the local and engaged spaces."""
        return (
            yield from self._federated(template, take=True, timeout=timeout)
        )

    def _federated(
        self, template: object, take: bool, timeout: float
    ) -> Generator:
        host = self.require_host()
        pattern = as_template(template)
        local = (
            self._space().in_all(pattern) if take else self._space().rd_all(pattern)
        )
        results: List[Tuple] = list(local)
        for peer_id in sorted(self.engaged):
            message = Message(
                source=host.id,
                destination=peer_id,
                kind=KIND_QUERY,
                payload={"fields": pattern.fields, "take": take},
                size_bytes=estimate_size(pattern.fields) + 16,
            )
            try:
                reply = yield from host.request(message, timeout=timeout)
            except Exception:  # noqa: BLE001 - transient sharing: skip peer
                continue
            results.extend((reply.payload or {}).get("tuples", []))
        host.world.metrics.counter("lime.federated_queries").increment()
        return results

    # -- remote reactions ---------------------------------------------------------------

    def react_remote(self, peer_id: str, template: object, listener) -> Generator:
        """Register interest in matching ``out``s at an engaged peer.

        Lime's hallmark: ``listener(tuple)`` fires *here* whenever a
        matching tuple is written into the peer's space.  Returns a
        reaction id usable with :meth:`unreact_remote` (generator
        helper).
        """
        host = self.require_host()
        if peer_id not in self.engaged:
            raise TupleSpaceError(f"{host.id}: peer {peer_id} is not engaged")
        pattern = as_template(template)
        self._reaction_counter += 1
        reaction_id = self._reaction_counter
        message = Message(
            source=host.id,
            destination=peer_id,
            kind=KIND_REACT,
            payload={"fields": pattern.fields, "reaction_id": reaction_id},
            size_bytes=estimate_size(pattern.fields) + 24,
        )
        yield from host.request(message)
        self._remote_listeners[reaction_id] = listener
        host.world.metrics.counter("lime.remote_reactions").increment()
        return reaction_id

    def unreact_remote(self, peer_id: str, reaction_id: int) -> Generator:
        """Withdraw a remote reaction (generator helper)."""
        host = self.require_host()
        self._remote_listeners.pop(reaction_id, None)
        message = Message(
            source=host.id,
            destination=peer_id,
            kind=KIND_UNREACT,
            payload={"reaction_id": reaction_id},
            size_bytes=32,
        )
        yield from host.request(message)

    def _handle_react(self, message: Message) -> Generator:
        host = self.require_host()
        payload = message.payload or {}
        pattern = Template(*payload.get("fields", ()))
        reaction_id = payload.get("reaction_id")
        subscriber = message.source

        def forward(item: Tuple) -> None:
            event = Message(
                source=host.id,
                destination=subscriber,
                kind=KIND_EVENT,
                payload={"reaction_id": reaction_id, "tuple": item},
                size_bytes=estimate_size(item) + 24,
            )
            # Fire-and-forget: transient sharing tolerates a lost event.
            host.send(event, reliable=False)

        unsubscribe = self._space().react(pattern, forward)
        self._served_reactions[reaction_id] = (subscriber, unsubscribe)
        yield host.reply_to(message, KIND_REPLY, payload={"ok": True}, size_bytes=16)

    def _handle_unreact(self, message: Message) -> Generator:
        reaction_id = (message.payload or {}).get("reaction_id")
        entry = self._served_reactions.pop(reaction_id, None)
        if entry is not None:
            _subscriber, unsubscribe = entry
            unsubscribe()
        host = self.require_host()
        yield host.reply_to(message, KIND_REPLY, payload={"ok": True}, size_bytes=16)

    def _handle_event(self, message: Message) -> Generator:
        payload = message.payload or {}
        listener = self._remote_listeners.get(payload.get("reaction_id"))
        if listener is not None:
            listener(payload.get("tuple"))
        return
        yield  # pragma: no cover - generator protocol

    # -- message handling -------------------------------------------------------------------

    def _handle_query(self, message: Message) -> Generator:
        host = self.require_host()
        payload = message.payload or {}
        pattern = Template(*payload.get("fields", ()))
        if payload.get("take"):
            matches = self._space().in_all(pattern)
        else:
            matches = self._space().rd_all(pattern)
        yield host.reply_to(
            message,
            KIND_REPLY,
            payload={"tuples": matches},
            size_bytes=sum(estimate_size(item) for item in matches) + 16,
        )

    def _handle_out(self, message: Message) -> Generator:
        item = (message.payload or {}).get("tuple")
        if isinstance(item, tuple):
            self._space().out(item)
        return
        yield  # pragma: no cover - generator protocol

    def _space(self) -> TupleSpace:
        if self.space is None:
            raise TupleSpaceError(
                f"lime component on {self.require_host().id} not started"
            )
        return self.space
