"""A Linda tuple space: the data-sharing primitive Lime builds on.

Tuples are plain Python tuples; templates match positionally with
exact values, the :data:`ANY` wildcard, types (match by isinstance),
or predicates.  Blocking ``rd``/``in_`` return kernel events so
processes can wait for a match.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ..errors import TupleSpaceError
from ..lmu.serializer import estimate_size
from ..sim import Environment, Event


class _AnyValue:
    """Wildcard matching any field value."""

    def __repr__(self) -> str:
        return "ANY"


ANY = _AnyValue()


class Template:
    """A positional pattern over tuples."""

    def __init__(self, *fields: object) -> None:
        self.fields = fields

    def matches(self, candidate: Tuple) -> bool:
        if not isinstance(candidate, tuple):
            return False
        if len(candidate) != len(self.fields):
            return False
        for pattern, value in zip(self.fields, candidate):
            if pattern is ANY:
                continue
            if isinstance(pattern, type):
                if not isinstance(value, pattern):
                    return False
                continue
            if callable(pattern) and not isinstance(pattern, type):
                try:
                    if not pattern(value):
                        return False
                except Exception:
                    return False
                continue
            if pattern != value:
                return False
        return True

    def __repr__(self) -> str:
        return f"Template{self.fields!r}"


def as_template(template: object) -> Template:
    """Accept a :class:`Template` or a plain tuple of patterns."""
    if isinstance(template, Template):
        return template
    if isinstance(template, tuple):
        return Template(*template)
    raise TupleSpaceError(f"not a template: {template!r}")


#: A reaction callback: fired with the tuple that triggered it.
Reaction = Callable[[Tuple], None]


class TupleSpace:
    """One host's local tuple space."""

    def __init__(self, env: Environment, name: str = "ts") -> None:
        self.env = env
        self.name = name
        self.tuples: List[Tuple] = []
        self._waiters: List[Tuple[Template, Event, bool]] = []
        self._reactions: List[Tuple[Template, Reaction]] = []

    def __len__(self) -> int:
        return len(self.tuples)

    @property
    def size_bytes(self) -> int:
        """Modelled storage footprint of the space's contents."""
        return sum(estimate_size(item) for item in self.tuples)

    # -- writes ---------------------------------------------------------------

    def out(self, item: Tuple) -> None:
        """Insert a tuple, waking matching waiters and firing reactions."""
        if not isinstance(item, tuple):
            raise TupleSpaceError(f"only tuples can be out(): {item!r}")
        self.tuples.append(item)
        self._serve_waiters()
        for template, reaction in list(self._reactions):
            if template.matches(item):
                reaction(item)

    # -- non-blocking reads ------------------------------------------------------

    def rdp(self, template: object) -> Optional[Tuple]:
        """Non-blocking read: a matching tuple, or None (not removed)."""
        pattern = as_template(template)
        for item in self.tuples:
            if pattern.matches(item):
                return item
        return None

    def inp(self, template: object) -> Optional[Tuple]:
        """Non-blocking take: remove and return a match, or None."""
        pattern = as_template(template)
        for index, item in enumerate(self.tuples):
            if pattern.matches(item):
                del self.tuples[index]
                return item
        return None

    def rd_all(self, template: object) -> List[Tuple]:
        """All currently matching tuples (not removed)."""
        pattern = as_template(template)
        return [item for item in self.tuples if pattern.matches(item)]

    def in_all(self, template: object) -> List[Tuple]:
        """Remove and return all currently matching tuples."""
        pattern = as_template(template)
        taken = [item for item in self.tuples if pattern.matches(item)]
        self.tuples = [item for item in self.tuples if not pattern.matches(item)]
        return taken

    # -- blocking reads -------------------------------------------------------------

    def rd(self, template: object) -> Event:
        """Blocking read: an event firing with a matching tuple."""
        return self._wait(as_template(template), take=False)

    def in_(self, template: object) -> Event:
        """Blocking take: an event firing with the removed tuple."""
        return self._wait(as_template(template), take=True)

    def _wait(self, pattern: Template, take: bool) -> Event:
        event = Event(self.env)
        existing = self.inp(pattern) if take else self.rdp(pattern)
        if existing is not None:
            event.succeed(existing)
            return event
        self._waiters.append((pattern, event, take))
        return event

    def _serve_waiters(self) -> None:
        remaining = []
        for pattern, event, take in self._waiters:
            if event.triggered:
                continue
            found = self.inp(pattern) if take else self.rdp(pattern)
            if found is not None:
                event.succeed(found)
            else:
                remaining.append((pattern, event, take))
        self._waiters = remaining

    # -- reactions -------------------------------------------------------------------

    def react(self, template: object, reaction: Reaction) -> Callable[[], None]:
        """Fire ``reaction(tuple)`` for every future matching ``out``.

        Returns an unsubscribe callable.
        """
        entry = (as_template(template), reaction)
        self._reactions.append(entry)

        def unsubscribe() -> None:
            if entry in self._reactions:
                self._reactions.remove(entry)

        return unsubscribe
