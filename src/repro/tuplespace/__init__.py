"""Linda tuple space plus Lime-style federation (comparison baseline).

The paper positions Lime as related work whose "flat tuple space …
limits the processing that can be made on the shared information"; this
package provides a faithful-enough Lime stand-in to measure that claim
(experiment E9) and to serve as an alternative coordination substrate.
"""

from .lime import LimeSpace
from .space import ANY, Template, TupleSpace, as_template

__all__ = ["ANY", "LimeSpace", "Template", "TupleSpace", "as_template"]
