"""repro — a logical-mobility middleware for mobile computing.

A complete, from-scratch reproduction of the system described in
S. Zachariadis, C. Mascolo & W. Emmerich, *Exploiting Logical Mobility
in Mobile Computing Middleware* (ICDCS Workshops 2002): a discrete-
event simulated world of fixed and mobile devices, a middleware that
plugs in the four code-mobility paradigms (Client/Server, Remote
Evaluation, Code On Demand, Mobile Agents), decentralised and
centralised service discovery, signed code capsules, a protected agent
environment, context awareness, paradigm assessment, and dynamic
middleware self-update.

Quickstart::

    from repro import World, standard_host, mutual_trust
    from repro.net import WIFI_ADHOC, Position

    world = World(seed=7)
    alice = standard_host(world, "alice", Position(0, 0), [WIFI_ADHOC])
    bob = standard_host(world, "bob", Position(30, 0), [WIFI_ADHOC])
    mutual_trust(alice, bob)
    bob.register_service("greet", lambda args, host: (f"hello {args}", 64))

    def app():
        reply = yield from alice.component("cs").call("bob", "greet", "alice")
        return reply

    process = world.env.process(app())
    print(world.run(until=process))  # -> "hello alice"

Subpackages:

* :mod:`repro.sim`        — discrete-event kernel;
* :mod:`repro.net`        — link technologies, mobility, transport;
* :mod:`repro.lmu`        — logical mobility units, capsules, codebases;
* :mod:`repro.security`   — signatures, trust, policy, sandbox;
* :mod:`repro.core`       — the middleware itself;
* :mod:`repro.faults`     — deterministic fault injection and chaos;
* :mod:`repro.tuplespace` — Linda/Lime data-sharing baseline;
* :mod:`repro.apps`       — the paper's five scenario applications;
* :mod:`repro.workloads`  — experiment workload generators;
* :mod:`repro.analysis`   — table/series rendering for experiments.
"""

from .core import (
    Agent,
    AgentRuntime,
    Battery,
    ClientServer,
    CodeOnDemand,
    Component,
    Discovery,
    ItineraryAgent,
    LookupClient,
    LookupServer,
    MobileHost,
    ParadigmSelector,
    RemoteEvaluation,
    TaskProfile,
    UpdateManager,
    World,
    mutual_trust,
    service,
    standard_host,
)
from .errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "Agent",
    "AgentRuntime",
    "Battery",
    "ClientServer",
    "CodeOnDemand",
    "Component",
    "Discovery",
    "ItineraryAgent",
    "LookupClient",
    "LookupServer",
    "MobileHost",
    "ParadigmSelector",
    "RemoteEvaluation",
    "ReproError",
    "TaskProfile",
    "UpdateManager",
    "World",
    "__version__",
    "mutual_trust",
    "service",
    "standard_host",
]
