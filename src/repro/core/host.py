"""The mobile host: the middleware runtime on one device.

A :class:`MobileHost` ties a network node to a codebase, a security
identity, a sandbox, a context registry, and a set of pluggable
components.  It runs the dispatch loop that routes inbound messages to
component handlers, correlates request/reply exchanges, gates inbound
capsules through policy and signature checks, and meters CPU and
battery for everything executed locally.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, Generator, Optional, Tuple

from ..errors import (
    ComponentError,
    MiddlewareError,
    RequestTimeout,
    SecurityError,
    TransportTimeout,
    Unreachable,
)
from ..lmu import Capsule, Codebase, CodeRepository
from ..net import Message, NetworkNode
from ..security import (
    ExecuteResult,
    ExecutionContext,
    InProcessProvider,
    KeyPair,
    QuotaGrant,
    SandboxProvider,
    SecurityPolicy,
    SessionInfo,
    SIGNED_POLICY,
    StrictProvider,
    TrustStore,
    WORK_UNITS_PER_SECOND,
    capsule_verification_delay,
    verify_capsule,
)
from ..sim import Event, Process
from .components import Component, MessageHandler
from .context import Battery, ContextRegistry
from .world import World

#: A CS service handler: (request payload, server host) -> (result, size).
ServiceHandler = Callable[[object, "MobileHost"], Tuple[object, int]]


class MobileHost:
    """The middleware runtime on one network node."""

    def __init__(
        self,
        world: World,
        node: NetworkNode,
        policy: SecurityPolicy = SIGNED_POLICY,
        quota_bytes: float = float("inf"),
        battery: Optional[Battery] = None,
        keypair: Optional[KeyPair] = None,
        repository: Optional[CodeRepository] = None,
    ) -> None:
        self.world = world
        self.env = world.env
        self.node = node
        self.policy = policy
        self.battery = battery
        self.codebase = Codebase(
            quota_bytes=quota_bytes, now=lambda: self.env.now
        )
        self.truststore = TrustStore()
        #: Pluggable guest-execution substrate: provider name ->
        #: :class:`~repro.security.SandboxProvider`.  Which provider a
        #: guest runs under is decided by the principal's
        #: :class:`~repro.security.QuotaGrant` (see ``run_guest``).
        self.providers: Dict[str, SandboxProvider] = {
            "inprocess": InProcessProvider(node.id, metrics=world.metrics),
            "strict": StrictProvider(node.id, metrics=world.metrics),
        }
        #: Last observed metered work per task name, fed into the
        #: paradigm cost model so the selector prices CPU it has seen,
        #: not just the task's declared estimate.
        self._observed_work: Dict[str, float] = {}
        self.keypair = keypair or KeyPair.generate(
            node.id, world.streams.stream(f"keys.{node.id}")
        )
        #: Publishable catalogue, for hosts that serve COD (may be None).
        self.repository = repository
        self.components: Dict[str, Component] = {}
        self._handlers: Dict[str, MessageHandler] = {}
        self._pending: Dict[int, Event] = {}
        #: Correlation ids of requests this host issued and has since
        #: closed (resolved, timed out, or abandoned on a send error),
        #: mapped to the request's message kind.  A late or duplicate
        #: reply to a closed request is *stale*: it must be discarded
        #: here, not fall through to the kind handlers where it could
        #: double-resolve work (the chaos duplicate-delivery injector
        #: is the reproducer).  Bounded FIFO so a long run cannot grow
        #: it without limit.
        self._closed_requests: "OrderedDict[int, str]" = OrderedDict()
        self._closed_requests_limit = 1024
        #: CS services offered locally: name -> (handler, work units).
        self.services: Dict[str, Tuple[ServiceHandler, float]] = {}
        self.context = ContextRegistry(now=lambda: self.env.now)
        self.unhandled_messages = 0
        self.rejected_capsules = 0
        # Per-node labeled children of the host metric families, cached
        # once: each update lands on the ``{node=...}`` series *and*
        # forwards to the flat family total, so fleet-wide figures stay
        # identical while health monitors see individual hosts.
        metrics = world.metrics
        labels = {"node": node.id}
        self._m_request_rtt = metrics.histogram("host.request_rtt", labels=labels)
        self._m_request_timeouts = metrics.counter(
            "host.request_timeouts", labels=labels
        )
        self._m_stale_replies = metrics.counter(
            "host.stale_replies", labels=labels
        )
        self._m_corrupt_discarded = metrics.counter(
            "host.corrupt_discarded", labels=labels
        )
        self._m_unhandled = metrics.counter("host.unhandled", labels=labels)
        self._m_handler_errors = metrics.counter(
            "host.handler_errors", labels=labels
        )
        self._m_verifications = metrics.counter(
            "security.verifications", labels=labels
        )
        self._m_verify_seconds = metrics.histogram(
            "security.verify_seconds", labels=labels
        )
        self._m_rejections = metrics.counter(
            "security.rejections", labels=labels
        )
        self._dispatcher = self.env.process(
            self._dispatch_loop(), name=f"dispatch:{node.id}"
        )
        world.hosts[node.id] = self

    @property
    def id(self) -> str:
        return self.node.id

    def __repr__(self) -> str:
        return f"<MobileHost {self.id} components={sorted(self.components)}>"

    # -- component management ---------------------------------------------------

    def add_component(self, component: Component, start: bool = True) -> Component:
        """Attach (and by default start) a component, wiring its handlers."""
        if component.kind in self.components:
            raise ComponentError(
                f"host {self.id} already has a {component.kind!r} component"
            )
        component.attach(self)
        self.components[component.kind] = component
        for kind, handler in component.handlers().items():
            if kind in self._handlers:
                raise ComponentError(
                    f"message kind {kind!r} already handled on {self.id}"
                )
            self._handlers[kind] = handler
        if start:
            component.start()
        return component

    def remove_component(self, kind: str) -> Component:
        """Stop and detach a component, unwiring its handlers."""
        try:
            component = self.components.pop(kind)
        except KeyError:
            raise ComponentError(
                f"host {self.id} has no {kind!r} component"
            ) from None
        if component.started:
            component.stop()
        for message_kind in component.handlers():
            self._handlers.pop(message_kind, None)
        component.host = None
        return component

    def component(self, kind: str) -> Component:
        try:
            return self.components[kind]
        except KeyError:
            raise ComponentError(
                f"host {self.id} has no {kind!r} component"
            ) from None

    def paradigm_component(
        self, paradigm: str, required: bool = True
    ) -> Optional[Component]:
        """The installed component executing paradigm ``paradigm``.

        Looked up by the component's declared :attr:`~Component.paradigm`
        (not its registry kind), so a plugged-in fifth paradigm is found
        the same way the built-in four are.  Only components satisfying
        the :class:`~repro.core.invocation.Paradigm` protocol (an
        ``invoke`` entry point) qualify.
        """
        for component in self.components.values():
            if (
                getattr(component, "paradigm", None) == paradigm
                and hasattr(component, "invoke")
            ):
                return component
        if required:
            raise ComponentError(
                f"host {self.id} has no component for paradigm "
                f"{paradigm!r}"
            )
        return None

    # -- CS service registry -----------------------------------------------------

    def register_service(
        self, name: str, handler: ServiceHandler, work_units: float = 1000.0
    ) -> None:
        """Offer a CS service: ``handler(args, host) -> (result, size)``.

        ``work_units`` is the modelled CPU cost of serving one request.
        """
        if name in self.services:
            raise MiddlewareError(f"service {name!r} already registered on {self.id}")
        self.services[name] = (handler, work_units)

    def unregister_service(self, name: str) -> None:
        self.services.pop(name, None)

    # -- messaging ----------------------------------------------------------------

    def send(self, message: Message, reliable: bool = True) -> Process:
        """Send a message, charging the battery for the radio bytes."""
        if self.battery is not None:
            self.battery.consume_radio(message.wire_size)
        if reliable:
            return self.world.transport.send_reliable(message)
        return self.world.transport.send(message)

    def request(
        self,
        message: Message,
        timeout: float = 30.0,
        parent: object = None,
        attempt: int = 1,
    ) -> Generator:
        """Send ``message`` and wait for its reply (generator helper).

        Returns the reply :class:`Message`.  Raises
        :class:`~repro.errors.Unreachable` /
        :class:`~repro.errors.TransportTimeout` when the request cannot
        be delivered, and :class:`~repro.errors.RequestTimeout` when no
        reply arrives within ``timeout``.

        ``parent`` (a span or span context) makes the exchange a child
        of the caller's span; the request's span context travels inside
        the message so the remote side joins the same trace.
        ``attempt`` is the 1-based retry index the invocation pipeline
        passes so each exchange span says which attempt it was.
        """
        tracer = self.world.tracer
        span = tracer.start(
            "host.request",
            self.id,
            parent=parent if parent is not None else message.trace_context,
            msg=message.kind,
            msg_id=message.id,
            attempt=attempt,
            to=message.destination,
        )
        if message.trace_context is None:
            message.trace_context = tracer.context(span)
        started = self.env.now
        reply_event = self.env.event()
        self._pending[message.id] = reply_event
        try:
            yield self.send(message)
        except (Unreachable, TransportTimeout) as error:
            self._close_request(message)
            tracer.finish(span, status="error", error=type(error).__name__)
            raise
        timeout_event = self.env.timeout(timeout)
        fired = yield self.env.any_of([reply_event, timeout_event])
        self._close_request(message)
        if reply_event in fired:
            self._m_request_rtt.observe(self.env.now - started)
            tracer.finish(span)
            return reply_event.value
        self._m_request_timeouts.increment()
        tracer.finish(span, status="error", error="RequestTimeout")
        raise RequestTimeout(
            f"{self.id}: no reply to {message.kind} #{message.id} from "
            f"{message.destination} within {timeout}s"
        )

    def _close_request(self, message: Message) -> None:
        """Retire a request's correlation id (every ``request`` exit).

        The id moves from the pending map to the bounded closed set so
        the dispatch loop can tell a *stale* reply (late duplicate to a
        request already resolved or abandoned) from a reply correlating
        with someone else's exchange.
        """
        self._pending.pop(message.id, None)
        closed = self._closed_requests
        closed[message.id] = message.kind
        if len(closed) > self._closed_requests_limit:
            closed.popitem(last=False)

    def _discard_stale_reply(self, message: Message) -> None:
        """Count and trace a reply to an already-closed request."""
        request_kind = self._closed_requests[message.in_reply_to]
        metrics = self.world.metrics
        self._m_stale_replies.increment()
        # Attribute the drop to the paradigm whose exchange it was,
        # when the request kind's prefix names an installed paradigm
        # component ("cs.request" -> paradigm "cs", ...).
        prefix = request_kind.split(".", 1)[0]
        component = self.components.get(prefix)
        paradigm = getattr(component, "paradigm", None)
        if paradigm:
            metrics.counter(
                f"paradigm.{paradigm}.stale_replies",
                labels={"node": self.id},
            ).increment()
        self.world.trace.emit(
            self.env.now,
            self.id,
            "host.stale_reply",
            msg=message.kind,
            in_reply_to=message.in_reply_to,
        )
        tracer = self.world.tracer
        if tracer.enabled:
            # Even a discarded copy reached this inbox: record the
            # delivery marker so the trace analyzer can count duplicate
            # deliveries (repeated ``t_deliver`` stamps for one message
            # id) without double-counting any causal edge.
            marker = tracer.start(
                "host.deliver",
                self.id,
                parent=message.trace_context,
                msg=message.kind,
                msg_id=message.id,
                in_reply_to=message.in_reply_to,
                t_deliver=message.delivered_at,
                stale=True,
            )
            tracer.finish(marker)

    def reply_to(
        self, request: Message, kind: str, payload: object = None, size_bytes: int = 0
    ) -> Process:
        """Send a correlated reply to ``request``."""
        return self.send(request.reply(kind, payload=payload, size_bytes=size_bytes))

    # -- execution ------------------------------------------------------------------

    def execute(self, work_units: float) -> Generator:
        """Simulate local computation of ``work_units`` (generator helper).

        Yields the CPU time scaled by this node's speed and charges the
        battery; returns the elapsed seconds.
        """
        if work_units < 0:
            raise ValueError("negative work")
        seconds = work_units / (WORK_UNITS_PER_SECOND * self.node.cpu_speed)
        yield self.env.timeout(seconds)
        if self.battery is not None:
            self.battery.consume_cpu(seconds)
        return seconds

    def execution_context(
        self, principal: str, services: Optional[Dict[str, object]] = None
    ) -> ExecutionContext:
        """A sandbox context carrying ``principal``'s quota grant."""
        grant = self.policy.grant_for(principal)
        return ExecutionContext(
            host_id=self.id,
            principal=principal,
            work_budget=grant.work_units,
            storage_budget_bytes=grant.storage_bytes,
            services=services,
            service_call_budget=grant.service_calls,
        )

    def provider_for(self, grant: QuotaGrant) -> SandboxProvider:
        """The installed provider a grant names (default: in-process)."""
        return self.providers.get(grant.provider, self.providers["inprocess"])

    def guest_session(
        self,
        principal: str,
        services: Optional[Dict[str, object]] = None,
        provider: Optional[str] = None,
    ) -> Tuple[SandboxProvider, SessionInfo]:
        """Open a guest-execution session for ``principal``.

        The policy's :meth:`~repro.security.SecurityPolicy.grant_for`
        picks the quotas and (unless ``provider`` overrides it) the
        provider flavor.  The caller owns the session: run guests with
        ``provider.execute(session, guest, *args)`` and finish with
        :meth:`close_guest_session`.
        """
        grant = self.policy.grant_for(principal)
        chosen = (
            self.providers[provider]
            if provider is not None
            else self.provider_for(grant)
        )
        session = chosen.open_session(
            principal,
            grant,
            services=services,
            now=self.env.now,
            cpu_speed=self.node.cpu_speed,
        )
        return chosen, session

    def close_guest_session(
        self, provider: SandboxProvider, session: SessionInfo
    ) -> "object":
        """Close a guest session, emitting its final metrics."""
        return provider.close_session(session, now=self.env.now)

    def run_guest(
        self,
        guest: object,
        principal: str,
        *args: object,
        services: Optional[Dict[str, object]] = None,
        provider: Optional[str] = None,
        task_name: Optional[str] = None,
    ) -> ExecuteResult:
        """Run one guest callable through this host's provider substrate.

        Opens a single-use session under ``principal``'s grant,
        executes, and closes.  The caller still pays the simulated CPU
        time: ``yield from host.execute(result.work_used)``.  When
        ``task_name`` is given and the guest metered any work, the
        observation feeds the paradigm cost model
        (:meth:`observed_guest_work`).
        """
        chosen, session = self.guest_session(
            principal, services=services, provider=provider
        )
        try:
            result = chosen.execute(session, guest, *args)
        finally:
            self.close_guest_session(chosen, session)
        if task_name is not None and result.work_used > 0:
            self._observed_work[task_name] = result.work_used
        return result

    def observed_guest_work(self, task_name: Optional[str]) -> Optional[float]:
        """Last metered work units a named task's guest consumed here."""
        if task_name is None:
            return None
        return self._observed_work.get(task_name)

    # -- capsule security gate ----------------------------------------------------

    def admit_capsule(
        self, capsule: Capsule, operation: str
    ) -> Generator:
        """Police an inbound capsule (generator helper).

        Checks the operation against the policy and, when signatures
        are required, verifies the capsule (simulating the CPU cost).
        Returns the verified principal (or the manifest sender under an
        open policy).  Raises ``PolicyViolation`` / ``SignatureInvalid``
        / ``UntrustedPrincipal``.
        """
        principal = capsule.manifest.sender
        if self.policy.require_signatures:
            principal = verify_capsule(self.truststore, capsule)
            delay = capsule_verification_delay(capsule)
            self._m_verifications.increment()
            self._m_verify_seconds.observe(delay)
            yield from self.execute(
                delay * WORK_UNITS_PER_SECOND
            )
        self.policy.check(operation, principal)
        return principal

    # -- dispatch -------------------------------------------------------------------

    def _dispatch_loop(self) -> Generator:
        while True:
            message = yield self.node.inbox.get()
            if not self.node.up:
                continue
            if message.corrupted:
                # Checksum model: damaged payloads are detected and
                # dropped at the receiver, whatever their kind.
                self._m_corrupt_discarded.increment()
                self.world.trace.emit(
                    self.env.now, self.id, "host.corrupt_discarded",
                    msg=message.kind,
                )
                continue
            if message.in_reply_to is not None:
                if message.in_reply_to in self._pending:
                    event = self._pending.pop(message.in_reply_to)
                    tracer = self.world.tracer
                    if tracer.enabled:
                        # Zero-duration delivery marker: replies resolve
                        # futures instead of running handlers, so this
                        # is the receiver-side hop stamp the trace
                        # analyzer correlates with the reply's
                        # ``net.transmit`` span (injected delivery
                        # delays surface as the gap between the two).
                        marker = tracer.start(
                            "host.deliver",
                            self.id,
                            parent=message.trace_context,
                            msg=message.kind,
                            msg_id=message.id,
                            in_reply_to=message.in_reply_to,
                            t_deliver=message.delivered_at,
                        )
                        tracer.finish(marker)
                    event.succeed(message)
                    continue
                if message.in_reply_to in self._closed_requests:
                    self._discard_stale_reply(message)
                    continue
                # Replies correlating with exchanges this host never
                # issued through ``request`` (e.g. discovery's
                # broadcast round) fall through to the kind handlers.
            if message.kind == "net.relay":
                continue  # router plumbing that lost its reclaim race
            handler = self._handlers.get(message.kind)
            if handler is None:
                self.unhandled_messages += 1
                self._m_unhandled.increment()
                self.world.trace.emit(
                    self.env.now, self.id, "host.unhandled", msg=message.kind
                )
                continue
            span = self.world.tracer.start(
                "host.handle",
                self.id,
                parent=message.trace_context,
                msg=message.kind,
                msg_id=message.id,
                t_deliver=message.delivered_at,
                origin=message.source,
            )
            self.env.process(
                self._guarded(handler, message, span),
                name=f"{self.id}:{message.kind}#{message.id}",
            )

    def _guarded(
        self, handler: MessageHandler, message: Message, span: object = None
    ) -> Generator:
        """Run a handler, containing its failures (they are traced)."""
        tracer = self.world.tracer
        try:
            yield from handler(message)
        except SecurityError as error:
            self.rejected_capsules += 1
            self._m_rejections.increment()
            self.world.trace.emit(
                self.env.now,
                self.id,
                "host.capsule_rejected",
                msg=message.kind,
                error=str(error),
            )
            if span is not None:
                tracer.finish(span, status="error", error=str(error))
        except MiddlewareError as error:
            self._m_handler_errors.increment()
            self.world.trace.emit(
                self.env.now,
                self.id,
                "host.handler_error",
                msg=message.kind,
                error=str(error),
            )
            if span is not None:
                tracer.finish(span, status="error", error=str(error))
        except (Unreachable, TransportTimeout) as error:
            self.world.trace.emit(
                self.env.now,
                self.id,
                "host.handler_netfail",
                msg=message.kind,
                error=str(error),
            )
            if span is not None:
                tracer.finish(span, status="error", error=str(error))
        else:
            if span is not None:
                tracer.finish(span)
