"""Dynamic middleware self-update via COD.

"Next generation middleware should be able to … use COD techniques to
dynamically update itself."  The :class:`UpdateManager` hot-swaps one
component at a time: fetch the new component's unit via COD, stop and
detach the old component, construct and attach the new one.  The only
service gap is the swap window itself (messages to the component's
kinds during that window count as lost).  The baseline — a full
reinstall — stops *everything*, fetches the whole stack, and restarts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional

from ..errors import ComponentError, UnitNotFound
from ..security import OP_UPDATE_MIDDLEWARE
from .components import Component

#: Components that must not be removed mid-update.
_ESSENTIAL = {"cod", "update"}


@dataclass
class UpdateReport:
    """What one update cost."""

    strategy: str  #: "hot-swap" or "reinstall"
    component: str
    bytes_transferred: int
    downtime_s: float
    requests_lost: int
    old_version: Optional[str]
    new_version: str


class UpdateManager(Component):
    """Hot-swaps middleware components fetched over COD."""

    kind = "update"
    code_size = 5_000

    def __init__(self) -> None:
        super().__init__()
        self.history: List[UpdateReport] = []

    def hot_swap(
        self,
        component_kind: str,
        provider_id: str,
        unit_name: str,
        retry=None,
    ) -> Generator:
        """Replace ``component_kind`` with the unit ``unit_name`` fetched
        from ``provider_id`` (generator helper).  Returns an
        :class:`UpdateReport`.

        The fetch happens *while the old component still runs*; only
        the detach/attach window interrupts service.
        """
        host = self.require_host()
        host.policy.check(OP_UPDATE_MIDDLEWARE, provider_id)
        old = host.component(component_kind)
        old_version = str(old.version)
        cod = host.component("cod")
        capsule = yield from cod.fetch(
            provider_id, [unit_name], install=True, pinned=True, retry=retry
        )
        unit = capsule.code_unit(unit_name)
        component_class = unit.instantiate()
        replacement = component_class()
        if replacement.kind != component_kind:
            raise ComponentError(
                f"unit {unit_name} builds a {replacement.kind!r} component, "
                f"not {component_kind!r}"
            )
        # --- the swap window: service to this component is interrupted ---
        swap_started = self.env.now
        lost_before = host.unhandled_messages
        host.remove_component(component_kind)
        # Modelled install/initialisation work for the new component.
        yield from host.execute(unit.size_bytes * 0.1)
        host.add_component(replacement)
        downtime = self.env.now - swap_started
        requests_lost = host.unhandled_messages - lost_before
        report = UpdateReport(
            strategy="hot-swap",
            component=component_kind,
            bytes_transferred=capsule.size_bytes,
            downtime_s=downtime,
            requests_lost=requests_lost,
            old_version=old_version,
            new_version=str(replacement.version),
        )
        self.history.append(report)
        host.world.metrics.counter("update.hot_swaps").increment()
        host.world.trace.emit(
            self.env.now, host.id, "update.hot_swap",
            component=component_kind,
            downtime=f"{downtime:.3f}",
        )
        return report

    def install_component(
        self, provider_id: str, unit_name: str, retry=None
    ) -> Generator:
        """Plug in a component this host does not yet have, via COD.

        The paper's "different mobile code paradigms could be plugged-in
        dynamically and used when needed": a minimal host can acquire,
        say, the agent runtime the first time something needs it.
        Returns the newly attached :class:`Component`.  Raises
        :class:`ComponentError` if a component of that kind is already
        installed (use :meth:`hot_swap` for replacements).
        """
        host = self.require_host()
        host.policy.check(OP_UPDATE_MIDDLEWARE, provider_id)
        cod = host.component("cod")
        capsule = yield from cod.fetch(
            provider_id, [unit_name], install=True, pinned=True, retry=retry
        )
        try:
            unit = capsule.code_unit(unit_name)
        except UnitNotFound:
            # Differential fetch: the unit was already installed locally.
            unit = host.codebase.get(unit_name)
        component_class = unit.instantiate()
        component = component_class()
        if component.kind in host.components:
            raise ComponentError(
                f"host {host.id} already has a {component.kind!r} component;"
                " use hot_swap"
            )
        yield from host.execute(unit.size_bytes * 0.1)
        host.add_component(component)
        host.world.metrics.counter("update.plugins").increment()
        host.world.trace.emit(
            self.env.now, host.id, "update.plugin", component=component.kind
        )
        return component

    def full_reinstall(
        self,
        provider_id: str,
        unit_names: Dict[str, str],
        retry=None,
    ) -> Generator:
        """The traditional alternative: stop the whole middleware, fetch
        every component, reinstall, restart (generator helper).

        ``unit_names`` maps component kind -> repository unit name.
        Returns a combined :class:`UpdateReport` (component ``"*"``).
        """
        host = self.require_host()
        host.policy.check(OP_UPDATE_MIDDLEWARE, provider_id)
        cod = host.component("cod")
        swap_started = self.env.now
        lost_before = host.unhandled_messages
        # Everything except COD (needed to fetch) and this manager stops.
        stopped: List[Component] = []
        for kind in list(host.components):
            if kind in _ESSENTIAL:
                continue
            stopped.append(host.remove_component(kind))
        total_bytes = 0
        replacements: List[Component] = []
        for kind, unit_name in sorted(unit_names.items()):
            if kind in _ESSENTIAL:
                continue
            capsule = yield from cod.fetch(
                provider_id, [unit_name], install=True, pinned=True,
                retry=retry,
            )
            total_bytes += capsule.size_bytes
            unit = capsule.code_unit(unit_name)
            component_class = unit.instantiate()
            replacement = component_class()
            yield from host.execute(unit.size_bytes * 0.1)
            replacements.append(replacement)
        for replacement in replacements:
            host.add_component(replacement)
        downtime = self.env.now - swap_started
        requests_lost = host.unhandled_messages - lost_before
        report = UpdateReport(
            strategy="reinstall",
            component="*",
            bytes_transferred=total_bytes,
            downtime_s=downtime,
            requests_lost=requests_lost,
            old_version=None,
            new_version=",".join(
                f"{component.kind}@{component.version}"
                for component in replacements
            ),
        )
        self.history.append(report)
        host.world.metrics.counter("update.reinstalls").increment()
        return report


def component_unit(component_class, unit_name: Optional[str] = None, version: str = "1.1.0"):
    """Package a component class as a publishable code unit.

    The repository publishes these; :meth:`UpdateManager.hot_swap`
    fetches and instantiates them.
    """
    from ..lmu import code_unit

    instance = component_class()
    return code_unit(
        name=unit_name or f"component:{instance.kind}",
        version=version,
        factory=lambda: component_class,
        size_bytes=instance.code_size,
        description=component_class.__doc__ or "",
    )
