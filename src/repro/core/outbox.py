"""Disconnected operation: queued remote calls that flush on reconnect.

Mobile devices are offline more than online; applications should not
have to poll for connectivity.  The :class:`Outbox` component accepts
CS calls at any time, queues them while the target is unreachable, and
flushes the queue in order whenever connectivity returns.  Each entry
resolves a kernel event the application can await (or ignore —
fire-and-forget works too).

Semantics are at-least-once per entry with bounded retries; entries
expire after their TTL so a dead server cannot grow the queue forever.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Generator, List, Optional

from ..errors import (
    MiddlewareError,
    RemoteExecutionError,
    RequestTimeout,
    ServiceNotFound,
    TransportTimeout,
    Unreachable,
)
from ..sim import Event
from .components import Component

_entry_ids = itertools.count(1)


@dataclass
class OutboxEntry:
    """One queued remote call."""

    entry_id: int
    server_id: str
    service: str
    args: object
    expires_at: float
    completion: Event
    attempts: int = 0

    @property
    def done(self) -> bool:
        return self.completion.triggered


class Outbox(Component):
    """Store-and-forward CS calls for intermittently connected devices."""

    kind = "outbox"
    code_size = 4_000

    def __init__(
        self,
        flush_interval: float = 2.0,
        default_ttl: float = 600.0,
        max_attempts_per_entry: int = 10,
    ) -> None:
        super().__init__()
        if flush_interval <= 0:
            raise ValueError("flush_interval must be positive")
        self.flush_interval = flush_interval
        self.default_ttl = default_ttl
        self.max_attempts_per_entry = max_attempts_per_entry
        self.queue: List[OutboxEntry] = []
        self.delivered = 0
        self.expired = 0

    def start(self) -> None:
        super().start()
        self.env.process(
            self._flush_loop(), name=f"outbox:{self.require_host().id}"
        )

    # -- application API -----------------------------------------------------------

    def call_eventually(
        self,
        server_id: str,
        service: str,
        args: object = None,
        ttl: Optional[float] = None,
    ) -> Event:
        """Queue a call; returns an event resolving with the result.

        The event *fails* with the underlying error when the entry
        expires or the remote call itself errors, so awaiting callers
        see exactly what a direct call would have raised.  Ignoring the
        event is safe: expiry failures are pre-defused.
        """
        host = self.require_host()
        entry = OutboxEntry(
            entry_id=next(_entry_ids),
            server_id=server_id,
            service=service,
            args=args,
            expires_at=self.env.now + (ttl if ttl is not None else self.default_ttl),
            completion=Event(host.env),
        )
        self.queue.append(entry)
        host.world.metrics.counter("outbox.queued").increment()
        return entry.completion

    @property
    def pending(self) -> int:
        return len(self.queue)

    def flush_now(self) -> Generator:
        """Attempt every queued entry once, in order (generator helper)."""
        host = self.require_host()
        remaining: List[OutboxEntry] = []
        for entry in self.queue:
            if entry.done:
                continue
            if self.env.now >= entry.expires_at:
                self._expire(entry)
                continue
            if not host.world.network.connected(host.id, entry.server_id):
                remaining.append(entry)
                continue
            entry.attempts += 1
            try:
                result = yield from host.component("cs").call(
                    entry.server_id, entry.service, entry.args, timeout=15.0
                )
            except (Unreachable, TransportTimeout, RequestTimeout):
                if entry.attempts >= self.max_attempts_per_entry:
                    self._expire(entry)
                else:
                    remaining.append(entry)
                continue
            except (ServiceNotFound, RemoteExecutionError) as error:
                # The server answered: a definitive failure, not a retry.
                entry.completion.fail(error)
                # Pre-defused: fire-and-forget callers never consume it;
                # awaiting callers still see the exception re-raised.
                entry.completion._defused = True
                continue
            entry.completion.succeed(result)
            self.delivered += 1
            host.world.metrics.counter("outbox.delivered").increment()
        # Preserve order for entries queued while flushing.
        self.queue = remaining + [
            entry
            for entry in self.queue
            if entry not in remaining and not entry.done
        ]

    def _expire(self, entry: OutboxEntry) -> None:
        self.expired += 1
        self.require_host().world.metrics.counter("outbox.expired").increment()
        failure = MiddlewareError(
            f"outbox entry #{entry.entry_id} ({entry.service} @ "
            f"{entry.server_id}) expired after {entry.attempts} attempts"
        )
        entry.completion.fail(failure)
        # Fire-and-forget callers never look at the event; keep the
        # kernel from treating that as an unhandled failure.
        entry.completion._defused = True

    def _flush_loop(self) -> Generator:
        while self.started:
            if self.require_host().node.up and self.queue:
                yield from self.flush_now()
            yield self.env.timeout(self.flush_interval)
