"""Vertical handover: managing attachment across network infrastructures.

The paper requires middleware that lets devices "migrate between
different network infrastructures".  Link *selection* is already
per-message (the transport picks the best current link), but
infrastructure attachment has costs the middleware must manage: GPRS
bytes are metered, dial-up minutes are metered, and idle attachments
burn money.  The :class:`HandoverManager` keeps exactly the attachments
a policy wants: detach metered interfaces while a free path to the
reference peer exists, attach the cheapest metered one when it is the
only way through.
"""

from __future__ import annotations

from typing import Generator, List

from ..net import Interface
from .host import MobileHost


class HandoverManager:
    """Keeps a host attached through the cheapest viable infrastructure.

    Every ``interval`` seconds: if a *free* link to ``reference_peer``
    exists (ad-hoc in range, or an unmetered infrastructure
    attachment), metered interfaces are detached; otherwise the
    cheapest metered infrastructure interface is attached.
    """

    def __init__(
        self,
        host: MobileHost,
        reference_peer: str,
        interval: float = 2.0,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.host = host
        self.reference_peer = reference_peer
        self.interval = interval
        self.handovers: List[tuple] = []
        self._process = host.env.process(
            self._loop(), name=f"handover:{host.id}"
        )

    # -- policy ------------------------------------------------------------------

    def _metered_interfaces(self) -> List[Interface]:
        return sorted(
            (
                interface
                for interface in self.host.node.interfaces.values()
                if interface.technology.infrastructure
                and (
                    interface.technology.cost_per_mb > 0
                    or interface.technology.cost_per_minute > 0
                )
            ),
            key=lambda interface: (
                interface.technology.cost_per_mb
                + interface.technology.cost_per_minute,
                interface.technology.name,
            ),
        )

    def _free_link_exists(self) -> bool:
        network = self.host.world.network
        if self.reference_peer not in network:
            return False
        peer = network.node(self.reference_peer)
        for link in network.links_between(self.host.node, peer):
            if link.is_free:
                return True
        return False

    def step(self) -> Generator:
        """One handover decision (generator helper; yields setup time)."""
        metered = self._metered_interfaces()
        if self._free_link_exists():
            for interface in metered:
                if interface.attached:
                    interface.detach()
                    self.handovers.append(
                        (self.host.env.now, "detach", interface.technology.name)
                    )
                    self.host.world.metrics.counter(
                        "handover.detaches"
                    ).increment()
            return
        # No free path: make sure the cheapest metered interface is up.
        for interface in metered:
            if not interface.enabled:
                continue
            if interface.attached:
                return
            setup = interface.attach()
            self.handovers.append(
                (self.host.env.now, "attach", interface.technology.name)
            )
            self.host.world.metrics.counter("handover.attaches").increment()
            if setup > 0:
                yield self.host.env.timeout(setup)
            return

    def _loop(self) -> Generator:
        while True:
            if self.host.node.up:
                yield from self.step()
            yield self.host.env.timeout(self.interval)
