"""The :class:`World`: shared plumbing of one simulated deployment.

Every experiment builds one ``World`` (kernel, network, transport,
random streams, trace, metrics) and then creates
:class:`~repro.core.host.MobileHost` instances inside it.  Bundling
these avoids threading six constructor arguments through every layer.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from typing import Optional as _Optional

from ..net import (
    Network,
    NetworkNode,
    Position,
    Transport,
    LinkTechnology,
)
from ..obs import SimProfiler, SpanTracer, TimeSeriesRecorder
from ..sim import Environment, MetricsRegistry, RandomStreams, TraceLog


class World:
    """One simulated deployment: kernel + network + shared observability."""

    def __init__(
        self,
        seed: int = 0,
        trace_enabled: bool = False,
        spans_enabled: _Optional[bool] = None,
    ) -> None:
        self.seed = seed
        self.env = Environment()
        self.streams = RandomStreams(seed)
        self.network = Network(self.env)
        self.trace = TraceLog(enabled=trace_enabled)
        self.metrics = MetricsRegistry()
        #: Causal spans follow the trace switch unless set explicitly.
        self.tracer = SpanTracer(
            now=lambda: self.env.now,
            trace=self.trace,
            enabled=(
                trace_enabled if spans_enabled is None else spans_enabled
            ),
        )
        self.transport = Transport(
            self.env,
            self.network,
            self.streams,
            trace=self.trace,
            metrics=self.metrics,
            tracer=self.tracer,
        )
        #: Optional cadence sampler (see :meth:`sample_series`); when
        #: set, ``RunReport.capture`` emits its points as ``series``.
        self.timeseries: _Optional[TimeSeriesRecorder] = None
        #: Optional in-run SLO monitor (see :meth:`enable_health`);
        #: when set, ``RunReport.capture`` emits its breach events and
        #: flight-recorder dumps as ``health``/``flight``.
        self.health = None
        #: Every :class:`~repro.core.host.MobileHost` registered on this
        #: world, by node id — how fault injectors reach a host's guest
        #: substrate and the paradigm selector reads a peer's quota
        #: grants (the simulator's global-knowledge idiom).
        self.hosts: Dict[str, object] = {}

    def profile(self) -> SimProfiler:
        """Attach (and return) a fresh kernel profiler for this world."""
        return SimProfiler().attach(self.env)

    def sample_series(
        self,
        cadence: float = 1.0,
        capacity: int = 1024,
        names: Optional[Iterable[str]] = None,
        histogram_stats: Iterable[str] = ("p50", "p99"),
    ) -> TimeSeriesRecorder:
        """Attach (and return) a sim-time metrics sampler.

        Every ``cadence`` simulated seconds the recorder sweeps
        ``world.metrics`` into ring-buffered (time, value) series —
        counters/gauges by value, histograms by windowed quantiles —
        which ``RunReport.capture`` then carries under ``series``.
        """
        def topo_probe() -> dict:
            return {
                f"net.topo.{key}": value
                for key, value in self.network.cache_info().items()
            }

        recorder = TimeSeriesRecorder(
            self.metrics,
            cadence=cadence,
            capacity=capacity,
            names=list(names) if names is not None else None,
            histogram_stats=tuple(histogram_stats),
            extra_probe=topo_probe,
        )
        self.timeseries = recorder.attach(self.env)
        return recorder

    def enable_health(
        self,
        slos,
        cadence: float = 5.0,
        capacity: int = 256,
        flight_capacity: int = 64,
    ):
        """Arm in-run fleet health monitoring for this world.

        Attaches a :meth:`sample_series` recorder when none exists (the
        :class:`~repro.obs.health.HealthEngine` evaluates on its
        cadence), plugs a :class:`~repro.obs.health.FlightRecorder`
        into the trace log, and returns the engine.  An armed engine
        whose SLOs never breach changes nothing observable: metric
        values, spans, and the captured report stay bit-identical to a
        run with the same recorder and no engine.
        """
        from ..obs.health import FlightRecorder, HealthEngine

        if self.health is not None:
            raise RuntimeError("world already has a health engine")
        recorder = self.timeseries
        if recorder is None:
            recorder = self.sample_series(cadence=cadence, capacity=capacity)
        flight = FlightRecorder(capacity=flight_capacity)
        self.trace.flight = flight
        engine = HealthEngine(
            self.metrics, slos, tracer=self.tracer, flight=flight
        )
        recorder.health = engine
        self.health = engine
        return engine

    @property
    def now(self) -> float:
        return self.env.now

    def add_node(
        self,
        node_id: str,
        position: Position = Position(0.0, 0.0),
        technologies: Iterable[LinkTechnology] = (),
        fixed: bool = False,
        cpu_speed: float = 1.0,
    ) -> NetworkNode:
        """Create and register a bare network node."""
        node = NetworkNode(
            self.env,
            node_id,
            position=position,
            technologies=technologies,
            fixed=fixed,
            cpu_speed=cpu_speed,
        )
        return self.network.add_node(node)

    def run(self, until: Optional[object] = None) -> object:
        """Run the simulation (delegates to the kernel environment)."""
        return self.env.run(until=until)

    def summary(self) -> dict:
        """A flat snapshot of the deployment's key figures.

        Combines the metric registry with per-fleet traffic and money
        totals — what an experiment typically reports at the end.
        """
        from ..net import CostMeter

        fleet = CostMeter()
        for node in self.network.nodes.values():
            node.settle_airtime()
            fleet.merge(node.costs)
        snapshot = dict(self.metrics.snapshot())
        snapshot.update(
            {
                "world.now": self.env.now,
                "world.nodes": float(len(self.network)),
                "fleet.bytes_sent": float(fleet.total_bytes_sent),
                "fleet.bytes_received": float(fleet.total_bytes_received),
                "fleet.wireless_bytes": float(fleet.wireless_bytes()),
                "fleet.money": fleet.money,
            }
        )
        # Topology-cache effectiveness (see docs/PERFORMANCE.md).
        for key, value in self.network.cache_info().items():
            snapshot[f"net.topo.{key}"] = value
        return snapshot
