"""Paradigm assessment and selection.

"Different mobile code paradigms could be plugged-in dynamically and
used when needed after assessment of the environment and application."
This module is that assessment, made programmatic: closed-form cost
estimates for each paradigm over a :class:`TaskProfile` and the current
link/context, combined into a weighted composite the selector ranks.

The estimates follow the Fuggetta/Picco/Vigna traffic decomposition
(who initiates, what moves) — the same modelling the PrimaMob-UML
methodology the paper cites performs at design time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import ComponentError
from ..net import HEADER_BYTES, Link

#: Sentinel distinguishing "no link argument" from an explicit None.
_UNSET = object()

PARADIGM_CS = "cs"
PARADIGM_REV = "rev"
PARADIGM_COD = "cod"
PARADIGM_MA = "ma"
#: The degenerate "no mobility" paradigm: run the task on the local
#: device.  Not part of :data:`PARADIGMS` (the four mobile-code
#: paradigms of the paper) but rankable alongside them.
PARADIGM_LOCAL = "local"
PARADIGMS = (PARADIGM_CS, PARADIGM_REV, PARADIGM_COD, PARADIGM_MA)


@dataclass(frozen=True)
class TaskProfile:
    """The application-side facts a paradigm choice depends on."""

    #: How many request/reply interactions the task needs.
    interactions: int
    #: Bytes of one request and one reply.
    request_bytes: int
    reply_bytes: int
    #: Bytes of the code that would move (REV capsule / COD unit / agent).
    code_bytes: int
    #: Bytes of the final result the device actually wants.
    result_bytes: int
    #: Work units of computation per interaction.
    work_units: float
    #: Relative CPU speed of the local device and of the remote server.
    local_speed: float = 0.2
    remote_speed: float = 1.0
    #: How many times this capability will be exercised after fetching
    #: (COD amortisation horizon).
    expected_reuses: int = 1
    #: For MA: number of hosts an agent must visit.
    hosts_to_visit: int = 1
    #: Bytes of agent state carried per hop.
    state_bytes: int = 512
    #: Work-unit quota the executing side's
    #: :class:`~repro.security.QuotaGrant` would enforce on this task's
    #: guest — ``None`` means unknown/unlimited.  A task whose work
    #: would exceed the quota pays the estimators' quota-pressure
    #: penalty (it will be preempted and retried/failed there), so the
    #: selector steers compute towards hosts that grant enough CPU.
    local_work_quota: Optional[float] = None
    remote_work_quota: Optional[float] = None


@dataclass(frozen=True)
class CostEstimate:
    """Predicted cost of running a task under one paradigm."""

    paradigm: str
    wireless_bytes: float
    time_s: float
    money: float
    energy_j: float

    def composite(self, weights: "CostWeights") -> float:
        return (
            weights.time * self.time_s
            + weights.money * self.money
            + weights.energy * self.energy_j
            + weights.traffic * self.wireless_bytes
        )


@dataclass(frozen=True)
class CostWeights:
    """How much each cost dimension matters right now.

    Derived from context: a draining battery raises ``energy``; a
    per-MB tariff raises ``money``; an interactive user raises ``time``.
    """

    time: float = 1.0
    money: float = 1.0
    energy: float = 0.0
    traffic: float = 0.0

    @classmethod
    def from_context(
        cls,
        battery_fraction: Optional[float] = None,
        interactive: bool = True,
    ) -> "CostWeights":
        energy = 0.0
        if battery_fraction is not None and battery_fraction < 0.3:
            energy = 0.01 * (0.3 - battery_fraction) / 0.3
        return cls(
            time=1.0 if interactive else 0.2,
            money=1.0,
            energy=energy,
            traffic=0.0,
        )


#: Energy per wireless byte (J) and per CPU-second (J), for estimates.
_RADIO_J_PER_BYTE = 1.0e-6
_CPU_J_PER_S = 1.0

#: Seconds of predicted penalty per work unit a task would overrun its
#: executing side's quota by: the modelled cost of being preempted,
#: re-negotiated, and re-run elsewhere.  Deliberately steep — a
#: paradigm whose substrate will kill the guest should essentially
#: never win the ranking.
QUOTA_PENALTY_S_PER_UNIT = 1.0e-4


def _quota_penalty(required: float, quota: Optional[float]) -> float:
    """Predicted preemption cost of ``required`` work under ``quota``."""
    if quota is None or required <= quota:
        return 0.0
    return (required - quota) * QUOTA_PENALTY_S_PER_UNIT


def _transfer(link: Link, size_bytes: float) -> Tuple[float, float]:
    """(seconds, money) to move ``size_bytes`` over ``link``, as charged
    to the mobile endpoint: per-MB tariffs on the bytes plus per-minute
    tariffs on the airtime the transfer occupies."""
    seconds = link.transfer_time(int(size_bytes)) + link.latency_s
    technology = link.sender_technology
    money = technology.transfer_cost(int(size_bytes))
    money += seconds / 60.0 * technology.cost_per_minute
    return seconds, money


def estimate_cs(profile: TaskProfile, link: Link) -> CostEstimate:
    """All interactions cross the wireless link; compute stays remote."""
    per_round = (
        profile.request_bytes + profile.reply_bytes + 2 * HEADER_BYTES
    )
    total_bytes = profile.interactions * per_round
    transfer_s, transfer_money = _transfer(link, total_bytes)
    seconds = transfer_s + (2 * link.latency_s) * max(
        0, profile.interactions - 1
    )
    money = transfer_money
    required = profile.interactions * profile.work_units
    compute_s = required / 1e6 / profile.remote_speed
    penalty_s = _quota_penalty(required, profile.remote_work_quota)
    return CostEstimate(
        paradigm=PARADIGM_CS,
        wireless_bytes=total_bytes,
        time_s=seconds + compute_s + penalty_s,
        money=money,
        energy_j=total_bytes * _RADIO_J_PER_BYTE,
    )


def estimate_rev(profile: TaskProfile, link: Link) -> CostEstimate:
    """Code ships once; interactions happen at the server; one result back."""
    outbound = (
        profile.code_bytes
        + profile.request_bytes
        + profile.state_bytes
        + HEADER_BYTES
    )
    inbound = profile.result_bytes + HEADER_BYTES
    total_bytes = outbound + inbound
    transfer_s, money = _transfer(link, total_bytes)
    required = profile.interactions * profile.work_units
    compute_s = required / 1e6 / profile.remote_speed
    penalty_s = _quota_penalty(required, profile.remote_work_quota)
    return CostEstimate(
        paradigm=PARADIGM_REV,
        wireless_bytes=total_bytes,
        time_s=transfer_s + compute_s + link.latency_s + penalty_s,
        money=money,
        energy_j=total_bytes * _RADIO_J_PER_BYTE,
    )


def estimate_cod(profile: TaskProfile, link: Link) -> CostEstimate:
    """Code downloads once; every (re)use then runs locally, offline."""
    download = profile.code_bytes + HEADER_BYTES
    transfer_s, money = _transfer(link, download)
    uses = max(1, profile.expected_reuses)
    required = uses * profile.interactions * profile.work_units
    compute_s = required / 1e6 / profile.local_speed
    # COD's guest runs under the *local* grant, once per use.
    penalty_s = uses * _quota_penalty(
        profile.interactions * profile.work_units, profile.local_work_quota
    )
    per_use_time = (transfer_s / uses) + (compute_s + penalty_s) / uses
    return CostEstimate(
        paradigm=PARADIGM_COD,
        wireless_bytes=download / uses,
        time_s=per_use_time,
        money=money / uses,
        energy_j=(
            download * _RADIO_J_PER_BYTE / uses
            + compute_s / uses * _CPU_J_PER_S
        ),
    )


def estimate_ma(profile: TaskProfile, link: Link) -> CostEstimate:
    """Agent leaves and returns over wireless; hops between servers are
    fixed-network and cost the device nothing."""
    hop_bytes = profile.code_bytes + profile.state_bytes + HEADER_BYTES
    wireless = 2 * hop_bytes + profile.result_bytes
    transfer_s, money = _transfer(link, wireless)
    # Remote hops: modelled at backbone speed, so only a latency term.
    remote_hops_s = profile.hosts_to_visit * 0.05
    required = (
        profile.hosts_to_visit * profile.interactions * profile.work_units
    )
    compute_s = required / 1e6 / profile.remote_speed
    # Each visited host grants the agent its own quota per stop.
    penalty_s = profile.hosts_to_visit * _quota_penalty(
        profile.interactions * profile.work_units,
        profile.remote_work_quota,
    )
    return CostEstimate(
        paradigm=PARADIGM_MA,
        wireless_bytes=wireless,
        time_s=transfer_s + remote_hops_s + compute_s + penalty_s,
        money=money,
        energy_j=wireless * _RADIO_J_PER_BYTE,
    )


def estimate_local(
    profile: TaskProfile, link: Optional[Link] = None
) -> CostEstimate:
    """Nothing moves: the task runs on the device's own (slow) CPU."""
    required = profile.interactions * profile.work_units
    compute_s = required / 1e6 / max(profile.local_speed, 1e-9)
    penalty_s = _quota_penalty(required, profile.local_work_quota)
    return CostEstimate(
        paradigm=PARADIGM_LOCAL,
        wireless_bytes=0.0,
        time_s=compute_s + penalty_s,
        money=0.0,
        energy_j=compute_s * _CPU_J_PER_S,
    )


_ESTIMATORS: Dict[str, Callable[[TaskProfile, Link], CostEstimate]] = {
    PARADIGM_CS: estimate_cs,
    PARADIGM_REV: estimate_rev,
    PARADIGM_COD: estimate_cod,
    PARADIGM_MA: estimate_ma,
    PARADIGM_LOCAL: estimate_local,
}


def register_estimator(
    paradigm: str, estimator: Callable[[TaskProfile, Link], CostEstimate]
) -> None:
    """Register (or replace) the cost estimator for a paradigm kind.

    The plugin hook for a fifth paradigm: register its estimator here,
    then list its kind in ``ParadigmSelector(available=[...])``.
    """
    _ESTIMATORS[paradigm] = estimator


def estimator_for(
    paradigm: str,
) -> Callable[[TaskProfile, Link], CostEstimate]:
    """The registered estimator for ``paradigm`` (ValueError if none)."""
    try:
        return _ESTIMATORS[paradigm]
    except KeyError:
        raise ValueError(f"unknown paradigm {paradigm!r}") from None


class ParadigmSelector:
    """Ranks the plugged-in paradigms for a task under current context."""

    def __init__(self, available: Optional[List[str]] = None) -> None:
        self.available = list(available or PARADIGMS)
        for paradigm in self.available:
            if paradigm not in _ESTIMATORS:
                raise ValueError(f"unknown paradigm {paradigm!r}")

    def estimates(
        self, profile: TaskProfile, link: Link
    ) -> List[CostEstimate]:
        return [
            _ESTIMATORS[paradigm](profile, link)
            for paradigm in self.available
        ]

    def rank(
        self,
        profile: TaskProfile,
        link: Link,
        weights: CostWeights = CostWeights(),
    ) -> List[CostEstimate]:
        """Estimates sorted cheapest-composite first."""
        return sorted(
            self.estimates(profile, link),
            key=lambda estimate: estimate.composite(weights),
        )

    def choose(
        self,
        profile: TaskProfile,
        link: Link,
        weights: CostWeights = CostWeights(),
    ) -> CostEstimate:
        """The winning paradigm's estimate for this task/context."""
        return self.rank(profile, link, weights)[0]

    def select_and_invoke(
        self,
        host,
        task,
        target=None,
        weights: CostWeights = CostWeights(),
        retry=None,
        link=_UNSET,
    ):
        """Assess, pick, and run: the point where the paper's
        "plugged-in dynamically and used when needed" becomes executable
        (generator).

        Ranks the paradigms in :attr:`available` that ``host`` actually
        has installed (components satisfying the
        :class:`~repro.core.invocation.Paradigm` protocol), by composite
        cost over the current best link to the primary target, and
        invokes the cheapest.  With no usable link, link-requiring
        paradigms are excluded (a local/COD-cached fallback still
        runs).  Ties keep :attr:`available` order — list the preferred
        fallback first.  Returns an
        :class:`~repro.core.invocation.InvocationOutcome`.
        """
        from .invocation import (
            InvocationOutcome,
            normalize_targets,
            resolve_profile,
        )

        targets, scalar = normalize_targets(target)
        network = host.world.network
        if link is _UNSET:
            link = None
            if targets and targets[0] in network.nodes:
                link = network.best_link(
                    host.node, network.node(targets[0])
                )
        remote_speed = None
        if targets and targets[0] in network.nodes:
            remote_speed = network.node(targets[0]).cpu_speed
        # Quota-aware pricing (global-knowledge idiom, like reading the
        # target's cpu_speed above): the grant each side's policy would
        # hand this task's guest caps its usable compute there, and work
        # the substrate already metered for this task ratchets the
        # declared estimate upward when the guest under-declared.
        task_name = getattr(task, "name", None)
        principal = f"task:{task_name}" if task_name else None
        local_work_quota = None
        remote_work_quota = None
        observed_work = None
        if principal is not None:
            local_work_quota = host.policy.grant_for(principal).work_units
            observed_work = host.observed_guest_work(task_name)
            peer = (
                host.world.hosts.get(targets[0]) if targets else None
            )
            if peer is not None:
                remote_work_quota = peer.policy.grant_for(
                    principal
                ).work_units
                if observed_work is None:
                    observed_work = peer.observed_guest_work(task_name)
        candidates = []
        for kind in self.available:
            component = host.paradigm_component(kind, required=False)
            if component is None:
                continue
            if link is None and component.requires_link:
                continue
            candidates.append(component)
        if not candidates:
            raise ComponentError(
                f"host {host.id} has no usable paradigm among "
                f"{self.available} (link: {'up' if link else 'down'})"
            )
        profile = resolve_profile(
            task,
            local_speed=host.node.cpu_speed,
            remote_speed=remote_speed,
            hosts=len(targets) or None,
            local_work_quota=local_work_quota,
            remote_work_quota=remote_work_quota,
            observed_work=observed_work,
        )
        ranking = sorted(
            (component.cost(profile, link) for component in candidates),
            key=lambda estimate: estimate.composite(weights),
        )
        by_kind = {component.paradigm: component for component in candidates}
        winner = ranking[0]
        component = by_kind[winner.paradigm]
        started = host.env.now
        result = yield from component.invoke(task, target, retry=retry)
        return InvocationOutcome(
            paradigm=winner.paradigm,
            target=target,
            result=result,
            elapsed_s=host.env.now - started,
            estimate=winner,
            ranking=ranking,
        )
