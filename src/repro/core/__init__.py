"""The logical-mobility middleware core — the paper's contribution.

A :class:`MobileHost` runs on every device and hosts pluggable
components implementing the four Fuggetta/Picco/Vigna paradigms —
Client/Server (:class:`ClientServer`), Remote Evaluation
(:class:`RemoteEvaluation`), Code On Demand (:class:`CodeOnDemand`),
and Mobile Agents (:class:`AgentRuntime`) — plus decentralised
discovery, a Jini-style lookup baseline, context awareness, paradigm
assessment/selection, and dynamic self-update via COD.
"""

from .adaptation import (
    PARADIGM_COD,
    PARADIGM_CS,
    PARADIGM_LOCAL,
    PARADIGM_MA,
    PARADIGM_REV,
    PARADIGMS,
    CostEstimate,
    CostWeights,
    ParadigmSelector,
    TaskProfile,
    estimate_cod,
    estimate_cs,
    estimate_local,
    estimate_ma,
    estimate_rev,
    estimator_for,
    register_estimator,
)
from .agents import Agent, AgentContext, AgentRuntime, ItineraryAgent, TaskAgent
from .assessment import (
    AssessmentReport,
    AssessmentRow,
    STANDARD_CONTEXTS,
    assess,
)
from .builders import (
    STANDARD_COMPONENTS,
    laptop_host,
    mutual_trust,
    pda_host,
    phone_host,
    server_host,
    standard_host,
)
from .cod import CodeOnDemand
from .components import Component
from .context import (
    Battery,
    ContextMonitor,
    ContextRegistry,
    KEY_BANDWIDTH,
    KEY_BATTERY,
    KEY_COST_PER_MB,
    KEY_LOCATION_X,
    KEY_LOCATION_Y,
    KEY_NEIGHBORS,
    KEY_STORAGE_FREE,
    Reading,
)
from .cs import ClientServer
from .discovery import Discovery
from .handover import HandoverManager
from .host import MobileHost
from .invocation import (
    DEFAULT_RETRY,
    NO_RETRY,
    InvocationOutcome,
    InvocationPipeline,
    InvocationTask,
    LocalExecution,
    Paradigm,
    RetryPolicy,
    provision_task,
    run_task_locally,
)
from .lookup import LookupClient, LookupServer
from .outbox import Outbox, OutboxEntry
from .prefetch import PrefetchItem, Prefetcher
from .rev import RemoteEvaluation
from .services import ServiceDescription, service
from .update import UpdateManager, UpdateReport, component_unit
from .world import World

__all__ = [
    "Agent",
    "AgentContext",
    "AgentRuntime",
    "AssessmentReport",
    "AssessmentRow",
    "Battery",
    "ClientServer",
    "CodeOnDemand",
    "Component",
    "ContextMonitor",
    "ContextRegistry",
    "CostEstimate",
    "CostWeights",
    "DEFAULT_RETRY",
    "Discovery",
    "HandoverManager",
    "InvocationOutcome",
    "InvocationPipeline",
    "InvocationTask",
    "ItineraryAgent",
    "KEY_BANDWIDTH",
    "KEY_BATTERY",
    "KEY_COST_PER_MB",
    "KEY_LOCATION_X",
    "KEY_LOCATION_Y",
    "KEY_NEIGHBORS",
    "KEY_STORAGE_FREE",
    "LocalExecution",
    "LookupClient",
    "LookupServer",
    "MobileHost",
    "NO_RETRY",
    "Outbox",
    "OutboxEntry",
    "PARADIGMS",
    "PARADIGM_COD",
    "PARADIGM_CS",
    "PARADIGM_LOCAL",
    "PARADIGM_MA",
    "PARADIGM_REV",
    "Paradigm",
    "ParadigmSelector",
    "PrefetchItem",
    "Prefetcher",
    "Reading",
    "RemoteEvaluation",
    "RetryPolicy",
    "STANDARD_COMPONENTS",
    "STANDARD_CONTEXTS",
    "ServiceDescription",
    "TaskAgent",
    "TaskProfile",
    "UpdateManager",
    "UpdateReport",
    "World",
    "assess",
    "component_unit",
    "estimate_cod",
    "estimate_cs",
    "estimate_local",
    "estimate_ma",
    "estimate_rev",
    "estimator_for",
    "laptop_host",
    "mutual_trust",
    "pda_host",
    "phone_host",
    "provision_task",
    "register_estimator",
    "run_task_locally",
    "server_host",
    "service",
    "standard_host",
]
