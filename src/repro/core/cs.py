"""Client/Server: the classic non-mobile paradigm (the CS baseline).

"The request of a client triggers the execution of a unit of code in a
server and returns the results to the client."  No code moves; only
request and reply data cross the network.  Every other paradigm is
evaluated against this baseline.

Request/reply mechanics — correlation, timeouts, link retry, error
marshalling, spans, metrics — live in the shared
:class:`~repro.core.invocation.InvocationPipeline`; this module only
contributes the CS-specific message shapes and the service dispatch.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional, Sequence, Union

from ..lmu import estimate_size
from ..net import Message
from .adaptation import PARADIGM_CS
from .components import Component, MessageHandler
from .invocation import DEFAULT_RETRY, InvocationTask, RetryPolicy

KIND_REQUEST = "cs.request"
KIND_REPLY = "cs.reply"
KIND_ERROR = "cs.error"


class ClientServer(Component):
    """Request/reply invocation of named services on remote hosts."""

    kind = "cs"
    paradigm = PARADIGM_CS
    code_size = 4_000

    def handlers(self) -> Dict[str, MessageHandler]:
        return {KIND_REQUEST: self._handle_request}

    # -- client side -------------------------------------------------------------

    def call(
        self,
        server_id: str,
        service: str,
        args: object = None,
        request_size: Optional[int] = None,
        timeout: float = 30.0,
        retry: Optional[RetryPolicy] = None,
    ) -> Generator:
        """Invoke ``service`` on ``server_id`` (generator helper).

        Returns the service result.  Raises :class:`ServiceNotFound`
        when the server does not offer the service, and
        :class:`RemoteExecutionError` when the service handler failed.
        With a ``retry`` policy, transient link loss is retried with
        backoff (off by default: a bare ``call`` keeps its historical
        fail-fast contract).
        """
        host = self.require_host()

        def build() -> Message:
            return Message(
                source=host.id,
                destination=server_id,
                kind=KIND_REQUEST,
                payload={"service": service, "args": args},
                size_bytes=(
                    request_size
                    if request_size is not None
                    else estimate_size(args)
                ),
            )

        def attempt(span: object) -> Generator:
            reply = yield from self.pipeline.exchange(
                build,
                timeout=timeout,
                error_kinds=(KIND_ERROR,),
                parent=span,
                retry=retry,
            )
            return reply.payload

        return (
            yield from self.pipeline.run(
                "cs.call",
                attempt,
                aliases={"calls": "cs.calls", "seconds": "cs.call_seconds"},
                service=service,
                server=server_id,
            )
        )

    def invoke(
        self,
        task: InvocationTask,
        target: Union[str, Sequence[str], None],
        retry: Optional[RetryPolicy] = None,
    ) -> Generator:
        """Run ``task`` as service calls against each target (Paradigm
        protocol).  The service named ``task.name`` must already exist
        remotely — CS moves no code (see
        :func:`~repro.core.invocation.provision_task`)."""
        policy = DEFAULT_RETRY if retry is None else retry
        targets = [target] if isinstance(target, str) else list(target or [])
        results = []
        for server_id in targets:
            result = yield from self.call(
                server_id,
                task.name,
                args=task.payload,
                request_size=task.request_bytes,
                timeout=task.timeout,
                retry=policy,
            )
            results.append(result)
        if isinstance(target, str):
            return results[0]
        return results

    # -- server side ----------------------------------------------------------------

    def _handle_request(self, message: Message) -> Generator:
        host = self.require_host()
        payload = message.payload or {}
        service_name = payload.get("service")
        entry = host.services.get(service_name)
        if entry is None:
            from ..errors import ServiceNotFound

            yield self.pipeline.reply_error(
                message,
                KIND_ERROR,
                ServiceNotFound(f"no service {service_name!r} on {host.id}"),
            )
            return
        handler, work_units = entry
        yield from host.execute(work_units)
        try:
            result, size_bytes = handler(payload.get("args"), host)
        except Exception as error:  # noqa: BLE001 - app handlers are foreign code
            yield self.pipeline.reply_error(message, KIND_ERROR, error)
            return
        self.pipeline.record_served(alias="cs.served")
        yield host.reply_to(
            message, KIND_REPLY, payload=result, size_bytes=size_bytes
        )
