"""Client/Server: the classic non-mobile paradigm (the CS baseline).

"The request of a client triggers the execution of a unit of code in a
server and returns the results to the client."  No code moves; only
request and reply data cross the network.  Every other paradigm is
evaluated against this baseline.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional

from ..errors import RemoteExecutionError, ServiceNotFound
from ..lmu import estimate_size
from ..net import Message
from .components import Component, MessageHandler

KIND_REQUEST = "cs.request"
KIND_REPLY = "cs.reply"
KIND_ERROR = "cs.error"


class ClientServer(Component):
    """Request/reply invocation of named services on remote hosts."""

    kind = "cs"
    code_size = 4_000

    def handlers(self) -> Dict[str, MessageHandler]:
        return {KIND_REQUEST: self._handle_request}

    # -- client side -------------------------------------------------------------

    def call(
        self,
        server_id: str,
        service: str,
        args: object = None,
        request_size: Optional[int] = None,
        timeout: float = 30.0,
    ) -> Generator:
        """Invoke ``service`` on ``server_id`` (generator helper).

        Returns the service result.  Raises :class:`ServiceNotFound`
        when the server does not offer the service, and
        :class:`RemoteExecutionError` when the service handler failed.
        """
        host = self.require_host()
        tracer = host.world.tracer
        message = Message(
            source=host.id,
            destination=server_id,
            kind=KIND_REQUEST,
            payload={"service": service, "args": args},
            size_bytes=(
                request_size if request_size is not None else estimate_size(args)
            ),
        )
        host.world.metrics.counter("cs.calls").increment()
        span = tracer.start(
            "cs.call", host.id, service=service, server=server_id
        )
        started = self.env.now
        try:
            reply = yield from host.request(
                message, timeout=timeout, parent=span
            )
        except BaseException as error:
            tracer.finish(span, status="error", error=type(error).__name__)
            raise
        host.world.metrics.histogram("cs.call_seconds").observe(
            self.env.now - started
        )
        if reply.kind == KIND_ERROR:
            details = reply.payload or {}
            tracer.finish(
                span, status="error",
                error=str(details.get("error_type", "error")),
            )
            if details.get("error_type") == "ServiceNotFound":
                raise ServiceNotFound(details.get("error", service))
            raise RemoteExecutionError(
                f"service {service!r} on {server_id} failed",
                remote_error=str(details.get("error", "")),
            )
        tracer.finish(span)
        return reply.payload

    # -- server side ----------------------------------------------------------------

    def _handle_request(self, message: Message) -> Generator:
        host = self.require_host()
        payload = message.payload or {}
        service_name = payload.get("service")
        entry = host.services.get(service_name)
        if entry is None:
            yield host.reply_to(
                message,
                KIND_ERROR,
                payload={
                    "error": f"no service {service_name!r} on {host.id}",
                    "error_type": "ServiceNotFound",
                },
                size_bytes=64,
            )
            return
        handler, work_units = entry
        yield from host.execute(work_units)
        try:
            result, size_bytes = handler(payload.get("args"), host)
        except Exception as error:  # noqa: BLE001 - app handlers are foreign code
            yield host.reply_to(
                message,
                KIND_ERROR,
                payload={
                    "error": f"{type(error).__name__}: {error}",
                    "error_type": type(error).__name__,
                },
                size_bytes=64,
            )
            return
        host.world.metrics.counter("cs.served").increment()
        yield host.reply_to(message, KIND_REPLY, payload=result, size_bytes=size_bytes)
