"""Jini-style centralised lookup service (the baseline discovery).

"Jini provides a centralised framework, which requires lookup services,
functioning as indexes of services offered, to operate."  The server
holds leased registrations on a fixed host; clients register (and renew
leases) and query it by unicast.  When the server is unreachable —
exactly the ad-hoc situation the paper highlights — everything fails.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, Optional

from ..errors import RequestTimeout, ServiceNotFound, TransportTimeout, Unreachable
from ..net import Message
from .components import Component, MessageHandler
from .invocation import RetryPolicy, request_with_retry
from .services import ServiceDescription

KIND_REGISTER = "lookup.register"
KIND_RENEW = "lookup.renew"
KIND_WITHDRAW = "lookup.withdraw"
KIND_QUERY = "lookup.query"
KIND_REPLY = "lookup.reply"
KIND_ACK = "lookup.ack"


@dataclass
class Registration:
    description: ServiceDescription
    expires_at: float


class LookupServer(Component):
    """The index: leased service registrations on a fixed host."""

    kind = "lookup-server"
    code_size = 7_000

    def __init__(self, lease_duration: float = 30.0, sweep_interval: float = 5.0) -> None:
        super().__init__()
        if lease_duration <= 0 or sweep_interval <= 0:
            raise ValueError("durations must be positive")
        self.lease_duration = lease_duration
        self.sweep_interval = sweep_interval
        self.registrations: Dict[str, Registration] = {}

    def start(self) -> None:
        super().start()
        self.env.process(
            self._sweep_loop(), name=f"lookup-sweep:{self.require_host().id}"
        )

    def handlers(self) -> Dict[str, MessageHandler]:
        return {
            KIND_REGISTER: self._handle_register,
            KIND_RENEW: self._handle_renew,
            KIND_WITHDRAW: self._handle_withdraw,
            KIND_QUERY: self._handle_query,
        }

    def _handle_register(self, message: Message) -> Generator:
        host = self.require_host()
        description: ServiceDescription = (message.payload or {})["service"]
        self.registrations[description.key] = Registration(
            description=description,
            expires_at=self.env.now + self.lease_duration,
        )
        host.world.metrics.counter("lookup.registrations").increment()
        yield host.reply_to(
            message,
            KIND_ACK,
            payload={"lease": self.lease_duration, "key": description.key},
            size_bytes=32,
        )

    def _handle_renew(self, message: Message) -> Generator:
        host = self.require_host()
        key = (message.payload or {}).get("key")
        registration = self.registrations.get(key)
        renewed = False
        if registration is not None:
            registration.expires_at = self.env.now + self.lease_duration
            renewed = True
        yield host.reply_to(
            message,
            KIND_ACK,
            payload={"renewed": renewed, "lease": self.lease_duration},
            size_bytes=32,
        )

    def _handle_withdraw(self, message: Message) -> Generator:
        host = self.require_host()
        key = (message.payload or {}).get("key")
        self.registrations.pop(key, None)
        yield host.reply_to(message, KIND_ACK, payload={"removed": True}, size_bytes=32)

    def _handle_query(self, message: Message) -> Generator:
        host = self.require_host()
        payload = message.payload or {}
        matches = [
            registration.description
            for registration in self.registrations.values()
            if registration.description.matches(
                payload.get("service_type", ""), payload.get("attributes")
            )
        ]
        host.world.metrics.counter("lookup.queries").increment()
        yield host.reply_to(
            message,
            KIND_REPLY,
            payload={"services": matches},
            size_bytes=sum(m.size_bytes for m in matches) + 32,
        )

    def _sweep_loop(self) -> Generator:
        while self.started:
            now = self.env.now
            expired = [
                key
                for key, registration in self.registrations.items()
                if registration.expires_at <= now
            ]
            for key in expired:
                del self.registrations[key]
            yield self.env.timeout(self.sweep_interval)


class LookupClient(Component):
    """Registers with — and queries — one :class:`LookupServer`."""

    kind = "lookup-client"
    code_size = 4_000

    def __init__(self, server_id: str, request_timeout: float = 10.0) -> None:
        super().__init__()
        self.server_id = server_id
        self.request_timeout = request_timeout
        self._registered: Dict[str, ServiceDescription] = {}
        self._renewers: Dict[str, object] = {}

    def handlers(self) -> Dict[str, MessageHandler]:
        return {}

    def register(
        self,
        description: ServiceDescription,
        retry: Optional[RetryPolicy] = None,
    ) -> Generator:
        """Register a service and keep its lease renewed (generator).

        Returns the granted lease duration.  Raises the transport
        errors when the server is unreachable (after exhausting
        ``retry``, when one is given).
        """
        host = self.require_host()

        def build() -> Message:
            return Message(
                source=host.id,
                destination=self.server_id,
                kind=KIND_REGISTER,
                payload={"service": description},
                size_bytes=description.size_bytes,
            )

        reply = yield from request_with_retry(
            host, build, timeout=self.request_timeout, retry=retry
        )
        lease = float((reply.payload or {}).get("lease", 30.0))
        self._registered[description.key] = description
        self._renewers[description.key] = self.env.process(
            self._renew_loop(description.key, lease),
            name=f"lease-renew:{description.key}",
        )
        return lease

    def withdraw(
        self, key: str, retry: Optional[RetryPolicy] = None
    ) -> Generator:
        host = self.require_host()
        self._registered.pop(key, None)

        def build() -> Message:
            return Message(
                source=host.id,
                destination=self.server_id,
                kind=KIND_WITHDRAW,
                payload={"key": key},
                size_bytes=64,
            )

        yield from request_with_retry(
            host, build, timeout=self.request_timeout, retry=retry
        )

    def find(
        self,
        service_type: str,
        attributes: Optional[Dict[str, str]] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> Generator:
        """Query the lookup server (generator helper).

        Returns matching descriptions; raises :class:`ServiceNotFound`
        wrapping the cause when the server cannot be reached — the
        failure mode the paper attributes to centralised discovery.
        """
        host = self.require_host()

        def build() -> Message:
            return Message(
                source=host.id,
                destination=self.server_id,
                kind=KIND_QUERY,
                payload={
                    "service_type": service_type,
                    "attributes": dict(attributes or {}),
                },
                size_bytes=96,
            )

        try:
            reply = yield from request_with_retry(
                host, build, timeout=self.request_timeout, retry=retry
            )
        except (Unreachable, TransportTimeout, RequestTimeout) as error:
            raise ServiceNotFound(
                f"lookup server {self.server_id} unreachable: "
                f"{type(error).__name__}"
            ) from error
        return (reply.payload or {}).get("services", [])

    def _renew_loop(self, key: str, lease: float) -> Generator:
        host = self.require_host()
        while key in self._registered and self.started:
            yield self.env.timeout(lease / 2.0)
            if key not in self._registered:
                return
            message = Message(
                source=host.id,
                destination=self.server_id,
                kind=KIND_RENEW,
                payload={"key": key},
                size_bytes=64,
            )
            try:
                reply = yield from host.request(
                    message, timeout=self.request_timeout
                )
            except (Unreachable, TransportTimeout, RequestTimeout):
                # Keep trying; the lease may lapse at the server meanwhile.
                continue
            if not (reply.payload or {}).get("renewed", False):
                # Lease lapsed (e.g. during a partition, or the server
                # restarted empty): self-heal by re-registering.
                description = self._registered.get(key)
                if description is None:
                    return
                register = Message(
                    source=host.id,
                    destination=self.server_id,
                    kind=KIND_REGISTER,
                    payload={"service": description},
                    size_bytes=description.size_bytes,
                )
                try:
                    yield from host.request(
                        register, timeout=self.request_timeout
                    )
                    host.world.metrics.counter(
                        "lookup.reregistrations"
                    ).increment()
                except (Unreachable, TransportTimeout, RequestTimeout):
                    continue
