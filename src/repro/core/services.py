"""Service descriptions: what discovery and lookup traffic in.

A :class:`ServiceDescription` names a typed service offered by a host.
Following Jini's design — which the cinema scenario borrows — a
description may name a *proxy unit*: a code unit the client must COD-
fetch before it can use the service (a driver, a user interface, a
protocol stub).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..lmu.serializer import estimate_size


@dataclass(frozen=True)
class ServiceDescription:
    """An advertisable service."""

    service_type: str  #: e.g. "printer", "ticketing", "compute"
    provider: str  #: host id offering the service
    name: str  #: provider-unique instance name, e.g. "lobby-printer"
    attributes: Tuple[Tuple[str, str], ...] = ()
    #: Code unit the client needs before invoking (Jini-style proxy).
    proxy_unit: Optional[str] = None

    @property
    def size_bytes(self) -> int:
        """Modelled advertisement size on the wire."""
        return 96 + estimate_size(dict(self.attributes))

    def attribute(self, key: str, default: str = "") -> str:
        for name, value in self.attributes:
            if name == key:
                return value
        return default

    def matches(self, service_type: str, attributes: Optional[Dict[str, str]] = None) -> bool:
        """Type equality plus (optional) attribute subset matching."""
        if self.service_type != service_type:
            return False
        if attributes:
            mine = dict(self.attributes)
            for key, value in attributes.items():
                if mine.get(key) != value:
                    return False
        return True

    @property
    def key(self) -> str:
        """Registry key: provider-scoped instance identity."""
        return f"{self.provider}/{self.service_type}/{self.name}"

    def __repr__(self) -> str:
        return f"<Service {self.key}>"


def service(
    service_type: str,
    provider: str,
    name: str,
    attributes: Optional[Dict[str, str]] = None,
    proxy_unit: Optional[str] = None,
) -> ServiceDescription:
    """Convenience constructor taking a plain attribute dict."""
    return ServiceDescription(
        service_type=service_type,
        provider=provider,
        name=name,
        attributes=tuple(sorted((attributes or {}).items())),
        proxy_unit=proxy_unit,
    )
