"""Code On Demand: fetch capability when needed, drop it when not.

The paper's flagship scenario: "Imagine having applications that
transparently download audio codecs to play a new audio format … when
the code is no longer needed, the device can choose to delete it,
conserving resources."  The client side sends its installed inventory
so the provider ships a differential capsule; the provider side serves
from its repository (trusted third party) or its own codebase (a peer
in an ad-hoc scenario).
"""

from __future__ import annotations

from typing import Dict, Generator, List, Sequence

from ..errors import UnitNotFound
from ..lmu import (
    Capsule,
    Requirement,
    build_capsule,
    estimate_size,
    install_capsule,
)
from ..net import Message
from ..security import (
    OP_INSTALL_CODE,
    OP_SERVE_COD,
    WORK_UNITS_PER_SECOND,
    sign_capsule,
)
from .components import Component, MessageHandler

KIND_REQUEST = "cod.request"
KIND_REPLY = "cod.reply"
KIND_ERROR = "cod.error"


class CodeOnDemand(Component):
    """Fetch, install, and serve code units on demand."""

    kind = "cod"
    code_size = 6_000

    def handlers(self) -> Dict[str, MessageHandler]:
        return {KIND_REQUEST: self._handle_request}

    # -- client side -------------------------------------------------------------

    def fetch(
        self,
        provider_id: str,
        roots: Sequence[str],
        install: bool = True,
        pinned: bool = False,
        timeout: float = 60.0,
    ) -> Generator:
        """Fetch the closure of ``roots`` from ``provider_id`` (generator).

        Sends the local inventory so the provider ships only what is
        missing; verifies, then installs (unless ``install=False``).
        Returns the received :class:`Capsule`.  Raises
        :class:`UnitNotFound` when the provider cannot supply a root.
        """
        host = self.require_host()
        tracer = host.world.tracer
        span = tracer.start(
            "cod.fetch", host.id, roots=",".join(roots), provider=provider_id
        )
        started = self.env.now
        inventory = {
            name: str(version)
            for name, version in host.codebase.inventory().items()
        }
        message = Message(
            source=host.id,
            destination=provider_id,
            kind=KIND_REQUEST,
            payload={"roots": list(roots), "inventory": inventory},
            size_bytes=estimate_size(list(roots)) + estimate_size(inventory),
        )
        host.world.metrics.counter("cod.fetches").increment()
        try:
            reply = yield from host.request(
                message, timeout=timeout, parent=span
            )
        except BaseException as error:
            tracer.finish(span, status="error", error=type(error).__name__)
            raise
        if reply.kind == KIND_ERROR:
            tracer.finish(span, status="error", error="UnitNotFound")
            raise UnitNotFound(
                f"provider {provider_id} cannot supply {list(roots)}: "
                f"{(reply.payload or {}).get('error', '')}"
            )
        capsule: Capsule = (reply.payload or {})["capsule"]
        yield from host.admit_capsule(capsule, OP_INSTALL_CODE)
        host.world.metrics.counter("cod.bytes_fetched").increment(
            capsule.size_bytes
        )
        host.world.metrics.histogram("cod.fetch_seconds").observe(
            self.env.now - started
        )
        if install:
            install_capsule(capsule, host.codebase, pinned=pinned)
        tracer.finish(span, bytes=capsule.size_bytes)
        return capsule

    def ensure(
        self,
        roots: Sequence[str],
        provider_id: str,
        pinned: bool = False,
        timeout: float = 60.0,
    ) -> Generator:
        """Make sure ``roots`` are installed, fetching only on a miss.

        Returns ``"hit"`` when everything was already installed (a
        cache hit: the units are touched for the eviction stats) and
        ``"miss"`` when a fetch was needed.
        """
        host = self.require_host()
        requirements = [Requirement.parse(root) for root in roots]
        if all(host.codebase.satisfies(req) for req in requirements):
            for req in requirements:
                host.codebase.touch(req.name)
            host.world.metrics.counter("cod.hits").increment()
            return "hit"
        host.world.metrics.counter("cod.misses").increment()
        yield from self.fetch(
            provider_id, roots, install=True, pinned=pinned, timeout=timeout
        )
        return "miss"

    def release(self, names: Sequence[str]) -> List[str]:
        """Uninstall units no longer needed ("the device can choose to
        delete it, conserving resources").  Returns what was removed."""
        host = self.require_host()
        removed = []
        for name in names:
            if name in host.codebase:
                host.codebase.uninstall(name)
                removed.append(name)
        return removed

    # -- provider side ----------------------------------------------------------------

    def _catalogue_resolve(self, requirement: Requirement):
        """Resolve from the repository first, then the local codebase."""
        host = self.require_host()
        if host.repository is not None:
            try:
                return host.repository.resolve(requirement)
            except UnitNotFound:
                pass
        unit = host.codebase.get(requirement.name)
        if not requirement.satisfied_by(unit):
            raise UnitNotFound(
                f"{host.id} holds {unit.qualified_name}, which does not "
                f"satisfy {requirement}"
            )
        return unit

    def _handle_request(self, message: Message) -> Generator:
        host = self.require_host()
        host.policy.check(OP_SERVE_COD, message.source)
        payload = message.payload or {}
        roots = payload.get("roots", [])
        inventory = {
            name: _parse_version(text)
            for name, text in (payload.get("inventory") or {}).items()
        }
        try:
            capsule = build_capsule(
                sender=host.id,
                purpose="cod-reply",
                roots=roots,
                resolve=self._catalogue_resolve,
                built_at=self.env.now,
                already_installed=inventory,
            )
        except UnitNotFound as error:
            yield host.reply_to(
                message, KIND_ERROR, payload={"error": str(error)}, size_bytes=64
            )
            return
        sign_seconds = sign_capsule(host.keypair, capsule)
        yield from host.execute(sign_seconds * WORK_UNITS_PER_SECOND)
        host.world.metrics.counter("cod.served").increment()
        yield host.reply_to(
            message,
            KIND_REPLY,
            payload={"capsule": capsule},
            size_bytes=capsule.size_bytes,
        )


def _parse_version(text: str):
    from ..lmu import Version

    return Version.parse(text)
