"""Code On Demand: fetch capability when needed, drop it when not.

The paper's flagship scenario: "Imagine having applications that
transparently download audio codecs to play a new audio format … when
the code is no longer needed, the device can choose to delete it,
conserving resources."  The client side sends its installed inventory
so the provider ships a differential capsule; the provider side serves
from its repository (trusted third party) or its own codebase (a peer
in an ad-hoc scenario).

The fetch exchange runs through the shared
:class:`~repro.core.invocation.InvocationPipeline` (correlation,
timeout, link retry, typed error marshalling, spans, metrics); this
module owns capsule building, differential inventories, and the
install/evict lifecycle.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Sequence, Union

from ..errors import UnitNotFound
from ..lmu import (
    Capsule,
    Requirement,
    build_capsule,
    estimate_size,
    install_capsule,
)
from ..net import Message
from ..security import (
    OP_INSTALL_CODE,
    OP_SERVE_COD,
    WORK_UNITS_PER_SECOND,
    sign_capsule,
)
from .adaptation import PARADIGM_COD
from .components import Component, MessageHandler
from .invocation import (
    DEFAULT_RETRY,
    InvocationTask,
    RetryPolicy,
    run_task_locally,
)

KIND_REQUEST = "cod.request"
KIND_REPLY = "cod.reply"
KIND_ERROR = "cod.error"


class CodeOnDemand(Component):
    """Fetch, install, and serve code units on demand."""

    kind = "cod"
    paradigm = PARADIGM_COD
    #: A cached unit keeps working with the link down; ``invoke`` only
    #: needs the network on a cache miss.
    requires_link = True
    code_size = 6_000

    def handlers(self) -> Dict[str, MessageHandler]:
        return {KIND_REQUEST: self._handle_request}

    # -- client side -------------------------------------------------------------

    def _fetch_capsule(
        self,
        provider_id: str,
        roots: Sequence[str],
        span: object,
        timeout: float,
        retry: Optional[RetryPolicy],
        install: bool,
        pinned: bool,
    ) -> Generator:
        """The fetch exchange itself (no span/metric envelope): request
        a differential capsule, admit, install.  Shared by :meth:`fetch`
        and :meth:`invoke`, each of which wraps it in exactly one
        pipeline operation."""
        host = self.require_host()
        host.world.metrics.counter("cod.fetches").increment()
        inventory = {
            name: str(version)
            for name, version in host.codebase.inventory().items()
        }

        def build() -> Message:
            return Message(
                source=host.id,
                destination=provider_id,
                kind=KIND_REQUEST,
                payload={"roots": list(roots), "inventory": inventory},
                size_bytes=estimate_size(list(roots))
                + estimate_size(inventory),
            )

        reply = yield from self.pipeline.exchange(
            build,
            timeout=timeout,
            error_kinds=(KIND_ERROR,),
            parent=span,
            retry=retry,
        )
        capsule: Capsule = (reply.payload or {})["capsule"]
        yield from host.admit_capsule(capsule, OP_INSTALL_CODE)
        host.world.metrics.counter("cod.bytes_fetched").increment(
            capsule.size_bytes
        )
        if install:
            install_capsule(capsule, host.codebase, pinned=pinned)
        return capsule

    def fetch(
        self,
        provider_id: str,
        roots: Sequence[str],
        install: bool = True,
        pinned: bool = False,
        timeout: float = 60.0,
        retry: Optional[RetryPolicy] = None,
    ) -> Generator:
        """Fetch the closure of ``roots`` from ``provider_id`` (generator).

        Sends the local inventory so the provider ships only what is
        missing; verifies, then installs (unless ``install=False``).
        Returns the received :class:`Capsule`.  Raises
        :class:`UnitNotFound` when the provider cannot supply a root.
        """

        def attempt(span: object) -> Generator:
            return (
                yield from self._fetch_capsule(
                    provider_id, roots, span, timeout, retry, install, pinned
                )
            )

        return (
            yield from self.pipeline.run(
                "cod.fetch",
                attempt,
                aliases={"seconds": "cod.fetch_seconds"},
                roots=",".join(roots),
                provider=provider_id,
            )
        )

    def ensure(
        self,
        roots: Sequence[str],
        provider_id: str,
        pinned: bool = False,
        timeout: float = 60.0,
        retry: Optional[RetryPolicy] = None,
    ) -> Generator:
        """Make sure ``roots`` are installed, fetching only on a miss.

        Returns ``"hit"`` when everything was already installed (a
        cache hit: the units are touched for the eviction stats) and
        ``"miss"`` when a fetch was needed.
        """
        host = self.require_host()
        requirements = [Requirement.parse(root) for root in roots]
        if all(host.codebase.satisfies(req) for req in requirements):
            for req in requirements:
                host.codebase.touch(req.name)
            host.world.metrics.counter("cod.hits").increment()
            return "hit"
        host.world.metrics.counter("cod.misses").increment()
        yield from self.fetch(
            provider_id,
            roots,
            install=True,
            pinned=pinned,
            timeout=timeout,
            retry=retry,
        )
        return "miss"

    def invoke(
        self,
        task: InvocationTask,
        target: Union[str, Sequence[str], None],
        retry: Optional[RetryPolicy] = None,
    ) -> Generator:
        """Run ``task`` locally, fetching its unit on demand (Paradigm
        protocol).  ``target`` names the provider(s) to fetch from on a
        cache miss; execution always happens on this host."""
        host = self.require_host()
        policy = DEFAULT_RETRY if retry is None else retry
        providers = (
            [target] if isinstance(target, str) else list(target or [])
        )

        def attempt(span: object) -> Generator:
            requirement = Requirement.parse(task.name)
            if host.codebase.satisfies(requirement):
                host.codebase.touch(requirement.name)
                host.world.metrics.counter("cod.hits").increment()
            else:
                host.world.metrics.counter("cod.misses").increment()
                if not providers:
                    raise UnitNotFound(
                        f"{task.name!r} is not cached and no provider was "
                        "given"
                    )
                yield from self._fetch_capsule(
                    providers[0],
                    [task.name],
                    span,
                    task.timeout,
                    policy,
                    True,
                    False,
                )
            value = yield from run_task_locally(
                host, task, unit=host.codebase.get(requirement.name)
            )
            self.pipeline.record_served()
            return value

        return (
            yield from self.pipeline.run(
                "cod.invoke", attempt, task=task.name
            )
        )

    def release(self, names: Sequence[str]) -> List[str]:
        """Uninstall units no longer needed ("the device can choose to
        delete it, conserving resources").  Returns what was removed."""
        host = self.require_host()
        removed = []
        for name in names:
            if name in host.codebase:
                host.codebase.uninstall(name)
                removed.append(name)
        return removed

    # -- provider side ----------------------------------------------------------------

    def _catalogue_resolve(self, requirement: Requirement):
        """Resolve from the repository first, then the local codebase."""
        host = self.require_host()
        if host.repository is not None:
            try:
                return host.repository.resolve(requirement)
            except UnitNotFound:
                pass
        unit = host.codebase.get(requirement.name)
        if not requirement.satisfied_by(unit):
            raise UnitNotFound(
                f"{host.id} holds {unit.qualified_name}, which does not "
                f"satisfy {requirement}"
            )
        return unit

    def _handle_request(self, message: Message) -> Generator:
        host = self.require_host()
        host.policy.check(OP_SERVE_COD, message.source)
        payload = message.payload or {}
        roots = payload.get("roots", [])
        inventory = {
            name: _parse_version(text)
            for name, text in (payload.get("inventory") or {}).items()
        }
        try:
            capsule = build_capsule(
                sender=host.id,
                purpose="cod-reply",
                roots=roots,
                resolve=self._catalogue_resolve,
                built_at=self.env.now,
                already_installed=inventory,
            )
        except UnitNotFound as error:
            yield self.pipeline.reply_error(message, KIND_ERROR, error)
            return
        sign_seconds = sign_capsule(host.keypair, capsule)
        yield from host.execute(sign_seconds * WORK_UNITS_PER_SECOND)
        self.pipeline.record_served(alias="cod.served")
        yield host.reply_to(
            message,
            KIND_REPLY,
            payload={"capsule": capsule},
            size_bytes=capsule.size_bytes,
        )


def _parse_version(text: str):
    from ..lmu import Version

    return Version.parse(text)
