"""Remote EValuation: ship code to where the cycles are.

"A device can send code to another host, have it executed and retrieve
the result" — the paper's answer to limited device CPU: REV-ship a
work capsule to a powerful fixed host and wait for the (small) result
instead of grinding locally.
"""

from __future__ import annotations

from typing import Dict, Generator, Sequence

from ..errors import RemoteExecutionError, UnitNotFound
from ..lmu import DataUnit, Requirement, build_capsule, estimate_size
from ..net import Message
from ..security import (
    OP_ACCEPT_REV,
    WORK_UNITS_PER_SECOND,
    sign_capsule,
)
from .components import Component, MessageHandler

KIND_REQUEST = "rev.request"
KIND_REPLY = "rev.reply"


class RemoteEvaluation(Component):
    """Ship a code capsule for execution elsewhere; get the result back."""

    kind = "rev"
    code_size = 6_000

    def handlers(self) -> Dict[str, MessageHandler]:
        return {KIND_REQUEST: self._handle_request}

    # -- client side -------------------------------------------------------------

    def evaluate(
        self,
        target_id: str,
        roots: Sequence[str],
        args: Sequence[object] = (),
        data_units: Sequence[DataUnit] = (),
        timeout: float = 120.0,
    ) -> Generator:
        """Evaluate local unit ``roots[0]`` on ``target_id`` (generator).

        The capsule carries the dependency closure of ``roots`` from
        this host's codebase plus any ``data_units``.  Returns the
        remote result value; raises :class:`RemoteExecutionError` when
        the remote run failed (the remote error text is attached).
        """
        host = self.require_host()

        def resolve(requirement: Requirement):
            unit = host.codebase.get(requirement.name)
            if not requirement.satisfied_by(unit):
                raise UnitNotFound(
                    f"installed {unit.qualified_name} does not satisfy "
                    f"{requirement}"
                )
            return unit

        tracer = host.world.tracer
        span = tracer.start(
            "rev.evaluate", host.id, root=str(roots[0]), target=target_id
        )
        started = self.env.now
        capsule = build_capsule(
            sender=host.id,
            purpose="rev-request",
            roots=list(roots),
            resolve=resolve,
            data_units=data_units,
            built_at=self.env.now,
        )
        sign_seconds = sign_capsule(host.keypair, capsule)
        yield from host.execute(sign_seconds * WORK_UNITS_PER_SECOND)
        message = Message(
            source=host.id,
            destination=target_id,
            kind=KIND_REQUEST,
            payload={
                "capsule": capsule,
                "entry": capsule.code_unit(
                    Requirement.parse(roots[0]).name
                ).name,
                "args": tuple(args),
            },
            size_bytes=capsule.size_bytes,
        )
        host.world.metrics.counter("rev.requests").increment()
        host.world.metrics.counter("rev.bytes_shipped").increment(
            capsule.size_bytes
        )
        try:
            reply = yield from host.request(
                message, timeout=timeout, parent=span
            )
        except BaseException as error:
            tracer.finish(span, status="error", error=type(error).__name__)
            raise
        host.world.metrics.histogram("rev.roundtrip_seconds").observe(
            self.env.now - started
        )
        outcome = reply.payload or {}
        if not outcome.get("ok"):
            tracer.finish(span, status="error", error="remote")
            raise RemoteExecutionError(
                f"REV of {roots[0]} on {target_id} failed",
                remote_error=str(outcome.get("error", "")),
            )
        tracer.finish(span)
        return outcome.get("value")

    # -- server side ----------------------------------------------------------------

    def _handle_request(self, message: Message) -> Generator:
        host = self.require_host()
        payload = message.payload or {}
        capsule = payload["capsule"]
        principal = yield from host.admit_capsule(capsule, OP_ACCEPT_REV)
        entry_unit = capsule.code_unit(payload["entry"])
        data = {unit.name: unit.payload for unit in capsule.data_units}
        context = host.execution_context(
            principal,
            services={"data": data, "host_id": host.id},
        )
        result = host.sandbox.run(
            entry_unit.instantiate(), context, *payload.get("args", ())
        )
        # The guest's metered work happens at *this* host's speed.
        yield from host.execute(result.work_used)
        host.world.metrics.counter("rev.served").increment()
        outcome = {
            "ok": result.ok,
            "value": result.value if result.ok else None,
            "error": result.error,
        }
        yield host.reply_to(
            message,
            KIND_REPLY,
            payload=outcome,
            size_bytes=estimate_size(outcome["value"]) + 32,
        )
