"""Remote EValuation: ship code to where the cycles are.

"A device can send code to another host, have it executed and retrieve
the result" — the paper's answer to limited device CPU: REV-ship a
work capsule to a powerful fixed host and wait for the (small) result
instead of grinding locally.

The exchange itself (correlation, timeout, link retry, error
marshalling, spans, metrics) runs through the shared
:class:`~repro.core.invocation.InvocationPipeline`; this module owns
the capsule build/sign on the way out and the sandboxed run on the
server.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional, Sequence, Union

from ..errors import UnitNotFound
from ..lmu import DataUnit, Requirement, build_capsule, estimate_size
from ..net import Message
from ..security import (
    OP_ACCEPT_REV,
    WORK_UNITS_PER_SECOND,
    sign_capsule,
)
from .adaptation import PARADIGM_REV
from .components import Component, MessageHandler
from .invocation import DEFAULT_RETRY, InvocationTask, RetryPolicy

KIND_REQUEST = "rev.request"
KIND_REPLY = "rev.reply"
KIND_ERROR = "rev.error"


class RemoteEvaluation(Component):
    """Ship a code capsule for execution elsewhere; get the result back."""

    kind = "rev"
    paradigm = PARADIGM_REV
    code_size = 6_000

    def handlers(self) -> Dict[str, MessageHandler]:
        return {KIND_REQUEST: self._handle_request}

    # -- client side -------------------------------------------------------------

    def evaluate(
        self,
        target_id: str,
        roots: Sequence[str],
        args: Sequence[object] = (),
        data_units: Sequence[DataUnit] = (),
        timeout: float = 120.0,
        retry: Optional[RetryPolicy] = None,
    ) -> Generator:
        """Evaluate local unit ``roots[0]`` on ``target_id`` (generator).

        The capsule carries the dependency closure of ``roots`` from
        this host's codebase plus any ``data_units``.  Returns the
        remote result value; raises :class:`RemoteExecutionError` when
        the remote run failed (the remote error text is attached).
        """
        host = self.require_host()

        def resolve(requirement: Requirement):
            unit = host.codebase.get(requirement.name)
            if not requirement.satisfied_by(unit):
                raise UnitNotFound(
                    f"installed {unit.qualified_name} does not satisfy "
                    f"{requirement}"
                )
            return unit

        def attempt(span: object) -> Generator:
            capsule = build_capsule(
                sender=host.id,
                purpose="rev-request",
                roots=list(roots),
                resolve=resolve,
                data_units=data_units,
                built_at=self.env.now,
            )
            sign_seconds = sign_capsule(host.keypair, capsule)
            yield from host.execute(sign_seconds * WORK_UNITS_PER_SECOND)
            host.world.metrics.counter("rev.bytes_shipped").increment(
                capsule.size_bytes
            )

            def build() -> Message:
                return Message(
                    source=host.id,
                    destination=target_id,
                    kind=KIND_REQUEST,
                    payload={
                        "capsule": capsule,
                        "entry": capsule.code_unit(
                            Requirement.parse(roots[0]).name
                        ).name,
                        "args": tuple(args),
                    },
                    size_bytes=capsule.size_bytes,
                )

            reply = yield from self.pipeline.exchange(
                build,
                timeout=timeout,
                error_kinds=(KIND_ERROR,),
                parent=span,
                retry=retry,
            )
            return (reply.payload or {}).get("value")

        return (
            yield from self.pipeline.run(
                "rev.evaluate",
                attempt,
                aliases={
                    "calls": "rev.requests",
                    "seconds": "rev.roundtrip_seconds",
                },
                root=str(roots[0]),
                target=target_id,
            )
        )

    def invoke(
        self,
        task: InvocationTask,
        target: Union[str, Sequence[str], None],
        retry: Optional[RetryPolicy] = None,
    ) -> Generator:
        """Run ``task`` by shipping its unit to each target (Paradigm
        protocol).  The task's unit is (re)installed into the local
        codebase so the capsule closure can resolve it."""
        host = self.require_host()
        policy = DEFAULT_RETRY if retry is None else retry
        unit = task.unit()
        host.codebase.install(unit)
        targets = [target] if isinstance(target, str) else list(target or [])
        results = []
        for target_id in targets:
            value = yield from self.evaluate(
                target_id,
                [task.name],
                args=(task.payload,),
                timeout=task.timeout,
                retry=policy,
            )
            results.append(value)
        if isinstance(target, str):
            return results[0]
        return results

    # -- server side ----------------------------------------------------------------

    def _handle_request(self, message: Message) -> Generator:
        host = self.require_host()
        payload = message.payload or {}
        capsule = payload["capsule"]
        principal = yield from host.admit_capsule(capsule, OP_ACCEPT_REV)
        entry_unit = capsule.code_unit(payload["entry"])
        data = {unit.name: unit.payload for unit in capsule.data_units}
        result = host.run_guest(
            entry_unit.instantiate(),
            principal,
            *payload.get("args", ()),
            services={"data": data, "host_id": host.id},
            task_name=entry_unit.name,
        )
        # The guest's metered work happens at *this* host's speed.
        yield from host.execute(result.work_used)
        if not result.ok:
            # The typed wire payload travels as-is, so the caller
            # rebuilds the same exception type the guest raised
            # (SandboxViolation stays a SandboxViolation).
            yield self.pipeline.reply_error(
                message, KIND_ERROR, result.error_wire
            )
            return
        self.pipeline.record_served(alias="rev.served")
        yield host.reply_to(
            message,
            KIND_REPLY,
            payload={"value": result.value},
            size_bytes=estimate_size(result.value) + 32,
        )
