"""Convenience builders: hosts with the standard component stack.

Most deployments want the full paradigm suite; these helpers cut the
boilerplate of wiring components, trust, and context monitoring.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..lmu import CodeRepository
from ..net import LinkTechnology, Position
from ..security import SecurityPolicy, SIGNED_POLICY
from .agents import AgentRuntime
from .cod import CodeOnDemand
from .context import Battery, ContextMonitor
from .cs import ClientServer
from .discovery import Discovery
from .host import MobileHost
from .rev import RemoteEvaluation
from .update import UpdateManager
from .world import World

#: Component kinds installed by :func:`standard_host`.
STANDARD_COMPONENTS = ("cs", "rev", "cod", "agents", "discovery", "update")


def standard_host(
    world: World,
    node_id: str,
    position: Position = Position(0.0, 0.0),
    technologies: Iterable[LinkTechnology] = (),
    fixed: bool = False,
    cpu_speed: float = 1.0,
    policy: SecurityPolicy = SIGNED_POLICY,
    quota_bytes: float = float("inf"),
    battery: Optional[Battery] = None,
    repository: Optional[CodeRepository] = None,
    beacon_interval: Optional[float] = None,
    monitor_context: bool = False,
) -> MobileHost:
    """A node plus a middleware host with the full paradigm suite."""
    node = world.add_node(
        node_id,
        position=position,
        technologies=technologies,
        fixed=fixed,
        cpu_speed=cpu_speed,
    )
    host = MobileHost(
        world,
        node,
        policy=policy,
        quota_bytes=quota_bytes,
        battery=battery,
        repository=repository,
    )
    host.add_component(ClientServer())
    host.add_component(RemoteEvaluation())
    host.add_component(CodeOnDemand())
    host.add_component(AgentRuntime())
    host.add_component(Discovery(beacon_interval=beacon_interval))
    host.add_component(UpdateManager())
    if monitor_context:
        ContextMonitor(host)
    return host


def mutual_trust(*hosts: MobileHost) -> None:
    """Make every given host trust every other's signing key."""
    for signer in hosts:
        for verifier in hosts:
            if signer is not verifier:
                verifier.truststore.trust(signer.keypair.public_key)


# ---------------------------------------------------------------------------
# Device profiles: period-plausible presets for the common device classes.
# ---------------------------------------------------------------------------


def pda_host(
    world: World,
    node_id: str,
    position: Position = Position(0.0, 0.0),
    **overrides,
) -> MobileHost:
    """A 2002 PDA: Wi-Fi + Bluetooth radios, slow CPU, tight storage,
    battery-powered."""
    from ..net import BLUETOOTH, WIFI_ADHOC, WIFI_INFRA
    from .context import Battery

    settings = dict(
        technologies=[WIFI_ADHOC, WIFI_INFRA, BLUETOOTH],
        cpu_speed=0.2,
        quota_bytes=2_000_000,
        battery=Battery(capacity_joules=36_000.0),
    )
    settings.update(overrides)
    return standard_host(world, node_id, position, **settings)


def phone_host(
    world: World,
    node_id: str,
    position: Position = Position(0.0, 0.0),
    **overrides,
) -> MobileHost:
    """A GPRS phone: cellular + Bluetooth, very slow CPU, tiny storage."""
    from ..net import BLUETOOTH, GPRS
    from .context import Battery

    settings = dict(
        technologies=[GPRS, BLUETOOTH],
        cpu_speed=0.05,
        quota_bytes=400_000,
        battery=Battery(capacity_joules=18_000.0),
    )
    settings.update(overrides)
    return standard_host(world, node_id, position, **settings)


def laptop_host(
    world: World,
    node_id: str,
    position: Position = Position(0.0, 0.0),
    **overrides,
) -> MobileHost:
    """A nomadic laptop: Wi-Fi + dial-up modem, decent CPU, ample disk."""
    from ..net import DIALUP, WIFI_ADHOC, WIFI_INFRA
    from .context import Battery

    settings = dict(
        technologies=[WIFI_ADHOC, WIFI_INFRA, DIALUP],
        cpu_speed=1.0,
        battery=Battery(capacity_joules=180_000.0),
    )
    settings.update(overrides)
    return standard_host(world, node_id, position, **settings)


def server_host(
    world: World,
    node_id: str,
    position: Position = Position(0.0, 0.0),
    **overrides,
) -> MobileHost:
    """A fixed server: wired LAN, fast CPU, mains-powered."""
    from ..net import LAN

    settings = dict(
        technologies=[LAN],
        fixed=True,
        cpu_speed=2.0,
    )
    settings.update(overrides)
    return standard_host(world, node_id, position, **settings)
