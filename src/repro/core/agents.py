"""Mobile Agents: autonomous units that decide when and where to migrate.

An :class:`Agent` is a code unit plus serialisable state plus a current
location.  Migration is *weak* (as in every deployed Java agent
platform): the agent's ``on_arrival`` generator runs afresh at each
host with only ``agent.state`` carried across — shipped as a signed
capsule holding the agent's code unit and a state data unit.

The :class:`AgentRuntime` component is the paper's "protected
environment to host mobile agents": arrivals pass the policy and
signature gate, and execution is metered against the guest budgets.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, List, Optional

from ..errors import (
    MigrationError,
    RequestTimeout,
    SandboxViolation,
    SecurityError,
    ServiceNotFound,
    TransportTimeout,
    Unreachable,
    from_wire,
    to_wire,
)
from ..lmu import DataUnit, assemble_capsule, code_unit, estimate_size
from ..net import Message
from ..security import (
    OP_ACCEPT_AGENT,
    WORK_UNITS_PER_SECOND,
    sign_capsule,
)
from .adaptation import PARADIGM_MA
from .components import Component, MessageHandler
from .invocation import (
    DEFAULT_RETRY,
    InvocationTask,
    RetryPolicy,
    request_with_retry,
)

KIND_TRANSFER = "agent.transfer"
KIND_ACK = "agent.ack"


class _MigrationComplete(Exception):
    """Control flow: the agent left this host; stop local execution."""

    def __init__(self, target: str) -> None:
        super().__init__(target)
        self.target = target


class _AgentDied(Exception):
    """Control flow: the agent chose to terminate."""


class Agent:
    """Base class for mobile agents.

    Subclasses implement :meth:`on_arrival` as a generator over the
    :class:`AgentContext` and MUST be constructible with no arguments
    (reconstruction at the destination calls ``cls()`` and then
    restores ``state``).  All persistent agent data lives in
    ``self.state`` — plain, serialisable values only.
    """

    #: Modelled code footprint shipped per migration hop.
    code_size: int = 10_000

    def __init__(self) -> None:
        self.state: Dict[str, object] = {}

    @classmethod
    def unit_name(cls) -> str:
        return f"agent:{cls.__name__}"

    @classmethod
    def to_unit(cls):
        """This agent class as a transferable code unit."""
        return code_unit(
            name=cls.unit_name(),
            version="1.0.0",
            factory=lambda: cls,
            size_bytes=cls.code_size,
            description=cls.__doc__ or "",
        )

    # -- agent identity ---------------------------------------------------------

    @property
    def agent_id(self) -> str:
        return str(self.state.get("agent_id", "unlaunched"))

    @property
    def hops(self) -> int:
        return int(self.state.get("hops", 0))  # type: ignore[arg-type]

    def on_arrival(self, context: "AgentContext") -> Generator:
        """The agent's behaviour at (each) host.  Must be a generator."""
        raise NotImplementedError
        yield  # pragma: no cover - marks this as a generator function


class AgentContext:
    """What an agent sees of the host it currently occupies."""

    def __init__(self, runtime: "AgentRuntime", agent: Agent) -> None:
        self._runtime = runtime
        self._agent = agent
        host = runtime.require_host()
        # The agent's whole stay at this host is one provider session:
        # every ``execute``/``invoke_local`` charge lands on the
        # session's metered context, and closing it (lifecycle end or
        # departure) emits the stay's resource metrics.
        self._provider, self._session = host.guest_session(
            principal=agent.agent_id
        )
        self._exec = self._session.context

    def close(self) -> None:
        """End this stay's provider session (idempotent)."""
        if self._session.open:
            self._runtime.require_host().close_guest_session(
                self._provider, self._session
            )

    # -- observation ---------------------------------------------------------

    @property
    def host_id(self) -> str:
        return self._runtime.require_host().id

    @property
    def now(self) -> float:
        return self._runtime.env.now

    @property
    def state(self) -> Dict[str, object]:
        return self._agent.state

    def neighbors(self) -> List[str]:
        """Ids of hosts currently reachable over ad-hoc radio."""
        host = self._runtime.require_host()
        return sorted(
            node.id for node in host.world.network.neighbors(host.node)
        )

    def can_reach(self, target_id: str) -> bool:
        host = self._runtime.require_host()
        if target_id not in host.world.network:
            return False
        return host.world.network.connected(host.id, target_id)

    def random(self):
        """The agent's own deterministic RNG stream."""
        host = self._runtime.require_host()
        return host.world.streams.stream(f"agent.{self._agent.agent_id}")

    # -- action ------------------------------------------------------------------

    def execute(self, work_units: float) -> Generator:
        """Compute for ``work_units``, metered against the guest budget."""
        self._exec.charge(work_units)
        yield from self._runtime.require_host().execute(work_units)

    def sleep(self, seconds: float) -> Generator:
        yield self._runtime.env.timeout(seconds)

    def invoke_local(self, service: str, args: object = None) -> Generator:
        """Call a service offered by the *current* host, paying its CPU
        cost locally (how a visiting agent uses a vendor's catalogue)."""
        host = self._runtime.require_host()
        entry = host.services.get(service)
        if entry is None:
            raise ServiceNotFound(
                f"host {host.id} offers no service {service!r}"
            )
        handler, work_units = entry
        self._exec.charge(work_units)
        yield from host.execute(work_units)
        result, _size = handler(args, host)
        return result

    def note_served(self) -> None:
        """Count one unit of useful work done by this agent against the
        runtime's uniform ``paradigm.ma.served`` counter."""
        self._runtime.pipeline.record_served()

    def note_retry(self) -> None:
        """Count one agent-level retry (a re-attempted hop) against the
        runtime's uniform ``paradigm.ma.retries`` counter."""
        self._runtime.pipeline.bump("retries")

    def deliver(self, payload: object) -> None:
        """Hand a payload to the current host's application layer."""
        self._runtime.receive_delivery(self._agent, payload)

    def log(self, event: str, **fields: object) -> None:
        host = self._runtime.require_host()
        host.world.trace.emit(
            self.now, f"agent:{self._agent.agent_id}", event, **fields
        )

    def migrate(self, target_id: str) -> Generator:
        """Move this agent to ``target_id``.

        On success the local execution stops (weak mobility): control
        does NOT return.  On failure :class:`MigrationError` is raised
        and the agent keeps running here (it may pick another target).
        """
        yield from self._runtime._migrate(self._agent, target_id)
        raise _MigrationComplete(target_id)

    def clone_to(self, target_id: str) -> Generator:
        """Launch a *copy* of this agent on ``target_id``.

        Unlike :meth:`migrate`, the local agent keeps running.  The
        clone gets a fresh agent id (suffix ``.cN``) and starts its own
        ``on_arrival`` at the target.  Returns the clone's id; raises
        :class:`MigrationError` when the transfer fails.
        """
        clone_id = yield from self._runtime._clone(self._agent, target_id)
        return clone_id

    def die(self) -> None:
        """Terminate this agent here and now."""
        raise _AgentDied(self._agent.agent_id)


#: Called with (agent, payload) when an agent delivers to this host.
DeliveryListener = Callable[[Agent, object], None]


class AgentRuntime(Component):
    """Hosts, launches, migrates, and protects mobile agents."""

    kind = "agents"
    paradigm = PARADIGM_MA
    code_size = 12_000

    def __init__(self, migration_timeout: float = 60.0) -> None:
        super().__init__()
        self.migration_timeout = migration_timeout
        #: Agents currently executing on this host.
        self.hosted: Dict[str, Agent] = {}
        #: Final state of agents that completed (returned/finished) here.
        self.completed: Dict[str, Dict[str, object]] = {}
        #: Payloads delivered by agents to this host's application layer.
        self.deliveries: List[object] = []
        self._delivery_listeners: List[DeliveryListener] = []
        self._completion_events: Dict[str, object] = {}
        #: Per-runtime launch counter: agent ids (and therefore their
        #: RNG stream names) stay deterministic within one World, no
        #: matter what other simulations ran in the same process.
        self._launch_counter = 0
        self.failures = 0
        self.violations = 0

    def handlers(self) -> Dict[str, MessageHandler]:
        return {KIND_TRANSFER: self._handle_transfer}

    # -- application API -----------------------------------------------------------

    def launch(self, agent: Agent, **initial_state: object):
        """Start ``agent`` on this host; returns its assigned id."""
        host = self.require_host()
        agent.state.update(initial_state)
        self._launch_counter += 1
        agent.state.setdefault(
            "agent_id", f"{host.id}-agent-{self._launch_counter}"
        )
        agent.state.setdefault("home", host.id)
        agent.state.setdefault("hops", 0)
        self._run(agent)
        return agent.agent_id

    def on_delivery(self, listener: DeliveryListener) -> None:
        self._delivery_listeners.append(listener)

    def receive_delivery(self, agent: Agent, payload: object) -> None:
        self.deliveries.append(payload)
        host = self.require_host()
        host.world.metrics.counter("agents.deliveries").increment()
        for listener in list(self._delivery_listeners):
            listener(agent, payload)

    def completion(self, agent_id: str):
        """An event firing with the agent's final state when it completes
        on this host (used to await a returning agent)."""
        if agent_id in self.completed:
            event = self.env.event()
            event.succeed(self.completed[agent_id])
            return event
        event = self._completion_events.get(agent_id)
        if event is None:
            event = self.env.event()
            self._completion_events[agent_id] = event
        return event

    # -- lifecycle ----------------------------------------------------------------------

    def _run(self, agent: Agent) -> None:
        self.hosted[agent.agent_id] = agent
        self.env.process(
            self._lifecycle(agent),
            name=f"agent:{agent.agent_id}@{self.require_host().id}",
        )

    def _lifecycle(self, agent: Agent) -> Generator:
        host = self.require_host()
        context = AgentContext(self, agent)
        try:
            yield from self._guarded_arrival(agent, context)
        except _MigrationComplete as move:
            self.hosted.pop(agent.agent_id, None)
            host.world.trace.emit(
                self.env.now, host.id, "agent.departed",
                agent=agent.agent_id, to=move.target,
            )
            return
        except _AgentDied:
            self._finish(agent, outcome="died")
            return
        except SandboxViolation as violation:
            self.violations += 1
            host.world.metrics.counter(
                "security.sandbox_violations", labels={"node": host.id}
            ).increment()
            host.world.trace.emit(
                self.env.now, host.id, "agent.violation",
                agent=agent.agent_id, error=str(violation),
            )
            self._finish(agent, outcome="killed")
            return
        except MigrationError as error:
            self.failures += 1
            host.world.trace.emit(
                self.env.now, host.id, "agent.stranded",
                agent=agent.agent_id, error=str(error),
            )
            self._finish(agent, outcome="stranded")
            return
        except Exception as error:  # noqa: BLE001 - agent code is foreign
            self.failures += 1
            host.world.trace.emit(
                self.env.now, host.id, "agent.crashed",
                agent=agent.agent_id,
                error=f"{type(error).__name__}: {error}",
            )
            self._finish(agent, outcome="crashed")
            return
        self._finish(agent, outcome="completed")

    def _guarded_arrival(
        self, agent: Agent, context: AgentContext
    ) -> Generator:
        """Run ``on_arrival`` inside the stay's provider session."""
        try:
            yield from agent.on_arrival(context)
        finally:
            context.close()

    def _finish(self, agent: Agent, outcome: str) -> None:
        host = self.require_host()
        self.hosted.pop(agent.agent_id, None)
        final_state = dict(agent.state)
        final_state["outcome"] = outcome
        self.completed[agent.agent_id] = final_state
        host.world.metrics.counter(f"agents.{outcome}").increment()
        event = self._completion_events.pop(agent.agent_id, None)
        if event is not None and not event.triggered:
            event.succeed(final_state)

    # -- migration ---------------------------------------------------------------------

    def _transfer(
        self,
        agent: Agent,
        state: Dict[str, object],
        target_id: str,
        parent: object = None,
    ) -> Generator:
        """Ship ``state`` under ``agent``'s code to ``target_id``.

        Shared by migration and cloning.  Raises
        :class:`MigrationError` on any failure or refusal.
        """
        host = self.require_host()
        if target_id == host.id:
            raise MigrationError(f"agent {agent.agent_id} is already on {host.id}")
        capsule = assemble_capsule(
            sender=host.id,
            purpose="agent",
            code_units=[type(agent).to_unit()],
            data_units=[
                DataUnit("agent-state", state, estimate_size(state))
            ],
            built_at=self.env.now,
        )
        sign_seconds = sign_capsule(host.keypair, capsule)
        yield from host.execute(sign_seconds * WORK_UNITS_PER_SECOND)

        def build() -> Message:
            return Message(
                source=host.id,
                destination=target_id,
                kind=KIND_TRANSFER,
                payload={"capsule": capsule},
                size_bytes=capsule.size_bytes,
            )

        try:
            reply = yield from request_with_retry(
                host,
                build,
                timeout=self.migration_timeout,
                parent=parent,
                on_retry=lambda: self.pipeline.bump("retries"),
            )
        except (Unreachable, TransportTimeout, RequestTimeout) as error:
            raise MigrationError(
                f"agent {agent.agent_id}: transfer to {target_id} failed "
                f"({type(error).__name__})"
            ) from error
        outcome = reply.payload or {}
        if not outcome.get("accepted"):
            raise MigrationError(
                f"agent {agent.agent_id}: {target_id} refused arrival "
                f"({outcome.get('reason', 'no reason given')})"
            )

    def _migrate(self, agent: Agent, target_id: str) -> Generator:
        host = self.require_host()
        tracer = host.world.tracer
        span = tracer.start(
            "agent.migrate", host.id, agent=agent.agent_id, to=target_id
        )
        started = self.env.now
        state = dict(agent.state)
        state["hops"] = int(state.get("hops", 0)) + 1
        try:
            yield from self._transfer(agent, state, target_id, parent=span)
        except MigrationError:
            host.world.metrics.counter("agents.migration_failures").increment()
            tracer.finish(span, status="error", error="MigrationError")
            raise
        host.world.metrics.counter("agents.migrations").increment()
        host.world.metrics.histogram("agents.migration_seconds").observe(
            self.env.now - started
        )
        tracer.finish(span)
        agent.state = state  # committed: the shipped state is canonical

    def _clone(self, agent: Agent, target_id: str) -> Generator:
        host = self.require_host()
        state = dict(agent.state)
        state["hops"] = int(state.get("hops", 0)) + 1
        clones = int(agent.state.get("clones_made", 0)) + 1  # type: ignore[arg-type]
        state["agent_id"] = f"{agent.agent_id}.c{clones}"
        state["clones_made"] = 0
        yield from self._transfer(agent, state, target_id)
        agent.state["clones_made"] = clones
        host.world.metrics.counter("agents.clones").increment()
        return state["agent_id"]

    def _handle_transfer(self, message: Message) -> Generator:
        host = self.require_host()
        capsule = (message.payload or {})["capsule"]
        try:
            yield from host.admit_capsule(capsule, OP_ACCEPT_AGENT)
        except SecurityError as error:
            host.rejected_capsules += 1
            refusal = {"accepted": False, "reason": str(error)}
            yield host.reply_to(
                message,
                KIND_ACK,
                payload=refusal,
                size_bytes=estimate_size(refusal),
            )
            return
        unit = capsule.code_units[0]
        agent_class = unit.instantiate()
        agent = agent_class()
        agent.state = dict(capsule.data_unit("agent-state").payload)
        yield host.reply_to(
            message, KIND_ACK, payload={"accepted": True}, size_bytes=32
        )
        host.world.trace.emit(
            self.env.now, host.id, "agent.arrived",
            agent=agent.agent_id, origin=message.source,
        )
        host.world.metrics.counter("agents.arrivals").increment()
        self._run(agent)

    # -- Paradigm protocol -------------------------------------------------------

    def invoke(
        self,
        task: InvocationTask,
        target,
        retry: Optional[RetryPolicy] = None,
    ) -> Generator:
        """Run ``task`` by sending a :class:`TaskAgent` to the target
        host(s) (Paradigm protocol).

        The agent visits each target, calls the service named
        ``task.name`` there, and carries the results home.  A lost or
        stranded agent raises :class:`MigrationError`, which the
        pipeline treats as transient: the whole itinerary is relaunched
        with backoff (``paradigm.ma.retries`` counts the relaunches).
        """
        policy = DEFAULT_RETRY if retry is None else retry
        scalar = isinstance(target, str)
        targets = [target] if scalar else list(target or [])

        def attempt(span: object) -> Generator:
            agent = TaskAgent()
            agent_id = self.launch(
                agent,
                service=task.name,
                payload=task.payload,
                targets=list(targets),
            )
            yield self.env.any_of(
                [self.completion(agent_id), self.env.timeout(task.timeout)]
            )
            final = self.completed.get(agent_id)
            if final is None:
                raise MigrationError(
                    f"agent {agent_id} did not return within "
                    f"{task.timeout}s"
                )
            if final.get("error") is not None:
                raise from_wire(final["error"])
            if final.get("outcome") != "completed":
                raise MigrationError(
                    f"agent {agent_id} ended {final.get('outcome')!r}"
                )
            results = list(final.get("results", []))
            return results[0] if scalar else results

        return (
            yield from self.pipeline.run(
                "ma.invoke",
                attempt,
                retry=policy,
                transient=(MigrationError,),
                task=task.name,
            )
        )


class ItineraryAgent(Agent):
    """An agent that visits a list of hosts, then returns home.

    Subclasses override :meth:`visit`; its return value is appended to
    ``state["results"]``.  Unreachable hosts are skipped; the homeward
    migration is retried with backoff.
    """

    #: Seconds between homeward migration retries.
    home_retry_delay: float = 5.0
    home_retry_limit: int = 5

    def visit(self, context: AgentContext) -> Generator:
        """Work to do at each itinerary host; generator returning a result."""
        raise NotImplementedError
        yield  # pragma: no cover - marks this as a generator function

    def on_arrival(self, context: AgentContext) -> Generator:
        state = self.state
        state.setdefault("results", [])
        state.setdefault("index", 0)
        state.setdefault("skipped", [])
        itinerary: List[str] = list(state.get("itinerary", []))  # type: ignore[arg-type]
        home = str(state["home"])

        while int(state["index"]) < len(itinerary):  # type: ignore[arg-type]
            index = int(state["index"])  # type: ignore[arg-type]
            target = itinerary[index]
            if target == context.host_id:
                result = yield from self.visit(context)
                state["results"].append(result)  # type: ignore[union-attr]
                state["index"] = index + 1
                continue
            try:
                yield from context.migrate(target)
            except MigrationError:
                state["skipped"].append(target)  # type: ignore[union-attr]
                state["index"] = index + 1
        if context.host_id == home:
            return  # completed at home; results are in state
        for _attempt in range(self.home_retry_limit):
            try:
                yield from context.migrate(home)
            except MigrationError:
                yield from context.sleep(self.home_retry_delay)
        raise MigrationError(
            f"agent {self.agent_id} could not return home to {home}"
        )


class TaskAgent(Agent):
    """The agent rendering of an :class:`InvocationTask`.

    Visits each target host, calls the service named by
    ``state["service"]`` with ``state["payload"]``, accumulates the
    results, and carries them home.  Failed hops are retried in place
    with backoff (``context.note_retry``); a hop that stays impossible
    — or a failing service call — is recorded as a wire-marshalled
    error in ``state["error"]`` for :meth:`AgentRuntime.invoke` to
    re-raise at the launch host.
    """

    code_size = 8_000
    #: Seconds before re-attempting a failed hop (doubles per retry).
    hop_retry_delay: float = 2.0
    hop_retry_limit: int = 3

    def _hop(self, context: AgentContext, target: str) -> Generator:
        """Migrate to ``target``; on success control never returns
        (weak mobility).  Returning at all means every retry failed and
        ``state["error"]`` holds the migration error."""
        delay = self.hop_retry_delay
        for attempt in range(max(1, self.hop_retry_limit)):
            try:
                yield from context.migrate(target)
            except MigrationError as error:
                if attempt + 1 >= max(1, self.hop_retry_limit):
                    self.state["error"] = to_wire(error)
                    return
                context.note_retry()
                yield from context.sleep(delay)
                delay *= 2

    def on_arrival(self, context: AgentContext) -> Generator:
        state = self.state
        state.setdefault("results", [])
        state.setdefault("index", 0)
        state.setdefault("error", None)
        targets: List[str] = list(state.get("targets", []))  # type: ignore[arg-type]
        home = str(state["home"])

        while state.get("error") is None and int(state["index"]) < len(targets):  # type: ignore[arg-type]
            index = int(state["index"])  # type: ignore[arg-type]
            target = targets[index]
            if target != context.host_id:
                yield from self._hop(context, target)
                continue  # only reached when the hop failed for good
            try:
                result = yield from context.invoke_local(
                    str(state.get("service")), state.get("payload")
                )
            except Exception as error:  # noqa: BLE001 - service code is foreign
                state["error"] = to_wire(error)
                break
            state["results"].append(result)  # type: ignore[union-attr]
            state["index"] = index + 1
            context.note_served()
        if context.host_id == home:
            return
        yield from self._hop(context, home)
        # Still here: stranded away from home with results undeliverable.
        if state.get("error") is None:
            state["error"] = to_wire(
                MigrationError(
                    f"agent {self.agent_id} could not return home to {home}"
                )
            )
