"""Design-time paradigm assessment reports.

The paper's closing paragraph sketches "a design methodology, possibly
based on UML, that can be used by application programmers to evaluate
the use of each mobile code paradigm, depending on different contexts"
(in the spirit of PrimaMob-UML).  This module is the programmatic
version: given a :class:`~repro.core.adaptation.TaskProfile`, it
evaluates every paradigm across every deployment context (link
technology pair) and renders the decision table a designer would read.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..net import Link
from ..net.network import _backbone_link, _direct_link
from ..net.technologies import BLUETOOTH, DIALUP, GPRS, LAN, WIFI_ADHOC, WIFI_INFRA
from .adaptation import (
    CostEstimate,
    CostWeights,
    PARADIGMS,
    ParadigmSelector,
    TaskProfile,
)

#: The deployment contexts a designer typically weighs up.
STANDARD_CONTEXTS: Tuple[Tuple[str, Link], ...] = (
    ("bluetooth-piconet", _direct_link(BLUETOOTH)),
    ("wifi-adhoc", _direct_link(WIFI_ADHOC)),
    ("wifi-hotspot", _backbone_link(WIFI_INFRA, LAN)),
    ("gprs", _backbone_link(GPRS, LAN)),
    ("gsm-dialup", _backbone_link(DIALUP, LAN)),
)


@dataclass(frozen=True)
class AssessmentRow:
    """One context's verdict for a task profile."""

    context: str
    winner: str
    margin: float  #: runner-up composite / winner composite
    estimates: Tuple[CostEstimate, ...]

    def estimate_for(self, paradigm: str) -> CostEstimate:
        for estimate in self.estimates:
            if estimate.paradigm == paradigm:
                return estimate
        raise KeyError(paradigm)


@dataclass
class AssessmentReport:
    """The full decision table for one task profile."""

    profile: TaskProfile
    weights: CostWeights
    rows: List[AssessmentRow]

    def winner_by_context(self) -> Dict[str, str]:
        return {row.context: row.winner for row in self.rows}

    def unanimous(self) -> Optional[str]:
        """The single winning paradigm, if one wins every context."""
        winners = {row.winner for row in self.rows}
        if len(winners) == 1:
            return winners.pop()
        return None

    def render(self) -> str:
        """The report as a designer-readable text table."""
        from ..analysis import render_table

        header = ["context"] + [f"{p} cost" for p in PARADIGMS] + [
            "winner",
            "margin x",
        ]
        table_rows = []
        for row in self.rows:
            cells: List[object] = [row.context]
            for paradigm in PARADIGMS:
                cells.append(row.estimate_for(paradigm).composite(self.weights))
            cells.append(row.winner)
            cells.append(row.margin)
            table_rows.append(cells)
        return render_table(
            "Paradigm assessment (composite cost per context)",
            header,
            table_rows,
            note=(
                f"task: n={self.profile.interactions}, "
                f"code={self.profile.code_bytes}B, "
                f"reuse={self.profile.expected_reuses}x"
            ),
        )


def assess(
    profile: TaskProfile,
    weights: CostWeights = CostWeights(),
    contexts: Sequence[Tuple[str, Link]] = STANDARD_CONTEXTS,
    paradigms: Optional[List[str]] = None,
) -> AssessmentReport:
    """Evaluate every paradigm for ``profile`` across ``contexts``."""
    selector = ParadigmSelector(available=paradigms)
    rows = []
    for context_name, link in contexts:
        ranked = selector.rank(profile, link, weights)
        winner = ranked[0]
        if len(ranked) > 1:
            winner_cost = winner.composite(weights)
            runner_up = ranked[1].composite(weights)
            margin = runner_up / winner_cost if winner_cost > 0 else float("inf")
        else:
            margin = float("inf")
        rows.append(
            AssessmentRow(
                context=context_name,
                winner=winner.paradigm,
                margin=margin,
                estimates=tuple(ranked),
            )
        )
    return AssessmentReport(profile=profile, weights=weights, rows=rows)
