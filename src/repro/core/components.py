"""The component model: pluggable middleware capabilities.

The paper argues that "different mobile code paradigms could be
plugged-in dynamically and used when needed".  Concretely: each
paradigm (CS, REV, COD, MA), discovery flavour, and manager is a
:class:`Component` registered with a host.  Components declare the
message kinds they handle; the host's dispatch loop routes inbound
messages to them.  Because components are described by code units,
they can themselves be shipped and hot-swapped via COD (see
:mod:`repro.core.update`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Generator, Optional

from ..errors import ComponentError
from ..lmu import Version
from ..net import Message

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .host import MobileHost

#: A handler consumes one inbound message; it is run as a kernel process,
#: so it may yield events (timeouts, sends) freely.
MessageHandler = Callable[[Message], Generator]


class Component:
    """Base class for middleware components.

    Subclasses set :attr:`kind` (registry name, e.g. ``"cod"``) and
    :attr:`version`, implement :meth:`handlers`, and may override the
    lifecycle hooks.  A component is *attached* to exactly one host.
    """

    kind: str = "component"
    version: Version = Version(1, 0, 0)
    #: Modelled code footprint when shipped as an update capsule.
    code_size: int = 8_000

    def __init__(self) -> None:
        self.host: Optional["MobileHost"] = None
        self.started = False

    # -- lifecycle -------------------------------------------------------------

    def attach(self, host: "MobileHost") -> None:
        if self.host is not None:
            raise ComponentError(
                f"component {self.kind} is already attached to {self.host.id}"
            )
        self.host = host

    def start(self) -> None:
        """Begin operation (spawn internal processes here)."""
        if self.host is None:
            raise ComponentError(f"component {self.kind} is not attached")
        self.started = True

    def stop(self) -> None:
        """Cease operation; must leave the component restartable-by-replacement."""
        self.started = False

    # -- dispatch ---------------------------------------------------------------

    def handlers(self) -> Dict[str, MessageHandler]:
        """Message kind -> handler mapping this component serves."""
        return {}

    # -- conveniences ------------------------------------------------------------

    @property
    def env(self):
        if self.host is None:
            raise ComponentError(f"component {self.kind} is not attached")
        return self.host.env

    def require_host(self) -> "MobileHost":
        if self.host is None:
            raise ComponentError(f"component {self.kind} is not attached")
        return self.host

    def __repr__(self) -> str:
        owner = self.host.id if self.host else "unattached"
        return f"<{type(self).__name__} {self.kind}@{self.version} on {owner}>"
