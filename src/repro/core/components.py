"""The component model: pluggable middleware capabilities.

The paper argues that "different mobile code paradigms could be
plugged-in dynamically and used when needed".  Concretely: each
paradigm (CS, REV, COD, MA), discovery flavour, and manager is a
:class:`Component` registered with a host.  Components declare the
message kinds they handle; the host's dispatch loop routes inbound
messages to them.  Because components are described by code units,
they can themselves be shipped and hot-swapped via COD (see
:mod:`repro.core.update`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Generator, Optional

from ..errors import ComponentError
from ..lmu import Version
from ..net import Message

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .host import MobileHost

#: A handler consumes one inbound message; it is run as a kernel process,
#: so it may yield events (timeouts, sends) freely.
MessageHandler = Callable[[Message], Generator]


class Component:
    """Base class for middleware components.

    Subclasses set :attr:`kind` (registry name, e.g. ``"cod"``) and
    :attr:`version`, implement :meth:`handlers`, and may override the
    lifecycle hooks.  A component is *attached* to exactly one host.
    """

    kind: str = "component"
    version: Version = Version(1, 0, 0)
    #: Modelled code footprint when shipped as an update capsule.
    code_size: int = 8_000
    #: Paradigm kind this component executes (``"cs"``, ``"rev"``, …),
    #: or None for non-paradigm components (lookup, update, outbox).
    paradigm: Optional[str] = None
    #: False when :meth:`invoke` works without a usable network link
    #: (local execution, COD against an already-cached unit).
    requires_link: bool = True

    def __init__(self) -> None:
        self.host: Optional["MobileHost"] = None
        self.started = False
        self._pipeline = None

    # -- lifecycle -------------------------------------------------------------

    def attach(self, host: "MobileHost") -> None:
        if self.host is not None:
            raise ComponentError(
                f"component {self.kind} is already attached to {self.host.id}"
            )
        self.host = host

    def start(self) -> None:
        """Begin operation (spawn internal processes here)."""
        if self.host is None:
            raise ComponentError(f"component {self.kind} is not attached")
        self.started = True

    def stop(self) -> None:
        """Cease operation; must leave the component restartable-by-replacement."""
        self.started = False

    # -- dispatch ---------------------------------------------------------------

    def handlers(self) -> Dict[str, MessageHandler]:
        """Message kind -> handler mapping this component serves."""
        return {}

    # -- conveniences ------------------------------------------------------------

    @property
    def env(self):
        if self.host is None:
            raise ComponentError(f"component {self.kind} is not attached")
        return self.host.env

    def require_host(self) -> "MobileHost":
        if self.host is None:
            raise ComponentError(f"component {self.kind} is not attached")
        return self.host

    @property
    def pipeline(self):
        """This component's :class:`~repro.core.invocation.InvocationPipeline`
        (created lazily; metric namespace is :attr:`paradigm`, falling
        back to :attr:`kind` for non-paradigm components)."""
        if self._pipeline is None:
            from .invocation import InvocationPipeline

            self._pipeline = InvocationPipeline(
                self, self.paradigm or self.kind
            )
        return self._pipeline

    def cost(self, task, link):
        """Predicted cost of :meth:`invoke` for ``task`` over ``link``.

        The default consults the estimator registered for this
        component's :attr:`paradigm` (see
        :func:`~repro.core.adaptation.register_estimator`).
        """
        if self.paradigm is None:
            raise ComponentError(
                f"component {self.kind} declares no paradigm to cost"
            )
        from .adaptation import estimator_for
        from .invocation import resolve_profile

        host = self.require_host()
        task_name = getattr(task, "name", None)
        local_work_quota = None
        if task_name:
            local_work_quota = host.policy.grant_for(
                f"task:{task_name}"
            ).work_units
        profile = resolve_profile(
            task,
            local_speed=host.node.cpu_speed,
            local_work_quota=local_work_quota,
            observed_work=host.observed_guest_work(task_name),
        )
        return estimator_for(self.paradigm)(profile, link)

    def __repr__(self) -> str:
        owner = self.host.id if self.host else "unattached"
        return f"<{type(self).__name__} {self.kind}@{self.version} on {owner}>"
