"""The shared invocation pipeline: one request/reply substrate.

Following the Fuggetta/Picco/Vigna decomposition the selector already
models (who initiates, what moves), the four mobile-code paradigms
share one interaction skeleton — serialise, transfer, execute
remotely, reply — that deserves one implementation.  This module is
that implementation.  Each paradigm component owns an
:class:`InvocationPipeline` (via :attr:`Component.pipeline`) which
provides:

* **Correlation and timeouts** — :func:`request_with_retry` rebuilds
  the request message per attempt (reply correlation is keyed on the
  message id, so a retry must be a fresh message) and retries
  transient link loss (:data:`TRANSIENT_LINK_ERRORS`) with
  exponential backoff under a :class:`RetryPolicy`.  The paper's
  intermittent-connectivity reality was previously an unhandled hard
  failure.
* **Typed error marshalling** — error replies carry
  :func:`repro.errors.to_wire` payloads and are rebuilt into typed
  exceptions with :func:`repro.errors.from_wire` on the caller's side
  (unknown types fall back to ``RemoteExecutionError``).  Paradigm
  modules no longer hand-roll ``{"error_type": ...}`` dicts.
* **Spans** — :meth:`InvocationPipeline.run` opens the operation span
  (keeping each paradigm's historical root name: ``cs.call``,
  ``rev.evaluate``, ``cod.fetch``…) and propagates it as the parent of
  the ``host.request`` exchange, so one invocation stays one trace
  tree.
* **Uniform metrics** — every paradigm emits
  ``paradigm.<kind>.{calls,served,errors,retries}`` counters and a
  ``paradigm.<kind>.seconds`` histogram; the pre-refactor names
  (``cs.calls``, ``rev.requests``, …) are still emitted as deprecated
  aliases (see docs/OBSERVABILITY.md).

On top of the pipeline sits the executable :class:`Paradigm` protocol:
``invoke(task, target)`` plus ``cost(task, link)``, implemented by
``ClientServer``, ``RemoteEvaluation``, ``CodeOnDemand``,
``AgentRuntime``, and the degenerate :class:`LocalExecution` — which
is also the worked example for plugging in a fifth paradigm (see
docs/TUTORIAL.md).  ``ParadigmSelector.select_and_invoke`` ranks the
paradigms a host actually has installed and runs the winner.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import (
    Callable,
    Dict,
    Generator,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    Union,
    runtime_checkable,
)

from ..errors import (
    ComponentError,
    TransportTimeout,
    Unreachable,
    from_wire,
    to_wire,
)
from ..lmu import CodeRepository, CodeUnit, code_unit, estimate_size
from ..net import Link, Message
from .adaptation import (
    PARADIGM_LOCAL,
    CostEstimate,
    TaskProfile,
)
from .components import Component

#: Failures worth retrying: the link dropped or the transport gave up.
#: ``RequestTimeout`` is deliberately NOT transient by default — the
#: request may have been served (at-least-once semantics belong to the
#: outbox layer, not here).
TRANSIENT_LINK_ERRORS = (Unreachable, TransportTimeout)

#: The uniform per-paradigm counter set every paradigm emits.
PARADIGM_COUNTERS = ("calls", "served", "errors", "retries")

#: Canonical ``paradigm.<kind>.*`` name -> pre-refactor alias still
#: emitted for dashboard/report compatibility (deprecated; see
#: docs/OBSERVABILITY.md "Unified paradigm metrics").
LEGACY_METRIC_ALIASES: Dict[str, str] = {
    "paradigm.cs.calls": "cs.calls",
    "paradigm.cs.served": "cs.served",
    "paradigm.cs.seconds": "cs.call_seconds",
    "paradigm.rev.calls": "rev.requests",
    "paradigm.rev.served": "rev.served",
    "paradigm.rev.seconds": "rev.roundtrip_seconds",
    "paradigm.cod.calls": "cod.fetches",
    "paradigm.cod.served": "cod.served",
    "paradigm.cod.seconds": "cod.fetch_seconds",
}


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff over transient link loss.

    ``attempts`` counts total tries (1 = no retry).  The delay before
    retry *n* (0-based) is ``base_delay_s * multiplier ** n``, capped
    at ``max_delay_s``.  Deterministic on purpose: simulations must
    replay identically, so there is no jitter term.
    """

    attempts: int = 3
    base_delay_s: float = 0.5
    multiplier: float = 2.0
    max_delay_s: float = 30.0

    def delay(self, retry_index: int) -> float:
        return min(
            self.max_delay_s,
            self.base_delay_s * (self.multiplier ** max(0, retry_index)),
        )


#: The pipeline default for ``invoke``: ride out brief link drops.
DEFAULT_RETRY = RetryPolicy()
#: Fail on the first transport error (the pre-pipeline behaviour, and
#: still the default for the legacy per-paradigm entry points).
NO_RETRY = RetryPolicy(attempts=1)


def request_with_retry(
    host,
    build: Callable[[], Message],
    *,
    timeout: float,
    parent: object = None,
    retry: Optional[RetryPolicy] = None,
    on_retry: Optional[Callable[[], None]] = None,
) -> Generator:
    """One request/reply exchange with transient-loss retry (generator).

    ``build`` is called once per attempt: reply correlation is keyed on
    the message id, so a retry must ship a *fresh* message, not re-send
    a stale one whose pending event was already discarded.  Only
    :data:`TRANSIENT_LINK_ERRORS` are retried; ``RequestTimeout`` and
    typed remote errors propagate immediately.

    Each attempt's ``host.request`` span carries its 1-based attempt
    index, and every backoff sleep is wrapped in an ``invoke.backoff``
    span, so retry stalls are attributable in the trace analysis (see
    :mod:`repro.obs.trace`) instead of vanishing into dead time.
    """
    policy = NO_RETRY if retry is None else retry
    attempts = max(1, policy.attempts)
    tracer = host.world.tracer
    for attempt in range(attempts):
        message = build()
        try:
            reply = yield from host.request(
                message, timeout=timeout, parent=parent, attempt=attempt + 1
            )
        except TRANSIENT_LINK_ERRORS:
            if attempt + 1 >= attempts:
                raise
            if on_retry is not None:
                on_retry()
            delay = policy.delay(attempt)
            backoff = tracer.start(
                "invoke.backoff",
                host.id,
                parent=parent,
                attempt=attempt + 1,
                delay_s=delay,
            )
            yield host.env.timeout(delay)
            tracer.finish(backoff)
            continue
        return reply


class InvocationPipeline:
    """Per-component engine owning the shared invocation mechanics.

    One pipeline is attached lazily to every component that declares a
    :attr:`~Component.paradigm` (see :attr:`Component.pipeline`); the
    component's client entry points wrap their operation in
    :meth:`run` and their network exchange in :meth:`exchange`, and
    the server side replies errors through :meth:`reply_error` and
    records successes with :meth:`record_served`.
    """

    def __init__(self, component: Component, paradigm: str) -> None:
        self.component = component
        self.paradigm = paradigm
        #: Cached per-node labeled children of the uniform counters,
        #: keyed by metric name (one host per pipeline, so the node
        #: label never varies after attach).
        self._label_cache: Dict[str, object] = {}

    # -- plumbing ---------------------------------------------------------------

    @property
    def host(self):
        return self.component.require_host()

    def metric_name(self, name: str) -> str:
        return f"paradigm.{self.paradigm}.{name}"

    def _counter(self, full_name: str):
        counter = self._label_cache.get(full_name)
        if counter is None:
            host = self.host
            counter = self._label_cache[full_name] = (
                host.world.metrics.counter(
                    full_name, labels={"node": host.id}
                )
            )
        return counter

    def bump(
        self, name: str, amount: float = 1, alias: Optional[str] = None
    ) -> None:
        """Increment a uniform counter (and its deprecated alias).

        The canonical counter is the per-node labeled child — it
        forwards to the flat ``paradigm.<kind>.*`` total, so the
        fleet-wide figure is untouched while health monitors can tell
        which host is burning retries.  Aliases stay flat: they are
        deprecated names kept only for old dashboards.
        """
        self._counter(self.metric_name(name)).increment(amount)
        if alias:
            self.host.world.metrics.counter(alias).increment(amount)

    def observe_seconds(
        self, seconds: float, alias: Optional[str] = None
    ) -> None:
        name = self.metric_name("seconds")
        histogram = self._label_cache.get(name)
        if histogram is None:
            host = self.host
            histogram = self._label_cache[name] = (
                host.world.metrics.histogram(
                    name, labels={"node": host.id}
                )
            )
        histogram.observe(seconds)
        if alias:
            self.host.world.metrics.histogram(alias).observe(seconds)

    # -- server side ------------------------------------------------------------

    def record_served(self, alias: Optional[str] = None) -> None:
        """Count one successfully served request on this host."""
        self.bump("served", alias=alias)

    def reply_error(self, request: Message, kind: str, error: object):
        """Reply a marshalled error, sized from its actual payload.

        ``error`` is either a live exception (marshalled with
        :func:`~repro.errors.to_wire`) or an already-shaped wire
        payload (e.g. :func:`~repro.errors.remote_failure`).  The
        reply's ``size_bytes`` is ``estimate_size`` of the payload —
        not a hardcoded guess.
        """
        payload = (
            to_wire(error) if isinstance(error, BaseException) else dict(error)
        )
        return self.host.reply_to(
            request, kind, payload=payload, size_bytes=estimate_size(payload)
        )

    # -- client side ------------------------------------------------------------

    def exchange(
        self,
        build: Callable[[], Message],
        *,
        timeout: float,
        error_kinds: Sequence[str] = (),
        parent: object = None,
        retry: Optional[RetryPolicy] = None,
    ) -> Generator:
        """Request/reply with link retry and error unmarshalling.

        Replies whose kind is in ``error_kinds`` carry a wire error
        payload and are raised as the typed exception
        :func:`~repro.errors.from_wire` rebuilds.  Link-level retries
        surface in ``paradigm.<kind>.retries``.
        """
        reply = yield from request_with_retry(
            self.host,
            build,
            timeout=timeout,
            parent=parent,
            retry=retry,
            on_retry=lambda: self.bump("retries"),
        )
        if reply.kind in tuple(error_kinds):
            raise from_wire(reply.payload)
        return reply

    def run(
        self,
        op: str,
        attempt: Callable[[object], Generator],
        *,
        aliases: Optional[Dict[str, str]] = None,
        retry: Optional[RetryPolicy] = None,
        transient: Tuple[type, ...] = (),
        **span_fields: object,
    ) -> Generator:
        """Run one client operation through the pipeline (generator).

        Opens the operation span ``op`` (passed to ``attempt`` so the
        exchange can parent under it), counts ``calls``, observes
        ``seconds`` on success, counts ``errors`` and error-finishes
        the span on failure.  When ``transient`` exception types and a
        ``retry`` policy are given, the whole operation is re-attempted
        with backoff (used by MA, where a lost agent means relaunching,
        not re-sending a message).

        ``aliases`` maps ``"calls"``/``"seconds"`` to the deprecated
        pre-refactor metric names to co-emit.
        """
        names = aliases or {}
        host = self.host
        tracer = host.world.tracer
        env = host.env
        policy = NO_RETRY if retry is None else retry
        attempts = max(1, policy.attempts) if transient else 1
        self.bump("calls", alias=names.get("calls"))
        span = tracer.start(op, host.id, **span_fields)
        started = env.now
        result: object = None
        try:
            for number in range(attempts):
                try:
                    result = yield from attempt(span)
                except transient:
                    if number + 1 >= attempts:
                        raise
                    self.bump("retries")
                    delay = policy.delay(number)
                    backoff = tracer.start(
                        "invoke.backoff",
                        host.id,
                        parent=span,
                        attempt=number + 1,
                        delay_s=delay,
                    )
                    yield env.timeout(delay)
                    tracer.finish(backoff)
                    continue
                break
        except BaseException as error:
            self.bump("errors")
            tracer.finish(span, status="error", error=type(error).__name__)
            raise
        self.observe_seconds(env.now - started, alias=names.get("seconds"))
        tracer.finish(span)
        return result


# ---------------------------------------------------------------------------
# Tasks
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class InvocationTask:
    """One paradigm-neutral unit of work — the argument of ``invoke``.

    A task is TaskProfile-like: it carries the cost-model facts the
    selector needs *and* (optionally) an executable ``factory`` so the
    same behaviour can be shipped by REV, fetched by COD, carried by an
    agent, or offered as a CS service (see :func:`provision_task`).

    ``factory() -> body`` where ``body(ctx, payload)`` runs inside a
    sandbox :class:`~repro.security.ExecutionContext` and returns the
    task's result — the exact convention code units already use.
    """

    name: str
    factory: Optional[Callable[[], Callable]] = None
    payload: object = None
    work_units: float = 10_000.0
    code_bytes: int = 8_000
    request_bytes: int = 128
    reply_bytes: int = 256
    result_bytes: int = 256
    #: Request/reply rounds per target host under a CS rendering.
    interactions: int = 1
    expected_reuses: int = 1
    state_bytes: int = 512
    timeout: float = 60.0
    version: str = "1.0.0"

    def unit(self) -> CodeUnit:
        """This task's behaviour as a transferable code unit."""
        if self.factory is None:
            raise ComponentError(
                f"task {self.name!r} has no factory: it can only run where "
                "the behaviour already exists (CS against a registered "
                "service)"
            )
        return code_unit(
            self.name,
            self.version,
            self.factory,
            self.code_bytes,
            description=f"invocation task {self.name}",
        )


def resolve_profile(
    task: Union[InvocationTask, TaskProfile],
    local_speed: Optional[float] = None,
    remote_speed: Optional[float] = None,
    hosts: Optional[int] = None,
    local_work_quota: Optional[float] = None,
    remote_work_quota: Optional[float] = None,
    observed_work: Optional[float] = None,
) -> TaskProfile:
    """A :class:`TaskProfile` for the cost estimators.

    Accepts a ready profile (speeds/quotas patched in if given) or an
    :class:`InvocationTask`, whose per-host ``interactions`` are
    multiplied out over ``hosts`` targets — the CS-centric convention
    the estimators use (``estimate_ma`` additionally scales by
    ``hosts_to_visit``, making its compute term conservative for
    multi-target tasks; transfer terms dominate paradigm choice in
    every scenario the paper discusses).

    ``observed_work`` (metered :class:`~repro.security.Metrics` from a
    prior run of the same guest) ratchets the task's declared
    ``work_units`` *upward* — the selector prices CPU the substrate
    actually measured when a guest under-declares, but a past small
    invocation never masks a declared-large one.  The two quotas come
    from the executing side's :class:`~repro.security.QuotaGrant` and
    feed the estimators' quota-pressure penalty.
    """
    if isinstance(task, TaskProfile):
        updates: Dict[str, float] = {}
        if local_speed is not None:
            updates["local_speed"] = local_speed
        if remote_speed is not None:
            updates["remote_speed"] = remote_speed
        if local_work_quota is not None:
            updates["local_work_quota"] = local_work_quota
        if remote_work_quota is not None:
            updates["remote_work_quota"] = remote_work_quota
        if observed_work is not None and observed_work > task.work_units:
            updates["work_units"] = observed_work
        return replace(task, **updates) if updates else task
    count = int(hosts) if hosts else 1
    count = max(1, count)
    return TaskProfile(
        interactions=max(1, task.interactions) * count,
        request_bytes=task.request_bytes,
        reply_bytes=task.reply_bytes,
        code_bytes=task.code_bytes,
        result_bytes=task.result_bytes,
        work_units=max(task.work_units, observed_work or 0.0),
        local_speed=0.2 if local_speed is None else local_speed,
        remote_speed=1.0 if remote_speed is None else remote_speed,
        expected_reuses=task.expected_reuses,
        hosts_to_visit=count,
        state_bytes=task.state_bytes,
        local_work_quota=local_work_quota,
        remote_work_quota=remote_work_quota,
    )


def normalize_targets(
    target: Union[str, Sequence[str], None],
) -> Tuple[List[str], bool]:
    """``(target ids, scalar?)`` — a string target means a scalar result."""
    if target is None:
        return [], True
    if isinstance(target, str):
        return [target], True
    return list(target), False


def run_task_locally(
    host, task: InvocationTask, unit: Optional[CodeUnit] = None
) -> Generator:
    """Execute a task's unit in this host's sandbox (generator helper).

    Pays the metered work at local speed; failures are raised exactly
    as a remote execution would report them (``RemoteExecutionError``
    carrying the guest error text), so local execution honours the
    same contract as the four mobile paradigms.
    """
    unit = unit if unit is not None else task.unit()
    outcome = host.run_guest(
        unit.instantiate(),
        f"task:{task.name}",
        task.payload,
        services={"host_id": host.id},
        task_name=task.name,
    )
    yield from host.execute(outcome.work_used)
    if not outcome.ok:
        raise from_wire(outcome.error_wire)
    return outcome.value


def provision_task(host, task: InvocationTask) -> CodeUnit:
    """Make ``host`` able to serve ``task`` under every paradigm.

    Registers a CS service running the task's unit in the host's
    sandbox (also what a visiting agent calls via ``invoke_local``)
    and publishes the unit in the host's repository so COD clients can
    fetch it.  Returns the published unit.
    """
    unit = task.unit()

    def handler(args: object, host_) -> Tuple[object, int]:
        outcome = host_.run_guest(
            unit.instantiate(),
            f"task:{task.name}",
            args,
            services={"host_id": host_.id},
            task_name=task.name,
        )
        if not outcome.ok:
            raise from_wire(outcome.error_wire)
        return outcome.value, estimate_size(outcome.value)

    if task.name not in host.services:
        host.register_service(task.name, handler, work_units=task.work_units)
    if host.repository is None:
        host.repository = CodeRepository()
    host.repository.publish(unit)
    return unit


# ---------------------------------------------------------------------------
# The Paradigm protocol
# ---------------------------------------------------------------------------


@runtime_checkable
class Paradigm(Protocol):
    """What a pluggable paradigm implementation looks like.

    Structural: any component exposing these members participates in
    ``ParadigmSelector.select_and_invoke`` — assessment
    (:meth:`cost`) and execution (:meth:`invoke`) finally meet.
    """

    #: The paradigm kind this component executes (``"cs"``, ``"rev"``,
    #: ``"cod"``, ``"ma"``, ``"local"``, or a plugin's own kind).
    paradigm: str
    #: False when the paradigm can run without a usable link.
    requires_link: bool

    def invoke(
        self,
        task: InvocationTask,
        target: Union[str, Sequence[str], None],
        retry: Optional[RetryPolicy] = None,
    ) -> Generator:
        """Run ``task`` against ``target`` (generator; returns result)."""

    def cost(
        self, task: Union[InvocationTask, TaskProfile], link: Optional[Link]
    ) -> CostEstimate:
        """Predicted cost of running ``task`` over ``link``."""


def implements_paradigm(component: object) -> bool:
    """True when ``component`` satisfies the :class:`Paradigm` protocol."""
    return (
        isinstance(component, Paradigm)
        and getattr(component, "paradigm", None) is not None
    )


@dataclass
class InvocationOutcome:
    """What ``select_and_invoke`` hands back: the result plus the
    assessment that chose the paradigm."""

    paradigm: str
    target: Union[str, Sequence[str], None]
    result: object
    elapsed_s: float
    estimate: Optional[CostEstimate] = None
    ranking: List[CostEstimate] = field(default_factory=list)


# ---------------------------------------------------------------------------
# The degenerate fifth paradigm: run it here
# ---------------------------------------------------------------------------


class LocalExecution(Component):
    """No mobility at all: the task runs in this host's own sandbox.

    Exists so the selector can compare "stay local" against the four
    mobile paradigms through the same protocol (and as the worked
    example of plugging in a fifth paradigm — see docs/TUTORIAL.md).
    """

    kind = "local"
    paradigm = PARADIGM_LOCAL
    requires_link = False
    code_size = 2_000

    def invoke(
        self,
        task: InvocationTask,
        target: Union[str, Sequence[str], None] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> Generator:
        host = self.require_host()

        def attempt(span: object) -> Generator:
            value = yield from run_task_locally(host, task)
            self.pipeline.record_served()
            return value

        return (
            yield from self.pipeline.run("local.run", attempt, task=task.name)
        )
