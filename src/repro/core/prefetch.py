"""Context-aware prefetching of code units.

A corollary of the paper's COD + context-awareness story: when the
device sits on a *free* link (home hotspot, office LAN), the middleware
can pull popular units ahead of need, so later — out on the metered
GPRS link — the capability is already local.  The :class:`Prefetcher`
watches the link towards its repository host and opportunistically
fetches from a popularity-ranked wishlist, respecting a storage budget
fraction so prefetching never starves demand fetching.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional, Sequence

from ..errors import QuotaExceeded, RequestTimeout, TransportTimeout, UnitNotFound, Unreachable
from .host import MobileHost


@dataclass(frozen=True)
class PrefetchItem:
    """A unit worth having, with its expected popularity weight."""

    unit_name: str
    weight: float


class Prefetcher:
    """Opportunistically fetches wishlist units over free links.

    ``budget_fraction`` caps how much of the codebase quota prefetched
    (unpinned) content may occupy.  ``check_interval`` is how often the
    link is re-examined.
    """

    def __init__(
        self,
        host: MobileHost,
        repository_host: str,
        wishlist: Sequence[PrefetchItem] = (),
        budget_fraction: float = 0.5,
        check_interval: float = 5.0,
        autostart: bool = True,
    ) -> None:
        if not 0.0 < budget_fraction <= 1.0:
            raise ValueError("budget_fraction must be in (0, 1]")
        if check_interval <= 0:
            raise ValueError("check_interval must be positive")
        self.host = host
        self.repository_host = repository_host
        self.wishlist: List[PrefetchItem] = sorted(
            wishlist, key=lambda item: (-item.weight, item.unit_name)
        )
        self.budget_fraction = budget_fraction
        self.check_interval = check_interval
        self.prefetched: List[str] = []
        self.skipped_budget = 0
        if autostart:
            host.env.process(self._loop(), name=f"prefetch:{host.id}")

    # -- policy ----------------------------------------------------------------

    def want(self, unit_name: str, weight: float = 1.0) -> None:
        """Add (or re-rank) a wishlist entry."""
        self.wishlist = sorted(
            [item for item in self.wishlist if item.unit_name != unit_name]
            + [PrefetchItem(unit_name, weight)],
            key=lambda item: (-item.weight, item.unit_name),
        )

    def _free_link_available(self) -> bool:
        network = self.host.world.network
        if self.repository_host not in network:
            return False
        peer = network.node(self.repository_host)
        return any(
            link.is_free
            for link in network.links_between(self.host.node, peer)
        )

    def _within_budget(self) -> bool:
        quota = self.host.codebase.quota_bytes
        if quota == float("inf"):
            return True
        return self.host.codebase.used_bytes < quota * self.budget_fraction

    def _next_candidate(self) -> Optional[PrefetchItem]:
        for item in self.wishlist:
            if item.unit_name not in self.host.codebase:
                return item
        return None

    # -- the work --------------------------------------------------------------

    def prefetch_round(self) -> Generator:
        """Fetch at most one missing wishlist unit (generator helper).

        Returns the unit name fetched, or None (no candidate, no free
        link, or budget reached).
        """
        if not self._free_link_available():
            return None
        candidate = self._next_candidate()
        if candidate is None:
            return None
        if not self._within_budget():
            self.skipped_budget += 1
            return None
        cod = self.host.component("cod")
        try:
            yield from cod.fetch(
                self.repository_host, [candidate.unit_name], install=True
            )
        except (UnitNotFound, QuotaExceeded):
            # Unfetchable or unfittable: stop wanting it.
            self.wishlist = [
                item
                for item in self.wishlist
                if item.unit_name != candidate.unit_name
            ]
            return None
        except (Unreachable, TransportTimeout, RequestTimeout):
            return None  # link flapped; try again next round
        self.prefetched.append(candidate.unit_name)
        self.host.world.metrics.counter("prefetch.fetched").increment()
        return candidate.unit_name

    def _loop(self) -> Generator:
        while True:
            if self.host.node.up:
                yield from self.prefetch_round()
            yield self.host.env.timeout(self.check_interval)
