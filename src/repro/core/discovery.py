"""Decentralised service discovery for ad-hoc environments.

The paper's criticism of Jini is that it needs a lookup server, which
ad-hoc networks lack.  This component needs none: providers answer
broadcast queries directly (and may gratuitously beacon their
advertisements); clients collect unicast replies for a bounded window
and keep a freshness-bounded cache.
"""

from __future__ import annotations

import itertools
from typing import Dict, Generator, List, Optional, Tuple

from ..net import Message
from .components import Component, MessageHandler
from .services import ServiceDescription

KIND_QUERY = "disc.request"
KIND_REPLY = "disc.reply"
KIND_BEACON = "disc.advert"

_query_ids = itertools.count(1)


class Discovery(Component):
    """Broadcast-query/unicast-reply discovery with advert caching."""

    kind = "discovery"
    code_size = 5_000

    def __init__(
        self,
        beacon_interval: Optional[float] = None,
        cache_ttl: float = 30.0,
        suppress_empty_beacons: bool = False,
    ) -> None:
        super().__init__()
        if beacon_interval is not None and beacon_interval <= 0:
            raise ValueError("beacon_interval must be positive")
        if cache_ttl <= 0:
            raise ValueError("cache_ttl must be positive")
        self.beacon_interval = beacon_interval
        self.cache_ttl = cache_ttl
        #: When set, a beacon round first asks the network's spatial
        #: index whether anyone is in ad-hoc range and stays silent if
        #: not — an epoch-cached range query instead of a radio
        #: transmission into the void.  Off by default because skipping
        #: the transmission shifts subsequent beacon times (seeded runs
        #: would diverge from the pre-optimisation trajectory).
        self.suppress_empty_beacons = suppress_empty_beacons
        #: Services this host offers: key -> description.
        self.local: Dict[str, ServiceDescription] = {}
        #: Adverts heard from peers: key -> (description, heard_at).
        self.cache: Dict[str, Tuple[ServiceDescription, float]] = {}
        self._open_queries: Dict[int, List[ServiceDescription]] = {}

    def start(self) -> None:
        super().start()
        if self.beacon_interval is not None:
            self.env.process(
                self._beacon_loop(),
                name=f"disc-beacon:{self.require_host().id}",
            )

    def handlers(self) -> Dict[str, MessageHandler]:
        return {
            KIND_QUERY: self._handle_query,
            KIND_REPLY: self._handle_reply,
            KIND_BEACON: self._handle_beacon,
        }

    # -- provider side -------------------------------------------------------------

    def advertise(self, description: ServiceDescription) -> None:
        """Offer a service for peers to discover."""
        self.local[description.key] = description

    def withdraw(self, key: str) -> None:
        self.local.pop(key, None)

    # -- client side ------------------------------------------------------------------

    def find(
        self,
        service_type: str,
        attributes: Optional[Dict[str, str]] = None,
        window: float = 2.0,
        use_cache: bool = True,
        repeats: int = 2,
    ) -> Generator:
        """Discover providers of ``service_type`` (generator helper).

        The query broadcast is repeated ``repeats`` times across the
        collection ``window`` (broadcasts are unacknowledged, so
        repetition is the loss defence — as in SLP).  Returns the
        (possibly empty) list of matching descriptions after the
        window; a fresh cache hit returns immediately without radio
        traffic.
        """
        if repeats < 1:
            raise ValueError("repeats must be >= 1")
        host = self.require_host()
        tracer = host.world.tracer
        if use_cache:
            cached = self._cache_lookup(service_type, attributes)
            if cached:
                host.world.metrics.counter("disc.cache_hits").increment()
                # Own offers match on either path, like the radio path.
                for description in self.local.values():
                    if description.matches(service_type, attributes):
                        cached.append(description)
                return list({d.key: d for d in cached}.values())
        span = tracer.start(
            "disc.find", host.id, service_type=service_type, repeats=repeats
        )
        started = self.env.now
        query_id = next(_query_ids)
        self._open_queries[query_id] = []
        host.world.metrics.counter("disc.queries").increment()
        gap = window / (repeats + 1)
        for _repeat in range(repeats):
            yield host.world.transport.broadcast(
                host.node,
                KIND_QUERY,
                payload={
                    "query_id": query_id,
                    "service_type": service_type,
                    "attributes": dict(attributes or {}),
                    "requester": host.id,
                },
                size_bytes=64,
            )
            yield self.env.timeout(gap)
        yield self.env.timeout(gap)
        found = self._open_queries.pop(query_id, [])
        # Local services match too (a host can use its own offer).
        for description in self.local.values():
            if description.matches(service_type, attributes):
                found.append(description)
        unique = list({d.key: d for d in found}.values())
        if unique:
            host.world.metrics.counter("disc.found").increment()
        host.world.metrics.histogram("disc.find_seconds").observe(
            self.env.now - started
        )
        host.world.metrics.gauge("disc.cache_size").set(len(self.cache))
        tracer.finish(span, found=len(unique))
        return unique

    def _cache_lookup(
        self, service_type: str, attributes: Optional[Dict[str, str]]
    ) -> List[ServiceDescription]:
        now = self.env.now
        fresh = []
        for key, (description, heard_at) in list(self.cache.items()):
            if now - heard_at > self.cache_ttl:
                del self.cache[key]
                continue
            if description.matches(service_type, attributes):
                fresh.append(description)
        return fresh

    # -- message handling -------------------------------------------------------------

    def _handle_query(self, message: Message) -> Generator:
        host = self.require_host()
        payload = message.payload or {}
        matches = [
            description
            for description in self.local.values()
            if description.matches(
                payload.get("service_type", ""), payload.get("attributes")
            )
        ]
        if not matches:
            return
        reply = Message(
            source=host.id,
            destination=payload.get("requester", message.source),
            kind=KIND_REPLY,
            payload={"query_id": payload.get("query_id"), "services": matches},
            size_bytes=sum(m.size_bytes for m in matches),
        )
        yield host.send(reply, reliable=False)

    def _handle_reply(self, message: Message) -> Generator:
        payload = message.payload or {}
        bucket = self._open_queries.get(payload.get("query_id"))
        descriptions = payload.get("services", [])
        for description in descriptions:
            self.cache[description.key] = (description, self.env.now)
            if bucket is not None:
                bucket.append(description)
        return
        yield  # pragma: no cover - generator protocol

    def _handle_beacon(self, message: Message) -> Generator:
        for description in (message.payload or {}).get("services", []):
            self.cache[description.key] = (description, self.env.now)
        return
        yield  # pragma: no cover - generator protocol

    # -- beaconing ---------------------------------------------------------------------

    def _beacon_loop(self) -> Generator:
        host = self.require_host()
        while self.started:
            wanted = self.local and host.node.up
            if wanted and self.suppress_empty_beacons:
                # Cheap epoch-cached range query; nobody in radio range
                # means the advert could not be heard anyway.
                wanted = bool(host.world.network.neighbors(host.node))
            if wanted:
                services = list(self.local.values())
                yield host.world.transport.broadcast(
                    host.node,
                    KIND_BEACON,
                    payload={"services": services},
                    size_bytes=sum(s.size_bytes for s in services),
                )
            yield self.env.timeout(self.beacon_interval)
