"""Context awareness: batteries, typed readings, change notification.

"Through the use of context-awareness techniques, the middleware should
notify applications of their current context, so that they can adapt
accordingly."  The :class:`ContextRegistry` holds typed, timestamped
readings; listeners are notified on change; a :class:`ContextMonitor`
process keeps the standard readings fresh from the live system.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Generator, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .host import MobileHost

#: Standard context keys written by the monitor.
KEY_BATTERY = "battery.fraction"
KEY_NEIGHBORS = "net.neighbors"
KEY_BANDWIDTH = "net.bandwidth_bps"
KEY_COST_PER_MB = "net.cost_per_mb"
KEY_STORAGE_FREE = "storage.free_bytes"
KEY_LOCATION_X = "location.x"
KEY_LOCATION_Y = "location.y"

ContextListener = Callable[[str, object, object], None]


class Battery:
    """An energy store drained by CPU, radio, and idling.

    Calibrated loosely to a 2002 PDA: ~10 Wh capacity, ~1 W active CPU,
    ~1 µJ per radio byte.  Experiments read :attr:`fraction`; hosts
    charge it as they compute and communicate.
    """

    def __init__(
        self,
        capacity_joules: float = 36_000.0,
        cpu_watts: float = 1.0,
        radio_joules_per_byte: float = 1.0e-6,
        idle_watts: float = 0.05,
    ) -> None:
        if capacity_joules <= 0:
            raise ValueError("battery capacity must be positive")
        self.capacity_joules = capacity_joules
        self.level_joules = capacity_joules
        self.cpu_watts = cpu_watts
        self.radio_joules_per_byte = radio_joules_per_byte
        self.idle_watts = idle_watts

    @property
    def fraction(self) -> float:
        return max(0.0, self.level_joules / self.capacity_joules)

    @property
    def empty(self) -> bool:
        return self.level_joules <= 0.0

    def consume(self, joules: float) -> None:
        if joules < 0:
            raise ValueError("cannot consume negative energy")
        self.level_joules = max(0.0, self.level_joules - joules)

    def consume_cpu(self, seconds: float) -> None:
        self.consume(self.cpu_watts * seconds)

    def consume_radio(self, size_bytes: int) -> None:
        self.consume(self.radio_joules_per_byte * size_bytes)

    def consume_idle(self, seconds: float) -> None:
        self.consume(self.idle_watts * seconds)

    def recharge(self) -> None:
        self.level_joules = self.capacity_joules


@dataclass(frozen=True)
class Reading:
    """One context value with its observation time."""

    key: str
    value: object
    observed_at: float

    def age(self, now: float) -> float:
        return now - self.observed_at


class ContextRegistry:
    """Typed, timestamped context readings with change listeners."""

    def __init__(self, now: Callable[[], float]) -> None:
        self._now = now
        self._readings: Dict[str, Reading] = {}
        self._listeners: List[ContextListener] = []

    def set(self, key: str, value: object) -> None:
        """Write a reading; listeners fire only on value *change*."""
        previous = self._readings.get(key)
        self._readings[key] = Reading(key, value, self._now())
        if previous is None or previous.value != value:
            old = previous.value if previous else None
            for listener in list(self._listeners):
                listener(key, old, value)

    def get(self, key: str, default: object = None) -> object:
        reading = self._readings.get(key)
        return reading.value if reading is not None else default

    def reading(self, key: str) -> Optional[Reading]:
        return self._readings.get(key)

    def fresh(self, key: str, max_age: float) -> bool:
        reading = self._readings.get(key)
        return reading is not None and reading.age(self._now()) <= max_age

    def subscribe(self, listener: ContextListener) -> None:
        self._listeners.append(listener)

    def unsubscribe(self, listener: ContextListener) -> None:
        self._listeners.remove(listener)

    def snapshot(self) -> Dict[str, object]:
        return {key: reading.value for key, reading in self._readings.items()}

    def keys(self) -> List[str]:
        return sorted(self._readings)


class ContextMonitor:
    """Keeps the standard readings of one host fresh.

    Samples every ``interval`` seconds: battery fraction, ad-hoc
    neighbour count, free storage, position, and — towards a designated
    ``reference_peer`` if given — available bandwidth and tariff.
    """

    def __init__(
        self,
        host: "MobileHost",
        interval: float = 5.0,
        reference_peer: Optional[str] = None,
        crash_on_empty_battery: bool = False,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.host = host
        self.interval = interval
        self.reference_peer = reference_peer
        self.crash_on_empty_battery = crash_on_empty_battery
        self._process = host.env.process(
            self._loop(), name=f"context-monitor:{host.id}"
        )

    def sample_once(self) -> None:
        host = self.host
        registry = host.context
        node = host.node
        if host.battery is not None:
            host.battery.consume_idle(0.0)  # no-op; keeps interface obvious
            registry.set(KEY_BATTERY, round(host.battery.fraction, 6))
        registry.set(
            KEY_NEIGHBORS, len(host.world.network.neighbors(node))
        )
        registry.set(KEY_STORAGE_FREE, host.codebase.free_bytes)
        registry.set(KEY_LOCATION_X, node.position.x)
        registry.set(KEY_LOCATION_Y, node.position.y)
        if self.reference_peer and self.reference_peer in host.world.network:
            link = host.world.network.best_link(
                node, host.world.network.node(self.reference_peer)
            )
            if link is None:
                registry.set(KEY_BANDWIDTH, 0.0)
            else:
                registry.set(KEY_BANDWIDTH, link.bandwidth_bps)
                registry.set(
                    KEY_COST_PER_MB, link.sender_technology.cost_per_mb
                )

    def _loop(self) -> Generator:
        while True:
            if self.host.node.up:
                if self.host.battery is not None:
                    self.host.battery.consume_idle(self.interval)
                self.sample_once()
                if (
                    self.crash_on_empty_battery
                    and self.host.battery is not None
                    and self.host.battery.empty
                ):
                    self.host.world.trace.emit(
                        self.host.env.now,
                        self.host.id,
                        "host.battery_flat",
                    )
                    self.host.node.crash()
            yield self.host.env.timeout(self.interval)
