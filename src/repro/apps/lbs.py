"""Scenario: location-based reconfigurability and services.

"A user can be automatically presented with a graphical user interface
to order movie tickets, upon entering a cinema's premises."  A venue
host advertises a service whose description names a *proxy unit* (the
UI/driver); the :class:`LocationAwareBrowser` watches discovery as the
user moves, COD-fetches the proxy on first contact, and can then invoke
the service — all without manual installation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional

from ..errors import ServiceNotFound
from ..lmu import CodeRepository, code_unit
from ..core.host import MobileHost
from ..core.services import ServiceDescription, service


def make_venue(
    host: MobileHost,
    venue_name: str,
    service_type: str = "ticketing",
    ui_size: int = 40_000,
    ticket_price: float = 8.5,
) -> ServiceDescription:
    """Equip ``host`` as a venue offering a ticketing service.

    Publishes the UI proxy unit in the host's repository, registers the
    order-taking CS service, and advertises the whole thing over
    decentralised discovery.
    """
    proxy_name = f"ui-{venue_name}"

    def factory():
        def render(ctx, *args):
            ctx.charge(2_000)
            return f"ui:{venue_name}"

        return render

    if host.repository is None:
        host.repository = CodeRepository(name=f"{host.id}-repo")
    host.repository.publish(
        code_unit(
            proxy_name,
            "1.0.0",
            factory,
            ui_size,
            description=f"Ticketing UI for {venue_name}",
        )
    )

    def order_handler(args, host_, price=ticket_price):
        seats = int((args or {}).get("seats", 1))
        return ({"venue": venue_name, "seats": seats, "total": seats * price}, 128)

    host.register_service(f"order:{venue_name}", order_handler, work_units=5_000)
    description = service(
        service_type,
        host.id,
        venue_name,
        attributes={"venue": venue_name},
        proxy_unit=proxy_name,
    )
    host.component("discovery").advertise(description)
    return description


@dataclass
class VenueEncounter:
    """One venue the browser has prepared for use."""

    description: ServiceDescription
    discovered_at: float
    ui_ready_at: float

    @property
    def setup_time_s(self) -> float:
        return self.ui_ready_at - self.discovered_at


@dataclass
class LocationAwareBrowser:
    """The user-side application: discovers venues, fetches their UIs."""

    host: MobileHost
    service_type: str = "ticketing"
    encounters: Dict[str, VenueEncounter] = field(default_factory=dict)

    def look_around(self, window: float = 2.0) -> Generator:
        """One discovery round: find venues in range and prepare each
        newly seen one (fetch its UI proxy).  Returns new encounters."""
        discovery = self.host.component("discovery")
        found = yield from discovery.find(self.service_type, window=window)
        fresh: List[VenueEncounter] = []
        for description in found:
            if description.key in self.encounters:
                continue
            discovered_at = self.host.env.now
            if description.proxy_unit:
                yield from self.host.component("cod").ensure(
                    [description.proxy_unit], description.provider
                )
            encounter = VenueEncounter(
                description=description,
                discovered_at=discovered_at,
                ui_ready_at=self.host.env.now,
            )
            self.encounters[description.key] = encounter
            fresh.append(encounter)
        return fresh

    def order_tickets(self, venue_name: str, seats: int = 2) -> Generator:
        """Order through a prepared venue's UI (generator helper)."""
        encounter = self._encounter_for(venue_name)
        provider = encounter.description.provider
        # Render the downloaded UI locally (the COD payoff), then order.
        if encounter.description.proxy_unit:
            unit = self.host.codebase.touch(encounter.description.proxy_unit)
            result = self.host.run_guest(
                unit.instantiate(),
                self.host.id,
                task_name=encounter.description.proxy_unit,
            )
            yield from self.host.execute(result.work_used)
        receipt = yield from self.host.component("cs").call(
            provider, f"order:{venue_name}", {"seats": seats}
        )
        return receipt

    def _encounter_for(self, venue_name: str) -> VenueEncounter:
        for encounter in self.encounters.values():
            if encounter.description.name == venue_name:
                return encounter
        raise ServiceNotFound(
            f"venue {venue_name!r} has not been encountered yet"
        )

    def wander(
        self, interval: float = 5.0, rounds: Optional[int] = None
    ) -> Generator:
        """Keep looking around every ``interval`` seconds (generator).

        Runs forever unless ``rounds`` bounds it; intended to be spawned
        as a process alongside a mobility model.
        """
        completed = 0
        while rounds is None or completed < rounds:
            yield from self.look_around()
            completed += 1
            yield self.host.env.timeout(interval)
