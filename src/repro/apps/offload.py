"""Scenario: distributing computations to more powerful hosts.

"REV techniques can be used to distribute computations to more
powerful hosts … allowing for faster application execution."  The
workload is a tunable crunch unit; :func:`run_local` grinds it on the
device, :func:`run_offloaded` REV-ships it to a fast fixed host.  The
:class:`AdaptiveOffloader` asks the paradigm selector which to do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from ..lmu import DataUnit, code_unit
from ..core.adaptation import (
    CostWeights,
    PARADIGM_LOCAL,
    PARADIGM_REV,
    ParadigmSelector,
)
from ..core.host import MobileHost
from ..core.invocation import InvocationTask, LocalExecution

#: Modelled code size of the crunch unit shipped by REV.
CRUNCH_CODE_BYTES = 30_000


def crunch_unit(work_units: float, result_bytes: int = 256):
    """A transferable computation of ``work_units`` cost.

    The unit's behaviour charges its metered work and produces a small
    summary result (the point of offloading: big compute, small answer).
    """

    def factory():
        def body(ctx, payload_size: int = 0):
            ctx.charge(work_units)
            return {"summary": "ok", "work": work_units, "input": payload_size}

        return body

    return code_unit(
        "crunch",
        "1.0.0",
        factory,
        CRUNCH_CODE_BYTES,
        description="Tunable CPU-bound workload",
    )


@dataclass
class OffloadReport:
    where: str  #: "local" or host id
    elapsed_s: float
    result: object
    #: Which paradigm actually ran ("" for the fixed-path helpers).
    paradigm: str = ""


def run_local(host: MobileHost, work_units: float) -> Generator:
    """Grind the workload on the device itself (generator helper)."""
    started = host.env.now
    unit = crunch_unit(work_units)
    outcome = host.run_guest(unit.instantiate(), host.id, 0)
    yield from host.execute(outcome.work_used)
    return OffloadReport(
        where="local", elapsed_s=host.env.now - started, result=outcome.value
    )


def run_offloaded(
    host: MobileHost,
    server_id: str,
    work_units: float,
    input_bytes: int = 0,
) -> Generator:
    """REV-ship the workload (plus ``input_bytes`` of data) to a server."""
    started = host.env.now
    unit = crunch_unit(work_units)
    if "crunch" in host.codebase:
        host.codebase.uninstall("crunch")
    host.codebase.install(unit)
    data = []
    if input_bytes > 0:
        data = [DataUnit("input", b"x" * 0, input_bytes)]
    value = yield from host.component("rev").evaluate(
        server_id, ["crunch"], args=(input_bytes,), data_units=data
    )
    return OffloadReport(
        where=server_id, elapsed_s=host.env.now - started, result=value
    )


class AdaptiveOffloader:
    """Chooses local vs offloaded per task using the paradigm selector.

    Each task is posed as an :class:`InvocationTask` and handed to
    ``ParadigmSelector.select_and_invoke``: the selector ranks "stay
    local" (:class:`LocalExecution`) against REV over the current link
    and runs the winner through the shared invocation pipeline — no
    per-paradigm dispatch here.  With the server unreachable, the
    link-requiring REV candidate drops out and local execution runs
    unconditionally.
    """

    def __init__(self, host: MobileHost, server_id: str) -> None:
        self.host = host
        self.server_id = server_id
        if host.paradigm_component(PARADIGM_LOCAL, required=False) is None:
            host.add_component(LocalExecution())
        # Local first: on a cost tie, staying put wins.
        self.selector = ParadigmSelector(
            available=[PARADIGM_LOCAL, PARADIGM_REV]
        )
        self.decisions = []

    def task_for(self, work_units: float, input_bytes: int) -> InvocationTask:
        def factory():
            def body(ctx, payload_size: int = 0):
                ctx.charge(work_units)
                return {
                    "summary": "ok",
                    "work": work_units,
                    "input": payload_size,
                }

            return body

        return InvocationTask(
            name="crunch",
            factory=factory,
            payload=input_bytes,
            work_units=work_units,
            code_bytes=CRUNCH_CODE_BYTES,
            request_bytes=input_bytes,
            reply_bytes=256,
            result_bytes=256,
        )

    def run(
        self,
        work_units: float,
        input_bytes: int = 0,
        weights: CostWeights = CostWeights(),
    ) -> Generator:
        """Run the task wherever the estimate says is cheaper."""
        outcome = yield from self.selector.select_and_invoke(
            self.host,
            self.task_for(work_units, input_bytes),
            self.server_id,
            weights=weights,
        )
        local = outcome.paradigm == PARADIGM_LOCAL
        self.decisions.append("local" if local else "offload")
        return OffloadReport(
            where="local" if local else self.server_id,
            elapsed_s=outcome.elapsed_s,
            result=outcome.result,
            paradigm=outcome.paradigm,
        )
