"""Scenario: distributing computations to more powerful hosts.

"REV techniques can be used to distribute computations to more
powerful hosts … allowing for faster application execution."  The
workload is a tunable crunch unit; :func:`run_local` grinds it on the
device, :func:`run_offloaded` REV-ships it to a fast fixed host.  The
:class:`AdaptiveOffloader` asks the paradigm selector which to do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from ..lmu import DataUnit, code_unit
from ..core.adaptation import (
    CostWeights,
    PARADIGM_CS,
    PARADIGM_REV,
    ParadigmSelector,
    TaskProfile,
)
from ..core.host import MobileHost

#: Modelled code size of the crunch unit shipped by REV.
CRUNCH_CODE_BYTES = 30_000


def crunch_unit(work_units: float, result_bytes: int = 256):
    """A transferable computation of ``work_units`` cost.

    The unit's behaviour charges its metered work and produces a small
    summary result (the point of offloading: big compute, small answer).
    """

    def factory():
        def body(ctx, payload_size: int = 0):
            ctx.charge(work_units)
            return {"summary": "ok", "work": work_units, "input": payload_size}

        return body

    return code_unit(
        "crunch",
        "1.0.0",
        factory,
        CRUNCH_CODE_BYTES,
        description="Tunable CPU-bound workload",
    )


@dataclass
class OffloadReport:
    where: str  #: "local" or host id
    elapsed_s: float
    result: object


def run_local(host: MobileHost, work_units: float) -> Generator:
    """Grind the workload on the device itself (generator helper)."""
    started = host.env.now
    unit = crunch_unit(work_units)
    context = host.execution_context(principal=host.id)
    outcome = host.sandbox.run(unit.instantiate(), context, 0)
    yield from host.execute(outcome.work_used)
    return OffloadReport(
        where="local", elapsed_s=host.env.now - started, result=outcome.value
    )


def run_offloaded(
    host: MobileHost,
    server_id: str,
    work_units: float,
    input_bytes: int = 0,
) -> Generator:
    """REV-ship the workload (plus ``input_bytes`` of data) to a server."""
    started = host.env.now
    unit = crunch_unit(work_units)
    if "crunch" in host.codebase:
        host.codebase.uninstall("crunch")
    host.codebase.install(unit)
    data = []
    if input_bytes > 0:
        data = [DataUnit("input", b"x" * 0, input_bytes)]
    value = yield from host.component("rev").evaluate(
        server_id, ["crunch"], args=(input_bytes,), data_units=data
    )
    return OffloadReport(
        where=server_id, elapsed_s=host.env.now - started, result=value
    )


class AdaptiveOffloader:
    """Chooses local vs offloaded per task using the paradigm selector.

    Local execution is profiled as "COD with the code already here" —
    i.e. pure local compute — and offloading as REV; the selector's
    estimates decide, given the current link to the server.
    """

    def __init__(self, host: MobileHost, server_id: str) -> None:
        self.host = host
        self.server_id = server_id
        self.selector = ParadigmSelector(available=[PARADIGM_CS, PARADIGM_REV])
        self.decisions = []

    def profile_for(self, work_units: float, input_bytes: int) -> TaskProfile:
        return TaskProfile(
            interactions=1,
            request_bytes=input_bytes,
            reply_bytes=256,
            code_bytes=CRUNCH_CODE_BYTES,
            result_bytes=256,
            work_units=work_units,
            local_speed=self.host.node.cpu_speed,
            remote_speed=self._server_speed(),
        )

    def _server_speed(self) -> float:
        network = self.host.world.network
        if self.server_id in network:
            return network.node(self.server_id).cpu_speed
        return 1.0

    def run(
        self,
        work_units: float,
        input_bytes: int = 0,
        weights: CostWeights = CostWeights(),
    ) -> Generator:
        """Run the task wherever the estimate says is cheaper."""
        link = self.host.world.network.best_link(
            self.host.node, self.host.world.network.node(self.server_id)
        )
        if link is None:
            self.decisions.append("local")
            report = yield from run_local(self.host, work_units)
            return report
        profile = self.profile_for(work_units, input_bytes)
        # "Stay local" is modelled directly: no code moves, compute at
        # local speed.  (The CS estimator assumes remote compute, so it
        # is not the right stand-in here.)
        local_time = work_units / 1e6 / max(profile.local_speed, 1e-9)
        rev_estimate = next(
            estimate
            for estimate in self.selector.estimates(profile, link)
            if estimate.paradigm == PARADIGM_REV
        )
        if rev_estimate.time_s < local_time:
            self.decisions.append("offload")
            report = yield from run_offloaded(
                self.host, self.server_id, work_units, input_bytes
            )
        else:
            self.decisions.append("local")
            report = yield from run_local(self.host, work_units)
        return report
