"""Scenario: communication in disaster scenarios.

"The message can be encapsulated in a mobile agent which migrates from
host to host, until it reaches the required destination."  With the
infrastructure gone, end-to-end paths rarely exist; the
:class:`MessengerAgent` does store-carry-forward: it rides its current
host, opportunistically hopping to newly met neighbours (preferring the
destination itself), until it arrives and delivers — or its TTL runs
out.  The CS baseline just keeps trying to send directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List

from ..errors import MigrationError, TransportTimeout, Unreachable
from ..net import Message
from ..core.agents import Agent, AgentContext
from ..core.host import MobileHost


class MessengerAgent(Agent):
    """Epidemic store-carry-forward message delivery.

    State:

    * ``destination`` — host id the payload must reach;
    * ``message`` — the payload to deliver;
    * ``deadline`` — simulated time after which the agent gives up;
    * ``beat`` — seconds between neighbourhood checks (default 1.0);
    * ``visited`` — hosts already ridden (avoid ping-ponging).
    """

    code_size = 6_000

    def on_arrival(self, context: AgentContext) -> Generator:
        state = self.state
        destination = str(state["destination"])
        state.setdefault("visited", [])
        beat = float(state.get("beat", 1.0))  # type: ignore[arg-type]
        if context.host_id not in state["visited"]:  # type: ignore[operator]
            state["visited"].append(context.host_id)  # type: ignore[union-attr]

        if context.host_id == destination:
            context.deliver(state["message"])
            context.log("messenger.delivered", destination=destination)
            return
            yield  # pragma: no cover - generator protocol

        rng = context.random()
        while True:
            if context.now >= float(state["deadline"]):  # type: ignore[arg-type]
                context.log("messenger.expired", destination=destination)
                context.die()
            neighbors = context.neighbors()
            # The destination itself beats any relay.
            if destination in neighbors:
                try:
                    yield from context.migrate(destination)
                except MigrationError:
                    pass
            # Prefer hosts never ridden; fall back to any neighbour other
            # than the one we just came from (a fresh contact may be a
            # mule walking somewhere useful), with a dwell probability so
            # the agent does not thrash between two static hosts.
            fresh = [
                peer
                for peer in neighbors
                if peer not in state["visited"]  # type: ignore[operator]
            ]
            previous = state.get("prev")
            stale = [peer for peer in neighbors if peer != previous]
            candidates = fresh or (stale if rng.random() < 0.3 else [])
            if candidates:
                target = candidates[rng.randrange(len(candidates))]
                try:
                    state["prev"] = context.host_id
                    yield from context.migrate(target)
                except MigrationError:
                    state["visited"].append(target)  # type: ignore[union-attr]
            yield from context.sleep(beat)


def send_via_agent(
    source: MobileHost,
    destination_id: str,
    payload: object,
    ttl: float = 300.0,
    beat: float = 1.0,
) -> str:
    """Launch a messenger agent from ``source``; returns the agent id.

    Arrange reception by subscribing to the destination's agent
    runtime deliveries (see :meth:`AgentRuntime.on_delivery`).
    """
    agent = MessengerAgent()
    return source.component("agents").launch(
        agent,
        destination=destination_id,
        message=payload,
        deadline=source.env.now + ttl,
        beat=beat,
    )


class SprayMessengerAgent(Agent):
    """Multi-copy (binary spray-and-wait) message delivery.

    The agent carries ``copies`` logical tokens.  While it holds more
    than one, it *clones* itself to newly met hosts, handing over half
    its tokens; a single-token agent waits for direct contact with the
    destination.  More copies mean better delivery odds and latency at
    the price of more radio traffic — the trade-off the ablation
    benchmark quantifies.

    Extra state over :class:`MessengerAgent`: ``copies``, ``sprayed``.
    """

    code_size = 6_500

    def on_arrival(self, context: AgentContext) -> Generator:
        state = self.state
        destination = str(state["destination"])
        beat = float(state.get("beat", 1.0))  # type: ignore[arg-type]

        if context.host_id == destination:
            context.deliver(state["message"])
            context.log("spray.delivered", destination=destination)
            return
            yield  # pragma: no cover - generator protocol

        rng = context.random()
        while True:
            if context.now >= float(state["deadline"]):  # type: ignore[arg-type]
                context.die()
            neighbors = context.neighbors()
            if destination in neighbors:
                try:
                    yield from context.migrate(destination)
                except MigrationError:
                    pass
            copies = int(state.get("copies", 1))  # type: ignore[arg-type]
            if copies > 1:
                sprayed = state.setdefault("sprayed", [])
                targets = [
                    peer
                    for peer in neighbors
                    if peer != destination and peer not in sprayed  # type: ignore[operator]
                ]
                if targets:
                    target = targets[rng.randrange(len(targets))]
                    give = copies // 2
                    state["copies"] = give
                    try:
                        yield from context.clone_to(target)
                        state["copies"] = copies - give
                        sprayed.append(target)  # type: ignore[union-attr]
                    except MigrationError:
                        state["copies"] = copies
            yield from context.sleep(beat)


def send_via_spray(
    source: MobileHost,
    destination_id: str,
    payload: object,
    copies: int = 8,
    ttl: float = 300.0,
    beat: float = 1.0,
) -> str:
    """Launch a spray-and-wait messenger; returns the root agent id."""
    if copies < 1:
        raise ValueError("copies must be >= 1")
    agent = SprayMessengerAgent()
    return source.component("agents").launch(
        agent,
        destination=destination_id,
        message=payload,
        deadline=source.env.now + ttl,
        beat=beat,
        copies=copies,
    )


@dataclass
class CsMessengerReport:
    delivered: bool
    attempts: int
    latency_s: float


def send_via_cs(
    source: MobileHost,
    destination_id: str,
    payload: object,
    payload_size: int = 512,
    ttl: float = 300.0,
    retry_interval: float = 5.0,
) -> Generator:
    """The baseline: keep attempting a direct (single-path) send.

    Succeeds only while an end-to-end path exists at an attempt instant.
    Returns a :class:`CsMessengerReport`.
    """
    started = source.env.now
    attempts = 0
    deadline = started + ttl
    while source.env.now < deadline:
        attempts += 1
        message = Message(
            source=source.id,
            destination=destination_id,
            kind="disaster.message",
            payload=payload,
            size_bytes=payload_size,
        )
        try:
            yield source.send(message)
            return CsMessengerReport(
                delivered=True,
                attempts=attempts,
                latency_s=source.env.now - started,
            )
        except (Unreachable, TransportTimeout):
            pass
        yield source.env.timeout(retry_interval)
    return CsMessengerReport(
        delivered=False, attempts=attempts, latency_s=source.env.now - started
    )


class DeliveryLog:
    """Collects payloads arriving at a destination host (either path)."""

    def __init__(self, host: MobileHost) -> None:
        self.host = host
        self.received: List[tuple] = []
        host.component("agents").on_delivery(self._on_agent_delivery)
        # The CS baseline's messages arrive as plain middleware messages.
        host._handlers.setdefault("disaster.message", self._on_cs_message)

    def _on_agent_delivery(self, agent, payload) -> None:
        self.received.append(("agent", payload, self.host.env.now))

    def _on_cs_message(self, message) -> Generator:
        self.received.append(("cs", message.payload, self.host.env.now))
        return
        yield  # pragma: no cover - generator protocol

    def payloads(self) -> List[object]:
        return [payload for _via, payload, _at in self.received]
