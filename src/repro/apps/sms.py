"""Scenario: next-generation SMS as mobile agents.

"In fixed networking scenarios, Mobile Agents can be used to
encapsulate the next generation of Short Message Service (SMS)
messages: encapsulating the message in an agent, and delivering it to
the recipient through a message centre, to be executed on the
recipient's device."

The :class:`SmsAgent` travels sender → message centre → recipient.  At
the centre it *parks*, autonomously polling reachability until the
recipient attaches (phones are often off or out of coverage), then
delivers itself, executes its payload behaviour on the recipient's
device, and optionally returns a delivery receipt to the sender via
the centre.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List

from ..errors import MigrationError
from ..core.agents import Agent, AgentContext
from ..core.host import MobileHost


class SmsAgent(Agent):
    """A message encapsulated in an agent.

    State: ``recipient``, ``text``, ``centre``, ``deadline``,
    ``retry`` (poll period while parked), ``receipt`` (bool), plus
    ``status`` tracking.
    """

    code_size = 4_000

    def on_arrival(self, context: AgentContext) -> Generator:
        state = self.state
        recipient = str(state["recipient"])
        centre = str(state["centre"])
        home = str(state["home"])
        retry = float(state.get("retry", 5.0))  # type: ignore[arg-type]

        if state.get("status") == "delivered":
            # Receipt leg: back at the sender.
            if context.host_id == home:
                return
            try:
                yield from context.migrate(home)
            except MigrationError:
                context.die()

        if context.host_id == recipient:
            # Execute on the recipient's device: deliver the text.
            context.deliver({"from": home, "text": state["text"]})
            context.log("sms.delivered", to=recipient)
            state["status"] = "delivered"
            state["delivered_at"] = context.now
            if state.get("receipt"):
                try:
                    yield from context.migrate(centre)
                except MigrationError:
                    pass  # receipt lost; the message itself arrived
            return

        if context.host_id != centre:
            # First leg: reach the message centre.
            yield from context.migrate(centre)

        # Parked at the centre: poll until the recipient is reachable.
        while True:
            if context.now >= float(state["deadline"]):  # type: ignore[arg-type]
                context.log("sms.expired", to=recipient)
                state["status"] = "expired"
                context.die()
            if context.can_reach(recipient):
                try:
                    yield from context.migrate(recipient)
                except MigrationError:
                    pass  # raced a detach; keep waiting
            yield from context.sleep(retry)


@dataclass
class SmsReceipt:
    """What the sender learns when the receipt agent returns."""

    recipient: str
    delivered_at: float


class SmsInbox:
    """Collects SMS deliveries on a recipient host."""

    def __init__(self, host: MobileHost) -> None:
        self.host = host
        self.messages: List[dict] = []
        host.component("agents").on_delivery(self._on_delivery)

    def _on_delivery(self, agent: Agent, payload: object) -> None:
        if isinstance(payload, dict) and "text" in payload:
            self.messages.append(payload)

    def texts(self) -> List[str]:
        return [message["text"] for message in self.messages]


def send_sms(
    sender: MobileHost,
    centre_id: str,
    recipient_id: str,
    text: str,
    ttl: float = 3600.0,
    retry: float = 5.0,
    receipt: bool = False,
) -> str:
    """Dispatch an SMS agent; returns its agent id.

    With ``receipt=True`` the agent, after executing on the recipient,
    travels home via the centre; await it with
    ``sender.component("agents").completion(agent_id)``.
    """
    agent = SmsAgent()
    return sender.component("agents").launch(
        agent,
        recipient=recipient_id,
        centre=centre_id,
        text=text,
        deadline=sender.env.now + ttl,
        retry=retry,
        receipt=receipt,
    )
