"""Scenario: limited resources and dynamic update (codec on demand).

"Imagine having applications that transparently download audio codecs
to play a new audio format."  The :class:`MediaPlayer` keeps no codecs
preinstalled; when asked to play a format it uses COD ``ensure`` — a
local hit plays immediately, a miss transparently fetches the codec
(and its dependencies) from a repository host, subject to the device's
storage quota and eviction policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List

from ..errors import UnitNotFound
from ..lmu import CodeRepository, code_unit
from ..core.host import MobileHost

#: Formats a 2002-era device might meet, with modelled codec sizes.
CODEC_CATALOGUE: Dict[str, int] = {
    "mp3": 120_000,
    "ogg": 150_000,
    "wav": 30_000,
    "aac": 180_000,
    "wma": 160_000,
    "midi": 45_000,
    "amr": 60_000,
    "real": 200_000,
    "flac": 140_000,
    "speex": 80_000,
}

#: Every codec depends on a shared DSP support library.
DSP_LIBRARY_SIZE = 90_000


def codec_unit_name(format_name: str) -> str:
    return f"codec-{format_name}"


def build_codec_repository() -> CodeRepository:
    """The vendor-side catalogue of every codec (plus the DSP library)."""
    repository = CodeRepository()
    repository.publish(
        code_unit(
            "dsp-lib",
            "1.0.0",
            lambda: (lambda ctx: "dsp-ready"),
            DSP_LIBRARY_SIZE,
            description="Shared DSP support library",
        )
    )
    for format_name, size in CODEC_CATALOGUE.items():
        repository.publish(
            _make_codec_unit(format_name, size)
        )
    return repository


def _make_codec_unit(format_name: str, size: int):
    def factory():
        def decode(ctx, track=None):
            ctx.charge(5_000)
            return f"decoded:{format_name}:{track}"

        return decode

    return code_unit(
        codec_unit_name(format_name),
        "1.0.0",
        factory,
        size,
        requires=["dsp-lib"],
        description=f"Decoder for the {format_name} audio format",
        provides=[f"codec:{format_name}"],
    )


@dataclass
class PlaybackRecord:
    """One play attempt and what it took."""

    format: str
    track: str
    outcome: str  #: "hit", "miss", or "failed"
    time_to_play_s: float
    storage_used_after: int


@dataclass
class MediaPlayer:
    """A COD-backed media player on one mobile host."""

    host: MobileHost
    repository_host: str
    history: List[PlaybackRecord] = field(default_factory=list)

    def play(self, format_name: str, track: str = "track") -> Generator:
        """Play ``track`` in ``format_name`` (generator helper).

        Transparently fetches the codec if missing.  Returns the
        :class:`PlaybackRecord`; a failed fetch records ``"failed"``
        and re-raises :class:`UnitNotFound`.
        """
        started = self.host.env.now
        unit_name = codec_unit_name(format_name)
        cod = self.host.component("cod")
        try:
            outcome = yield from cod.ensure([unit_name], self.repository_host)
        except UnitNotFound:
            self.history.append(
                PlaybackRecord(
                    format=format_name,
                    track=track,
                    outcome="failed",
                    time_to_play_s=self.host.env.now - started,
                    storage_used_after=self.host.codebase.used_bytes,
                )
            )
            raise
        codec = self.host.codebase.touch(unit_name)
        result = self.host.run_guest(
            codec.instantiate(), self.host.id, track, task_name=unit_name
        )
        yield from self.host.execute(result.work_used)
        record = PlaybackRecord(
            format=format_name,
            track=track,
            outcome=outcome,
            time_to_play_s=self.host.env.now - started,
            storage_used_after=self.host.codebase.used_bytes,
        )
        self.history.append(record)
        return record

    def drop_codec(self, format_name: str) -> bool:
        """Explicitly delete a codec, conserving storage."""
        removed = self.host.component("cod").release(
            [codec_unit_name(format_name)]
        )
        return bool(removed)

    @property
    def miss_rate(self) -> float:
        if not self.history:
            return 0.0
        misses = sum(1 for record in self.history if record.outcome != "hit")
        return misses / len(self.history)

    def mean_time_to_play(self) -> float:
        if not self.history:
            return 0.0
        return sum(record.time_to_play_s for record in self.history) / len(
            self.history
        )


def preinstall_all_codecs(
    host: MobileHost, repository: CodeRepository
) -> List[str]:
    """The traditional alternative: install the whole catalogue up front.

    Raises :class:`~repro.errors.QuotaExceeded` when the device cannot
    hold it — the failure mode E2 contrasts COD against.
    """
    installed = []
    for name in repository.names():
        host.codebase.install(repository.latest(name))
        installed.append(name)
    return installed
