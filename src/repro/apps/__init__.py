"""Scenario applications from the paper's motivation section.

One module per motivating example:

* :mod:`media`    — limited resources & dynamic update (codec COD);
* :mod:`lbs`      — location-based reconfigurability & services;
* :mod:`disaster` — communication in disaster scenarios (agents);
* :mod:`shopping` — shopping & limiting connectivity costs (agents);
* :mod:`offload`  — distributing computations (REV).
"""

from .disaster import (
    CsMessengerReport,
    DeliveryLog,
    MessengerAgent,
    SprayMessengerAgent,
    send_via_agent,
    send_via_cs,
    send_via_spray,
)
from .lbs import LocationAwareBrowser, VenueEncounter, make_venue
from .media import (
    CODEC_CATALOGUE,
    MediaPlayer,
    PlaybackRecord,
    build_codec_repository,
    codec_unit_name,
    preinstall_all_codecs,
)
from .offload import (
    AdaptiveOffloader,
    CRUNCH_CODE_BYTES,
    OffloadReport,
    crunch_unit,
    run_local,
    run_offloaded,
)
from .sms import SmsAgent, SmsInbox, SmsReceipt, send_sms
from .shopping import (
    AdaptiveShoppingReport,
    BrowsingReport,
    PAGE_BYTES,
    PAGES_PER_VENDOR,
    ShoppingAgent,
    make_vendor,
    shop_adaptively,
    shop_interactively,
    shop_with_agent,
)

__all__ = [
    "AdaptiveOffloader",
    "AdaptiveShoppingReport",
    "BrowsingReport",
    "CODEC_CATALOGUE",
    "CRUNCH_CODE_BYTES",
    "CsMessengerReport",
    "DeliveryLog",
    "LocationAwareBrowser",
    "MediaPlayer",
    "MessengerAgent",
    "OffloadReport",
    "PAGES_PER_VENDOR",
    "PAGE_BYTES",
    "PlaybackRecord",
    "ShoppingAgent",
    "SmsAgent",
    "SmsInbox",
    "SmsReceipt",
    "SprayMessengerAgent",
    "VenueEncounter",
    "build_codec_repository",
    "codec_unit_name",
    "crunch_unit",
    "make_vendor",
    "make_venue",
    "preinstall_all_codecs",
    "run_local",
    "run_offloaded",
    "send_sms",
    "send_via_agent",
    "send_via_cs",
    "send_via_spray",
    "shop_adaptively",
    "shop_interactively",
    "shop_with_agent",
]
