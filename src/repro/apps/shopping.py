"""Scenario: shopping and limiting connectivity costs.

"Mobile agents could be a solution … encapsulating the description of
the product the user wishes to buy, finding the best price, and
performing the actual transaction for the user."  The agent crosses the
expensive wireless link twice (out and home); vendor-to-vendor hops ride
the fixed network.  The baseline browses every vendor interactively
over the wireless link, paying for every page.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Sequence

from ..errors import MigrationError
from ..core.adaptation import (
    CostWeights,
    PARADIGM_CS,
    PARADIGM_MA,
    ParadigmSelector,
)
from ..core.agents import Agent, AgentContext
from ..core.host import MobileHost
from ..core.invocation import InvocationTask

#: Modelled size of one catalogue browsing page, in bytes (2002 WAP-ish).
PAGE_BYTES = 6_000
#: Pages a human views per vendor while browsing interactively.
PAGES_PER_VENDOR = 5


def make_vendor(
    host: MobileHost, prices: Dict[str, float], page_bytes: int = PAGE_BYTES
) -> None:
    """Equip a fixed host as a shop: browse/quote/buy services."""

    def browse(args, host_):
        # One catalogue page; content size dominates.
        return ({"page": (args or {}).get("page", 1)}, page_bytes)

    def quote(args, host_):
        product = (args or {}).get("product")
        price = prices.get(product)
        return ({"product": product, "price": price, "vendor": host_.id}, 96)

    def buy(args, host_):
        product = (args or {}).get("product")
        price = prices.get(product)
        if price is None:
            raise ValueError(f"{host_.id} does not stock {product}")
        return (
            {"receipt": f"{host_.id}:{product}", "charged": price},
            128,
        )

    host.register_service("shop.browse", browse, work_units=2_000)
    host.register_service("shop.quote", quote, work_units=2_000)
    host.register_service("shop.buy", buy, work_units=10_000)


class ShoppingAgent(Agent):
    """Visits vendors, finds the best price, buys, and returns home.

    State: ``product``, ``vendors`` (ids to visit), plus bookkeeping
    (``quotes``, ``best``, ``receipt``, ``phase``).
    """

    code_size = 12_000

    def on_arrival(self, context: AgentContext) -> Generator:
        state = self.state
        state.setdefault("quotes", [])
        state.setdefault("phase", "collect")
        state.setdefault("cursor", 0)
        home = str(state["home"])
        vendors: List[str] = list(state["vendors"])  # type: ignore[arg-type]

        while True:
            phase = state["phase"]
            if phase == "collect":
                cursor = int(state["cursor"])  # type: ignore[arg-type]
                if context.host_id in vendors and cursor < len(vendors) and vendors[cursor] == context.host_id:
                    quote = yield from context.invoke_local(
                        "shop.quote", {"product": state["product"]}
                    )
                    if quote.get("price") is not None:
                        state["quotes"].append(  # type: ignore[union-attr]
                            (quote["vendor"], quote["price"])
                        )
                    state["cursor"] = cursor + 1
                    continue
                if cursor >= len(vendors):
                    state["phase"] = "buy"
                    continue
                target = vendors[cursor]
                try:
                    yield from context.migrate(target)
                except MigrationError:
                    state["cursor"] = cursor + 1
                continue
            if phase == "buy":
                quotes: List = list(state["quotes"])  # type: ignore[arg-type]
                if not quotes:
                    state["phase"] = "home"
                    continue
                best_vendor, best_price = min(quotes, key=lambda q: (q[1], q[0]))
                state["best"] = (best_vendor, best_price)
                if context.host_id != best_vendor:
                    try:
                        yield from context.migrate(best_vendor)
                    except MigrationError:
                        state["quotes"] = [
                            q for q in quotes if q[0] != best_vendor
                        ]
                    continue
                receipt = yield from context.invoke_local(
                    "shop.buy", {"product": state["product"]}
                )
                state["receipt"] = receipt
                state["phase"] = "home"
                continue
            if phase == "home":
                if context.host_id == home:
                    return
                try:
                    yield from context.migrate(home)
                except MigrationError:
                    yield from context.sleep(5.0)
                continue


def shop_with_agent(
    device: MobileHost, product: str, vendor_ids: Sequence[str]
) -> Generator:
    """Dispatch a shopping agent and await its return (generator helper).

    Returns the agent's final state (with ``best`` and ``receipt``).
    """
    runtime = device.component("agents")
    agent = ShoppingAgent()
    agent_id = runtime.launch(
        agent, product=product, vendors=list(vendor_ids)
    )
    final = yield runtime.completion(agent_id)
    return final


@dataclass
class BrowsingReport:
    """What interactive shopping cost."""

    best: Optional[tuple]
    receipt: Optional[dict]
    pages_viewed: int


def shop_interactively(
    device: MobileHost,
    product: str,
    vendor_ids: Sequence[str],
    pages_per_vendor: int = PAGES_PER_VENDOR,
    think_time_s: float = 3.0,
) -> Generator:
    """The baseline: browse every vendor over the wireless link.

    The user pages through each vendor's catalogue (``pages_per_vendor``
    requests each, with human think time), asks for a quote, then buys
    at the cheapest vendor.  Returns a :class:`BrowsingReport`.
    """
    cs = device.component("cs")
    quotes = []
    pages = 0
    for vendor_id in vendor_ids:
        for page in range(1, pages_per_vendor + 1):
            yield from cs.call(
                vendor_id, "shop.browse", {"page": page}, request_size=96
            )
            pages += 1
            if think_time_s > 0:
                yield device.env.timeout(think_time_s)
        quote = yield from cs.call(
            vendor_id, "shop.quote", {"product": product}, request_size=96
        )
        if quote.get("price") is not None:
            quotes.append((quote["vendor"], quote["price"]))
    if not quotes:
        return BrowsingReport(best=None, receipt=None, pages_viewed=pages)
    best_vendor, best_price = min(quotes, key=lambda q: (q[1], q[0]))
    receipt = yield from cs.call(
        device_best_target(best_vendor), "shop.buy", {"product": product},
        request_size=96,
    )
    return BrowsingReport(
        best=(best_vendor, best_price), receipt=receipt, pages_viewed=pages
    )


def device_best_target(vendor_id: str) -> str:
    """Indirection point so tests can interpose failures."""
    return vendor_id


@dataclass
class AdaptiveShoppingReport:
    """What adaptive shopping decided and bought."""

    best: Optional[tuple]
    receipt: Optional[dict]
    #: Paradigm chosen for the quote sweep and for the purchase.
    paradigms: List[str]
    quotes: List[tuple]


def shop_adaptively(
    device: MobileHost,
    product: str,
    vendor_ids: Sequence[str],
    weights: CostWeights = CostWeights(),
    selector: Optional[ParadigmSelector] = None,
) -> Generator:
    """Shop via whichever paradigm the selector deems cheapest.

    Both phases — collecting quotes from every vendor, then buying at
    the cheapest — go through ``ParadigmSelector.select_and_invoke``:
    on an expensive, slow wireless link the agent rendering wins (one
    round trip of code, vendor hops on the fixed network); on a fast
    free link direct CS calls win.  No paradigm dispatch happens here.

    Returns an :class:`AdaptiveShoppingReport`.
    """
    selector = selector or ParadigmSelector(
        available=[PARADIGM_MA, PARADIGM_CS]
    )
    # The quote task stands in for the whole per-vendor shopping
    # session the paradigm must render: a human browsing
    # PAGES_PER_VENDOR catalogue pages (PAGE_BYTES each) plus the quote
    # itself.  Under CS every one of those interactions crosses the
    # wireless link; under MA the agent (ShoppingAgent.code_size bytes
    # of code plus state) crosses twice and browses vendor-side — which
    # is exactly the trade-off the paper's shopping scenario describes.
    quote_task = InvocationTask(
        name="shop.quote",
        payload={"product": product},
        interactions=1 + PAGES_PER_VENDOR,
        request_bytes=96,
        reply_bytes=PAGE_BYTES,
        code_bytes=ShoppingAgent.code_size,
        result_bytes=256,
        work_units=2_000,
        timeout=120.0,
    )
    quote_outcome = yield from selector.select_and_invoke(
        device, quote_task, list(vendor_ids), weights=weights
    )
    quotes = [
        (entry["vendor"], entry["price"])
        for entry in (quote_outcome.result or [])
        if entry and entry.get("price") is not None
    ]
    if not quotes:
        return AdaptiveShoppingReport(
            best=None,
            receipt=None,
            paradigms=[quote_outcome.paradigm],
            quotes=[],
        )
    best_vendor, best_price = min(quotes, key=lambda q: (q[1], q[0]))
    buy_task = InvocationTask(
        name="shop.buy",
        payload={"product": product},
        interactions=1,
        request_bytes=96,
        reply_bytes=128,
        code_bytes=ShoppingAgent.code_size,
        result_bytes=128,
        work_units=10_000,
        timeout=120.0,
    )
    buy_outcome = yield from selector.select_and_invoke(
        device, buy_task, best_vendor, weights=weights
    )
    return AdaptiveShoppingReport(
        best=(best_vendor, best_price),
        receipt=buy_outcome.result,
        paradigms=[quote_outcome.paradigm, buy_outcome.paradigm],
        quotes=quotes,
    )
