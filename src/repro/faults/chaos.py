"""Chaos harness: workloads under fault plans, with recovery invariants.

:func:`run_chaos` assembles a small ad-hoc fleet, drives a request
workload through the full middleware stack while a :class:`FaultPlan`
plays out, and reports what completed.  Because both the workload and
the faults are scheduled deterministically, the whole scenario is a
pure function of the seed — two same-seed runs produce bit-identical
metrics, which is what makes chaos results diffable and gateable.

The ``verify_*`` helpers are the recovery invariants the paper's
middleware must uphold (each raises ``AssertionError`` on violation):

* :func:`verify_retry_convergence` — pipeline and application retries
  converge through drops, crashes, partitions, and latency spikes;
* :func:`verify_discovery_recovery` — discovery finds nothing across a
  partition but re-finds providers after it heals;
* :func:`verify_agent_reroute` — a :class:`TaskAgent` rides out a
  crashed hop (retrying in place) and still completes its itinerary;
* :func:`verify_local_degradation` — with no usable link, paradigm
  selection degrades to ``LocalExecution`` instead of failing.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Callable, Dict, Generator, List, Optional, Tuple

from ..core import (
    InvocationTask,
    ParadigmSelector,
    RetryPolicy,
    World,
    mutual_trust,
    provision_task,
    standard_host,
)
from ..core.invocation import LocalExecution
from ..core.services import ServiceDescription
from ..errors import ReproError
from ..net import WIFI_ADHOC, Position
from ..net.message import fresh_message_ids
from ..security import QuotaGrant, SecurityPolicy
from .plan import FaultPlan

#: Link-level retry for chaos calls: a little more patient than the
#: pipeline default, so brief fault windows are ridden out in-band.
CHAOS_RETRY = RetryPolicy(attempts=4, base_delay_s=1.0)
#: Application-level retry budget per request, on top of CHAOS_RETRY.
APP_ATTEMPTS = 4
APP_BACKOFF_S = 5.0


def _deterministic_ids(fn: Callable) -> Callable:
    """Run ``fn`` inside a :func:`fresh_message_ids` scope.

    Message ids (recorded in captured spans as ``msg_id``) come from a
    process-wide counter, so without the scope a scenario's report
    bytes depended on whatever ran earlier in the same process — the
    nondeterminism ``repro matrix --strict`` replay checking flushed
    out.  With it, a same-seed run is bit-identical whether it is the
    first job in a fresh worker or the fortieth.
    """

    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        with fresh_message_ids():
            return fn(*args, **kwargs)

    return wrapper


def chaos_task(name: str = "chaos.echo") -> InvocationTask:
    """The workload unit: a small echo service that can run anywhere."""

    def factory():
        def body(ctx, payload):
            return {"echo": payload}

        return body

    return InvocationTask(
        name=name,
        factory=factory,
        payload=None,
        work_units=5_000.0,
        code_bytes=4_000,
        request_bytes=128,
        reply_bytes=128,
        result_bytes=128,
        timeout=10.0,
    )


def build_fleet(
    world: World,
    clients: int = 4,
    servers: int = 2,
    task: Optional[InvocationTask] = None,
    server_policy: Optional[SecurityPolicy] = None,
) -> Tuple[List, List]:
    """A fixed grid of Wi-Fi ad-hoc hosts, all in mutual radio range.

    Positions are static so the fault plan is the only source of
    disruption.  Servers are provisioned to serve ``task`` (and
    advertise it for discovery); everyone trusts everyone.
    ``server_policy`` overrides the servers' security policy (how
    hostile runs arm strict quota grants on the attack surface).
    """
    task = task if task is not None else chaos_task()
    client_hosts = [
        standard_host(
            world,
            f"client-{index}",
            Position(10.0 * index, 0.0),
            [WIFI_ADHOC],
            cpu_speed=0.2,
        )
        for index in range(clients)
    ]
    server_kwargs = {} if server_policy is None else {"policy": server_policy}
    server_hosts = [
        standard_host(
            world,
            f"server-{index}",
            Position(10.0 * index, 40.0),
            [WIFI_ADHOC],
            fixed=True,
            cpu_speed=2.0,
            **server_kwargs,
        )
        for index in range(servers)
    ]
    mutual_trust(*client_hosts, *server_hosts)
    for server in server_hosts:
        provision_task(server, task)
        server.components["discovery"].advertise(
            ServiceDescription(
                service_type="compute",
                provider=server.id,
                name=task.name,
            )
        )
    return client_hosts, server_hosts


def standard_slos():
    """The chaos invariants as checked-in per-node SLOs.

    The four monitors mirror the ``verify_*`` invariants but run *in
    flight* on every node: under the standard plan a healthy stack
    dips to ``degraded`` while fault windows are open (the breach
    events prove the monitors see the faults bite) and recovers —
    ``critical`` levels mean the middleware failed to converge, which
    is exactly what ``repro health --strict`` exits non-zero on.
    """
    from ..obs.health import SloSpec

    return (
        SloSpec(
            name="completion",
            numerator="chaos.completed",
            denominator="chaos.requests_done",
            window_s=None,
            degraded=0.995,
            critical=0.4,
            comparison="below",
            min_denominator=3.0,
            description="cumulative per-client completion ratio",
        ),
        SloSpec(
            name="stale_replies",
            numerator="host.stale_replies",
            window_s=30.0,
            degraded=0.0,
            critical=12.0,
            comparison="above",
            description="late/duplicate replies discarded in the window",
        ),
        SloSpec(
            name="retry_burn",
            numerator="paradigm.cs.retries",
            denominator="paradigm.cs.calls",
            window_s=60.0,
            degraded=2.0,
            critical=6.0,
            comparison="above",
            min_denominator=2.0,
            description="link retries per call in the window",
        ),
        SloSpec(
            name="reachability",
            numerator="net.unreachable",
            window_s=30.0,
            degraded=0.0,
            critical=40.0,
            comparison="above",
            description="sends that found no link in the window",
        ),
    )


def standard_plan(
    clients: int = 4, servers: int = 2, scale: float = 1.0
) -> FaultPlan:
    """The default chaos schedule: one of everything, all recoverable.

    Every fault window closes and every crashed node restarts, so a
    correct stack converges back to service; ``scale`` stretches the
    schedule for longer workloads.
    """
    client_ids = [f"client-{index}" for index in range(clients)]
    server_ids = [f"server-{index}" for index in range(servers)]
    plan = FaultPlan()
    plan.drop(at=4.0 * scale, duration=8.0 * scale, rate=0.35)
    plan.duplicate(
        at=6.0 * scale,
        duration=30.0 * scale,
        rate=0.5,
        delay_s=0.25,
        message_kinds=("cs.reply",),
    )
    plan.crash([server_ids[0]], at=16.0 * scale, down_s=6.0 * scale)
    plan.partition(
        [client_ids, server_ids], at=30.0 * scale, duration=7.0 * scale
    )
    plan.delay(at=40.0 * scale, duration=6.0 * scale, extra_s=0.8, rate=0.6)
    plan.corrupt(at=47.0 * scale, duration=8.0 * scale, rate=0.4)
    plan.link_flap([client_ids[0]], at=55.0 * scale, down_s=3.0 * scale)
    return plan


@dataclass
class ChaosOutcome:
    """What a chaos run did, plus the world's full metric summary."""

    seed: int
    requests: int
    completed: int
    failed: int
    app_retries: int
    duration_s: float
    summary: Dict[str, float] = field(repr=False, default_factory=dict)
    #: Full :class:`~repro.obs.RunReport` dict for this run (metrics,
    #: params, kind counts) — what the chaos benchmark writes and
    #: what the determinism test compares bit-for-bit.
    report: Dict[str, object] = field(repr=False, default_factory=dict)

    @property
    def completion_rate(self) -> float:
        return self.completed / self.requests if self.requests else 1.0


def _client_driver(
    world: World,
    client,
    servers: List,
    task: InvocationTask,
    requests: int,
    spacing_s: float,
    offset: int,
) -> Generator:
    """One client's request loop with an application retry budget."""
    metrics = world.metrics
    # Per-client labeled children: each tally lands on the
    # ``{node=...}`` series and forwards to the flat chaos.* totals.
    labels = {"node": client.id}
    app_retries = metrics.counter("chaos.app_retries", labels=labels)
    completed = metrics.counter("chaos.completed", labels=labels)
    failed = metrics.counter("chaos.failed", labels=labels)
    requests_done = metrics.counter("chaos.requests_done", labels=labels)
    cs = client.components["cs"]
    for sequence in range(requests):
        yield world.env.timeout(spacing_s)
        server = servers[(sequence + offset) % len(servers)]
        done = False
        for attempt in range(APP_ATTEMPTS):
            try:
                yield from cs.call(
                    server.id,
                    task.name,
                    args={"from": client.id, "seq": sequence},
                    timeout=task.timeout,
                    retry=CHAOS_RETRY,
                )
                done = True
                break
            except ReproError:
                if attempt + 1 < APP_ATTEMPTS:
                    app_retries.increment()
                    yield world.env.timeout(APP_BACKOFF_S * (attempt + 1))
        (completed if done else failed).increment()
        # Denominator of the per-node completion SLO: settled requests,
        # so in-flight work never reads as failure mid-run.
        requests_done.increment()


@_deterministic_ids
def run_chaos(
    seed: int = 7,
    clients: int = 4,
    servers: int = 2,
    requests_per_client: int = 6,
    spacing_s: float = 8.0,
    plan: Optional[FaultPlan] = None,
    trace_enabled: bool = False,
    spans_enabled: Optional[bool] = None,
    slos=None,
    sample_cadence: Optional[float] = None,
) -> ChaosOutcome:
    """Drive the echo workload under ``plan`` (default
    :func:`standard_plan`); returns a :class:`ChaosOutcome`.

    ``spans_enabled`` follows ``trace_enabled`` unless set explicitly
    (pass ``True`` to capture causal spans — and the ``trace.*``
    analytics derived from them — without the event trace log).
    ``slos`` arms the in-run health engine (e.g.
    :func:`standard_slos`); ``sample_cadence`` attaches the sim-time
    sampler on its own — what the armed-vs-unarmed bit-identity test
    compares against.
    """
    world = World(
        seed=seed, trace_enabled=trace_enabled, spans_enabled=spans_enabled
    )
    if sample_cadence is not None:
        world.sample_series(cadence=sample_cadence)
    if slos is not None:
        world.enable_health(
            slos,
            cadence=5.0 if sample_cadence is None else sample_cadence,
        )
    task = chaos_task()
    client_hosts, server_hosts = build_fleet(
        world, clients=clients, servers=servers, task=task
    )
    plan = plan if plan is not None else standard_plan(clients, servers)
    plan.inject(world)
    metrics = world.metrics
    # Pre-create outcome counters so they report even when zero.
    for name in ("chaos.completed", "chaos.failed", "chaos.app_retries"):
        metrics.counter(name)
    drivers = [
        world.env.process(
            _client_driver(
                world,
                client,
                server_hosts,
                task,
                requests_per_client,
                spacing_s,
                offset,
            ),
            name=f"chaos:{client.id}",
        )
        for offset, client in enumerate(client_hosts)
    ]
    world.run(until=world.env.all_of(drivers))
    requests = clients * requests_per_client
    completed = int(metrics.counter("chaos.completed").value)
    outcome = ChaosOutcome(
        seed=seed,
        requests=requests,
        completed=completed,
        failed=int(metrics.counter("chaos.failed").value),
        app_retries=int(metrics.counter("chaos.app_retries").value),
        duration_s=world.now,
    )
    metrics.gauge("chaos.completion_rate").set(outcome.completion_rate)
    outcome.summary = world.summary()
    from ..obs import RunReport

    outcome.report = RunReport.capture(
        "chaos",
        world,
        params={
            "seed": seed,
            "clients": clients,
            "servers": servers,
            "requests": requests,
            "faults": len(plan),
            "completion_rate": outcome.completion_rate,
        },
        # capture() stamps sim-time by default, so the whole document
        # is a pure function of the seed and determinism tests compare
        # reports wholesale instead of stripping the wall-clock field.
    ).to_dict()
    return outcome


def resolve_plan_spec(plan: object) -> Optional[FaultPlan]:
    """Decode a run-matrix plan spec into a :class:`FaultPlan`.

    ``None`` / ``"default"`` mean "let the scenario build its own
    default schedule" (returned as ``None``); ``"none"`` is the
    explicit unarmed control run; a dict is a serialised plan
    (:meth:`FaultPlan.from_dict`) — how a matrix spec file ships a
    custom fault schedule to worker processes as plain JSON.
    """
    if plan is None or plan == "default":
        return None
    if plan == "none":
        return FaultPlan()
    if isinstance(plan, dict):
        return FaultPlan.from_dict(plan)
    raise ValueError(
        f"unknown fault-plan spec {plan!r} — want None, 'default', "
        "'none', or a FaultPlan dict"
    )


def chaos_job(
    seed: int,
    plan: object = None,
    slos: bool = False,
    spans: bool = True,
    **params: object,
) -> Dict[str, object]:
    """The chaos scenario as an importable run-matrix job target.

    One job = one :func:`run_chaos` with everything JSON-addressable:
    ``plan`` follows :func:`resolve_plan_spec`, ``slos`` arms the four
    standard per-node monitors, remaining ``params`` go straight to
    :func:`run_chaos` (``clients``, ``servers``,
    ``requests_per_client``, ``spacing_s``).  Returns the full
    :class:`~repro.obs.RunReport` dict — a pure function of the
    arguments, which is what lets ``repro matrix --strict`` replay any
    job in-process and demand byte identity with the worker pool.
    """
    outcome = run_chaos(
        seed=seed,
        plan=resolve_plan_spec(plan),
        spans_enabled=spans,
        slos=standard_slos() if slos else None,
        **params,  # type: ignore[arg-type]
    )
    return outcome.report


# ---------------------------------------------------------------------------
# Hostile-guest chaos
# ---------------------------------------------------------------------------


#: The strict grant hostile principals receive under
#: :func:`hostile_policy`: small enough that every hostile body trips
#: its quota within sim-milliseconds, enforced by the strict provider.
HOSTILE_GRANT = QuotaGrant(
    work_units=40_000.0,
    storage_bytes=32_000,
    service_calls=16,
    provider="strict",
)


def hostile_policy() -> SecurityPolicy:
    """A server policy arming strict quotas on hostile principals.

    Every principal matching ``hostile:*`` runs under
    :data:`HOSTILE_GRANT` on the strict provider; everyone else keeps
    the default budgets, so the benign workload is untouched.
    """
    return SecurityPolicy(
        require_signatures=True,
        quota_grants={"hostile:*": HOSTILE_GRANT},
    )


def hostile_plan(
    servers: int = 2, at: float = 10.0, spacing: float = 6.0
) -> FaultPlan:
    """The standard hostile-guest schedule: all three attack bodies.

    A quota-exhaustion loop lands on server-0, a scratch-storage bomb
    on every server, and a service-flood confused deputy on the last —
    staggered ``spacing`` seconds apart so each attack's metered cost
    is attributable in the trace.
    """
    server_ids = [f"server-{index}" for index in range(servers)]
    plan = FaultPlan()
    plan.hostile_guest([server_ids[0]], at=at, guest="quota_loop")
    plan.hostile_guest(server_ids, at=at + spacing, guest="storage_bomb")
    plan.hostile_guest(
        [server_ids[-1]], at=at + 2 * spacing, guest="service_flood"
    )
    return plan


@_deterministic_ids
def run_hostile(
    seed: int = 7,
    clients: int = 3,
    servers: int = 2,
    requests_per_client: int = 6,
    spacing_s: float = 8.0,
    hostile: Optional[FaultPlan] = None,
    trace_enabled: bool = False,
    spans_enabled: Optional[bool] = None,
    slos=None,
    sample_cadence: Optional[float] = None,
) -> ChaosOutcome:
    """The benign echo workload with hostile guests attacking servers.

    Like :func:`run_chaos`, but the fault plan is the hostile-guest
    family (default :func:`hostile_plan`) and the servers run
    :func:`hostile_policy`, so the tier-1 invariants are checkable on
    the outcome: benign completion stays >= 0.95 while every hostile
    guest is terminated with ``SandboxViolation`` (``hostile.escapes``
    stays 0) and its quota usage lands in per-node ``security.*`` /
    ``hostile.*`` metrics inside the v3 report.  Pass an empty
    ``FaultPlan()`` for the unarmed control run — it is bit-identical
    to :func:`run_chaos` with an empty plan and the same fleet shape.
    """
    world = World(
        seed=seed, trace_enabled=trace_enabled, spans_enabled=spans_enabled
    )
    if sample_cadence is not None:
        world.sample_series(cadence=sample_cadence)
    if slos is not None:
        world.enable_health(
            slos,
            cadence=5.0 if sample_cadence is None else sample_cadence,
        )
    task = chaos_task()
    client_hosts, server_hosts = build_fleet(
        world,
        clients=clients,
        servers=servers,
        task=task,
        server_policy=hostile_policy(),
    )
    hostile = hostile if hostile is not None else hostile_plan(servers)
    hostile.inject(world)
    metrics = world.metrics
    for name in ("chaos.completed", "chaos.failed", "chaos.app_retries"):
        metrics.counter(name)
    if len(hostile):
        # Pre-create the verdict counters so a clean run still reports
        # hostile.escapes == 0 (absence would be unfalsifiable).
        for name in ("hostile.guests", "hostile.terminated", "hostile.escapes"):
            metrics.counter(name)
    drivers = [
        world.env.process(
            _client_driver(
                world,
                client,
                server_hosts,
                task,
                requests_per_client,
                spacing_s,
                offset,
            ),
            name=f"chaos:{client.id}",
        )
        for offset, client in enumerate(client_hosts)
    ]
    world.run(until=world.env.all_of(drivers))
    requests = clients * requests_per_client
    completed = int(metrics.counter("chaos.completed").value)
    outcome = ChaosOutcome(
        seed=seed,
        requests=requests,
        completed=completed,
        failed=int(metrics.counter("chaos.failed").value),
        app_retries=int(metrics.counter("chaos.app_retries").value),
        duration_s=world.now,
    )
    metrics.gauge("chaos.completion_rate").set(outcome.completion_rate)
    outcome.summary = world.summary()
    from ..obs import RunReport

    outcome.report = RunReport.capture(
        "hostile",
        world,
        params={
            "seed": seed,
            "clients": clients,
            "servers": servers,
            "requests": requests,
            "faults": len(hostile),
            "hostile_guests": len(hostile),
            "completion_rate": outcome.completion_rate,
        },
    ).to_dict()
    return outcome


def verify_hostile_containment(
    seed: int = 7, floor: float = 0.95
) -> ChaosOutcome:
    """The hostile-guest tier-1 invariant, as one callable check.

    Under the standard hostile plan: benign completion stays at or
    above ``floor``, every launched guest is terminated with
    ``SandboxViolation``, and nothing escapes the providers.
    """
    outcome = run_hostile(seed=seed)
    summary = outcome.summary
    guests = summary.get("hostile.guests", 0.0)
    terminated = summary.get("hostile.terminated", 0.0)
    escapes = summary.get("hostile.escapes", 0.0)
    assert outcome.completion_rate >= floor, (
        f"benign completion {outcome.completed}/{outcome.requests} fell "
        f"below the {floor:.0%} floor under hostile guests"
    )
    assert guests >= 3, f"hostile plan launched only {guests:g} guests"
    assert terminated == guests, (
        f"{terminated:g}/{guests:g} hostile guests terminated with "
        "SandboxViolation"
    )
    assert escapes == 0, f"{escapes:g} hostile guests escaped containment"
    return outcome


# ---------------------------------------------------------------------------
# Recovery invariants
# ---------------------------------------------------------------------------


def verify_retry_convergence(
    seed: int = 11, floor: float = 0.95
) -> ChaosOutcome:
    """Retries converge: completion stays above ``floor`` under the
    standard plan, and the faults demonstrably bit (something retried)."""
    outcome = run_chaos(seed=seed)
    disruptions = outcome.app_retries + int(
        outcome.summary.get("paradigm.cs.retries", 0.0)
    )
    assert outcome.completion_rate >= floor, (
        f"chaos completion {outcome.completed}/{outcome.requests} fell "
        f"below the {floor:.0%} floor"
    )
    assert disruptions > 0, "fault plan injected nothing (no retries seen)"
    return outcome


def verify_discovery_recovery(seed: int = 5) -> Dict[str, int]:
    """Discovery goes dark across a partition and re-finds after heal."""
    world = World(seed=seed)
    client_hosts, server_hosts = build_fleet(world, clients=1, servers=1)
    client = client_hosts[0]
    discovery = client.components["discovery"]
    plan = FaultPlan().partition(
        [[client.id], [server_hosts[0].id]], at=10.0, duration=20.0
    )
    plan.inject(world)
    found: Dict[str, int] = {}

    def scenario() -> Generator:
        before = yield from discovery.find("compute", use_cache=False)
        found["before"] = len(before)
        yield world.env.timeout(12.0 - world.now)  # inside the partition
        during = yield from discovery.find("compute", use_cache=False)
        found["during"] = len(during)
        yield world.env.timeout(35.0 - world.now)  # healed
        after = yield from discovery.find("compute", use_cache=False)
        found["after"] = len(after)

    process = world.env.process(scenario(), name="disc-recovery")
    world.run(until=process)
    assert found["before"] > 0, "provider not discoverable before the fault"
    assert found["during"] == 0, "partition did not isolate discovery"
    assert found["after"] > 0, "discovery did not recover after heal"
    return found


def verify_agent_reroute(seed: int = 3) -> Dict[str, float]:
    """A task agent retries a crashed hop and completes once the node
    restarts — the itinerary survives churn."""
    world = World(seed=seed)
    task = chaos_task()
    client_hosts, server_hosts = build_fleet(
        world, clients=1, servers=2, task=task
    )
    client = client_hosts[0]
    runtime = client.components["agents"]
    # First itinerary hop crashes under the agent and restarts at t=5;
    # the hop retry backoff (2s, then 4s) lands after the restart.
    plan = FaultPlan().crash([server_hosts[0].id], at=0.0, down_s=5.0)
    plan.inject(world)
    targets = [server.id for server in server_hosts]

    def scenario() -> Generator:
        results = yield from runtime.invoke(task, targets, retry=CHAOS_RETRY)
        return results

    process = world.env.process(scenario(), name="agent-reroute")
    results = world.run(until=process)
    assert len(results) == len(targets), (
        f"agent visited {len(results)}/{len(targets)} itinerary hosts"
    )
    retries = world.metrics.counter("paradigm.ma.retries").value
    assert retries >= 1, "crash injected but the agent never retried a hop"
    return {"results": len(results), "retries": retries}


def verify_local_degradation(seed: int = 2) -> str:
    """With the link partitioned away, selection falls back to local
    execution rather than failing the task."""
    world = World(seed=seed)
    task = chaos_task()
    client_hosts, server_hosts = build_fleet(
        world, clients=1, servers=1, task=task
    )
    client = client_hosts[0]
    client.add_component(LocalExecution())
    plan = FaultPlan().partition(
        [[client.id], [server_hosts[0].id]], at=0.0, duration=60.0
    )
    plan.inject(world)
    selector = ParadigmSelector(
        available=["cs", "rev", "cod", "ma", "local"]
    )

    def scenario() -> Generator:
        yield world.env.timeout(1.0)  # let the partition open first
        outcome = yield from selector.select_and_invoke(
            client, task, target=server_hosts[0].id
        )
        return outcome

    process = world.env.process(scenario(), name="local-degradation")
    outcome = world.run(until=process)
    assert outcome.paradigm == "local", (
        f"expected offline fallback to 'local', got {outcome.paradigm!r}"
    )
    assert outcome.result == {"echo": None}
    return outcome.paradigm
