"""Hostile guest bodies: adversarial code units for chaos plans.

Each entry in :data:`HOSTILE_GUESTS` is a factory returning a guest
callable with the standard sandbox signature ``body(context) -> value``
(see :class:`repro.security.ExecutionContext`).  They are the attack
half of the hostile-guest fault family — the
:class:`~repro.faults.injectors.FaultInjector` launches them into a
target host's provider substrate (``host.run_guest``), where the
principal's :class:`~repro.security.QuotaGrant` must terminate every
one of them with :class:`~repro.errors.SandboxViolation` before it can
starve the host.

The bodies are written so their behaviour is a pure function of the
grant: a quota loop always trips after a bounded number of charges
under both provider flavors, keeping hostile runs bit-deterministic.
"""

from __future__ import annotations

from typing import Callable, Dict

#: Scratch chunk a storage bomb writes per iteration.
_BOMB_CHUNK_BYTES = 1024
#: Metered work per storage-bomb / service-flood iteration, so hostile
#: CPU usage grows alongside the primary resource being attacked.
_ITERATION_WORK_UNITS = 64.0


def quota_loop_guest() -> Callable:
    """A CPU hog: burns its entire work grant as fast as possible.

    Charges half the remaining budget each step (always at least one
    unit), so it exhausts any finite grant in O(log budget) charges and
    the final overdraft charge trips :class:`SandboxViolation` under
    both the post-hoc and the strict provider.
    """

    def body(context):
        while True:
            context.charge(max(1.0, context.work_remaining / 2.0))

    return body


def storage_bomb_guest() -> Callable:
    """A scratch-storage bomb: hoards host memory until stopped.

    Writes 1 KiB chunks under fresh keys forever; the storage budget
    check raises once the running byte total would cross the grant.
    The small per-iteration work charge terminates the loop even under
    a grant with effectively unlimited storage.
    """

    def body(context):
        index = 0
        while True:
            context.store(f"bomb-{index}", "x" * _BOMB_CHUNK_BYTES)
            context.charge(_ITERATION_WORK_UNITS)
            index += 1

    return body


def service_flood_guest() -> Callable:
    """A confused deputy: hammers a host service it was granted.

    Looks up (and thereby spends a metered call on) the ``deputy``
    service every iteration.  A grant with a ``service_calls`` cap
    terminates the flood at the cap; otherwise the per-iteration work
    charge bounds it.
    """

    def body(context):
        while True:
            deputy = context.service("deputy")
            deputy()
            context.charge(_ITERATION_WORK_UNITS)

    return body


#: Registered hostile guest bodies, by fault-plan name.
HOSTILE_GUESTS: Dict[str, Callable[[], Callable]] = {
    "quota_loop": quota_loop_guest,
    "storage_bomb": storage_bomb_guest,
    "service_flood": service_flood_guest,
}


def hostile_job(
    seed: int,
    plan: object = None,
    slos: bool = False,
    spans: bool = True,
    **params: object,
) -> Dict[str, object]:
    """The hostile-guest scenario as an importable run-matrix job target.

    Mirrors :func:`repro.faults.chaos.chaos_job`: ``plan`` follows
    :func:`~repro.faults.chaos.resolve_plan_spec` (``None`` means the
    standard :func:`~repro.faults.chaos.hostile_plan`), remaining
    ``params`` go to :func:`~repro.faults.chaos.run_hostile`.  Returns
    the full report dict, a pure function of the arguments.
    """
    from .chaos import resolve_plan_spec, run_hostile, standard_slos

    outcome = run_hostile(
        seed=seed,
        hostile=resolve_plan_spec(plan),
        spans_enabled=spans,
        slos=standard_slos() if slos else None,
        **params,  # type: ignore[arg-type]
    )
    return outcome.report
